// Memory-footprint sweep (-sweep-mem): the proof that the tiered engine
// holds a million-user population in a bounded resident set.
//
// Each run drives the same deterministic workload — every user checked
// in once per pass, two passes, then an incremental RebuildPart round —
// at a different resident cap, sampling runtime.MemStats.HeapAlloc and
// the process RSS throughout. Pass 2 re-touches users pass 1 evicted,
// so a capped run exercises the full evict → fault-in → evict cycle at
// population scale, and the per-run population fingerprint (a fold of
// every user's TableFingerprint in sorted ID order) must be identical
// across caps: the cap may only move state between tiers, never change
// what the obfuscator answers.
//
// Workers are forced to 1. The sweep's contract is byte-identical state
// across caps, and with >1 closed-loop workers the request budget race
// makes the op multiset itself nondeterministic.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/trace"
)

// memPasses is how many times the sweep walks the full population. Two
// is the minimum that makes a capped run fault spilled users back in.
const memPasses = 2

// memRebuildParts is the sub-round count for the post-ingest incremental
// rebuild — the RebuildPart schedule a real edged would run on a timer.
const memRebuildParts = 8

// memAdEvery issues one ad request per this many report batches, so the
// serving read path (and its PRNG draws) is part of the determinism
// contract, not just ingestion.
const memAdEvery = 16

// memResult is one cap's measurements. JSON keys for the tier counters
// match the telemetry metric names (core_faultins_total etc.) so the
// sweep output greps the same as a /metrics scrape.
type memResult struct {
	Name         string  `json:"name"`
	MaxResident  int     `json:"max_resident"`
	Users        int     `json:"users"`
	CheckIns     int64   `json:"checkins"`
	AdRequests   int64   `json:"ad_requests"`
	IngestSec    float64 `json:"ingest_sec"`
	CheckInsPerS float64 `json:"checkins_per_sec"`
	RebuildSec   float64 `json:"rebuild_sec"`
	FingerprSec  float64 `json:"fingerprint_sec"`
	// PopulationFP folds every user's TableFingerprint in sorted ID
	// order; equal across caps or the sweep fails.
	PopulationFP string `json:"population_fingerprint"`
	Resident     int    `json:"resident"`
	Spilled      int    `json:"spilled"`
	Evictions    uint64 `json:"core_evictions_total"`
	FaultIns     uint64 `json:"core_faultins_total"`
	SpillErrors  uint64 `json:"spill_errors"`
	// Peak values are sampled every 100ms across ingest + rebuild +
	// fingerprinting; steady values are read after a forced GC at the
	// end, when only the engine's long-lived state remains live.
	PeakHeapBytes   uint64 `json:"peak_heap_alloc_bytes"`
	PeakRSSBytes    uint64 `json:"peak_rss_bytes"`
	SteadyHeapBytes uint64 `json:"steady_heap_alloc_bytes"`
	SteadyRSSBytes  uint64 `json:"steady_rss_bytes"`
	// HeapPerResident is SteadyHeapBytes over the resident-user count —
	// the marginal in-memory cost of one hot user.
	HeapPerResident float64 `json:"heap_bytes_per_resident_user"`
}

// memSweepReport is the BENCH_pr9.json "mem" section.
type memSweepReport struct {
	Config config      `json:"config"`
	Runs   []memResult `json:"runs"`
	// FingerprintsIdentical records that every run produced the same
	// population fingerprint (the sweep errors out otherwise, so a
	// written report always says true — the field keeps the claim
	// visible in the archived JSON).
	FingerprintsIdentical bool               `json:"fingerprints_identical"`
	Derived               map[string]float64 `json:"derived,omitempty"`
}

// runSweepMem measures the footprint at caps {users/100, users/10,
// unbounded}, smallest first so a big run's freed pages cannot inflate a
// small run's RSS baseline.
func runSweepMem(base config) (*memSweepReport, error) {
	rep := &memSweepReport{Config: base}
	for _, cap := range memCaps(base.Users) {
		name := fmt.Sprintf("cap=%d", cap)
		if cap == 0 {
			name = "cap=unbounded"
		}
		fmt.Fprintf(os.Stderr, "loadgen: running mem %s ...\n", name)
		res, err := runMemOne(base, cap, name)
		if err != nil {
			return nil, fmt.Errorf("run %s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr,
			"loadgen: %s peak_heap=%.0fMB peak_rss=%.0fMB steady_heap=%.0fMB resident=%d spilled=%d core_faultins_total=%d fp=%s\n",
			name, mb(res.PeakHeapBytes), mb(res.PeakRSSBytes), mb(res.SteadyHeapBytes),
			res.Resident, res.Spilled, res.FaultIns, res.PopulationFP)
		rep.Runs = append(rep.Runs, *res)
		// Return freed pages to the OS so the next run's RSS samples
		// start from this run's true floor, not its leftovers.
		debug.FreeOSMemory()
	}
	for i := 1; i < len(rep.Runs); i++ {
		if rep.Runs[i].PopulationFP != rep.Runs[0].PopulationFP {
			return nil, fmt.Errorf("population fingerprint diverged across caps: %s=%s vs %s=%s — the resident cap changed obfuscator state",
				rep.Runs[0].Name, rep.Runs[0].PopulationFP, rep.Runs[i].Name, rep.Runs[i].PopulationFP)
		}
	}
	rep.FingerprintsIdentical = true

	rep.Derived = map[string]float64{}
	var unbounded *memResult
	for i := range rep.Runs {
		if rep.Runs[i].MaxResident == 0 {
			unbounded = &rep.Runs[i]
		}
	}
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.MaxResident == 0 || unbounded == nil {
			continue
		}
		if r.SteadyHeapBytes > 0 {
			rep.Derived[fmt.Sprintf("steady_heap_reduction_cap%d", r.MaxResident)] =
				float64(unbounded.SteadyHeapBytes) / float64(r.SteadyHeapBytes)
		}
		if r.PeakHeapBytes > 0 {
			rep.Derived[fmt.Sprintf("peak_heap_reduction_cap%d", r.MaxResident)] =
				float64(unbounded.PeakHeapBytes) / float64(r.PeakHeapBytes)
		}
		if unbounded.PeakRSSBytes > 0 && r.PeakRSSBytes > 0 {
			rep.Derived[fmt.Sprintf("peak_rss_reduction_cap%d", r.MaxResident)] =
				float64(unbounded.PeakRSSBytes) / float64(r.PeakRSSBytes)
		}
	}
	if unbounded != nil {
		rep.Derived["heap_bytes_per_user_unbounded"] = unbounded.HeapPerResident
	}
	return rep, nil
}

// memCaps picks the sweep's resident caps: two orders of magnitude of
// tiering plus the unbounded reference, smallest first.
func memCaps(users int) []int {
	var caps []int
	for _, c := range []int{users / 100, users / 10} {
		if c >= 1 && c < users && (len(caps) == 0 || c != caps[len(caps)-1]) {
			caps = append(caps, c)
		}
	}
	return append(caps, 0)
}

// runMemOne drives the deterministic population workload at one cap.
func runMemOne(base config, maxResident int, name string) (*memResult, error) {
	cfg := base
	cfg.Workers = 1
	cfg.MaxResident = maxResident
	baseTime := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	// Pin the server clock: the ads path records an implicit check-in at
	// server time, which would otherwise smuggle wall-clock nanos into
	// table state and break cross-cap fingerprint identity.
	cfg.clock = func() time.Time { return baseTime.Add(30 * time.Second) }
	ts, _, engine, cleanup, err := startEdge(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	defer ts.Close()

	sampler := newMemSampler(100 * time.Millisecond)
	defer sampler.stop()

	cl, err := client.New(ts.URL, nil, client.WithCodec(cfg.codec))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rnd := randx.New(cfg.Seed, workerStream(0))
	region := trace.DefaultConfig().Region

	res := &memResult{Name: name, MaxResident: maxResident, Users: cfg.Users}
	items := make([]edge.ReportRequest, 0, cfg.Batch)
	ingestStart := time.Now()
	for pass := 0; pass < memPasses; pass++ {
		at := baseTime.Add(time.Duration(pass) * time.Minute)
		for lo := 0; lo < cfg.Users; lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > cfg.Users {
				hi = cfg.Users
			}
			items = items[:0]
			for uid := lo; uid < hi; uid++ {
				items = append(items, edge.ReportRequest{
					UserID: memUserID(uid),
					Pos:    memHome(region.BBox, uid).Add(rnd.GaussianPolar(50)),
					Time:   at,
				})
			}
			if len(items) == 1 {
				err = cl.Report(ctx, items[0].UserID, items[0].Pos, items[0].Time)
			} else {
				var resp edge.ReportBatchResponse
				resp, err = cl.ReportBatch(ctx, items)
				if err == nil && len(resp.Errors) > 0 {
					err = fmt.Errorf("batch rejected %d of %d check-ins", len(resp.Errors), len(items))
				}
			}
			if err != nil {
				return nil, fmt.Errorf("pass %d users [%d,%d): %w", pass, lo, hi, err)
			}
			res.CheckIns += int64(len(items))
			if (lo/cfg.Batch)%memAdEvery == 0 {
				if _, err := cl.RequestAds(ctx, items[0].UserID, items[0].Pos, 10); err != nil {
					return nil, fmt.Errorf("ad request for %s: %w", items[0].UserID, err)
				}
				res.AdRequests++
			}
		}
	}
	res.IngestSec = time.Since(ingestStart).Seconds()
	if res.IngestSec > 0 {
		res.CheckInsPerS = float64(res.CheckIns) / res.IngestSec
	}

	// The incremental rebuild schedule: K timer ticks, each covering
	// 1/K of the shards, exactly as edged -rebuild-every runs it.
	rebuildStart := time.Now()
	rebuildAt := baseTime.Add(time.Hour)
	for part := 0; part < memRebuildParts; part++ {
		if err := engine.RebuildPart(rebuildAt, 0, part, memRebuildParts); err != nil {
			return nil, fmt.Errorf("rebuild part %d/%d: %w", part, memRebuildParts, err)
		}
	}
	res.RebuildSec = time.Since(rebuildStart).Seconds()

	// Fingerprint the whole population through viewUser — spilled users
	// are peek-decoded, not promoted, so this pass must not disturb the
	// resident set it is about to report on.
	fpStart := time.Now()
	fp := uint64(core.FingerprintSeed)
	for _, id := range engine.Users() {
		ufp, err := engine.TableFingerprint(id)
		if err != nil {
			return nil, fmt.Errorf("fingerprinting %s: %w", id, err)
		}
		fp = randx.Mix64(fp ^ ufp)
	}
	res.FingerprSec = time.Since(fpStart).Seconds()
	res.PopulationFP = fmt.Sprintf("%016x", fp)

	tier := engine.TierStats()
	res.Resident = tier.Resident
	res.Spilled = tier.Spilled
	res.Evictions = tier.Evictions
	res.FaultIns = tier.FaultIns
	res.SpillErrors = tier.SpillErrors
	if maxResident > 0 {
		if tier.SpillErrors > 0 {
			return nil, fmt.Errorf("%d spill errors at cap %d", tier.SpillErrors, maxResident)
		}
		// Per-shard quotas round up, so the hard bound is the cap plus
		// at most one user per shard.
		if slack := cfg.Shards; tier.Resident > maxResident+max(slack, core.DefaultShards) {
			return nil, fmt.Errorf("resident=%d exceeds cap %d: eviction is not holding the line", tier.Resident, maxResident)
		}
		if tier.FaultIns == 0 {
			return nil, fmt.Errorf("cap %d run recorded zero fault-ins: the workload never exercised the cold tier", maxResident)
		}
	}

	// Steady state: force a full GC so only genuinely live engine state
	// remains, then read both the heap and the OS view.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.SteadyHeapBytes = ms.HeapAlloc
	res.SteadyRSSBytes = readRSS()
	res.PeakHeapBytes, res.PeakRSSBytes = sampler.stop()
	if res.Resident > 0 {
		res.HeapPerResident = float64(res.SteadyHeapBytes) / float64(res.Resident)
	}
	return res, nil
}

// memUserID maps a sweep user index to its stable ID.
func memUserID(uid int) string {
	return fmt.Sprintf("u%07d", uid)
}

// memHome places each user's home deterministically in the region from a
// hash of the index alone, so a user's check-in cluster does not depend
// on how many PRNG draws preceded it.
func memHome(region geo.BBox, uid int) geo.Point {
	hx := randx.Mix64(uint64(uid)*randx.GoldenGamma + 0xB0E)
	hy := randx.Mix64(uint64(uid)*randx.GoldenGamma + 0xB0F)
	return geo.Point{
		X: region.MinX + float64(hx>>11)/(1<<53)*region.Width(),
		Y: region.MinY + float64(hy>>11)/(1<<53)*region.Height(),
	}
}

// memSampler tracks peak HeapAlloc and RSS on a background ticker.
type memSampler struct {
	stopCh   chan struct{}
	done     chan struct{}
	once     sync.Once
	mu       sync.Mutex
	peakHeap uint64
	peakRSS  uint64
}

func newMemSampler(every time.Duration) *memSampler {
	s := &memSampler{stopCh: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			s.sample()
			select {
			case <-s.stopCh:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *memSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rss := readRSS()
	s.mu.Lock()
	if ms.HeapAlloc > s.peakHeap {
		s.peakHeap = ms.HeapAlloc
	}
	if rss > s.peakRSS {
		s.peakRSS = rss
	}
	s.mu.Unlock()
}

// stop takes a final sample, halts the ticker, and returns the peaks.
// Safe to call more than once.
func (s *memSampler) stop() (peakHeap, peakRSS uint64) {
	s.once.Do(func() {
		close(s.stopCh)
		<-s.done
		s.sample()
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakHeap, s.peakRSS
}

// readRSS returns the process resident set in bytes from
// /proc/self/statm (0 where procfs is unavailable — peaks then reflect
// HeapAlloc only).
func readRSS() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }
