package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/edge"
)

// TestRunSweepMemSmall runs the full memory sweep at a toy population
// and pins its contract: the population fingerprint is identical at
// every resident cap (the sweep itself errors out otherwise), capped
// runs actually exercise the cold tier, and the derived reductions are
// present. This is the same code path MEM=1 ./bench.sh archives at a
// million users.
func TestRunSweepMemSmall(t *testing.T) {
	base := config{
		Users: 300, Workers: 4, Requests: 1, Mix: "4:1", Batch: 16,
		Shards: core.DefaultShards, Campaigns: 20, Seed: 7, Wire: "binary",
	}
	var err error
	if base.codec, err = edge.ParseCodec(base.Wire); err != nil {
		t.Fatal(err)
	}
	rep, err := runSweepMem(base)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FingerprintsIdentical {
		t.Error("FingerprintsIdentical = false")
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("got %d runs, want 3 (caps 3, 30, unbounded)", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.CheckIns != int64(memPasses*base.Users) {
			t.Errorf("%s: %d check-ins, want %d", r.Name, r.CheckIns, memPasses*base.Users)
		}
		if r.PopulationFP != rep.Runs[0].PopulationFP {
			t.Errorf("%s: fingerprint %s differs from %s", r.Name, r.PopulationFP, rep.Runs[0].PopulationFP)
		}
		if r.MaxResident > 0 {
			if r.FaultIns == 0 {
				t.Errorf("%s: zero fault-ins, cold tier never exercised", r.Name)
			}
			if r.Spilled == 0 {
				t.Errorf("%s: nothing spilled at cap %d", r.Name, r.MaxResident)
			}
		} else if r.Spilled != 0 || r.Resident != base.Users {
			t.Errorf("unbounded run: resident=%d spilled=%d, want %d/0", r.Resident, r.Spilled, base.Users)
		}
	}
	for _, key := range []string{"steady_heap_reduction_cap3", "steady_heap_reduction_cap30"} {
		if _, ok := rep.Derived[key]; !ok {
			t.Errorf("derived metric %s missing", key)
		}
	}
}

// TestMemCaps pins the cap schedule: two tiering levels when the
// population is large enough, always ending unbounded, never a cap of 0
// users or one at/above the population.
func TestMemCaps(t *testing.T) {
	cases := []struct {
		users int
		want  []int
	}{
		{1_000_000, []int{10_000, 100_000, 0}},
		{300, []int{3, 30, 0}},
		{150, []int{1, 15, 0}},
		{50, []int{5, 0}},
		{5, []int{0}},
		{1, []int{0}},
	}
	for _, tc := range cases {
		got := memCaps(tc.users)
		if len(got) != len(tc.want) {
			t.Errorf("memCaps(%d) = %v, want %v", tc.users, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("memCaps(%d) = %v, want %v", tc.users, got, tc.want)
				break
			}
		}
	}
}
