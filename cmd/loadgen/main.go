// Command loadgen is a closed-loop load generator for the edge serving
// path: a pool of workers drives a configurable mix of location reports
// (optionally batched through POST /v1/report/batch) and ad requests at
// an edge server — an in-process one by default, or any edged via
// -addr — and reports throughput plus p50/p95/p99 client-observed
// latency from internal/telemetry histograms.
//
// Closed loop means each worker waits for a response before issuing the
// next call, so measured latency includes queueing at the configured
// concurrency rather than at an unbounded open-loop arrival rate.
//
// Usage:
//
//	loadgen -users 256 -workers 8 -requests 20000 -mix 4:1 -batch 64
//	loadgen -sweep -out BENCH_pr4.json   # shards {1,8} x batch {1,64} grid
//	loadgen -wire binary                 # negotiate the binary wire codec
//	loadgen -sweep-wire                  # wire {json,binary} x batch {1,64} grid
//	loadgen -users 1000000 -sweep-mem    # memory-footprint sweep across resident caps
//	loadgen -max-resident 10000          # single run with the tiered engine
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adnet"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Stream selector bases for the generator's independent PRNG families.
// Worker streams are derived with the avalanche-then-increment idiom
// (randx.Mix64 over a GoldenGamma-spaced index): a plain additive
// selector like stream = w + base is linear, so the worker family can
// collide with any other additively chosen stream — and with PCG,
// low-entropy consecutive selectors pick correlated streams, skewing
// the generated load toward shared user/timing choices.
const (
	streamWorkerBase = 0x10AD
	streamCampaigns  = 0x51A151
)

// workerStream returns the PRNG stream selector for load worker w.
func workerStream(w int) uint64 {
	return randx.Mix64(streamWorkerBase + uint64(w)*randx.GoldenGamma)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// config is one load-generation run.
type config struct {
	Users     int           `json:"users"`
	Workers   int           `json:"workers"`
	Requests  int           `json:"requests"`
	Duration  time.Duration `json:"-"`
	Mix       string        `json:"mix"`
	Batch     int           `json:"batch"`
	Shards    int           `json:"shards"`
	Campaigns int           `json:"campaigns"`
	Seed      uint64        `json:"seed"`
	Addr      string        `json:"addr,omitempty"`
	// DataDir and Fsync select durable mode for the in-process server:
	// every mutation goes through a write-ahead log with the given
	// fsync policy before the response is acknowledged. Fsync "none"
	// (or empty) runs without a WAL.
	DataDir string `json:"data_dir,omitempty"`
	Fsync   string `json:"fsync,omitempty"`
	// Wire selects the serving-path codec the workers negotiate with
	// the edge: "json" (default) or "binary" frames.
	Wire string `json:"wire,omitempty"`
	// MaxResident bounds the in-process engine's resident users; beyond
	// it, least-recently-touched users spill to a temp dir and fault
	// back in transparently (0 = unbounded, untiered).
	MaxResident int `json:"max_resident,omitempty"`
	// Scenario replays a composed workload scenario (internal/workload
	// mode name) instead of the uniform synthetic load: workers drain the
	// scenario's event sequence through the same closed-loop HTTP path.
	Scenario string `json:"scenario,omitempty"`

	mixReports, mixAds int
	codec              edge.Codec
	// clock overrides the in-process server's wall clock. The ads path
	// records an implicit check-in at server time, so any run that
	// asserts bit-for-bit state identity (the mem sweep) must pin it.
	clock edge.Clock
}

// durable reports whether the run writes through a WAL.
func (c config) durable() bool { return c.Fsync != "" && c.Fsync != "none" }

// result is the measured outcome of one run. Latency quantiles are
// linear interpolations inside telemetry histogram buckets (exponential
// bounds, factor 4), so treat them as bucket-resolution estimates.
type result struct {
	Name         string  `json:"name"`
	Shards       int     `json:"shards"`
	Batch        int     `json:"batch"`
	Fsync        string  `json:"fsync,omitempty"`
	Wire         string  `json:"wire,omitempty"`
	CheckIns     int64   `json:"checkins"`
	AdRequests   int64   `json:"ad_requests"`
	HTTPOps      int64   `json:"http_ops"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	CheckInsPerS float64 `json:"checkins_per_sec"`
	AdsPerS      float64 `json:"ads_per_sec"`
	HTTPOpsPerS  float64 `json:"http_ops_per_sec"`
	ReportP50Ms  float64 `json:"report_p50_ms"`
	ReportP95Ms  float64 `json:"report_p95_ms"`
	ReportP99Ms  float64 `json:"report_p99_ms"`
	AdsP50Ms     float64 `json:"ads_p50_ms"`
	AdsP95Ms     float64 `json:"ads_p95_ms"`
	AdsP99Ms     float64 `json:"ads_p99_ms"`
	// Overflow counts observations past the top histogram bound; non-zero
	// means the quantiles above saturate at that bound and undersell the
	// real tail.
	ReportOverflow int64 `json:"report_overflow,omitempty"`
	AdsOverflow    int64 `json:"ads_overflow,omitempty"`
	BatchRejected  int64 `json:"batch_rejected,omitempty"`
	// Stages is the server-side per-stage span breakdown (in-process runs
	// only: external edges keep their spans in their own registry).
	Stages []tracing.StageStat `json:"stages,omitempty"`
	// ActiveSpans is the server tracer's span gauge after the run; any
	// value above zero is a span leak.
	ActiveSpans int64 `json:"active_spans"`
	// Tier is present only for -max-resident runs: the engine's
	// memory-tier counters after the run.
	Tier *tierResult `json:"tier,omitempty"`
	// Scenario fields are present only for -scenario runs: the composed
	// workload's totals and how much of it the budget replayed.
	Scenario          string `json:"scenario,omitempty"`
	ScenarioEvents    int    `json:"scenario_events,omitempty"`
	ScenarioMutations int    `json:"scenario_mutations,omitempty"`
	ScenarioReplayed  int64  `json:"scenario_replayed,omitempty"`
}

// tierResult is the engine's memory-tier state after a capped run.
type tierResult struct {
	MaxResident int    `json:"max_resident"`
	Resident    int    `json:"resident"`
	Spilled     int    `json:"spilled"`
	Evictions   uint64 `json:"evictions"`
	FaultIns    uint64 `json:"faultins"`
	SpillErrors uint64 `json:"spill_errors"`
}

// sweepReport is the BENCH_pr4.json serving section: the full grid plus
// cross-run derived speedups.
type sweepReport struct {
	Config  config             `json:"config"`
	Runs    []result           `json:"runs"`
	Derived map[string]float64 `json:"derived,omitempty"`
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		users     = fs.Int("users", 256, "distinct users in the workload")
		workers   = fs.Int("workers", 8, "concurrent closed-loop workers")
		requests  = fs.Int("requests", 20_000, "total operations (each batched report counts its check-ins)")
		duration  = fs.Duration("duration", 0, "run for a fixed wall-clock time instead of a request budget")
		mix       = fs.String("mix", "4:1", "check-in to ad-request ratio, as R:A")
		batch     = fs.Int("batch", 1, "check-ins per report call; >1 uses POST /v1/report/batch")
		shards    = fs.Int("shards", core.DefaultShards, "engine shard count for the in-process server")
		campaigns = fs.Int("campaigns", 100, "campaigns registered on the in-process ad network")
		seed      = fs.Uint64("seed", 1, "workload randomness seed")
		addr      = fs.String("addr", "", "target an external edge (e.g. http://127.0.0.1:8080) instead of an in-process server")
		jsonOut   = fs.Bool("json", false, "emit the result as JSON instead of a text summary")
		sweep     = fs.Bool("sweep", false, "run the shards {1,8} x batch {1,64} grid in-process and emit the sweep JSON")
		sweepDur  = fs.Bool("sweep-durable", false, "run the fsync {none,never,interval,always} x batch {1,64} durability grid at shards=8 and emit the sweep JSON")
		sweepWire = fs.Bool("sweep-wire", false, "run the wire {json,binary} x batch {1,64} codec grid at shards=8 and emit the sweep JSON")
		sweepMem  = fs.Bool("sweep-mem", false, "run the memory-footprint sweep: resident caps {users/100, users/10, unbounded} over the full population, sampling HeapAlloc/RSS")
		maxRes    = fs.Int("max-resident", 0, "bound the in-process engine's resident users; cold users spill to a temp dir (0 = unbounded)")
		wireFlag  = fs.String("wire", "json", "serving-path codec: json | binary")
		dataDir   = fs.String("data-dir", "", "WAL directory for the in-process server (empty durable runs use a temp dir)")
		fsyncFlag = fs.String("fsync", "", "WAL fsync policy for the in-process server: always | interval[=<duration>] | never; empty or \"none\" disables the WAL")
		scenario  = fs.String("scenario", "", "replay a composed workload scenario instead of uniform load: baseline | churn | gps-outage | traveler | collude")
		outPath   = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := config{
		Users: *users, Workers: *workers, Requests: *requests, Duration: *duration,
		Mix: *mix, Batch: *batch, Shards: *shards, Campaigns: *campaigns,
		Seed: *seed, Addr: *addr, DataDir: *dataDir, Fsync: *fsyncFlag, Wire: *wireFlag,
		MaxResident: *maxRes, Scenario: *scenario,
	}
	if cfg.Scenario != "" {
		if _, err := workload.ParseMode(cfg.Scenario); err != nil {
			return fmt.Errorf("-scenario: %w", err)
		}
	}
	if cfg.MaxResident < 0 {
		return fmt.Errorf("-max-resident must be >= 0")
	}
	if cfg.MaxResident > 0 && cfg.Addr != "" {
		return fmt.Errorf("-max-resident configures the in-process engine, so it cannot target an external -addr")
	}
	if cfg.DataDir != "" && cfg.Fsync == "" {
		cfg.Fsync = "interval"
	}
	var err error
	cfg.mixReports, cfg.mixAds, err = parseMix(cfg.Mix)
	if err != nil {
		return err
	}
	if cfg.codec, err = edge.ParseCodec(cfg.Wire); err != nil {
		return fmt.Errorf("-wire: %w", err)
	}
	if cfg.Users < 1 || cfg.Workers < 1 || cfg.Batch < 1 {
		return fmt.Errorf("users, workers, and batch must be >= 1")
	}
	if cfg.Requests < 1 && cfg.Duration <= 0 {
		return fmt.Errorf("need a positive -requests budget or a -duration")
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *sweep || *sweepDur || *sweepWire || *sweepMem {
		if cfg.Addr != "" {
			return fmt.Errorf("-sweep controls the in-process engine, so it cannot target an external -addr")
		}
		sweeps := 0
		for _, on := range []bool{*sweep, *sweepDur, *sweepWire, *sweepMem} {
			if on {
				sweeps++
			}
		}
		if sweeps > 1 {
			return fmt.Errorf("-sweep, -sweep-durable, -sweep-wire, and -sweep-mem are mutually exclusive")
		}
		if *sweepMem {
			rep, err := runSweepMem(cfg)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
			if *outPath != "" {
				fmt.Printf("loadgen: wrote mem sweep to %s\n", *outPath)
			}
			return nil
		}
		runGrid := runSweep
		if *sweepDur {
			runGrid = runSweepDurable
		}
		if *sweepWire {
			runGrid = runSweepWire
		}
		rep, err := runGrid(cfg)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if *outPath != "" {
			fmt.Printf("loadgen: wrote sweep to %s\n", *outPath)
		}
		return nil
	}

	name := fmt.Sprintf("shards=%d/batch=%d", cfg.Shards, cfg.Batch)
	if cfg.Fsync != "" {
		name += "/fsync=" + cfg.Fsync
	}
	if cfg.codec == edge.CodecBinary {
		name += "/wire=binary"
	}
	if cfg.MaxResident > 0 {
		name += fmt.Sprintf("/cap=%d", cfg.MaxResident)
	}
	if cfg.Scenario != "" {
		name += "/scenario=" + cfg.Scenario
	}
	res, err := runOne(cfg, name)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(w, "loadgen: %s users=%d workers=%d mix=%s\n", res.Name, cfg.Users, cfg.Workers, cfg.Mix)
	if res.Scenario != "" {
		fmt.Fprintf(w, "scenario: mode=%s events=%d mutations=%d replayed=%d\n",
			res.Scenario, res.ScenarioEvents, res.ScenarioMutations, res.ScenarioReplayed)
	}
	fmt.Fprintf(w, "ingested %d check-ins + %d ad requests (%d HTTP ops) in %.2fs\n",
		res.CheckIns, res.AdRequests, res.HTTPOps, res.ElapsedSec)
	fmt.Fprintf(w, "throughput: %.0f checkins/s, %.0f ads/s, %.0f http_ops/s\n",
		res.CheckInsPerS, res.AdsPerS, res.HTTPOpsPerS)
	fmt.Fprintf(w, "report latency p50=%.3fms p95=%.3fms p99=%.3fms overflow=%d\n",
		res.ReportP50Ms, res.ReportP95Ms, res.ReportP99Ms, res.ReportOverflow)
	fmt.Fprintf(w, "ads    latency p50=%.3fms p95=%.3fms p99=%.3fms overflow=%d\n",
		res.AdsP50Ms, res.AdsP95Ms, res.AdsP99Ms, res.AdsOverflow)
	if res.Tier != nil {
		fmt.Fprintf(w, "tier: max_resident=%d resident=%d spilled=%d core_evictions_total=%d core_faultins_total=%d spill_errors=%d\n",
			res.Tier.MaxResident, res.Tier.Resident, res.Tier.Spilled,
			res.Tier.Evictions, res.Tier.FaultIns, res.Tier.SpillErrors)
	}
	printStages(w, res)
	return nil
}

// printStages renders the server-side per-stage span breakdown next to
// the client-observed quantiles, so a p99 regression can be pinned to
// the handler, engine apply, WAL append, provider, or failover stage.
func printStages(w *os.File, res *result) {
	if len(res.Stages) == 0 {
		return
	}
	fmt.Fprintf(w, "per-stage breakdown (server-side spans):\n")
	for _, st := range res.Stages {
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s count=%-7d p50=%.3fms p95=%.3fms p99=%.3fms overflow=%d\n",
			st.Stage, st.Count, st.P50Ms, st.P95Ms, st.P99Ms, st.Overflow)
	}
	fmt.Fprintf(w, "tracing: active_spans=%d\n", res.ActiveSpans)
}

// parseMix parses "R:A" into the report and ads weights.
func parseMix(s string) (reports, ads int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mix %q must be R:A (e.g. 4:1)", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &reports); err != nil {
		return 0, 0, fmt.Errorf("mix %q: bad report weight", s)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &ads); err != nil {
		return 0, 0, fmt.Errorf("mix %q: bad ads weight", s)
	}
	if reports < 0 || ads < 0 || reports+ads == 0 {
		return 0, 0, fmt.Errorf("mix %q: weights must be non-negative and not both zero", s)
	}
	return reports, ads, nil
}

// runSweep runs the BENCH_pr4 grid: single-shard vs multi-shard engine,
// single vs batched ingestion, same workload everywhere.
func runSweep(base config) (*sweepReport, error) {
	rep := &sweepReport{Config: base}
	perf := map[[2]int]float64{}
	for _, shards := range []int{1, 8} {
		for _, batch := range []int{1, 64} {
			cfg := base
			cfg.Shards, cfg.Batch = shards, batch
			name := fmt.Sprintf("shards=%d/batch=%d", shards, batch)
			fmt.Fprintf(os.Stderr, "loadgen: running %s ...\n", name)
			res, err := runOne(cfg, name)
			if err != nil {
				return nil, fmt.Errorf("run %s: %w", name, err)
			}
			rep.Runs = append(rep.Runs, *res)
			perf[[2]int{shards, batch}] = res.CheckInsPerS
		}
	}
	rep.Derived = map[string]float64{}
	if a, b := perf[[2]int{8, 1}], perf[[2]int{1, 1}]; a > 0 && b > 0 {
		rep.Derived["shard_speedup_batch1"] = a / b
	}
	if a, b := perf[[2]int{1, 64}], perf[[2]int{1, 1}]; a > 0 && b > 0 {
		rep.Derived["batch64_speedup_shards1"] = a / b
	}
	if a, b := perf[[2]int{8, 64}], perf[[2]int{1, 1}]; a > 0 && b > 0 {
		rep.Derived["combined_speedup"] = a / b
	}
	return rep, nil
}

// runSweepDurable measures what each fsync policy costs: the same
// serving workload at shards=8, from no WAL at all through fsync on
// every append. Derived ratios report throughput cost as
// none/policy (1.0 = free, 2.0 = half the throughput).
func runSweepDurable(base config) (*sweepReport, error) {
	rep := &sweepReport{Config: base}
	policies := []string{"none", "never", "interval", "always"}
	perf := map[string]float64{}
	for _, pol := range policies {
		for _, batch := range []int{1, 64} {
			cfg := base
			cfg.Shards, cfg.Batch, cfg.Fsync = 8, batch, pol
			cfg.DataDir = "" // each durable run gets a fresh temp WAL
			name := fmt.Sprintf("fsync=%s/batch=%d", pol, batch)
			fmt.Fprintf(os.Stderr, "loadgen: running %s ...\n", name)
			res, err := runOne(cfg, name)
			if err != nil {
				return nil, fmt.Errorf("run %s: %w", name, err)
			}
			rep.Runs = append(rep.Runs, *res)
			perf[name] = res.CheckInsPerS
		}
	}
	rep.Derived = map[string]float64{}
	for _, pol := range policies[1:] {
		for _, batch := range []int{1, 64} {
			baseline := perf[fmt.Sprintf("fsync=none/batch=%d", batch)]
			withPol := perf[fmt.Sprintf("fsync=%s/batch=%d", pol, batch)]
			if baseline > 0 && withPol > 0 {
				rep.Derived[fmt.Sprintf("%s_cost_batch%d", pol, batch)] = baseline / withPol
			}
		}
	}
	return rep, nil
}

// runSweepWire measures what the binary wire protocol buys end to end:
// the same serving workload at shards=8 in both codecs, single and
// batched ingestion. Derived ratios report binary/json check-in
// throughput (>1 = binary faster) and json/binary report p99 (>1 =
// binary's tail is shorter).
func runSweepWire(base config) (*sweepReport, error) {
	rep := &sweepReport{Config: base}
	runs := map[string]*result{}
	for _, codec := range []edge.Codec{edge.CodecJSON, edge.CodecBinary} {
		for _, batch := range []int{1, 64} {
			cfg := base
			cfg.Shards, cfg.Batch = 8, batch
			cfg.Wire, cfg.codec = codec.String(), codec
			name := fmt.Sprintf("wire=%s/batch=%d", codec, batch)
			fmt.Fprintf(os.Stderr, "loadgen: running %s ...\n", name)
			res, err := runOne(cfg, name)
			if err != nil {
				return nil, fmt.Errorf("run %s: %w", name, err)
			}
			rep.Runs = append(rep.Runs, *res)
			runs[name] = res
		}
	}
	rep.Derived = map[string]float64{}
	for _, batch := range []int{1, 64} {
		js := runs[fmt.Sprintf("wire=json/batch=%d", batch)]
		bin := runs[fmt.Sprintf("wire=binary/batch=%d", batch)]
		if js.CheckInsPerS > 0 && bin.CheckInsPerS > 0 {
			rep.Derived[fmt.Sprintf("wire_binary_speedup_batch%d", batch)] = bin.CheckInsPerS / js.CheckInsPerS
		}
		if js.ReportP99Ms > 0 && bin.ReportP99Ms > 0 {
			rep.Derived[fmt.Sprintf("wire_binary_p99_ratio_batch%d", batch)] = js.ReportP99Ms / bin.ReportP99Ms
		}
	}
	return rep, nil
}

// runOne executes one closed-loop run and returns its measurements.
func runOne(cfg config, name string) (*result, error) {
	baseURL := cfg.Addr
	var srv *edge.Server
	var engine *core.Engine
	if baseURL == "" {
		ts, s, e, cleanup, err := startEdge(cfg)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		defer ts.Close()
		baseURL, srv, engine = ts.URL, s, e
	}

	reportHist, err := telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
	if err != nil {
		return nil, err
	}
	adsHist, err := telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
	if err != nil {
		return nil, err
	}

	// Budget accounting: report ops consume their batch size, ads ops
	// consume one, so -requests bounds total work independently of the
	// batch size (the batch=64 run ingests the same number of check-ins
	// as the batch=1 run, just in fewer HTTP round trips).
	var budget atomic.Int64
	budget.Store(int64(cfg.Requests))
	deadline := time.Time{}
	if cfg.Duration > 0 {
		budget.Store(math.MaxInt64)
		deadline = time.Now().Add(cfg.Duration)
	}

	var checkins, adsDone, httpOps, rejected atomic.Int64
	// userClock gives each user a monotonically advancing check-in time;
	// cross-worker interleavings may deliver them slightly out of order,
	// which the engine accepts (it never requires monotonic input).
	userClock := make([]atomic.Int64, cfg.Users)
	baseTime := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	region := trace.DefaultConfig().Region

	// Scenario mode: compose the workload up front and let the workers
	// drain its global event sequence through the same HTTP path, instead
	// of synthesizing uniform positions. The cursor hands each worker a
	// contiguous claim, so every event replays exactly once.
	var (
		scn       *workload.Workload
		scnEvents []workload.Event
		scnCursor atomic.Int64
	)
	if cfg.Scenario != "" {
		mode, err := workload.ParseMode(cfg.Scenario)
		if err != nil {
			return nil, err
		}
		tcfg := trace.DefaultConfig()
		tcfg.NumUsers = cfg.Users
		tcfg.MaxCheckIns = 400
		tcfg.Seed = cfg.Seed
		scn, err = workload.Build(workload.Synthetic{Config: tcfg}, workload.Config{
			Mode: mode, Seed: cfg.Seed, Parallelism: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("composing scenario: %w", err)
		}
		scnEvents = scn.Flatten()
		if srv != nil {
			scn.Instrument(srv.Registry())
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	ctx := context.Background()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.New(baseURL, nil, client.WithCodec(cfg.codec))
			if err != nil {
				errCh <- err
				return
			}
			rnd := randx.New(cfg.Seed, workerStream(w))
			reports := make([]edge.ReportRequest, 0, cfg.Batch)
			for {
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				isReport := cfg.mixAds == 0 ||
					(cfg.mixReports > 0 && rnd.IntN(cfg.mixReports+cfg.mixAds) < cfg.mixReports)
				cost := int64(1)
				if isReport {
					cost = int64(cfg.Batch)
				}
				if budget.Add(-cost) < 0 {
					return
				}
				var user string
				var pos geo.Point
				var claimed []workload.Event
				if scn != nil {
					// Claim the next cost events from the scenario sequence;
					// the run ends when the composed workload is drained.
					lo := scnCursor.Add(cost) - cost
					if lo >= int64(len(scnEvents)) {
						return
					}
					hi := min(lo+cost, int64(len(scnEvents)))
					claimed = scnEvents[lo:hi]
					user, pos = claimed[0].AdID, claimed[0].Pos
				} else {
					uid := rnd.IntN(cfg.Users)
					user = fmt.Sprintf("u%05d", uid)
					pos = geo.Point{
						X: region.MinX + rnd.Float64()*region.Width(),
						Y: region.MinY + rnd.Float64()*region.Height(),
					}
					if isReport {
						reports = reports[:0]
						for i := 0; i < cfg.Batch; i++ {
							seq := userClock[uid].Add(1)
							reports = append(reports, edge.ReportRequest{
								UserID: user,
								Pos:    pos.Add(rnd.GaussianPolar(50)),
								Time:   baseTime.Add(time.Duration(seq) * time.Minute),
							})
						}
					}
				}
				if scn != nil && isReport {
					reports = reports[:0]
					for _, e := range claimed {
						reports = append(reports, edge.ReportRequest{UserID: e.AdID, Pos: e.Pos, Time: e.Time})
					}
					cost = int64(len(reports))
				}
				if isReport {
					start := time.Now()
					if cfg.Batch == 1 {
						err = cl.Report(ctx, reports[0].UserID, reports[0].Pos, reports[0].Time)
					} else {
						var resp edge.ReportBatchResponse
						resp, err = cl.ReportBatch(ctx, reports)
						rejected.Add(int64(len(resp.Errors)))
					}
					if err != nil {
						errCh <- err
						return
					}
					reportHist.ObserveDuration(time.Since(start))
					checkins.Add(cost)
				} else {
					start := time.Now()
					if _, err := cl.RequestAds(ctx, user, pos, 10); err != nil {
						errCh <- err
						return
					}
					adsHist.ObserveDuration(time.Since(start))
					adsDone.Add(1)
				}
				httpOps.Add(1)
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &result{
		Name:           name,
		Shards:         cfg.Shards,
		Batch:          cfg.Batch,
		Fsync:          cfg.Fsync,
		Wire:           cfg.codec.String(),
		CheckIns:       checkins.Load(),
		AdRequests:     adsDone.Load(),
		HTTPOps:        httpOps.Load(),
		ElapsedSec:     elapsed.Seconds(),
		CheckInsPerS:   float64(checkins.Load()) / elapsed.Seconds(),
		AdsPerS:        float64(adsDone.Load()) / elapsed.Seconds(),
		HTTPOpsPerS:    float64(httpOps.Load()) / elapsed.Seconds(),
		ReportP50Ms:    quantileMs(reportHist, 0.50),
		ReportP95Ms:    quantileMs(reportHist, 0.95),
		ReportP99Ms:    quantileMs(reportHist, 0.99),
		AdsP50Ms:       quantileMs(adsHist, 0.50),
		AdsP95Ms:       quantileMs(adsHist, 0.95),
		AdsP99Ms:       quantileMs(adsHist, 0.99),
		ReportOverflow: int64(reportHist.Overflow()),
		AdsOverflow:    int64(adsHist.Overflow()),
		BatchRejected:  rejected.Load(),
	}
	if scn != nil {
		res.Scenario = string(scn.Mode)
		res.ScenarioEvents = scn.Stats.Events
		res.ScenarioMutations = scn.Stats.Mutations
		res.ScenarioReplayed = min(scnCursor.Load(), int64(len(scnEvents)))
	}
	if srv != nil {
		res.Stages = tracing.StageBreakdown(srv.Registry())
		res.ActiveSpans = srv.Tracer().ActiveSpans()
		if res.ActiveSpans != 0 {
			return res, fmt.Errorf("span leak: %d spans still active after the run", res.ActiveSpans)
		}
	}
	if engine != nil && cfg.MaxResident > 0 {
		ts := engine.TierStats()
		res.Tier = &tierResult{
			MaxResident: cfg.MaxResident,
			Resident:    ts.Resident,
			Spilled:     ts.Spilled,
			Evictions:   ts.Evictions,
			FaultIns:    ts.FaultIns,
			SpillErrors: ts.SpillErrors,
		}
	}
	return res, nil
}

// quantileMs renders a latency histogram quantile in milliseconds (0
// before the first observation).
func quantileMs(h *telemetry.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v * 1000
}

// startEdge stands up the in-process edge: a sharded engine, an ad
// network with a bounded bid log (loadgen runs are exactly the sustained
// load the ring cap exists for), and the HTTP server. In durable mode
// the engine writes through a WAL in cfg.DataDir (or a temp dir) with
// the configured fsync policy. With MaxResident > 0 the engine runs
// tiered, spilling cold users to a temp dir. The returned cleanup
// closes the engine and store and removes the temp dirs.
func startEdge(cfg config) (*httptest.Server, *edge.Server, *core.Engine, func(), error) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("building mechanism: %w", err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("building nomadic mechanism: %w", err)
	}
	ecfg := core.Config{
		Mechanism:        mech,
		NomadicMechanism: nomadic,
		Seed:             cfg.Seed,
		Shards:           cfg.Shards,
	}
	cleanup := func() {}
	if cfg.MaxResident > 0 {
		tmp, err := os.MkdirTemp("", "loadgen-spill-")
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("creating spill temp dir: %w", err)
		}
		ecfg.SpillDir = tmp
		ecfg.MaxResidentUsers = cfg.MaxResident
		cleanup = func() { _ = os.RemoveAll(tmp) }
	}
	engine, err := core.NewEngine(ecfg)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, fmt.Errorf("building engine: %w", err)
	}
	{
		rm := cleanup
		cleanup = func() {
			_ = engine.Close()
			rm()
		}
	}
	if cfg.durable() {
		dir := cfg.DataDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-wal-")
			if err != nil {
				cleanup()
				return nil, nil, nil, nil, fmt.Errorf("creating WAL temp dir: %w", err)
			}
			dir = tmp
			rm := cleanup
			cleanup = func() {
				rm()
				_ = os.RemoveAll(tmp)
			}
		}
		policy, interval, err := wal.ParsePolicy(cfg.Fsync)
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, fmt.Errorf("parsing -fsync: %w", err)
		}
		store, err := wal.Open(dir, wal.Options{Policy: policy, Interval: interval})
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, fmt.Errorf("opening WAL: %w", err)
		}
		if _, err := engine.Recover(store); err != nil {
			store.Close()
			cleanup()
			return nil, nil, nil, nil, fmt.Errorf("recovering engine: %w", err)
		}
		rm := cleanup
		cleanup = func() {
			_ = store.Close()
			rm()
		}
	}
	network, err := adnet.NewNetwork(nil, adnet.WithBidLogCap(1<<16))
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, fmt.Errorf("building network: %w", err)
	}
	region := trace.DefaultConfig().Region
	rnd := randx.New(cfg.Seed, streamCampaigns)
	for i := 0; i < cfg.Campaigns; i++ {
		loc := geo.Point{
			X: region.MinX + rnd.Float64()*region.Width(),
			Y: region.MinY + rnd.Float64()*region.Height(),
		}
		if err := network.Register(adnet.Campaign{
			ID:       fmt.Sprintf("c%05d", i),
			Location: loc,
			Radius:   5000 + rnd.Float64()*20000,
			Ad:       adnet.Ad{ID: fmt.Sprintf("ad%05d", i), Title: fmt.Sprintf("Offer %d", i), Location: loc},
		}); err != nil {
			cleanup()
			return nil, nil, nil, nil, fmt.Errorf("registering campaign: %w", err)
		}
	}
	server, err := edge.NewServer(engine, network, cfg.clock, nil)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, fmt.Errorf("building server: %w", err)
	}
	return httptest.NewServer(server.Handler()), server, engine, cleanup, nil
}
