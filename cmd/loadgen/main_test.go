package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/randx"
	"repro/internal/wal"
)

// TestWorkerStreamDerivation is the regression for the additive worker
// stream selector (stream = w + base): worker streams must be pairwise
// distinct across realistic fan-out widths, must never land on the
// campaign-placement stream, and must not recur when the base itself
// shifts by a worker index (the linear-collision family the additive
// scheme suffered — selector w+base equals selector w'+base whenever
// w' = w, but ALSO equals any other additively derived stream whose
// base differs by an index delta).
func TestWorkerStreamDerivation(t *testing.T) {
	seen := map[uint64]string{streamCampaigns: "campaign stream"}
	for w := 0; w < 4096; w++ {
		s := workerStream(w)
		if prev, ok := seen[s]; ok {
			t.Fatalf("worker %d stream %#x collides with %s", w, s, prev)
		}
		seen[s] = fmt.Sprintf("worker %d", w)
	}
	// The old additive scheme collapses under index-shifted bases; the
	// avalanche must not: Mix64(base + w·γ) with a base offset of one
	// gamma is exactly the stream of worker w+1, so derive from a
	// DIFFERENT family base and require full separation.
	for w := 0; w < 4096; w++ {
		s := randx.Mix64(streamCampaigns + uint64(w)*randx.GoldenGamma)
		if prev, ok := seen[s]; ok {
			t.Fatalf("campaign-family stream %d (%#x) collides with %s", w, s, prev)
		}
	}
	// Old-scheme demonstration pinned down: additive selectors from two
	// bases overlap as soon as the bases differ by less than the width.
	oldStream := func(base uint64, w int) uint64 { return base + uint64(w) }
	if oldStream(streamWorkerBase, 8) != oldStream(streamWorkerBase+3, 5) {
		t.Fatal("additive selectors stopped colliding — update this regression's premise")
	}
	gamma := uint64(randx.GoldenGamma)
	if workerStream(8) == randx.Mix64(streamWorkerBase+3+8*gamma) {
		t.Fatal("avalanche derivation reproduced the additive collision")
	}
}

func TestParseMix(t *testing.T) {
	tests := []struct {
		in      string
		r, a    int
		wantErr bool
	}{
		{in: "4:1", r: 4, a: 1},
		{in: "1:0", r: 1, a: 0},
		{in: "0:1", r: 0, a: 1},
		{in: "0:0", wantErr: true},
		{in: "4", wantErr: true},
		{in: "a:b", wantErr: true},
	}
	for _, tt := range tests {
		r, a, err := parseMix(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseMix(%q) err = %v", tt.in, err)
			continue
		}
		if err == nil && (r != tt.r || a != tt.a) {
			t.Errorf("parseMix(%q) = %d:%d, want %d:%d", tt.in, r, a, tt.r, tt.a)
		}
	}
}

// TestRunSmall drives a tiny closed-loop run end to end against the
// in-process edge, batched and unbatched.
func TestRunSmall(t *testing.T) {
	for _, batch := range []int{1, 8} {
		cfg := config{
			Users: 4, Workers: 2, Requests: 80, Mix: "4:1", Batch: batch,
			Shards: 4, Campaigns: 5, Seed: 7,
		}
		var err error
		cfg.mixReports, cfg.mixAds, err = parseMix(cfg.Mix)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runOne(cfg, "test")
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.CheckIns == 0 || res.HTTPOps == 0 {
			t.Errorf("batch=%d: no work done: %+v", batch, res)
		}
		if res.BatchRejected != 0 {
			t.Errorf("batch=%d: %d rejected items", batch, res.BatchRejected)
		}
	}
}

// TestRunDurable drives the closed loop against a WAL-backed in-process
// edge and checks the log actually recorded the traffic.
func TestRunDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		Users: 4, Workers: 2, Requests: 80, Mix: "4:1", Batch: 8,
		Shards: 4, Campaigns: 5, Seed: 7, DataDir: dir, Fsync: "never",
	}
	var err error
	cfg.mixReports, cfg.mixAds, err = parseMix(cfg.Mix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runOne(cfg, "durable")
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckIns == 0 {
		t.Fatalf("no work done: %+v", res)
	}
	// The WAL outlives the run (user-provided directory) and replays.
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var records int
	if err := st.Replay(0, func(lsn uint64, payload []byte) error {
		records++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if records == 0 {
		t.Error("durable run left an empty WAL")
	}
}

// TestSweepJSON runs a minimal sweep through the CLI and checks the
// emitted document has the BENCH_pr4 serving shape.
func TestSweepJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs four load phases")
	}
	out := filepath.Join(t.TempDir(), "sweep.json")
	err := run([]string{
		"-sweep", "-users", "4", "-workers", "2", "-requests", "120",
		"-campaigns", "5", "-out", out,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("runs = %d, want 4 (shards {1,8} x batch {1,64})", len(rep.Runs))
	}
	seen := map[string]bool{}
	for _, r := range rep.Runs {
		seen[r.Name] = true
		if r.CheckIns == 0 {
			t.Errorf("%s ingested nothing", r.Name)
		}
	}
	for _, want := range []string{"shards=1/batch=1", "shards=1/batch=64", "shards=8/batch=1", "shards=8/batch=64"} {
		if !seen[want] {
			t.Errorf("missing run %s", want)
		}
	}
}
