// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the synthetic workload.
//
// Usage:
//
//	experiments -run all                       # every experiment, default scale
//	experiments -run fig6 -users 2000          # one experiment, larger population
//	experiments -run all -markdown EXPERIMENTS.md
//	experiments -run all -paper                # paper-scale (slow)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runID    = fs.String("run", "all", "experiment id (table1, fig2..fig9, table2, table3) or 'all'")
		users    = fs.Int("users", 0, "population size override (0 = default)")
		trials   = fs.Int("trials", 0, "Monte-Carlo trials override (0 = default)")
		maxCk    = fs.Int("max-checkins", 0, "per-user check-in cap override (0 = default)")
		seed     = fs.Uint64("seed", 1, "randomness seed")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker count for the deterministic fan-out (results are identical at any value)")
		paper    = fs.Bool("paper", false, "use paper-scale options (37262 users, 100000 trials; slow)")
		markdown = fs.String("markdown", "", "also write results as a markdown report to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.DefaultOptions()
	if *paper {
		opts = experiments.PaperOptions()
	}
	if *users > 0 {
		opts.Users = *users
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *maxCk > 0 {
		opts.MaxCheckIns = *maxCk
	}
	opts.Seed = *seed
	opts.Parallelism = *parallel

	ids := experiments.IDs()
	if *runID != "all" {
		found := false
		for _, id := range ids {
			if id == *runID {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q (available: %s, all)", *runID, strings.Join(ids, ", "))
		}
		ids = []string{*runID}
	}

	var md io.Writer
	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			return fmt.Errorf("creating %q: %w", *markdown, err)
		}
		defer f.Close()
		md = f
		header := fmt.Sprintf("# Experiment results\n\nGenerated %s with users=%d, trials=%d, max-checkins=%d, seed=%d.\n\n",
			time.Now().UTC().Format(time.RFC3339), opts.Users, opts.Trials, opts.MaxCheckIns, opts.Seed)
		if _, err := io.WriteString(md, header); err != nil {
			return fmt.Errorf("writing markdown header: %w", err)
		}
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("running %s: %w", id, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return fmt.Errorf("rendering %s: %w", id, err)
		}
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		if md != nil {
			if err := res.MarkdownRender(md); err != nil {
				return fmt.Errorf("writing %s markdown: %w", id, err)
			}
		}
	}
	return nil
}
