package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMarkdownOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "results.md")
	err := run([]string{"-run", "fig4", "-users", "20", "-trials", "50", "-markdown", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"# Experiment results", "### fig4", "| window |"} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment expected error")
	}
	if err := run([]string{"-markdown", "/nonexistent-dir/out.md", "-run", "table1"}); err == nil {
		t.Error("unwritable markdown path expected error")
	}
	if err := run([]string{"-trials", "NaN"}); err == nil {
		t.Error("bad flag expected error")
	}
}
