package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/edgecluster"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// paperBand500 is the paper's reported ceiling for the longitudinal
// attack against the 10-fold ε=1 defense at the 500 m threshold (6.8%);
// the collude gate tolerates one extra user on tiny smoke populations.
const paperBand500 = 0.068

// scenarioResult is one scenario mode's measured outcome; the sweep
// document embeds one per mode into BENCH_pr10.json.
type scenarioResult struct {
	Mode      string `json:"mode"`
	Users     int    `json:"users"`
	Events    int    `json:"events"`
	Mutations int    `json:"mutations"`
	// Streams is the number of distinct advertising identifiers observed
	// (> Users under churn and collude).
	Streams int `json:"ad_id_streams"`
	// EntropyMean is the mean per-user entropy of the defended request
	// stream (bits; higher means the observable stream is more spread).
	EntropyMean float64 `json:"entropy_mean_bits"`
	// Hits200/Hits500 count users whose top-1 location the longitudinal
	// attack recovers from the defended stream within 200 m / 500 m.
	Hits200 int `json:"attack_top1_hits_200m"`
	Hits500 int `json:"attack_top1_hits_500m"`
	// MergeDropped counts check-ins excluded from secure aggregation for
	// falling outside the merge region (traveler exercises this).
	MergeDropped int `json:"merge_dropped_checkins"`
	// Degraded counts merges that ran with at least one edge missing.
	Degraded int `json:"degraded_merges"`
	// Collusion is only present for the collude mode.
	Collusion *collusionResult `json:"collusion,omitempty"`
}

// collusionResult measures the colluding cross-network adversary: the
// join quality, and the re-identification rates with and without the
// defense. Rates are at the 500 m threshold.
type collusionResult struct {
	Networks int `json:"networks"`
	Streams  int `json:"pseudonym_streams"`
	Joins    int `json:"joins"`
	// Precision is the fraction of multi-stream identities whose members
	// all belong to one ground-truth user; Recall is the fraction of
	// users whose streams fully collapsed into one identity.
	Precision float64 `json:"link_precision"`
	Recall    float64 `json:"link_recall"`
	// SingleRate is the per-network adversary: the fraction of pseudonym
	// streams (one-time geo-IND deployment) whose owner's top-1 the
	// attack recovers. ColludeRate is the same adversary after joining
	// logs across networks, per user.
	SingleRate  float64 `json:"single_network_rate_500m"`
	ColludeRate float64 `json:"colluding_rate_500m"`
	// DefendedRate is the colluding adversary against the Edge-PrivLocAd
	// cluster's output stream — the paper-band check.
	DefendedRate float64 `json:"defended_colluding_rate_500m"`
}

// scenarioSweepDoc is the JSON document -scenario-sweep emits; bench.sh
// embeds it under the "scenario" key of BENCH_pr10.json.
type scenarioSweepDoc struct {
	Users       int              `json:"users"`
	MaxCheckIns int              `json:"max_checkins"`
	Edges       int              `json:"edges"`
	Seed        uint64           `json:"seed"`
	Scenarios   []scenarioResult `json:"scenarios"`
}

// runScenarioSweep measures every scenario mode on one seed and writes
// the sweep document.
func runScenarioSweep(users, maxCk, edges int, seed uint64, outPath string) error {
	doc := scenarioSweepDoc{Users: users, MaxCheckIns: maxCk, Edges: scenarioEdges(edges), Seed: seed}
	for _, mode := range workload.Modes() {
		res, err := runScenario(string(mode), users, maxCk, edges, seed)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", mode, err)
		}
		doc.Scenarios = append(doc.Scenarios, res)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// scenarioEdges resolves the edge count: scenarios always run through
// the multi-edge cluster (failover and out-of-region merges are part of
// what they exercise).
func scenarioEdges(edges int) int {
	if edges < 2 {
		return 3
	}
	return edges
}

// runScenario composes the named workload scenario and replays it
// through a multi-edge cluster: events report under the advertising
// identifier the ecosystem observes (the device ID under collude —
// pseudonymization happens at the bid layer, not on the device), merge
// through secure aggregation, and request ads at every event position.
// The longitudinal attack then mines the defended streams, and the
// collude mode additionally mounts the cross-network join with and
// without the defense.
func runScenario(modeName string, users, maxCk, edges int, seed uint64) (scenarioResult, error) {
	mode, err := workload.ParseMode(modeName)
	if err != nil {
		return scenarioResult{}, err
	}
	edges = scenarioEdges(edges)

	tcfg := trace.DefaultConfig()
	tcfg.NumUsers = users
	tcfg.MaxCheckIns = maxCk
	tcfg.Seed = seed
	wl, err := workload.Build(workload.Synthetic{Config: tcfg}, workload.Config{Mode: mode, Seed: seed})
	if err != nil {
		return scenarioResult{}, err
	}

	reg := telemetry.NewRegistry()
	wl.Instrument(reg)
	cluster, mech, err := buildScenarioCluster(wl.Extent, tcfg.Region.BBox, edges, seed)
	if err != nil {
		return scenarioResult{}, err
	}
	cluster.Instrument(reg)

	// One-time geo-IND comparison deployment for the collude mode: the
	// same events, obfuscated once with planar Laplace instead of the
	// n-fold table — the paper's weak baseline.
	oneTime, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return scenarioResult{}, err
	}
	oneTimeRnd := randx.New(seed, 0x10CA1)

	res := scenarioResult{
		Mode:      string(mode),
		Users:     wl.Stats.Users,
		Events:    wl.Stats.Events,
		Mutations: wl.Stats.Mutations,
	}

	// Replay. The edge keys profiles by the identifier it is handed:
	// per-generation ad-IDs under churn (a reset looks like a brand-new
	// device), the stable device ID otherwise.
	reportID := func(e workload.Event) string {
		if mode == workload.ModeCollude {
			return e.User
		}
		return e.AdID
	}
	var (
		defended   []attack.Observation // the ad networks' defended view
		oneTimeObs []attack.Observation // same events under one-time geo-IND
		perUserObs = make(map[string][]geo.Point)
		truthOwner = make(map[string]string) // pseudonym -> ground-truth user
	)
	streamIDs := make(map[string]bool)
	for _, st := range wl.Streams {
		if len(st.Events) == 0 {
			continue
		}
		ids := make(map[string]bool)
		for _, e := range st.Events {
			if _, err := cluster.Report(reportID(e), e.Pos, e.Time); err != nil {
				return scenarioResult{}, fmt.Errorf("reporting %s: %w", st.User, err)
			}
			ids[reportID(e)] = true
			truthOwner[e.AdID] = e.User
			streamIDs[e.AdID] = true
		}
		for _, id := range sortedKeys(ids) {
			_, stats, err := cluster.MergeProfilesStats(id, tcfg.End)
			if err != nil {
				return scenarioResult{}, fmt.Errorf("merging %s: %w", id, err)
			}
			if stats.Degraded {
				res.Degraded++
			}
			res.MergeDropped += stats.Dropped
		}
		// The edge computes one obfuscated output per session and serves
		// it to every SDK request in that burst — a burst must never hand
		// the adversary independent noise samples of the same position.
		sessionOut := make(map[int]geo.Point)
		for _, e := range st.Events {
			out, ok := sessionOut[e.Session]
			if !ok {
				var err error
				out, _, err = cluster.Request(reportID(e), e.Pos)
				if err != nil {
					return scenarioResult{}, fmt.Errorf("requesting for %s: %w", st.User, err)
				}
				sessionOut[e.Session] = out
			}
			defended = append(defended, attack.Observation{AdID: e.AdID, Net: e.Net, Loc: out, Time: e.Time})
			perUserObs[e.User] = append(perUserObs[e.User], out)
			if mode == workload.ModeCollude {
				pts, err := oneTime.Obfuscate(oneTimeRnd, e.Pos)
				if err != nil {
					return scenarioResult{}, fmt.Errorf("one-time obfuscation: %w", err)
				}
				oneTimeObs = append(oneTimeObs, attack.Observation{AdID: e.AdID, Net: e.Net, Loc: pts[0], Time: e.Time})
			}
		}
	}
	res.Streams = len(streamIDs)

	// Entropy of the defended stream, mean over users with observations.
	entUsers := 0
	for _, u := range wl.Dataset.Users {
		obs := perUserObs[u.ID]
		if len(obs) == 0 {
			continue
		}
		p, err := profile.Build(obs, 50)
		if err != nil {
			return scenarioResult{}, fmt.Errorf("profiling %s: %w", u.ID, err)
		}
		res.EntropyMean += p.Entropy()
		entUsers++
	}
	if entUsers > 0 {
		res.EntropyMean /= float64(entUsers)
	}

	// The longitudinal attack against the defended per-ad-ID streams: a
	// user counts as compromised if any identifier it ever carried leaks
	// its top-1 location.
	rAlpha, err := mech.ConfidenceRadius(0.05)
	if err != nil {
		return scenarioResult{}, err
	}
	defendedOpts := attack.Options{Theta: 500, ClusterRadius: rAlpha}
	byAdID := groupByAdID(defended)
	for _, u := range wl.Dataset.Users {
		hit200, hit500 := false, false
		for id, owner := range truthOwner {
			if owner != u.ID {
				continue
			}
			inferred, err := attack.TopN(byAdID[id], 1, defendedOpts)
			if err != nil {
				continue // stream too sparse to attack
			}
			truth := []geo.Point{u.TrueTops[0].Pos}
			hit200 = hit200 || attack.Succeeds(inferred, truth, 1, 200)
			hit500 = hit500 || attack.Succeeds(inferred, truth, 1, 500)
		}
		if hit200 {
			res.Hits200++
		}
		if hit500 {
			res.Hits500++
		}
	}

	fmt.Printf("scenario %s: users=%d events=%d mutations=%d ad_id_streams=%d entropy_mean=%.2f bits merge_dropped=%d degraded=%d\n",
		res.Mode, res.Users, res.Events, res.Mutations, res.Streams, res.EntropyMean, res.MergeDropped, res.Degraded)
	fmt.Printf("scenario %s: longitudinal attack on defended streams: top-1 within 200m %d/%d users, within 500m %d/%d\n",
		res.Mode, res.Hits200, res.Users, res.Hits500, res.Users)

	if mode == workload.ModeCollude {
		col, err := runCollusion(wl, oneTimeObs, defended, truthOwner, rAlpha)
		if err != nil {
			return scenarioResult{}, err
		}
		res.Collusion = &col
		attack.RecordCollusion(reg, &attack.CollusionStats{Joins: col.Joins, Pairs: col.Streams * (col.Streams - 1) / 2})
	}
	return res, nil
}

// runCollusion mounts the cross-network adversary. The one-time geo-IND
// deployment carries the headline comparison: each network alone attacks
// its pseudonym streams (SingleRate), then the colluding adversary joins
// the logs by timestamp+radius correlation and attacks the merged
// streams (ColludeRate). The same join against the Edge-PrivLocAd
// cluster's output gives DefendedRate. Gates: collusion must strictly
// beat the single-network adversary, and the defense must hold the
// colluding adversary inside the paper band.
func runCollusion(wl *workload.Workload, oneTimeObs, defended []attack.Observation, truthOwner map[string]string, rAlpha float64) (collusionResult, error) {
	col := collusionResult{Networks: wl.Config.Networks}
	users := wl.Stats.Users
	oneTimeOpts := attack.Options{Theta: math.Max(150, rAlpha/4), ClusterRadius: rAlpha}
	defendedOpts := attack.Options{Theta: 500, ClusterRadius: rAlpha}
	top1 := make(map[string]geo.Point, users)
	for _, u := range wl.Dataset.Users {
		top1[u.ID] = u.TrueTops[0].Pos
	}
	succeeds := func(obs []attack.Observation, owner string, opts attack.Options) bool {
		pts := make([]geo.Point, len(obs))
		for i, o := range obs {
			pts[i] = o.Loc
		}
		inferred, err := attack.TopN(pts, 1, opts)
		if err != nil {
			return false
		}
		return attack.Succeeds(inferred, []geo.Point{top1[owner]}, 1, 500)
	}

	// Single-network adversary: every pseudonym stream attacked alone.
	byStream := groupObsByStream(oneTimeObs)
	singleHits := 0
	for _, s := range byStream {
		if succeeds(s, truthOwner[s[0].AdID], oneTimeOpts) {
			singleHits++
		}
	}
	col.Streams = len(byStream)
	col.SingleRate = float64(singleHits) / float64(len(byStream))

	// Colluding adversary: join, then attack the merged streams.
	linked, stats, err := attack.Collude(oneTimeObs, attack.CollusionOptions{})
	if err != nil {
		return collusionResult{}, err
	}
	col.Joins = stats.Joins
	pure, impure := 0, 0
	reidentified := make(map[string]bool)
	collapsed := make(map[string]bool)
	for _, l := range linked {
		owner := truthOwner[l.AdIDs[0]]
		mixed := false
		for _, id := range l.AdIDs[1:] {
			if truthOwner[id] != owner {
				mixed = true
			}
		}
		if len(l.AdIDs) > 1 {
			if mixed {
				impure++
			} else {
				pure++
			}
		}
		if !mixed && len(l.Nets) >= 2 {
			collapsed[owner] = true
		}
		if !mixed && succeeds(l.Observations, owner, oneTimeOpts) {
			reidentified[owner] = true
		}
	}
	if pure+impure > 0 {
		col.Precision = float64(pure) / float64(pure+impure)
	}
	col.Recall = float64(len(collapsed)) / float64(users)
	col.ColludeRate = float64(len(reidentified)) / float64(users)

	// The same colluding adversary against the defended stream.
	defLinked, _, err := attack.Collude(defended, attack.CollusionOptions{})
	if err != nil {
		return collusionResult{}, err
	}
	defReid := make(map[string]bool)
	for _, l := range defLinked {
		owner := truthOwner[l.AdIDs[0]]
		mixed := false
		for _, id := range l.AdIDs[1:] {
			if truthOwner[id] != owner {
				mixed = true
			}
		}
		if !mixed && succeeds(l.Observations, owner, defendedOpts) {
			defReid[owner] = true
		}
	}
	col.DefendedRate = float64(len(defReid)) / float64(users)

	fmt.Printf("collusion: networks=%d pseudonym_streams=%d joins=%d precision=%.2f recall=%.2f\n",
		col.Networks, col.Streams, col.Joins, col.Precision, col.Recall)
	fmt.Printf("collusion: one-time geo-IND re-identification: single-network %.1f%%, colluding %.1f%%; defended colluding %.1f%%\n",
		100*col.SingleRate, 100*col.ColludeRate, 100*col.DefendedRate)

	if col.ColludeRate <= col.SingleRate {
		return collusionResult{}, fmt.Errorf("colluding adversary (%.1f%%) did not beat the single-network attack (%.1f%%)",
			100*col.ColludeRate, 100*col.SingleRate)
	}
	// Paper band: ≤6.8% at 500 m, with one user of slack for tiny smoke
	// populations where a single hit overshoots the band.
	allowed := math.Max(paperBand500*float64(users), 1) / float64(users)
	if col.DefendedRate > allowed+1e-9 {
		return collusionResult{}, fmt.Errorf("defense did not hold against collusion: %.1f%% > %.1f%% band",
			100*col.DefendedRate, 100*allowed)
	}
	fmt.Printf("collusion: defense holds — colluding adversary degraded from %.1f%% to %.1f%% (paper band ≤ %.1f%%)\n",
		100*col.ColludeRate, 100*col.DefendedRate, 100*allowed)
	return col, nil
}

// buildScenarioCluster is buildSimCluster with the coverage extent
// decoupled from the merge region: traveler events leave the home box,
// so edges must cover the full workload extent, while secure aggregation
// still only merges home-region check-ins (out-of-region ones count as
// Dropped).
func buildScenarioCluster(cover, merge geo.BBox, edges int, seed uint64) (*edgecluster.Cluster, *geoind.NFoldGaussian, error) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		return nil, nil, fmt.Errorf("building mechanism: %w", err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return nil, nil, fmt.Errorf("building nomadic mechanism: %w", err)
	}
	diag := math.Hypot(cover.Width(), cover.Height())
	coverage := make([]geo.Circle, edges)
	for i := range coverage {
		coverage[i] = geo.Circle{
			Center: geo.Point{
				X: cover.MinX + (float64(i)+0.5)*cover.Width()/float64(edges),
				Y: cover.MinY + cover.Height()/2,
			},
			Radius: diag,
		}
	}
	cluster, err := edgecluster.New(edgecluster.Config{
		Engine:      core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: seed},
		Coverage:    coverage,
		MergeRegion: merge,
		Seed:        seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("building cluster: %w", err)
	}
	return cluster, mech, nil
}

// groupByAdID buckets observation locations per advertising identifier.
func groupByAdID(obs []attack.Observation) map[string][]geo.Point {
	out := make(map[string][]geo.Point)
	for _, o := range obs {
		out[o.AdID] = append(out[o.AdID], o.Loc)
	}
	return out
}

// groupObsByStream buckets observations per (network, ad-ID) stream in
// deterministic order.
func groupObsByStream(obs []attack.Observation) [][]attack.Observation {
	type key struct {
		net  int
		adID string
	}
	m := make(map[key][]attack.Observation)
	for _, o := range obs {
		m[key{o.Net, o.AdID}] = append(m[key{o.Net, o.AdID}], o)
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].net != keys[j].net {
			return keys[i].net < keys[j].net
		}
		return keys[i].adID < keys[j].adID
	})
	out := make([][]attack.Observation, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// sortedKeys returns the map's keys sorted (deterministic merge order).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
