package main

import "testing"

func TestRunSmallSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	err := run([]string{"-users", "5", "-max-checkins", "120", "-campaigns", "30", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSimulationWithRTB(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	err := run([]string{"-users", "4", "-max-checkins", "100", "-campaigns", "20", "-seed", "3", "-rtb"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "x"}); err == nil {
		t.Error("bad flag expected error")
	}
	if err := run([]string{"-users", "0"}); err == nil {
		t.Error("zero users expected error")
	}
}

func TestRunClusterWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	// The cluster run self-verifies: it fails unless every edge's table is
	// byte-identical after chaos kills, degraded merges, and journal
	// catch-up.
	err := run([]string{"-users", "5", "-max-checkins", "120", "-seed", "4", "-edges", "3", "-chaos", "-stats-every", "0"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunChaosNeedsEdges(t *testing.T) {
	if err := run([]string{"-chaos"}); err == nil {
		t.Error("-chaos without -edges expected error")
	}
}
