// Command lbasim runs the full Edge-PrivLocAd pipeline end to end in one
// process: it synthesizes a user population, stands up an edge HTTP
// service backed by an ad network with radius-targeted campaigns, replays
// every user's trace through real HTTP clients, and finally mounts the
// longitudinal attack on the ad network's bid log — demonstrating that
// the observable stream does not reveal top locations.
//
// Usage:
//
//	lbasim -users 50 -campaigns 200
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/adnet"
	"repro/internal/attack"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/edgecluster"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/logx"
	"repro/internal/randx"
	"repro/internal/rtb"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lbasim", flag.ContinueOnError)
	var (
		users      = fs.Int("users", 50, "users to simulate")
		maxCk      = fs.Int("max-checkins", 800, "max check-ins per user")
		campaigns  = fs.Int("campaigns", 200, "campaigns to register")
		seed       = fs.Uint64("seed", 1, "randomness seed")
		useRTB     = fs.Bool("rtb", false, "serve ads through second-price RTB auctions instead of direct matching")
		statsEvery = fs.Duration("stats-every", 5*time.Second, "interval between telemetry summaries during the replay (0 disables)")
		edges      = fs.Int("edges", 1, "edge devices; >1 replays through a fault-tolerant multi-edge cluster")
		chaos      = fs.Bool("chaos", false, "kill and revive edges mid-run (requires -edges > 1); health transitions are detector-driven")
		replSweep  = fs.Bool("repl-sweep", false, "measure replicated bytes per merge round against the number of changed users and exit")
		outPath    = fs.String("out", "", "with -repl-sweep, write the sweep document to this JSON file")
		scenario   = fs.String("scenario", "", "replay a workload scenario through the multi-edge cluster: baseline | churn | gps-outage | traveler | collude")
		scnSweep   = fs.Bool("scenario-sweep", false, "run every scenario mode on one seed and emit a JSON document (see -out)")
		batch      = fs.Int("batch", 1, "check-ins per report call; >1 replays via POST /v1/report/batch (or batched cluster routing)")
		wireFlag   = fs.String("wire", "json", "serving-path codec for the replay clients: json | binary")
		logFormat  = fs.String("log-format", logx.FormatText, "structured log format: json | text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := edge.ParseCodec(*wireFlag)
	if err != nil {
		return fmt.Errorf("-wire: %w", err)
	}
	logger, err := logx.New(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	if *chaos && *edges < 2 {
		return fmt.Errorf("-chaos requires -edges > 1 (nothing to fail over to)")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1")
	}
	if *replSweep {
		e := *edges
		if e < 2 {
			e = 3
		}
		return runReplSweep(e, *users, *seed, *outPath)
	}
	if *scnSweep {
		return runScenarioSweep(*users, *maxCk, *edges, *seed, *outPath)
	}
	if *scenario != "" {
		_, err := runScenario(*scenario, *users, *maxCk, *edges, *seed)
		return err
	}

	// Workload.
	cfg := trace.DefaultConfig()
	cfg.NumUsers = *users
	cfg.MaxCheckIns = *maxCk
	cfg.Seed = *seed
	ds, err := trace.Generate(cfg)
	if err != nil {
		return fmt.Errorf("generating users: %w", err)
	}

	if *edges > 1 {
		return runCluster(cfg, ds, *edges, *chaos, *seed, *batch, codec, logger)
	}

	// Untrusted side: either a direct-matching ad network or an RTB
	// exchange with budgeted campaign bidders.
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		return fmt.Errorf("building network: %w", err)
	}
	exchange, err := rtb.NewExchange(100*time.Millisecond, 0.05)
	if err != nil {
		return fmt.Errorf("building exchange: %w", err)
	}
	rnd := randx.New(*seed, 0x51A151)
	for i := 0; i < *campaigns; i++ {
		loc := geo.Point{
			X: cfg.Region.MinX + rnd.Float64()*cfg.Region.Width(),
			Y: cfg.Region.MinY + rnd.Float64()*cfg.Region.Height(),
		}
		campaign := adnet.Campaign{
			ID:       fmt.Sprintf("c%05d", i),
			Location: loc,
			Radius:   5000 + rnd.Float64()*20000,
			Ad:       adnet.Ad{ID: fmt.Sprintf("ad%05d", i), Title: fmt.Sprintf("Offer %d", i), Location: loc},
		}
		if err := network.Register(campaign); err != nil {
			return fmt.Errorf("registering campaign: %w", err)
		}
		if *useRTB {
			bidder, err := rtb.NewCampaignBidder(campaign, 0.5+rnd.Float64()*4, 1e6)
			if err != nil {
				return fmt.Errorf("building bidder: %w", err)
			}
			if err := exchange.Register(bidder); err != nil {
				return fmt.Errorf("registering bidder: %w", err)
			}
		}
	}

	// Trusted side: edge engine + HTTP service.
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		return fmt.Errorf("building mechanism: %w", err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return fmt.Errorf("building nomadic mechanism: %w", err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: *seed})
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}
	// observer is the attacker's view of the provider-side bid log.
	type observer interface {
		ObservedLocations(userID string) []geo.Point
		LogSize() int
	}
	var (
		provider edge.AdProvider = network
		attacker observer        = network
	)
	if *useRTB {
		rtbProvider, err := rtb.NewProvider(exchange)
		if err != nil {
			return fmt.Errorf("building RTB provider: %w", err)
		}
		provider = rtbProvider
		attacker = rtbProvider
		fmt.Printf("serving ads via RTB second-price auctions (%d bidders, 100 ms deadline)\n", exchange.Bidders())
	}

	server, err := edge.NewServer(engine, provider, nil, logger)
	if err != nil {
		return fmt.Errorf("building server: %w", err)
	}
	exchange.Instrument(server.Registry())
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	cl, err := client.New(ts.URL, nil, client.WithCodec(codec))
	if err != nil {
		return fmt.Errorf("building client: %w", err)
	}
	fmt.Printf("serving-path wire codec: %s\n", codec)
	ctx := context.Background()

	// Periodic telemetry emission while the replay runs, so long
	// throughput runs show live progress.
	if *statsEvery > 0 {
		stopStats := startStatsEmitter(server, *useRTB, *statsEvery)
		defer stopStats()
	}

	// Replay: report every check-in, rebuild profiles, then issue one ad
	// request per check-in position.
	start := time.Now()
	var adsDelivered, adsFetched, requests int
	for _, u := range ds.Users {
		if err := replayReports(ctx, cl, u.ID, u.CheckIns, *batch); err != nil {
			return err
		}
		if err := cl.Rebuild(ctx, u.ID, cfg.End); err != nil {
			return fmt.Errorf("rebuilding %s: %w", u.ID, err)
		}
		for _, c := range u.CheckIns {
			resp, err := cl.RequestAds(ctx, u.ID, c.Pos, 10)
			if err != nil {
				return fmt.Errorf("requesting ads for %s: %w", u.ID, err)
			}
			adsDelivered += len(resp.Ads)
			adsFetched += resp.Fetched
			requests++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("replayed %d users, %d ad requests in %s (%.0f req/s)\n",
		len(ds.Users), requests, elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds())
	printTelemetrySummary(server, *useRTB)
	printStageBreakdown(server.Registry(), server.Tracer().ActiveSpans())
	fmt.Printf("ads fetched from provider: %d; delivered after AOI filtering: %d (%.1f%% bandwidth saved)\n",
		adsFetched, adsDelivered, 100*(1-float64(adsDelivered)/math.Max(1, float64(adsFetched))))

	// The attacker's view: mine the bid log.
	rAlpha, err := mech.ConfidenceRadius(0.05)
	if err != nil {
		return fmt.Errorf("confidence radius: %w", err)
	}
	opts := attack.Options{Theta: 500, ClusterRadius: rAlpha}
	hits200, hits500 := 0, 0
	for _, u := range ds.Users {
		observed := attacker.ObservedLocations(u.ID)
		inferred, err := attack.TopN(observed, 1, opts)
		if err != nil {
			return fmt.Errorf("attacking %s: %w", u.ID, err)
		}
		truth := []geo.Point{u.TrueTops[0].Pos}
		if attack.Succeeds(inferred, truth, 1, 200) {
			hits200++
		}
		if attack.Succeeds(inferred, truth, 1, 500) {
			hits500++
		}
	}
	fmt.Printf("longitudinal attack on the bid log (%d records): top-1 recovered within 200 m for %d/%d users, within 500 m for %d/%d\n",
		attacker.LogSize(), hits200, len(ds.Users), hits500, len(ds.Users))
	fmt.Println("(with one-time geo-IND instead of Edge-PrivLocAd, the same attack recovers 75-93% of top-1 locations — see cmd/attack)")
	return nil
}

// replayReports delivers one user's check-ins to the edge: one
// /v1/report round trip each with batch == 1, or /v1/report/batch
// chunks of up to batch check-ins otherwise. Either path leaves the
// engine in byte-identical state; batching only cuts round trips.
func replayReports(ctx context.Context, cl *client.Client, userID string, checkIns []trace.CheckIn, batch int) error {
	if batch == 1 {
		for _, c := range checkIns {
			if err := cl.Report(ctx, userID, c.Pos, c.Time); err != nil {
				return fmt.Errorf("reporting for %s: %w", userID, err)
			}
		}
		return nil
	}
	for i := 0; i < len(checkIns); i += batch {
		end := min(i+batch, len(checkIns))
		reports := make([]edge.ReportRequest, 0, end-i)
		for _, c := range checkIns[i:end] {
			reports = append(reports, edge.ReportRequest{UserID: userID, Pos: c.Pos, Time: c.Time})
		}
		resp, err := cl.ReportBatch(ctx, reports)
		if err != nil {
			return fmt.Errorf("batch-reporting for %s: %w", userID, err)
		}
		if len(resp.Errors) > 0 {
			return fmt.Errorf("batch-reporting for %s: %d items rejected (first: index %d: %s)",
				userID, len(resp.Errors), resp.Errors[0].Index, resp.Errors[0].Error)
		}
	}
	return nil
}

// replRound is one measured merge round of the replication sweep.
type replRound struct {
	ChangedUsers  int     `json:"changed_users"`
	DeltaBytes    int     `json:"delta_bytes"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	Entries       int     `json:"entries"`
	BytesPerUser  float64 `json:"delta_bytes_per_changed_user"`
}

// replSweepDoc is the JSON document -repl-sweep emits; bench.sh embeds
// it under the "repl" key of BENCH_pr8.json via benchjson -repl.
type replSweepDoc struct {
	Edges  int         `json:"edges"`
	Users  int         `json:"users"`
	Seed   uint64      `json:"seed"`
	Rounds []replRound `json:"rounds"`
	// Ratio is total delta bytes over total would-be snapshot bytes
	// across the measured rounds (lower is better; 1.0 means deltas
	// saved nothing).
	Ratio float64 `json:"delta_to_snapshot_ratio"`
}

// runReplSweep measures how replication traffic scales with the number
// of users a merge round actually changed. Every user's table is warmed
// with one merged top first (so later rounds replicate against
// populated tables); each measured round then gives exactly k users a
// new frequent location and merges them, recording the cluster's delta
// and would-be snapshot byte counters around the round. The run fails
// if per-changed-user delta bytes drift apart across rounds — the
// "replicated bytes ∝ changed users" property this sweep archives.
func runReplSweep(edges, users int, seed uint64, outPath string) error {
	if users < 8 {
		users = 8
	}
	region := trace.DefaultConfig().Region
	cluster, _, err := buildSimCluster(region.BBox, edges, seed)
	if err != nil {
		return err
	}
	rnd := randx.New(seed, 0x5EEB)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	userID := func(u int) string { return fmt.Sprintf("u%04d", u) }
	// Per-user home spots on a grid well inside the region; each phase
	// shifts every changed user to a fresh spot far past the table's
	// identity radius, so one merged round adds about one table entry.
	spot := func(u, phase int) geo.Point {
		return geo.Point{
			X: region.MinX + 0.1*region.Width() + float64(u)*600,
			Y: region.MinY + 0.1*region.Height() + float64(phase)*900,
		}
	}
	visit := func(u, phase int) error {
		for i := 0; i < 20; i++ {
			at = at.Add(time.Hour)
			if _, err := cluster.Report(userID(u), spot(u, phase).Add(rnd.GaussianPolar(10)), at); err != nil {
				return err
			}
		}
		return nil
	}
	mergeRound := func(changed int, phase int) (replRound, error) {
		before := cluster.ReplStats()
		for u := 0; u < changed; u++ {
			if err := visit(u, phase); err != nil {
				return replRound{}, err
			}
		}
		for u := 0; u < changed; u++ {
			if _, err := cluster.MergeProfiles(userID(u), at); err != nil {
				return replRound{}, fmt.Errorf("merging %s: %w", userID(u), err)
			}
		}
		after := cluster.ReplStats()
		r := replRound{
			ChangedUsers:  changed,
			DeltaBytes:    after.DeltaBytes - before.DeltaBytes,
			SnapshotBytes: after.SnapshotBytes - before.SnapshotBytes,
			Entries:       after.Entries - before.Entries,
		}
		r.BytesPerUser = float64(r.DeltaBytes) / float64(changed)
		return r, nil
	}

	// Warm round: every table is born (delta == snapshot here, excluded
	// from the measured grid).
	if _, err := mergeRound(users, 0); err != nil {
		return err
	}

	doc := replSweepDoc{Edges: edges, Users: users, Seed: seed}
	var totalDelta, totalSnapshot int
	grid := []int{1, users / 8, users / 4, users / 2, users}
	for phase, k := range grid {
		r, err := mergeRound(k, phase+1)
		if err != nil {
			return err
		}
		doc.Rounds = append(doc.Rounds, r)
		totalDelta += r.DeltaBytes
		totalSnapshot += r.SnapshotBytes
		fmt.Printf("repl-sweep: changed_users=%-4d delta_bytes=%-8d snapshot_bytes=%-8d entries=%-5d bytes_per_changed_user=%.0f\n",
			r.ChangedUsers, r.DeltaBytes, r.SnapshotBytes, r.Entries, r.BytesPerUser)
	}
	if totalSnapshot > 0 {
		doc.Ratio = float64(totalDelta) / float64(totalSnapshot)
	}
	fmt.Printf("repl-sweep: delta_to_snapshot_ratio=%.3f over %d rounds (%d edges, %d users)\n",
		doc.Ratio, len(doc.Rounds), edges, users)

	// Proportionality gate: per-changed-user cost must stay in a tight
	// band no matter how many users the round touched, and deltas must
	// undercut snapshots now that tables span several rounds.
	minPer, maxPer := doc.Rounds[0].BytesPerUser, doc.Rounds[0].BytesPerUser
	for _, r := range doc.Rounds[1:] {
		minPer = math.Min(minPer, r.BytesPerUser)
		maxPer = math.Max(maxPer, r.BytesPerUser)
	}
	if maxPer > 2*minPer {
		return fmt.Errorf("replicated bytes not proportional to changed users: per-user cost spans %.0f..%.0f bytes", minPer, maxPer)
	}
	if totalDelta == 0 || totalDelta >= totalSnapshot {
		return fmt.Errorf("delta replication did not beat snapshots: delta=%d snapshot=%d", totalDelta, totalSnapshot)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// buildSimCluster stands up the simulation's multi-edge deployment:
// edge centres spread across the region's midline, each disk wide
// enough to cover the whole region — every point has a failover target,
// so a single down edge never strands traffic.
func buildSimCluster(region geo.BBox, edges int, seed uint64) (*edgecluster.Cluster, *geoind.NFoldGaussian, error) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		return nil, nil, fmt.Errorf("building mechanism: %w", err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return nil, nil, fmt.Errorf("building nomadic mechanism: %w", err)
	}
	diag := math.Hypot(region.Width(), region.Height())
	coverage := make([]geo.Circle, edges)
	for i := range coverage {
		coverage[i] = geo.Circle{
			Center: geo.Point{
				X: region.MinX + (float64(i)+0.5)*region.Width()/float64(edges),
				Y: region.MinY + region.Height()/2,
			},
			Radius: diag,
		}
	}
	cluster, err := edgecluster.New(edgecluster.Config{
		Engine:      core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: seed},
		Coverage:    coverage,
		MergeRegion: region,
		Seed:        seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("building cluster: %w", err)
	}
	return cluster, mech, nil
}

// runCluster replays the workload through a fault-tolerant multi-edge
// deployment (paper Section V-B) using the cluster API directly: check-ins
// route to the nearest covering live edge, per-user profiles merge through
// secure aggregation, and the merged obfuscation table replicates to every
// edge through the versioned journal. With chaos enabled, a deterministic
// schedule kills one edge around each user's merge and revives it after
// the user's ad requests, exercising failover routing, degraded merges,
// and journal catch-up. The run ends with a convergence pass plus a
// byte-identity audit of every edge's table, and the longitudinal attack
// on the obfuscated request stream the ad providers would observe.
func runCluster(cfg trace.Config, ds *trace.Dataset, edges int, chaos bool, seed uint64, batch int, codec edge.Codec, logger *slog.Logger) error {
	cluster, mech, err := buildSimCluster(cfg.Region.BBox, edges, seed)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	cluster.Instrument(reg)
	// The cluster path has no HTTP middleware to open root spans, so the
	// replay loop acts as the caller: one root trace per cluster call, and
	// the engine/failover spans beneath it land in this registry's
	// tracing_span_seconds histograms.
	tracer := tracing.New(seed, tracing.WithSlowThreshold(250*time.Millisecond), tracing.WithLogger(logger))
	tracer.Instrument(reg)
	ctx := context.Background()

	// Check-ins replay through the cluster gateway over real HTTP in the
	// chosen wire codec; the gateway opens the root span per request, so
	// failover and engine spans land in the same registry as before.
	gw, err := edgecluster.NewGateway(cluster, nil, edgecluster.WithGatewayTracer(tracer))
	if err != nil {
		return fmt.Errorf("building gateway: %w", err)
	}
	gw.Instrument(reg)
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()
	gcl, err := client.New(gts.URL, nil, client.WithCodec(codec))
	if err != nil {
		return fmt.Errorf("building gateway client: %w", err)
	}

	fmt.Printf("cluster mode: %d edges, chaos=%v, wire=%s\n", edges, chaos, codec)

	// Replay. Chaos kills a deterministic victim edge (its endpoint stops
	// answering — SetReachable, the ground-truth seam) just before every
	// other user's merge. The failure DETECTOR, not the simulation,
	// drives the cluster's health state: seeded probe ticks confirm the
	// victim down mid-run and revive it (journal catch-up) once its
	// endpoint answers again. The simulation never calls MarkDown/MarkUp.
	det := cluster.NewDetector(edgecluster.DetectorConfig{
		Probes: edges, SuspectAfter: 2, ConfirmAfter: 1, Seed: seed,
	})
	tickUntil := func(cond func() bool) {
		for i := 0; i < 4*(det.Cfg().SuspectAfter+det.Cfg().ConfirmAfter) && !cond(); i++ {
			if trs, err := det.Tick(); err != nil {
				logger.Warn("chaos: detector tick", slog.Any("err", err))
			} else {
				for _, tr := range trs {
					logger.Info("chaos: detector transition",
						slog.String("node", tr.Node), slog.String("from", tr.From.String()), slog.String("to", tr.To.String()))
				}
			}
		}
	}
	chaosRnd := randx.New(seed, 0xC4A05)
	observed := make(map[string][]geo.Point, len(ds.Users))
	start := time.Now()
	var requests, kills int
	var degraded, dropped int
	for ui, u := range ds.Users {
		if err := replayReports(ctx, gcl, u.ID, u.CheckIns, batch); err != nil {
			return err
		}
		victim := -1
		if chaos && ui%2 == 1 {
			victim = chaosRnd.IntN(edges)
			if err := cluster.SetReachable(victim, false); err != nil {
				return err
			}
			logger.Info("chaos: edge endpoint killed", slog.Int("edge", victim), slog.String("user", u.ID))
			kills++
			// The merge below may run before OR after confirmation — both
			// paths must exclude the victim. Tick once so suspicion starts.
			if _, err := det.Tick(); err != nil {
				return fmt.Errorf("detector: %w", err)
			}
		}
		_, stats, err := cluster.MergeProfilesStats(u.ID, cfg.End)
		if err != nil {
			return fmt.Errorf("merging %s: %w", u.ID, err)
		}
		if stats.Degraded {
			degraded++
		}
		dropped += stats.Dropped
		if victim >= 0 {
			// Probes confirm the victim down while requests fail over
			// around it.
			tickUntil(func() bool { return cluster.Nodes()[victim].Down() })
			if !cluster.Nodes()[victim].Down() {
				return fmt.Errorf("chaos: detector never confirmed edge %d down", victim)
			}
		}
		for _, c := range u.CheckIns {
			tctx, root := tracer.StartTrace(ctx, "cluster.request")
			out, _, err := cluster.RequestCtx(tctx, u.ID, c.Pos)
			root.End()
			if err != nil {
				return fmt.Errorf("requesting for %s: %w", u.ID, err)
			}
			observed[u.ID] = append(observed[u.ID], out)
			requests++
		}
		if victim >= 0 {
			if err := cluster.SetReachable(victim, true); err != nil {
				return err
			}
			tickUntil(func() bool { return !cluster.Nodes()[victim].Down() })
			if cluster.Nodes()[victim].Down() {
				return fmt.Errorf("chaos: detector never revived edge %d", victim)
			}
			logger.Info("chaos: edge auto-revived", slog.Int("edge", victim), slog.String("user", u.ID))
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d users, %d requests across %d edges in %s (%.0f req/s)\n",
		len(ds.Users), requests, edges, elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds())

	// Convergence pass: restore every endpoint and let the detector
	// notice (still no manual MarkUp), drain the journal, merge the
	// check-ins still pending on edges that were down at their merge.
	for i := 0; i < edges; i++ {
		if err := cluster.SetReachable(i, true); err != nil {
			return fmt.Errorf("restoring edge %d endpoint: %w", i, err)
		}
	}
	tickUntil(func() bool {
		for _, n := range cluster.Nodes() {
			if n.Down() {
				return false
			}
		}
		return true
	})
	for i, n := range cluster.Nodes() {
		if n.Down() {
			return fmt.Errorf("chaos: edge %d still down after endpoints restored", i)
		}
	}
	if err := cluster.Reconcile(); err != nil {
		return fmt.Errorf("reconciling: %w", err)
	}
	final := cfg.End.Add(time.Hour)
	for _, u := range ds.Users {
		if _, err := cluster.MergeProfiles(u.ID, final); err != nil {
			return fmt.Errorf("final merge for %s: %w", u.ID, err)
		}
	}

	// Byte-identity audit: after catch-up, every edge must answer every
	// user from the SAME obfuscation table — independent per-edge tables
	// would void the (r, ε, δ, n) guarantee.
	nodes := cluster.Nodes()
	for _, u := range ds.Users {
		want, err := nodes[0].Engine.TableFingerprint(u.ID)
		if err != nil {
			return fmt.Errorf("fingerprinting %s: %w", u.ID, err)
		}
		for _, n := range nodes[1:] {
			got, err := n.Engine.TableFingerprint(u.ID)
			if err != nil {
				return fmt.Errorf("fingerprinting %s at %s: %w", u.ID, n.ID, err)
			}
			if got != want {
				return fmt.Errorf("replication diverged: %s table for %s is %x, %s has %x",
					n.ID, u.ID, got, nodes[0].ID, want)
			}
		}
	}
	fmt.Printf("replication audit: %d users byte-identical across all %d edges\n", len(ds.Users), edges)
	fmt.Printf("fault tolerance: kills=%d auto_downs=%d auto_revives=%d degraded_merges=%d failovers=%d journal_replays=%d replica_errors=%d merge_dropped=%d\n",
		kills,
		reg.Counter("cluster_auto_downs_total", "").Value(),
		reg.Counter("cluster_auto_revives_total", "").Value(),
		degraded,
		reg.Counter("cluster_failovers_total", "").Value(),
		reg.Counter("cluster_journal_replays_total", "").Value(),
		reg.Counter("cluster_replica_errors_total", "").Value(),
		dropped)

	// Delta replication accounting: the convergence invariant above held
	// while shipping only suffixes. Snapshot bytes are what whole-table
	// replication would have cost for the very same applies; deltas must
	// come in strictly under it once tables span multiple merge rounds.
	repl := cluster.ReplStats()
	ratio := 1.0
	if repl.SnapshotBytes > 0 {
		ratio = float64(repl.DeltaBytes) / float64(repl.SnapshotBytes)
	}
	fmt.Printf("replication: delta_bytes=%d snapshot_bytes=%d ratio=%.3f entries=%d fallbacks=%d\n",
		repl.DeltaBytes, repl.SnapshotBytes, ratio, repl.Entries, repl.Fallbacks)
	if repl.DeltaBytes == 0 || repl.DeltaBytes >= repl.SnapshotBytes {
		return fmt.Errorf("delta replication did not beat snapshots: delta=%d snapshot=%d", repl.DeltaBytes, repl.SnapshotBytes)
	}
	if chaos {
		if d, r := reg.Counter("cluster_auto_downs_total", "").Value(), reg.Counter("cluster_auto_revives_total", "").Value(); d == 0 || r == 0 {
			return fmt.Errorf("chaos ran without detector-driven transitions: auto_downs=%d auto_revives=%d", d, r)
		}
	}
	printStageBreakdown(reg, tracer.ActiveSpans())

	// The attacker's view: the obfuscated request stream is all any ad
	// provider behind these edges observes.
	rAlpha, err := mech.ConfidenceRadius(0.05)
	if err != nil {
		return fmt.Errorf("confidence radius: %w", err)
	}
	opts := attack.Options{Theta: 500, ClusterRadius: rAlpha}
	hits200, hits500 := 0, 0
	for _, u := range ds.Users {
		inferred, err := attack.TopN(observed[u.ID], 1, opts)
		if err != nil {
			return fmt.Errorf("attacking %s: %w", u.ID, err)
		}
		truth := []geo.Point{u.TrueTops[0].Pos}
		if attack.Succeeds(inferred, truth, 1, 200) {
			hits200++
		}
		if attack.Succeeds(inferred, truth, 1, 500) {
			hits500++
		}
	}
	fmt.Printf("longitudinal attack on the cluster's request stream: top-1 recovered within 200 m for %d/%d users, within 500 m for %d/%d\n",
		hits200, len(ds.Users), hits500, len(ds.Users))
	return nil
}

// startStatsEmitter prints a telemetry summary every interval until the
// returned stop function is called.
func startStatsEmitter(server *edge.Server, useRTB bool, every time.Duration) func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				printTelemetrySummary(server, useRTB)
			case <-done:
				return
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// printTelemetrySummary condenses the server's registry into one or two
// progress lines: engine throughput counters plus latency quantiles for
// the ad-serving path — the live analogue of the paper's Tables II/III.
func printTelemetrySummary(server *edge.Server, useRTB bool) {
	reg := server.Registry()
	adsLatency := reg.Histogram("edge_request_latency_seconds", "", nil, telemetry.L("route", "/v1/ads"))
	selection := reg.Histogram("engine_selection_seconds", "", nil)
	fmt.Printf("telemetry: reports=%d table_hits=%d nomadic=%d rebuilds=%d | /v1/ads p50=%s p95=%s | selection p50=%s p95=%s\n",
		reg.Counter("engine_reports_total", "").Value(),
		reg.Counter("engine_table_hits_total", "").Value(),
		reg.Counter("engine_nomadic_total", "").Value(),
		reg.Counter("engine_rebuilds_total", "").Value(),
		quantileString(adsLatency, 0.5), quantileString(adsLatency, 0.95),
		quantileString(selection, 0.5), quantileString(selection, 0.95))
	if useRTB {
		auctionLatency := reg.Histogram("rtb_auction_seconds", "", nil)
		fmt.Printf("telemetry: rtb auctions=%d no_fill=%d deadline_miss=%d | auction p50=%s p95=%s (100 ms deadline)\n",
			reg.Counter("rtb_auctions_total", "").Value(),
			reg.Counter("rtb_no_fill_total", "").Value(),
			reg.Counter("rtb_deadline_miss_total", "").Value(),
			quantileString(auctionLatency, 0.5), quantileString(auctionLatency, 0.95))
	}
}

// printStageBreakdown renders the per-stage span latency rows next to
// the aggregate quantiles, so a slow replay can be pinned to the engine
// apply, provider fetch, or failover stage; the active-span count is a
// leak check (anything above zero means a span was started and never
// ended).
func printStageBreakdown(reg *telemetry.Registry, activeSpans int64) {
	fmt.Printf("per-stage breakdown (span-sourced):\n")
	for _, st := range tracing.StageBreakdown(reg) {
		if st.Count == 0 {
			continue
		}
		fmt.Printf("  %-8s count=%-7d p50=%.3fms p95=%.3fms p99=%.3fms overflow=%d\n",
			st.Stage, st.Count, st.P50Ms, st.P95Ms, st.P99Ms, st.Overflow)
	}
	fmt.Printf("tracing: active_spans=%d\n", activeSpans)
}

// quantileString renders a latency histogram quantile as a duration, or
// n/a before the first (sampled) observation.
func quantileString(h *telemetry.Histogram, q float64) string {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return "n/a"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
