// Command tracegen synthesizes a mobility-trace dataset calibrated to the
// paper's RTB transaction-log statistics and writes it as JSON lines.
//
// Usage:
//
//	tracegen -users 1000 -max-checkins 11435 -seed 1 -out dataset.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		users       = fs.Int("users", 1000, "number of users to synthesize (paper: 37262)")
		minCheckIns = fs.Int("min-checkins", 20, "minimum check-ins per user")
		maxCheckIns = fs.Int("max-checkins", 11435, "maximum check-ins per user")
		seed        = fs.Uint64("seed", 1, "generator seed")
		out         = fs.String("out", "dataset.jsonl", "output path ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trace.DefaultConfig()
	cfg.NumUsers = *users
	cfg.MinCheckIns = *minCheckIns
	cfg.MaxCheckIns = *maxCheckIns
	cfg.Seed = *seed

	ds, err := trace.Generate(cfg)
	if err != nil {
		return fmt.Errorf("generating dataset: %w", err)
	}

	if *out == "-" {
		if err := trace.Write(os.Stdout, ds); err != nil {
			return fmt.Errorf("writing dataset: %w", err)
		}
	} else if err := trace.WriteFile(*out, ds); err != nil {
		return fmt.Errorf("writing dataset: %w", err)
	}

	stats := trace.ComputeStats(ds)
	fmt.Fprintf(os.Stderr, "wrote %d users, %d check-ins (min %d, max %d, mean %.1f) to %s\n",
		stats.Users, stats.TotalCheckIns, stats.MinCheckIns, stats.MaxCheckIns, stats.MeanCheckIns, *out)
	return nil
}
