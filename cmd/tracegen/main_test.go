package main

import (
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunGeneratesDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ds.jsonl")
	err := run([]string{"-users", "5", "-max-checkins", "100", "-seed", "7", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 5 {
		t.Errorf("users = %d", len(ds.Users))
	}
	for _, u := range ds.Users {
		if len(u.CheckIns) < 20 || len(u.CheckIns) > 100 {
			t.Errorf("user %s has %d check-ins", u.ID, len(u.CheckIns))
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "notanumber"}); err == nil {
		t.Error("bad flag value expected error")
	}
	if err := run([]string{"-users", "0", "-out", filepath.Join(t.TempDir(), "x.jsonl")}); err == nil {
		t.Error("zero users expected error")
	}
	if err := run([]string{"-users", "2", "-out", "/nonexistent-dir/x.jsonl"}); err == nil {
		t.Error("unwritable path expected error")
	}
}
