package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkFig6Attack/parallel=1-8         	       2	 500000000 ns/op	      12.5 defense-top1@500m-%	20000000 B/op	   30000 allocs/op
BenchmarkFig6Attack/parallel=8-8         	       8	 125000000 ns/op	      12.5 defense-top1@500m-%	20000000 B/op	   30000 allocs/op
PASS
pkg: repro/internal/cluster
BenchmarkTrim/indexed-8                  	   17906	     66549 ns/op	      56 B/op	       2 allocs/op
BenchmarkTrim/indexed-grid-8             	    8554	    140289 ns/op	   14474 B/op	      16 allocs/op
BenchmarkTrim/map-baseline-8             	    2538	    470544 ns/op	  162264 B/op	      10 allocs/op
ok  	repro/internal/cluster	5.1s
pkg: repro
BenchmarkEngineReport-8                  	 1000000	       140 ns/op	     138 B/op	       0 allocs/op
BenchmarkEngineReportBatch/size=64-8     	   50000	      4480 ns/op	    5200 B/op	       0 allocs/op
BenchmarkEngineReportParallel/shards=1-8 	 1000000	       200 ns/op	     136 B/op	       0 allocs/op
BenchmarkEngineReportParallel/shards=64-8	 1200000	       100 ns/op	     148 B/op	       0 allocs/op
ok  	repro	3.2s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 9 {
		t.Fatalf("parsed %d benchmarks, want 9", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFig6Attack/parallel=1-8" || b.Package != "repro" {
		t.Errorf("first bench = %+v", b)
	}
	if b.NsPerOp != 5e8 || b.Iterations != 2 {
		t.Errorf("timing = %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 30000 || b.BytesPerOp == nil || *b.BytesPerOp != 2e7 {
		t.Errorf("memory = %+v", b)
	}
	if b.Metrics["defense-top1@500m-%"] != 12.5 {
		t.Errorf("custom metric = %v", b.Metrics)
	}
	if rep.Benchmarks[2].Package != "repro/internal/cluster" {
		t.Errorf("package tracking broken: %+v", rep.Benchmarks[2])
	}
}

func TestDerive(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	d := derive(rep.Benchmarks)
	if got := d["fig6_speedup_8_over_1_workers"]; got != 4 {
		t.Errorf("fig6 speedup = %g, want 4", got)
	}
	want := 470544.0 / 66549.0
	if got := d["trim_speedup_indexed_over_map"]; got != want {
		t.Errorf("trim speedup = %g, want %g", got, want)
	}
	// PR 4 serving-path derived metrics: one batch of 64 vs 64 single
	// reports, and the parallel shard-striping speedup.
	if got, want := d["report_batch64_speedup_per_checkin"], 140.0*64/4480; got != want {
		t.Errorf("batch speedup = %g, want %g", got, want)
	}
	if got, want := d["report_batch64_bytes_reduction"], 138.0*64/5200; got != want {
		t.Errorf("batch bytes reduction = %g, want %g", got, want)
	}
	if got := d["report_batch64_allocs_per_checkin"]; got != 0 {
		t.Errorf("batch allocs per check-in = %g, want 0", got)
	}
	if got, want := d["engine_shard_parallel_speedup"], 2.0; got != want {
		t.Errorf("shard speedup = %g, want %g", got, want)
	}
	if derive(nil) != nil {
		t.Error("derive(nil) should be nil")
	}
}

// writeArchive emits a benchjson archive for the diff tests.
func writeArchive(t *testing.T, name string, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffIdenticalArchivesPass(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	path := writeArchive(t, "bench.json", rep)
	var out bytes.Buffer
	if err := runDiff([]string{path, path}, 10, &out); err != nil {
		t.Fatalf("identical archives should pass: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within 10.0%") {
		t.Errorf("missing pass summary in output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("identical archives flagged a regression:\n%s", out.String())
	}
}

func TestDiffSeededRegressionFails(t *testing.T) {
	old, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	// Seed a 50% slowdown on one benchmark; everything else is unchanged.
	for i := range slowed.Benchmarks {
		if strings.HasPrefix(slowed.Benchmarks[i].Name, "BenchmarkTrim/indexed-8") {
			slowed.Benchmarks[i].NsPerOp *= 1.5
		}
	}
	oldPath := writeArchive(t, "old.json", old)
	newPath := writeArchive(t, "new.json", slowed)

	var out bytes.Buffer
	err = runDiff([]string{oldPath, newPath, "-threshold", "10"}, 10, &out)
	if err == nil {
		t.Fatalf("seeded regression not caught; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "1 of") || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q does not report the regression count", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regressed row not marked in output:\n%s", out.String())
	}

	// The same slowdown passes under a looser trailing -threshold, proving
	// the residual-args threshold override is honoured.
	out.Reset()
	if err := runDiff([]string{oldPath, newPath, "-threshold", "60"}, 10, &out); err != nil {
		t.Errorf("50%% slowdown under a 60%% threshold should pass: %v", err)
	}

	// Improvements never trip the gate.
	out.Reset()
	if err := runDiff([]string{newPath, oldPath}, 10, &out); err != nil {
		t.Errorf("speedup flagged as regression: %v", err)
	}
}

func TestDiffArgumentErrors(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkX-8", Package: "p", NsPerOp: 10}}}
	path := writeArchive(t, "bench.json", rep)
	var out bytes.Buffer
	for _, args := range [][]string{
		{path},                     // one archive
		{path, path, path},         // three archives
		{path, path, "-bogus"},     // unknown flag
		{path, path, "-threshold"}, // missing value
		{path, "/nonexistent.json"},
	} {
		if err := runDiff(args, 10, &out); err == nil {
			t.Errorf("runDiff(%v) should fail", args)
		}
	}
	// Disjoint archives have no matching benchmarks to gate on.
	other := writeArchive(t, "other.json", &Report{Benchmarks: []Benchmark{{Name: "BenchmarkY-8", Package: "q", NsPerOp: 10}}})
	if err := runDiff([]string{path, other}, 10, &out); err == nil {
		t.Error("disjoint archives should fail: nothing was actually compared")
	}
}
