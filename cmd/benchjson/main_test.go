package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkFig6Attack/parallel=1-8         	       2	 500000000 ns/op	      12.5 defense-top1@500m-%	20000000 B/op	   30000 allocs/op
BenchmarkFig6Attack/parallel=8-8         	       8	 125000000 ns/op	      12.5 defense-top1@500m-%	20000000 B/op	   30000 allocs/op
PASS
pkg: repro/internal/cluster
BenchmarkTrim/indexed-8                  	   17906	     66549 ns/op	      56 B/op	       2 allocs/op
BenchmarkTrim/indexed-grid-8             	    8554	    140289 ns/op	   14474 B/op	      16 allocs/op
BenchmarkTrim/map-baseline-8             	    2538	    470544 ns/op	  162264 B/op	      10 allocs/op
ok  	repro/internal/cluster	5.1s
pkg: repro
BenchmarkEngineReport-8                  	 1000000	       140 ns/op	     138 B/op	       0 allocs/op
BenchmarkEngineReportBatch/size=64-8     	   50000	      4480 ns/op	    5200 B/op	       0 allocs/op
BenchmarkEngineReportParallel/shards=1-8 	 1000000	       200 ns/op	     136 B/op	       0 allocs/op
BenchmarkEngineReportParallel/shards=64-8	 1200000	       100 ns/op	     148 B/op	       0 allocs/op
ok  	repro	3.2s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 9 {
		t.Fatalf("parsed %d benchmarks, want 9", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFig6Attack/parallel=1-8" || b.Package != "repro" {
		t.Errorf("first bench = %+v", b)
	}
	if b.NsPerOp != 5e8 || b.Iterations != 2 {
		t.Errorf("timing = %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 30000 || b.BytesPerOp == nil || *b.BytesPerOp != 2e7 {
		t.Errorf("memory = %+v", b)
	}
	if b.Metrics["defense-top1@500m-%"] != 12.5 {
		t.Errorf("custom metric = %v", b.Metrics)
	}
	if rep.Benchmarks[2].Package != "repro/internal/cluster" {
		t.Errorf("package tracking broken: %+v", rep.Benchmarks[2])
	}
}

func TestDerive(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	d := derive(rep.Benchmarks)
	if got := d["fig6_speedup_8_over_1_workers"]; got != 4 {
		t.Errorf("fig6 speedup = %g, want 4", got)
	}
	want := 470544.0 / 66549.0
	if got := d["trim_speedup_indexed_over_map"]; got != want {
		t.Errorf("trim speedup = %g, want %g", got, want)
	}
	// PR 4 serving-path derived metrics: one batch of 64 vs 64 single
	// reports, and the parallel shard-striping speedup.
	if got, want := d["report_batch64_speedup_per_checkin"], 140.0*64/4480; got != want {
		t.Errorf("batch speedup = %g, want %g", got, want)
	}
	if got, want := d["report_batch64_bytes_reduction"], 138.0*64/5200; got != want {
		t.Errorf("batch bytes reduction = %g, want %g", got, want)
	}
	if got := d["report_batch64_allocs_per_checkin"]; got != 0 {
		t.Errorf("batch allocs per check-in = %g, want 0", got)
	}
	if got, want := d["engine_shard_parallel_speedup"], 2.0; got != want {
		t.Errorf("shard speedup = %g, want %g", got, want)
	}
	if derive(nil) != nil {
		t.Error("derive(nil) should be nil")
	}
}
