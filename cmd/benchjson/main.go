// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark sweeps can be archived and diffed across
// commits (see bench.sh, which emits BENCH_pr2.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_pr2.json
//
// Standard fields (ns/op, B/op, allocs/op) are lifted into named JSON
// fields; every other `value unit` pair — including the custom
// b.ReportMetric measurements the evaluation benchmarks emit — lands in
// the metrics map. When both Fig6 parallel variants are present, the
// derived block reports their wall-clock speedup.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	GoOS       string             `json:"goos,omitempty"`
	GoArch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	// Serving embeds a cmd/loadgen -sweep document (closed-loop serving
	// throughput and latency quantiles) when -serving is given, so
	// BENCH_pr4.json carries microbenchmarks and macro load results in
	// one artifact.
	Serving json.RawMessage `json:"serving,omitempty"`
	// Durable embeds a cmd/loadgen -sweep-durable document (WAL fsync
	// policy cost grid) when -durable is given; BENCH_pr5.json carries
	// the wal microbenchmarks and the macro durability sweep together.
	Durable json.RawMessage `json:"durable,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	serving := fs.String("serving", "", "embed this cmd/loadgen -sweep JSON file under the serving key")
	durable := fs.String("durable", "", "embed this cmd/loadgen -sweep-durable JSON file under the durable key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	rep.Derived = derive(rep.Benchmarks)
	embed := func(path, what string) (json.RawMessage, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s sweep: %w", what, err)
		}
		if !json.Valid(data) {
			return nil, fmt.Errorf("%s sweep %s is not valid JSON", what, path)
		}
		return json.RawMessage(data), nil
	}
	if *serving != "" {
		if rep.Serving, err = embed(*serving, "serving"); err != nil {
			return err
		}
	}
	if *durable != "" {
		if rep.Durable, err = embed(*durable, "durable"); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse consumes the full `go test -bench` stream, tracking the package
// each Benchmark line belongs to via the interleaved pkg: headers.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			if b != nil {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line: a name, an iteration count, then
// tab-separated `value unit` measurements. Lines that merely start with
// "Benchmark" but don't follow the shape (e.g. log output) are skipped.
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil
	}
	b := &Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = value
		case "B/op":
			v := value
			b.BytesPerOp = &v
		case "allocs/op":
			v := value
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = value
		}
	}
	return b, nil
}

// derive computes cross-benchmark quantities: the Fig6 worker-scaling
// speedup, the Trim rewrite's improvement over the map baseline, and the
// PR 4 serving-path comparisons (batched ingestion vs N single reports,
// sharded vs single-stripe parallel reporting).
func derive(benches []Benchmark) map[string]float64 {
	find := func(suffix string) *Benchmark {
		for i := range benches {
			if strings.HasSuffix(stripProcs(benches[i].Name), suffix) {
				return &benches[i]
			}
		}
		return nil
	}
	ns := func(suffix string) float64 {
		if b := find(suffix); b != nil {
			return b.NsPerOp
		}
		return 0
	}
	d := map[string]float64{}
	if p1, p8 := ns("Fig6Attack/parallel=1"), ns("Fig6Attack/parallel=8"); p1 > 0 && p8 > 0 {
		d["fig6_speedup_8_over_1_workers"] = p1 / p8
	}
	if idx, base := ns("Trim/indexed"), ns("Trim/map-baseline"); idx > 0 && base > 0 {
		d["trim_speedup_indexed_over_map"] = base / idx
	}
	// Batched ingestion vs 64 single reports: one ReportBatch op ingests
	// 64 check-ins, so the fair comparison is 64x the single-report cost
	// against one batch op. Alloc counts amortize below 1/op on both
	// paths, so bytes/op is the robust allocation measure.
	if single, batch := find("EngineReport"), find("EngineReportBatch/size=64"); single != nil && batch != nil {
		if single.NsPerOp > 0 && batch.NsPerOp > 0 {
			d["report_batch64_speedup_per_checkin"] = single.NsPerOp * 64 / batch.NsPerOp
		}
		if single.BytesPerOp != nil && batch.BytesPerOp != nil && *batch.BytesPerOp > 0 {
			d["report_batch64_bytes_reduction"] = *single.BytesPerOp * 64 / *batch.BytesPerOp
		}
		if single.AllocsPerOp != nil && batch.AllocsPerOp != nil {
			d["report_allocs_per_checkin"] = *single.AllocsPerOp
			d["report_batch64_allocs_per_checkin"] = *batch.AllocsPerOp / 64
		}
	}
	if s1, s64 := ns("EngineReportParallel/shards=1"), ns("EngineReportParallel/shards=64"); s1 > 0 && s64 > 0 {
		d["engine_shard_parallel_speedup"] = s1 / s64
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// stripProcs drops the trailing -GOMAXPROCS suffix go test appends to
// benchmark names (absent on single-proc runs).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
