// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark sweeps can be archived and diffed across
// commits (see bench.sh, which emits BENCH_pr2.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_pr2.json
//	benchjson -diff BENCH_old.json BENCH_new.json -threshold 5
//
// Standard fields (ns/op, B/op, allocs/op) are lifted into named JSON
// fields; every other `value unit` pair — including the custom
// b.ReportMetric measurements the evaluation benchmarks emit — lands in
// the metrics map. When both Fig6 parallel variants are present, the
// derived block reports their wall-clock speedup.
//
// With -diff, benchjson compares two previously emitted archives instead
// of reading stdin: benchmarks are matched by package and name (modulo
// the -GOMAXPROCS suffix), per-benchmark ns/op deltas are printed, and
// the exit status is non-zero when any matched benchmark slowed down by
// more than -threshold percent — a perf-regression gate for CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	GoOS       string             `json:"goos,omitempty"`
	GoArch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	// Serving embeds a cmd/loadgen -sweep document (closed-loop serving
	// throughput and latency quantiles) when -serving is given, so
	// BENCH_pr4.json carries microbenchmarks and macro load results in
	// one artifact.
	Serving json.RawMessage `json:"serving,omitempty"`
	// Durable embeds a cmd/loadgen -sweep-durable document (WAL fsync
	// policy cost grid) when -durable is given; BENCH_pr5.json carries
	// the wal microbenchmarks and the macro durability sweep together.
	Durable json.RawMessage `json:"durable,omitempty"`
	// Wire embeds a cmd/loadgen -sweep-wire document (json vs binary
	// codec grid) when -wire is given; BENCH_pr7.json carries the codec
	// microbenchmarks and the macro end-to-end comparison together.
	Wire json.RawMessage `json:"wire,omitempty"`
	// Repl embeds a cmd/lbasim -repl-sweep document (replicated bytes
	// per merge round against changed-user count) when -repl is given;
	// BENCH_pr8.json carries the delta codec microbenchmarks and the
	// macro replication-cost grid together.
	Repl json.RawMessage `json:"repl,omitempty"`
	// Mem embeds a cmd/loadgen -sweep-mem document (peak/steady
	// HeapAlloc and RSS per resident cap, bytes-per-resident-user) when
	// -mem is given; BENCH_pr9.json carries the serving microbenchmarks
	// and the macro memory-footprint sweep together.
	Mem json.RawMessage `json:"mem,omitempty"`
	// Scenario embeds a cmd/lbasim -scenario-sweep document (attack
	// success, re-identification rate, and entropy per workload scenario
	// mode) when -scenario is given; BENCH_pr10.json carries the engine
	// microbenchmarks and the macro scenario sweep together.
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	serving := fs.String("serving", "", "embed this cmd/loadgen -sweep JSON file under the serving key")
	durable := fs.String("durable", "", "embed this cmd/loadgen -sweep-durable JSON file under the durable key")
	wireSweep := fs.String("wire", "", "embed this cmd/loadgen -sweep-wire JSON file under the wire key")
	replSweep := fs.String("repl", "", "embed this cmd/lbasim -repl-sweep JSON file under the repl key")
	memSweep := fs.String("mem", "", "embed this cmd/loadgen -sweep-mem JSON file under the mem key")
	scnSweep := fs.String("scenario", "", "embed this cmd/lbasim -scenario-sweep JSON file under the scenario key")
	diff := fs.Bool("diff", false, "compare two archives (old.json new.json) instead of reading stdin; exit non-zero on a regression past -threshold")
	threshold := fs.Float64("threshold", 10, "with -diff, the ns/op slowdown in percent that counts as a regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		return runDiff(fs.Args(), *threshold, os.Stdout)
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	rep.Derived = derive(rep.Benchmarks)
	embed := func(path, what string) (json.RawMessage, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s sweep: %w", what, err)
		}
		if !json.Valid(data) {
			return nil, fmt.Errorf("%s sweep %s is not valid JSON", what, path)
		}
		return json.RawMessage(data), nil
	}
	if *serving != "" {
		if rep.Serving, err = embed(*serving, "serving"); err != nil {
			return err
		}
	}
	if *durable != "" {
		if rep.Durable, err = embed(*durable, "durable"); err != nil {
			return err
		}
	}
	if *wireSweep != "" {
		if rep.Wire, err = embed(*wireSweep, "wire"); err != nil {
			return err
		}
	}
	if *replSweep != "" {
		if rep.Repl, err = embed(*replSweep, "repl"); err != nil {
			return err
		}
	}
	if *memSweep != "" {
		if rep.Mem, err = embed(*memSweep, "mem"); err != nil {
			return err
		}
	}
	if *scnSweep != "" {
		if rep.Scenario, err = embed(*scnSweep, "scenario"); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runDiff is the perf-regression gate: it loads two benchjson archives,
// matches benchmarks by package plus GOMAXPROCS-stripped name, prints
// the ns/op delta for every match, and fails when any benchmark in the
// new archive is more than threshold percent slower than the old one.
//
// The flag package stops parsing at the first positional argument, so
// `benchjson -diff old.json new.json -threshold 5` leaves the threshold
// flag in the residual args; runDiff scans them by hand.
func runDiff(args []string, threshold float64, w io.Writer) error {
	var paths []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			i++
			if i >= len(args) {
				return fmt.Errorf("-threshold needs a value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return fmt.Errorf("bad -threshold %q: %w", args[i], err)
			}
			threshold = v
		case strings.HasPrefix(a, "-threshold=") || strings.HasPrefix(a, "--threshold="):
			v, err := strconv.ParseFloat(a[strings.IndexByte(a, '=')+1:], 64)
			if err != nil {
				return fmt.Errorf("bad %q: %w", a, err)
			}
			threshold = v
		case strings.HasPrefix(a, "-"):
			return fmt.Errorf("unknown -diff argument %q", a)
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) != 2 {
		return fmt.Errorf("-diff needs exactly two archives: old.json new.json (got %d)", len(paths))
	}
	if threshold <= 0 {
		return fmt.Errorf("-threshold must be positive, got %g", threshold)
	}
	oldRep, err := loadReport(paths[0])
	if err != nil {
		return err
	}
	newRep, err := loadReport(paths[1])
	if err != nil {
		return err
	}

	key := func(b *Benchmark) string { return b.Package + "/" + stripProcs(b.Name) }
	oldByKey := make(map[string]*Benchmark, len(oldRep.Benchmarks))
	for i := range oldRep.Benchmarks {
		oldByKey[key(&oldRep.Benchmarks[i])] = &oldRep.Benchmarks[i]
	}

	matched, regressed := 0, 0
	for i := range newRep.Benchmarks {
		nb := &newRep.Benchmarks[i]
		ob, ok := oldByKey[key(nb)]
		if !ok || ob.NsPerOp <= 0 || nb.NsPerOp <= 0 {
			continue
		}
		matched++
		delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		mark := ""
		if delta > threshold {
			regressed++
			mark = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-60s old=%.1fns/op new=%.1fns/op delta=%+.1f%%%s\n",
			key(nb), ob.NsPerOp, nb.NsPerOp, delta, mark)
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in %s match %s", paths[1], paths[0])
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed more than %.1f%%", regressed, matched, threshold)
	}
	fmt.Fprintf(w, "benchjson: %d benchmarks within %.1f%% of %s\n", matched, threshold, paths[0])
	return nil
}

// loadReport reads one archived benchjson document back in.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing archive %s: %w", path, err)
	}
	return &rep, nil
}

// parse consumes the full `go test -bench` stream, tracking the package
// each Benchmark line belongs to via the interleaved pkg: headers.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			if b != nil {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line: a name, an iteration count, then
// tab-separated `value unit` measurements. Lines that merely start with
// "Benchmark" but don't follow the shape (e.g. log output) are skipped.
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil
	}
	b := &Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = value
		case "B/op":
			v := value
			b.BytesPerOp = &v
		case "allocs/op":
			v := value
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = value
		}
	}
	return b, nil
}

// derive computes cross-benchmark quantities: the Fig6 worker-scaling
// speedup, the Trim rewrite's improvement over the map baseline, and the
// PR 4 serving-path comparisons (batched ingestion vs N single reports,
// sharded vs single-stripe parallel reporting).
func derive(benches []Benchmark) map[string]float64 {
	find := func(suffix string) *Benchmark {
		for i := range benches {
			if strings.HasSuffix(stripProcs(benches[i].Name), suffix) {
				return &benches[i]
			}
		}
		return nil
	}
	ns := func(suffix string) float64 {
		if b := find(suffix); b != nil {
			return b.NsPerOp
		}
		return 0
	}
	d := map[string]float64{}
	if p1, p8 := ns("Fig6Attack/parallel=1"), ns("Fig6Attack/parallel=8"); p1 > 0 && p8 > 0 {
		d["fig6_speedup_8_over_1_workers"] = p1 / p8
	}
	if idx, base := ns("Trim/indexed"), ns("Trim/map-baseline"); idx > 0 && base > 0 {
		d["trim_speedup_indexed_over_map"] = base / idx
	}
	// Batched ingestion vs 64 single reports: one ReportBatch op ingests
	// 64 check-ins, so the fair comparison is 64x the single-report cost
	// against one batch op. Alloc counts amortize below 1/op on both
	// paths, so bytes/op is the robust allocation measure.
	if single, batch := find("EngineReport"), find("EngineReportBatch/size=64"); single != nil && batch != nil {
		if single.NsPerOp > 0 && batch.NsPerOp > 0 {
			d["report_batch64_speedup_per_checkin"] = single.NsPerOp * 64 / batch.NsPerOp
		}
		if single.BytesPerOp != nil && batch.BytesPerOp != nil && *batch.BytesPerOp > 0 {
			d["report_batch64_bytes_reduction"] = *single.BytesPerOp * 64 / *batch.BytesPerOp
		}
		if single.AllocsPerOp != nil && batch.AllocsPerOp != nil {
			d["report_allocs_per_checkin"] = *single.AllocsPerOp
			d["report_batch64_allocs_per_checkin"] = *batch.AllocsPerOp / 64
		}
	}
	if s1, s64 := ns("EngineReportParallel/shards=1"), ns("EngineReportParallel/shards=64"); s1 > 0 && s64 > 0 {
		d["engine_shard_parallel_speedup"] = s1 / s64
	}
	// PR 7 wire codec: binary-over-JSON CPU speedup per message shape,
	// plus the on-the-wire size reduction for the canonical 64-batch.
	for _, op := range []string{"EncodeReport", "DecodeReport", "EncodeBatch64", "DecodeBatch64", "EncodeAds10", "DecodeAds10", "EncodeReplDelta4", "DecodeReplDelta4"} {
		if js, bin := ns("Wire"+op+"/codec=json"), ns("Wire"+op+"/codec=binary"); js > 0 && bin > 0 {
			d["wire_"+strings.ToLower(op)+"_speedup"] = js / bin
		}
	}
	if js, bin := find("WireEncodeBatch64/codec=json"), find("WireEncodeBatch64/codec=binary"); js != nil && bin != nil {
		if a, b := js.Metrics["frame_bytes"], bin.Metrics["frame_bytes"]; a > 0 && b > 0 {
			d["wire_batch64_size_reduction"] = a / b
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// stripProcs drops the trailing -GOMAXPROCS suffix go test appends to
// benchmark names (absent on single-proc runs).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
