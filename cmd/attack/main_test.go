package main

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumUsers = 8
	cfg.MaxCheckIns = 300
	ds, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	if err := trace.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseLevel(t *testing.T) {
	tests := []struct {
		in      string
		want    float64
		wantErr bool
	}{
		{"ln2", math.Ln2, false},
		{"ln4", math.Log(4), false},
		{"ln6", math.Log(6), false},
		{"none", 0, false},
		{"1.5", 1.5, false},
		{"-2", 0, true},
		{"garbage", 0, true},
	}
	for _, tt := range tests {
		got, err := parseLevel(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseLevel(%q) error = %v", tt.in, err)
			continue
		}
		if err == nil && math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("parseLevel(%q) = %g, want %g", tt.in, got, tt.want)
		}
	}
}

func TestRunAttackOnDataset(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-level", "ln4", "-top", "1"}); err != nil {
		t.Fatalf("obfuscated attack: %v", err)
	}
	if err := run([]string{"-data", path, "-level", "none"}); err != nil {
		t.Fatalf("raw attack: %v", err)
	}
}

func TestRunAttackErrors(t *testing.T) {
	if err := run([]string{"-data", "/does/not/exist.jsonl"}); err == nil {
		t.Error("missing dataset expected error")
	}
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-level", "bogus"}); err == nil {
		t.Error("bad level expected error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag expected error")
	}
}
