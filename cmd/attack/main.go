// Command attack runs the longitudinal location exposure attack against a
// dataset, optionally obfuscating every check-in with a one-time geo-IND
// mechanism first (the paper's Section III setup), and reports attack
// success rates.
//
// Usage:
//
//	attack -data dataset.jsonl -level ln4 -radius 200
//	attack -data dataset.jsonl -level none           # attack raw check-ins
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func parseLevel(s string) (float64, error) {
	switch s {
	case "ln2":
		return math.Ln2, nil
	case "ln4":
		return math.Log(4), nil
	case "ln6":
		return math.Log(6), nil
	case "none":
		return 0, nil
	default:
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil || v <= 0 {
			return 0, fmt.Errorf("invalid privacy level %q (use ln2, ln4, ln6, none, or a positive number)", s)
		}
		return v, nil
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	var (
		data   = fs.String("data", "dataset.jsonl", "dataset path (from tracegen)")
		level  = fs.String("level", "ln4", "one-time geo-IND privacy level: ln2, ln4, ln6, a number, or 'none' for raw check-ins")
		radius = fs.Float64("radius", 200, "geo-IND indistinguishability radius in metres")
		topN   = fs.Int("top", 2, "number of top locations to infer")
		seed   = fs.Uint64("seed", 1, "obfuscation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := trace.ReadFile(*data)
	if err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	if len(ds.Users) == 0 {
		return fmt.Errorf("dataset %q has no users", *data)
	}

	lvl, err := parseLevel(*level)
	if err != nil {
		return err
	}

	var (
		mech   *geoind.PlanarLaplace
		rAlpha = 100.0
		theta  = 50.0
	)
	if lvl > 0 {
		mech, err = geoind.NewPlanarLaplace(lvl, *radius)
		if err != nil {
			return fmt.Errorf("building mechanism: %w", err)
		}
		rAlpha, err = mech.ConfidenceRadius(0.05)
		if err != nil {
			return fmt.Errorf("confidence radius: %w", err)
		}
		theta = math.Max(150, rAlpha/4)
	}
	opts := attack.Options{Theta: theta, ClusterRadius: rAlpha}

	rnd := randx.New(*seed, 0xA77AC4)
	results := make([][]geo.Point, len(ds.Users))
	truths := make([][]geo.Point, len(ds.Users))
	for i, u := range ds.Users {
		observed := make([]geo.Point, 0, len(u.CheckIns))
		for _, c := range u.CheckIns {
			if mech == nil {
				observed = append(observed, c.Pos)
				continue
			}
			out, err := mech.Obfuscate(rnd, c.Pos)
			if err != nil {
				return fmt.Errorf("obfuscating %s: %w", u.ID, err)
			}
			observed = append(observed, out[0])
		}
		inferred, err := attack.TopN(observed, *topN, opts)
		if err != nil {
			return fmt.Errorf("attacking %s: %w", u.ID, err)
		}
		results[i] = inferred
		tt := make([]geo.Point, len(u.TrueTops))
		for j, top := range u.TrueTops {
			tt[j] = top.Pos
		}
		truths[i] = tt
	}

	fmt.Printf("attacked %d users (mechanism: %s, theta=%.0f m, r_alpha=%.0f m)\n",
		len(ds.Users), *level, theta, rAlpha)
	fmt.Printf("%-8s %-14s %-14s\n", "rank", "within 200 m", "within 500 m")
	for rank := 1; rank <= *topN; rank++ {
		s200 := attack.SuccessRate(results, truths, rank, 200)
		s500 := attack.SuccessRate(results, truths, rank, 500)
		fmt.Printf("top-%-4d %-14s %-14s\n", rank,
			fmt.Sprintf("%.1f%%", 100*s200), fmt.Sprintf("%.1f%%", 100*s500))
	}
	return nil
}
