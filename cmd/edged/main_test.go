package main

import "testing"

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-epsilon", "x"}},
		{"zero epsilon", []string{"-epsilon", "0"}},
		{"bad delta", []string{"-delta", "1"}},
		{"zero n", []string{"-n", "0"}},
		{"campaign radius out of platform range rejected upstream", []string{"-addr", "127.0.0.1:0", "-campaigns", "1", "-radius", "-5"}},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:99999", "-campaigns", "0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}
