package main

import (
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/logx"
	"repro/internal/wal"
)

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-epsilon", "x"}},
		{"zero epsilon", []string{"-epsilon", "0"}},
		{"bad delta", []string{"-delta", "1"}},
		{"zero n", []string{"-n", "0"}},
		{"campaign radius out of platform range rejected upstream", []string{"-addr", "127.0.0.1:0", "-campaigns", "1", "-radius", "-5"}},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:99999", "-campaigns", "0"}},
		{"unlistenable debug addr", []string{"-debug-addr", "256.256.256.256:99999", "-campaigns", "0"}},
		{"state and data-dir conflict", []string{"-state", "/tmp/s.jsonl", "-data-dir", "/tmp/d"}},
		{"bad fsync policy", []string{"-data-dir", "/tmp/d", "-fsync", "sometimes"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func newTestServer(t *testing.T) (*edge.Server, *core.Engine) {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	server, err := edge.NewServer(engine, network, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return server, engine
}

// TestServeAndPersistOnFailure checks that a serve error still writes
// the state snapshot: losing the permanent obfuscation table on a
// listener error would void the longitudinal guarantee on restart.
func TestServeAndPersistOnFailure(t *testing.T) {
	server, engine := newTestServer(t)
	if err := engine.Report("u1", geo.Point{X: 5, Y: 5}, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // force Serve to fail immediately

	statePath := filepath.Join(t.TempDir(), "state.jsonl")
	logger := logx.Discard()
	err = serveAndPersist(context.Background(), server, engine, ln, statePath, nil, 0, logger)
	if err == nil {
		t.Fatal("closed listener did not produce a serve error")
	}
	if !strings.Contains(err.Error(), "serving:") {
		t.Errorf("error %q does not report the serve failure", err)
	}

	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("state not snapshotted after serve failure: %v", err)
	}
	_, restoredEngine := newTestServer(t)
	if err := restoredEngine.RestoreFile(statePath); err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
	if got := restoredEngine.Stats().Users; got != 1 {
		t.Errorf("restored users = %d, want 1", got)
	}
}

// TestServeAndPersistCleanShutdown checks the ordinary path still
// persists and returns nil.
func TestServeAndPersistCleanShutdown(t *testing.T) {
	server, engine := newTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(t.TempDir(), "state.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveAndPersist(ctx, server, engine, ln, statePath, nil, 0, logx.Discard())
	}()

	// The server is up when /metrics answers.
	url := "http://" + ln.Addr().String() + "/metrics"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Fatal(rerr)
			}
			for _, want := range []string{"edge_http_requests_total", "edge_request_latency_seconds_bucket", "engine_table_hits_total", "engine_selection_seconds", "engine_users"} {
				if !strings.Contains(string(body), want) {
					t.Errorf("/metrics missing %s", want)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("state not snapshotted on clean shutdown: %v", err)
	}
}

// TestServeAndPersistDurable checks the durable path: shutdown takes a
// final checkpoint and seals the WAL, and a second engine recovered
// from the same directory answers with the identical table fingerprint.
func TestServeAndPersistDurable(t *testing.T) {
	server, engine := newTestServer(t)
	dir := t.TempDir()
	store, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(store); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		if err := engine.Report("u1", geo.Point{X: float64(5 + i%3), Y: 5}, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.RebuildProfile("u1", base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	wantFP, err := engine.TableFingerprint("u1")
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // immediate clean shutdown; the durable epilogue still runs
	if err := serveAndPersist(ctx, server, engine, ln, "", store, 10*time.Millisecond, logx.Discard()); err != nil {
		t.Fatalf("durable shutdown returned %v", err)
	}

	store2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	_, engine2 := newTestServer(t)
	stats, err := engine2.Recover(store2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointLSN == 0 {
		t.Error("shutdown did not leave a checkpoint")
	}
	if stats.Replayed != 0 {
		t.Errorf("final checkpoint should cover the whole log, yet %d records replayed", stats.Replayed)
	}
	gotFP, err := engine2.TableFingerprint("u1")
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Errorf("fingerprint after recovery = %016x, want %016x", gotFP, wantFP)
	}
}

// TestServeDebug checks the pprof mux answers on the debug listener.
func TestServeDebug(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go serveDebug(ln)

	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
