// Command edged runs an Edge-PrivLocAd edge device as an HTTP service,
// backed by an in-process ad network seeded with synthetic radius-targeted
// campaigns. With -rtb the same campaigns bid in second-price RTB
// auctions under the paper's 100 ms matching deadline instead of direct
// matching.
//
// Usage:
//
//	edged -addr 127.0.0.1:8080 -campaigns 500 -epsilon 1 -n 10
//
// Endpoints: POST /v1/report, POST /v1/ads, POST /v1/rebuild,
// GET /v1/profile?user=..., GET /v1/privacy?user=..., GET /v1/stats,
// GET /v1/fingerprint?user=... (obfuscation-table digest, for recovery
// and replication audits), GET /metrics (Prometheus text exposition),
// GET /debug/traces (ring of recent and slowest request traces with
// per-stage spans), GET /healthz. With -debug-addr a second listener
// additionally serves net/http/pprof under /debug/pprof/.
//
// Logs are structured (log/slog); -log-format selects json or text.
//
// With -data-dir the engine writes through a crash-durable WAL: every
// mutation is logged (fsync per -fsync) before it is acknowledged,
// state is recovered from the newest checkpoint plus the log tail at
// startup, and checkpoints are taken every -checkpoint-every and on
// graceful shutdown.
//
// With -max-resident and/or -evict-idle the engine is memory-tiered:
// cold users are spilled to disk (under -data-dir/spill, or a temp dir)
// and faulted back in transparently on their next touch, bounding RSS
// for long-tailed populations far larger than memory. -rebuild-every
// with -rebuild-parts amortizes the periodic profile rebuild across
// incremental sub-rounds instead of stopping the world.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/logx"
	"repro/internal/par"
	"repro/internal/randx"
	"repro/internal/rtb"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edged:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	flags := flag.NewFlagSet("edged", flag.ContinueOnError)
	var (
		addr      = flags.String("addr", "127.0.0.1:8080", "listen address")
		debugAddr = flags.String("debug-addr", "", "optional debug listen address serving net/http/pprof under /debug/pprof/")
		campaigns = flags.Int("campaigns", 500, "synthetic radius-targeted campaigns to register")
		epsilon   = flags.Float64("epsilon", 1, "privacy budget epsilon of the n-fold mechanism")
		radius    = flags.Float64("radius", 500, "indistinguishability radius r in metres")
		delta     = flags.Float64("delta", 0.01, "privacy slack delta")
		nFold     = flags.Int("n", 10, "number of obfuscated candidates per top location")
		seed      = flags.Uint64("seed", 1, "randomness seed")
		shards    = flags.Int("shards", core.DefaultShards, "lock-striped user-map shards (rounded up to a power of two; purely a concurrency knob — state is byte-identical at any shard count)")
		useRTB    = flags.Bool("rtb", false, "serve ads through second-price RTB auctions instead of direct matching")
		statePath = flags.String("state", "", "snapshot file: restored at startup when present, written on shutdown (keeps the obfuscation table permanent across restarts)")
		dataDir   = flags.String("data-dir", "", "durable data directory holding the write-ahead log and checkpoints; state is recovered from it at startup and every mutation is logged (mutually exclusive with -state)")
		fsyncFlag = flags.String("fsync", "interval", "WAL fsync policy with -data-dir: always | interval[=<duration>] | never")
		ckptEvery = flags.Duration("checkpoint-every", 5*time.Minute, "periodic checkpoint interval with -data-dir; 0 disables periodic checkpoints (a final one is still taken on shutdown)")
		logFormat = flags.String("log-format", logx.FormatText, "structured log format: json | text")
		slowTrace = flags.Duration("slow-trace", 250*time.Millisecond, "log requests whose trace exceeds this duration with their per-stage breakdown; 0 disables")

		maxResident  = flags.Int("max-resident", 0, "bound on users resident in memory; least-recently-touched users beyond it are spilled to disk and faulted back in transparently (0 = unbounded)")
		evictIdle    = flags.Duration("evict-idle", 0, "periodically spill users idle for at least this long (0 disables; enables the spill tier even without -max-resident)")
		rebuildEvery = flags.Duration("rebuild-every", 0, "run one incremental profile-rebuild sub-round this often, covering the population every -rebuild-parts ticks (0 disables)")
		rebuildParts = flags.Int("rebuild-parts", 4, "sub-rounds an incremental rebuild spreads the population across (with -rebuild-every)")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	if *dataDir != "" && *statePath != "" {
		return errors.New("-state and -data-dir are mutually exclusive: the data directory's checkpoints already carry the snapshot")
	}

	mech, err := geoind.NewNFoldGaussian(geoind.Params{
		Radius: *radius, Epsilon: *epsilon, Delta: *delta, N: *nFold,
	})
	if err != nil {
		return fmt.Errorf("building n-fold mechanism: %w", err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return fmt.Errorf("building nomadic mechanism: %w", err)
	}
	if *rebuildParts < 1 {
		return errors.New("-rebuild-parts must be at least 1")
	}
	// The spill tier is process-local scratch, never durable state: under
	// -data-dir it lives in a subdirectory the WAL scanner ignores, and
	// without one it lives in a temp dir removed on exit. Crash recovery
	// always rebuilds from the WAL.
	var spillDir string
	if *maxResident > 0 || *evictIdle > 0 {
		if *dataDir != "" {
			spillDir = filepath.Join(*dataDir, "spill")
		} else {
			tmp, err := os.MkdirTemp("", "edged-spill-*")
			if err != nil {
				return fmt.Errorf("creating spill dir: %w", err)
			}
			defer os.RemoveAll(tmp)
			spillDir = tmp
		}
	}
	engine, err := core.NewEngine(core.Config{
		Mechanism:        mech,
		NomadicMechanism: nomadic,
		Seed:             *seed,
		Shards:           *shards,
		SpillDir:         spillDir,
		MaxResidentUsers: *maxResident,
	})
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}
	defer engine.Close() // releases spill files; a no-op without the tier
	var store *wal.Store
	if *dataDir != "" {
		policy, interval, err := wal.ParsePolicy(*fsyncFlag)
		if err != nil {
			return fmt.Errorf("parsing -fsync: %w", err)
		}
		store, err = wal.Open(*dataDir, wal.Options{Policy: policy, Interval: interval})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
		}
		defer store.Close() // idempotent; the normal path closes in serveAndPersist
		recStart := time.Now()
		stats, err := engine.Recover(store)
		if err != nil {
			return fmt.Errorf("recovering state from %s: %w", *dataDir, err)
		}
		logger.Info("recovered state",
			slog.String("data_dir", *dataDir),
			slog.Duration("took", time.Since(recStart).Round(time.Millisecond)),
			slog.Uint64("checkpoint_lsn", stats.CheckpointLSN),
			slog.Int("replayed", stats.Replayed),
			slog.Int("op_errors", stats.OpErrors))
	}
	if *statePath != "" {
		switch err := engine.RestoreFile(*statePath); {
		case err == nil:
			logger.Info("restored state", slog.String("state", *statePath))
		case errors.Is(err, fs.ErrNotExist):
			logger.Info("no previous state, starting fresh", slog.String("state", *statePath))
		default:
			return fmt.Errorf("restoring state: %w", err)
		}
	}

	limit := adnet.PlatformLimits()[0] // Google: 5–65 km
	network, err := adnet.NewNetwork(&limit)
	if err != nil {
		return fmt.Errorf("building ad network: %w", err)
	}
	exchange, err := rtb.NewExchange(100*time.Millisecond, 0.05)
	if err != nil {
		return fmt.Errorf("building exchange: %w", err)
	}
	region := trace.DefaultConfig().Region
	rnd := randx.New(*seed, 0xEDEDED)
	for i := 0; i < *campaigns; i++ {
		loc := privRandomInRegion(rnd, region.BBox)
		campaign := adnet.Campaign{
			ID:       fmt.Sprintf("campaign-%05d", i),
			Location: loc,
			Radius:   limit.MinRadius + rnd.Float64()*(25_000-limit.MinRadius),
			Ad: adnet.Ad{
				ID:       fmt.Sprintf("ad-%05d", i),
				Title:    fmt.Sprintf("Offer #%d", i),
				Location: loc,
			},
		}
		if err := network.Register(campaign); err != nil {
			return fmt.Errorf("registering campaign %d: %w", i, err)
		}
		if *useRTB {
			bidder, err := rtb.NewCampaignBidder(campaign, 0.5+rnd.Float64()*4, 1e6)
			if err != nil {
				return fmt.Errorf("building bidder %d: %w", i, err)
			}
			if err := exchange.Register(bidder); err != nil {
				return fmt.Errorf("registering bidder %d: %w", i, err)
			}
		}
	}

	var provider edge.AdProvider = network
	if *useRTB {
		rtbProvider, err := rtb.NewProvider(exchange)
		if err != nil {
			return fmt.Errorf("building RTB provider: %w", err)
		}
		provider = rtbProvider
	}

	// The server's tracer is built here rather than defaulted so the slow
	// -trace threshold and the structured logger flow into the slow-trace
	// log lines (the in-package default traces silently).
	tracer := tracing.New(*seed, tracing.WithSlowThreshold(*slowTrace), tracing.WithLogger(logger))
	server, err := edge.NewServer(engine, provider, nil, logger, edge.WithTracer(tracer))
	if err != nil {
		return fmt.Errorf("building server: %w", err)
	}
	// The exchange's metric families are registered even in direct-match
	// mode so /metrics has a stable schema across both modes.
	exchange.Instrument(server.Registry())
	// The parallel fan-out layer shares the same registry so batch
	// rebuilds triggered through the engine are observable.
	par.Instrument(server.Registry())
	if store != nil {
		store.Instrument(server.Registry())
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("listening on debug addr %s: %w", *debugAddr, err)
		}
		defer dln.Close()
		go serveDebug(dln)
		logger.Info("pprof listener up", slog.String("url", fmt.Sprintf("http://%s/debug/pprof/", dln.Addr())))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	mode := "direct matching"
	if *useRTB {
		mode = fmt.Sprintf("RTB second-price auctions (%d bidders, 100 ms deadline)", exchange.Bidders())
	}
	logger.Info("serving",
		slog.String("url", fmt.Sprintf("http://%s", ln.Addr())),
		slog.Int("campaigns", *campaigns),
		slog.String("mode", mode),
		slog.Int("n", *nFold),
		slog.Float64("epsilon", *epsilon),
		slog.Float64("radius_m", *radius),
		slog.Float64("delta", *delta))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *evictIdle > 0 {
		go sweepIdle(ctx, engine, *evictIdle, logger)
	}
	if *rebuildEvery > 0 {
		go rebuildIncremental(ctx, engine, *rebuildEvery, *rebuildParts, logger)
	}
	if err := serveAndPersist(ctx, server, engine, ln, *statePath, store, *ckptEvery, logger); err != nil {
		return err
	}
	if ls, ok := provider.(interface{ LogSize() int }); ok {
		logger.Info("shut down cleanly", slog.Int("bid_requests", ls.LogSize()))
	}
	return nil
}

// serveAndPersist runs the server and makes the engine state durable on
// the way out — even when Serve fails. A listener or serve error must
// not discard the permanent obfuscation table: losing it would force a
// re-obfuscation on restart, which is exactly the longitudinal
// degradation the table exists to prevent. In durable mode (store !=
// nil) it additionally runs the periodic checkpointer and takes a final
// checkpoint before sealing the log, so the next start replays at most
// one checkpoint interval of records.
func serveAndPersist(ctx context.Context, server *edge.Server, engine *core.Engine, ln net.Listener, statePath string, store *wal.Store, ckptEvery time.Duration, logger *slog.Logger) error {
	var ckptDone chan struct{}
	stopCkpt := func() {}
	if store != nil && ckptEvery > 0 {
		ckptCtx, cancel := context.WithCancel(ctx)
		stopCkpt = cancel
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			ticker := time.NewTicker(ckptEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ckptCtx.Done():
					return
				case <-ticker.C:
					if err := checkpoint(engine, store, logger); err != nil {
						logger.Error("periodic checkpoint failed", slog.Any("err", err))
					}
				}
			}
		}()
	}

	serveErr := server.Serve(ctx, ln)
	if serveErr != nil {
		serveErr = fmt.Errorf("serving: %w", serveErr)
	}
	stopCkpt()
	if ckptDone != nil {
		<-ckptDone
	}
	if store != nil {
		if err := checkpoint(engine, store, logger); err != nil {
			serveErr = errors.Join(serveErr, fmt.Errorf("final checkpoint: %w", err))
		}
		if err := store.Close(); err != nil {
			serveErr = errors.Join(serveErr, fmt.Errorf("closing wal: %w", err))
		}
	}
	if statePath != "" {
		if err := engine.SnapshotFile(statePath); err != nil {
			return errors.Join(serveErr, fmt.Errorf("persisting state: %w", err))
		}
		logger.Info("state persisted", slog.String("state", statePath))
	}
	return serveErr
}

// sweepIdle periodically spills users idle for at least minIdle,
// keeping a long-tailed population's cold majority out of memory even
// when no hard -max-resident cap is set.
func sweepIdle(ctx context.Context, engine *core.Engine, minIdle time.Duration, logger *slog.Logger) {
	ticker := time.NewTicker(minIdle)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n, err := engine.EvictIdle(minIdle)
			if err != nil {
				logger.Error("idle eviction sweep failed", slog.Any("err", err))
				continue
			}
			if n > 0 {
				ts := engine.TierStats()
				logger.Info("evicted idle users",
					slog.Int("evicted", n),
					slog.Int("resident", ts.Resident),
					slog.Int("spilled", ts.Spilled))
			}
		}
	}
}

// rebuildIncremental runs one RebuildPart sub-round per tick, covering
// the whole population every parts ticks — the amortized form of the
// paper's periodic profile recomputation, which at millions of users
// must never stop the world.
func rebuildIncremental(ctx context.Context, engine *core.Engine, every time.Duration, parts int, logger *slog.Logger) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for tick := 0; ; tick++ {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			start := time.Now()
			if err := engine.RebuildPart(now, 0, tick%parts, parts); err != nil {
				logger.Error("incremental rebuild sub-round failed",
					slog.Int("part", tick%parts), slog.Int("parts", parts), slog.Any("err", err))
				continue
			}
			logger.Debug("incremental rebuild sub-round",
				slog.Int("part", tick%parts),
				slog.Int("parts", parts),
				slog.Duration("took", time.Since(start).Round(time.Millisecond)))
		}
	}
}

// checkpoint captures an engine snapshot and hands it to the store,
// which also compacts fully-covered WAL segments.
func checkpoint(engine *core.Engine, store *wal.Store, logger *slog.Logger) error {
	start := time.Now()
	lsn, data, err := engine.Checkpoint()
	if err != nil {
		return err
	}
	if err := store.WriteCheckpoint(lsn, data); err != nil {
		return err
	}
	logger.Info("checkpoint written",
		slog.Uint64("lsn", lsn),
		slog.Int("bytes", len(data)),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))
	return nil
}

// serveDebug serves the pprof handlers on ln. The profiling endpoints
// are mounted on a dedicated mux (not http.DefaultServeMux) so the debug
// listener exposes nothing else.
func serveDebug(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := edge.NewHTTPServer(mux)
	_ = srv.Serve(ln)
}

// privRandomInRegion draws a uniform point inside the bounding box.
func privRandomInRegion(rnd *randx.Rand, b geo.BBox) geo.Point {
	return geo.Point{
		X: b.MinX + rnd.Float64()*b.Width(),
		Y: b.MinY + rnd.Float64()*b.Height(),
	}
}
