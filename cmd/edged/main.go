// Command edged runs an Edge-PrivLocAd edge device as an HTTP service,
// backed by an in-process ad network seeded with synthetic radius-targeted
// campaigns.
//
// Usage:
//
//	edged -addr 127.0.0.1:8080 -campaigns 500 -epsilon 1 -n 10
//
// Endpoints: POST /v1/report, POST /v1/ads, POST /v1/rebuild,
// GET /v1/profile?user=..., GET /healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"math"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edged:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	flags := flag.NewFlagSet("edged", flag.ContinueOnError)
	var (
		addr      = flags.String("addr", "127.0.0.1:8080", "listen address")
		campaigns = flags.Int("campaigns", 500, "synthetic radius-targeted campaigns to register")
		epsilon   = flags.Float64("epsilon", 1, "privacy budget epsilon of the n-fold mechanism")
		radius    = flags.Float64("radius", 500, "indistinguishability radius r in metres")
		delta     = flags.Float64("delta", 0.01, "privacy slack delta")
		nFold     = flags.Int("n", 10, "number of obfuscated candidates per top location")
		seed      = flags.Uint64("seed", 1, "randomness seed")
		statePath = flags.String("state", "", "snapshot file: restored at startup when present, written on shutdown (keeps the obfuscation table permanent across restarts)")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}

	mech, err := geoind.NewNFoldGaussian(geoind.Params{
		Radius: *radius, Epsilon: *epsilon, Delta: *delta, N: *nFold,
	})
	if err != nil {
		return fmt.Errorf("building n-fold mechanism: %w", err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		return fmt.Errorf("building nomadic mechanism: %w", err)
	}
	engine, err := core.NewEngine(core.Config{
		Mechanism:        mech,
		NomadicMechanism: nomadic,
		Seed:             *seed,
	})
	if err != nil {
		return fmt.Errorf("building engine: %w", err)
	}
	if *statePath != "" {
		switch err := engine.RestoreFile(*statePath); {
		case err == nil:
			log.Printf("edged: restored state from %s", *statePath)
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("edged: no previous state at %s, starting fresh", *statePath)
		default:
			return fmt.Errorf("restoring state: %w", err)
		}
	}

	limit := adnet.PlatformLimits()[0] // Google: 5–65 km
	network, err := adnet.NewNetwork(&limit)
	if err != nil {
		return fmt.Errorf("building ad network: %w", err)
	}
	region := trace.DefaultConfig().Region
	rnd := randx.New(*seed, 0xEDEDED)
	for i := 0; i < *campaigns; i++ {
		loc := privRandomInRegion(rnd, region)
		if err := network.Register(adnet.Campaign{
			ID:       fmt.Sprintf("campaign-%05d", i),
			Location: loc,
			Radius:   limit.MinRadius + rnd.Float64()*(25_000-limit.MinRadius),
			Ad: adnet.Ad{
				ID:       fmt.Sprintf("ad-%05d", i),
				Title:    fmt.Sprintf("Offer #%d", i),
				Location: loc,
			},
		}); err != nil {
			return fmt.Errorf("registering campaign %d: %w", i, err)
		}
	}

	logger := log.New(os.Stderr, "edged: ", log.LstdFlags)
	server, err := edge.NewServer(engine, network, nil, logger)
	if err != nil {
		return fmt.Errorf("building server: %w", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	logger.Printf("serving on http://%s with %d campaigns (n=%d, eps=%g, r=%g m, delta=%g)",
		ln.Addr(), *campaigns, *nFold, *epsilon, *radius, *delta)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := server.Serve(ctx, ln); err != nil {
		return fmt.Errorf("serving: %w", err)
	}
	if *statePath != "" {
		if err := engine.SnapshotFile(*statePath); err != nil {
			return fmt.Errorf("persisting state: %w", err)
		}
		logger.Printf("state persisted to %s", *statePath)
	}
	logger.Printf("shut down cleanly; served %d bid requests", network.LogSize())
	return nil
}

// privRandomInRegion draws a uniform point inside the bounding box.
func privRandomInRegion(rnd *randx.Rand, b geo.BBox) geo.Point {
	return geo.Point{
		X: b.MinX + rnd.Float64()*b.Width(),
		Y: b.MinY + rnd.Float64()*b.Height(),
	}
}
