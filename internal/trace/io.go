package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/geo"
)

// userRecord is the JSON-lines on-disk form of one user. The first line of
// a dataset additionally carries the projection origin.
type userRecord struct {
	Origin *geo.LatLon `json:"origin,omitempty"`
	User   *User       `json:"user"`
}

// Write streams the dataset as JSON lines: the first record carries the
// projection origin, every record carries one user.
func Write(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, u := range ds.Users {
		rec := userRecord{User: u}
		if i == 0 {
			rec.Origin = &ds.Origin
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trace: encoding user %q: %w", u.ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing dataset: %w", err)
	}
	return nil
}

// Read parses a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	ds := &Dataset{}
	first := true
	for {
		var rec userRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding dataset: %w", err)
		}
		if first {
			if rec.Origin != nil {
				ds.Origin.Lat = rec.Origin.Lat
				ds.Origin.Lon = rec.Origin.Lon
			}
			first = false
		}
		if rec.User != nil {
			ds.Users = append(ds.Users, rec.User)
		}
	}
	return ds, nil
}

// WriteFile writes the dataset to path, creating or truncating it.
func WriteFile(path string, ds *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %q: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: closing %q: %w", path, cerr)
		}
	}()
	return Write(f, ds)
}

// ReadFile reads a dataset from path.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %q: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
