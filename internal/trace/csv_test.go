package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := smallConfig(6)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, ds.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(ds.Users) {
		t.Fatalf("users %d vs %d", len(back.Users), len(ds.Users))
	}
	orig := make(map[string]*User)
	for _, u := range ds.Users {
		orig[u.ID] = u
	}
	for _, u := range back.Users {
		o, ok := orig[u.ID]
		if !ok {
			t.Fatalf("unknown user %q after round trip", u.ID)
		}
		if len(u.CheckIns) != len(o.CheckIns) {
			t.Fatalf("user %s: %d vs %d check-ins", u.ID, len(u.CheckIns), len(o.CheckIns))
		}
		for i := range u.CheckIns {
			// Coordinates survive within the 7-decimal WGS-84 precision
			// (~1 cm); times survive at millisecond precision.
			if d := u.CheckIns[i].Pos.Dist(o.CheckIns[i].Pos); d > 0.05 {
				t.Fatalf("user %s check-in %d moved %g m", u.ID, i, d)
			}
			if !u.CheckIns[i].Time.Equal(o.CheckIns[i].Time.Truncate(0).UTC().Truncate(1e6)) &&
				u.CheckIns[i].Time.UnixMilli() != o.CheckIns[i].Time.UnixMilli() {
				t.Fatalf("user %s check-in %d time mismatch", u.ID, i)
			}
		}
		// The log format intentionally carries no ground truth.
		if len(u.TrueTops) != 0 {
			t.Errorf("user %s has tops after CSV import", u.ID)
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ds, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "log.csv")
	if err := WriteCSVFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, ds.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != 3 {
		t.Errorf("users = %d", len(back.Users))
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv"), ds.Origin); err == nil {
		t.Error("missing file expected error")
	}
	if err := WriteCSVFile("/nonexistent-dir/x.csv", ds); err == nil {
		t.Error("unwritable path expected error")
	}
}

func TestReadCSVMalformed(t *testing.T) {
	origin := DefaultOrigin()
	cases := []struct {
		name string
		body string
	}{
		{"bad header", "who,what,where,when\n"},
		{"bad lat", "user_id,lat,lon,timestamp_ms\nu1,notanumber,121.5,0\n"},
		{"bad lon", "user_id,lat,lon,timestamp_ms\nu1,31.1,nope,0\n"},
		{"out of range", "user_id,lat,lon,timestamp_ms\nu1,91,121.5,0\n"},
		{"bad time", "user_id,lat,lon,timestamp_ms\nu1,31.1,121.5,xyz\n"},
		{"empty user", "user_id,lat,lon,timestamp_ms\n,31.1,121.5,0\n"},
		{"short row", "user_id,lat,lon,timestamp_ms\nu1,31.1\n"},
		{"empty", ""},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.body), origin); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadCSVSortsUsersAndTimes(t *testing.T) {
	body := "user_id,lat,lon,timestamp_ms\n" +
		"zoe,31.10,121.50,2000\n" +
		"adam,31.11,121.51,5000\n" +
		"zoe,31.10,121.50,1000\n"
	ds, err := ReadCSV(strings.NewReader(body), DefaultOrigin())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 2 || ds.Users[0].ID != "adam" || ds.Users[1].ID != "zoe" {
		t.Fatalf("user order: %+v", ds.Users)
	}
	zoe := ds.Users[1]
	if !zoe.CheckIns[0].Time.Before(zoe.CheckIns[1].Time) {
		t.Error("check-ins not time-sorted")
	}
}
