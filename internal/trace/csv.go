package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/geo"
)

// csvHeader is the column layout of the CSV interchange format: the shape
// of a real RTB transaction log (stable device ID, WGS-84 coordinates,
// millisecond timestamp). Ground-truth top locations are deliberately NOT
// part of this format — a log never contains them.
var csvHeader = []string{"user_id", "lat", "lon", "timestamp_ms"}

// WriteCSV exports the dataset's check-ins as a flat RTB-log-style CSV,
// projecting plane coordinates back to WGS-84 via the dataset origin.
func WriteCSV(w io.Writer, ds *Dataset) error {
	proj, err := geo.NewProjection(ds.Origin)
	if err != nil {
		return fmt.Errorf("trace: csv projection: %w", err)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing csv header: %w", err)
	}
	for _, u := range ds.Users {
		for _, c := range u.CheckIns {
			ll := proj.ToLatLon(c.Pos)
			rec := []string{
				u.ID,
				strconv.FormatFloat(ll.Lat, 'f', 7, 64),
				strconv.FormatFloat(ll.Lon, 'f', 7, 64),
				strconv.FormatInt(c.Time.UnixMilli(), 10),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: writing csv row for %q: %w", u.ID, err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing csv: %w", err)
	}
	return nil
}

// ReadCSV imports a CSV written by WriteCSV (or any log in the same
// layout) as a dataset in the plane of the given origin. Users carry no
// ground-truth top locations — logs do not have them. Check-ins are
// time-sorted per user and users are ordered by ID.
func ReadCSV(r io.Reader, origin geo.LatLon) (*Dataset, error) {
	proj, err := geo.NewProjection(origin)
	if err != nil {
		return nil, fmt.Errorf("trace: csv projection: %w", err)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, header[i], want)
		}
	}

	byUser := make(map[string]*User)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: reading csv line %d: %w", line, err)
		}
		lat, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d lat: %w", line, err)
		}
		lon, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d lon: %w", line, err)
		}
		ll := geo.LatLon{Lat: lat, Lon: lon}
		if err := ll.Validate(); err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		ms, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d timestamp: %w", line, err)
		}
		id := rec[0]
		if id == "" {
			return nil, fmt.Errorf("trace: csv line %d: empty user_id", line)
		}
		u, ok := byUser[id]
		if !ok {
			u = &User{ID: id}
			byUser[id] = u
		}
		u.CheckIns = append(u.CheckIns, CheckIn{
			Pos:  proj.ToPlane(ll),
			Time: time.UnixMilli(ms).UTC(),
		})
	}

	ds := &Dataset{Origin: origin, Users: make([]*User, 0, len(byUser))}
	for _, u := range byUser {
		sortCheckIns(u.CheckIns)
		ds.Users = append(ds.Users, u)
	}
	sort.Slice(ds.Users, func(a, b int) bool { return ds.Users[a].ID < ds.Users[b].ID })
	return ds, nil
}

// WriteCSVFile writes the CSV export to path.
func WriteCSVFile(path string, ds *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %q: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: closing %q: %w", path, cerr)
		}
	}()
	return WriteCSV(f, ds)
}

// ReadCSVFile reads a CSV export from path.
func ReadCSVFile(path string, origin geo.LatLon) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %q: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f, origin)
}
