package trace

import (
	"fmt"

	"repro/internal/geo"
)

// Region names a city-scale generation extent: a WGS-84 projection
// origin plus the bounding box of the local plane around it. Lifting the
// extent out of the generator lets traveler scenarios and external-trace
// adapters supply cities other than the paper's Shanghai box without
// forking the generator.
type Region struct {
	// Name identifies the extent (e.g. "shanghai").
	Name string
	// Origin is the WGS-84 projection origin that maps the plane back to
	// lat/lon.
	Origin geo.LatLon
	// BBox is the coordinate extent in plane metres around Origin.
	geo.BBox
}

// NewRegion projects the WGS-84 corner pair into the plane around origin
// and returns the named region.
func NewRegion(name string, origin, min, max geo.LatLon) (Region, error) {
	proj, err := geo.NewProjection(origin)
	if err != nil {
		return Region{}, fmt.Errorf("trace: region %s: %w", name, err)
	}
	if err := min.Validate(); err != nil {
		return Region{}, fmt.Errorf("trace: region %s min corner: %w", name, err)
	}
	if err := max.Validate(); err != nil {
		return Region{}, fmt.Errorf("trace: region %s max corner: %w", name, err)
	}
	lo, hi := proj.ToPlane(min), proj.ToPlane(max)
	r := Region{
		Name:   name,
		Origin: origin,
		BBox:   geo.BBox{MinX: lo.X, MinY: lo.Y, MaxX: hi.X, MaxY: hi.Y},
	}
	if r.Width() <= 0 || r.Height() <= 0 {
		return Region{}, fmt.Errorf("trace: region %s has degenerate extent %+v", name, r.BBox)
	}
	return r, nil
}

// mustRegion backs the built-in catalog; the fixed coordinates are
// always valid, so reaching the panic is a programming error here.
func mustRegion(name string, origin, min, max geo.LatLon) Region {
	r, err := NewRegion(name, origin, min, max)
	if err != nil {
		panic(err)
	}
	return r
}

// Shanghai returns the paper's region: the Shanghai bounding box
// (lat ∈ [30.7, 31.4], lon ∈ [121, 122]) projected around its centre.
func Shanghai() Region {
	return mustRegion("shanghai",
		geo.LatLon{Lat: 31.05, Lon: 121.5},
		geo.LatLon{Lat: 30.7, Lon: 121},
		geo.LatLon{Lat: 31.4, Lon: 122})
}

// Cities returns the built-in region catalog: Shanghai plus the three
// nearby cities traveler scenarios roam to. Every region carries its own
// origin, so each can also drive the generator directly.
func Cities() []Region {
	return []Region{
		Shanghai(),
		mustRegion("suzhou",
			geo.LatLon{Lat: 31.325, Lon: 120.625},
			geo.LatLon{Lat: 31.2, Lon: 120.45},
			geo.LatLon{Lat: 31.45, Lon: 120.8}),
		mustRegion("hangzhou",
			geo.LatLon{Lat: 30.275, Lon: 120.2},
			geo.LatLon{Lat: 30.1, Lon: 120.0},
			geo.LatLon{Lat: 30.45, Lon: 120.4}),
		mustRegion("nanjing",
			geo.LatLon{Lat: 32.05, Lon: 118.775},
			geo.LatLon{Lat: 31.9, Lon: 118.6},
			geo.LatLon{Lat: 32.2, Lon: 118.95}),
	}
}

// InPlane re-projects the region's extent into the plane of another
// origin, so a traveler trip to Suzhou can be expressed in Shanghai's
// coordinates. Equirectangular projection error stays small at the
// few-hundred-km separations of the built-in catalog.
func (r Region) InPlane(origin geo.LatLon) (geo.BBox, error) {
	own, err := geo.NewProjection(r.Origin)
	if err != nil {
		return geo.BBox{}, fmt.Errorf("trace: region %s: %w", r.Name, err)
	}
	target, err := geo.NewProjection(origin)
	if err != nil {
		return geo.BBox{}, fmt.Errorf("trace: re-projecting region %s: %w", r.Name, err)
	}
	lo := target.ToPlane(own.ToLatLon(geo.Point{X: r.MinX, Y: r.MinY}))
	hi := target.ToPlane(own.ToLatLon(geo.Point{X: r.MaxX, Y: r.MaxY}))
	return geo.BBox{MinX: lo.X, MinY: lo.Y, MaxX: hi.X, MaxY: hi.Y}, nil
}
