// Package trace defines the mobility data model of the reproduction —
// check-ins, users, datasets — and a calibrated synthetic generator that
// stands in for the paper's proprietary RTB transaction-log dataset
// (37,262 Shanghai users, 2019-06-01 … 2021-05-31, 20–11,435 check-ins per
// user).
//
// The generator reproduces the dataset statistics the paper's algorithms
// actually consume: a handful of dominant "top" locations per user with
// Zipf-skewed visit frequencies, GPS wander tight enough for the 50 m
// connectivity threshold to cluster, a sublinear nomadic check-in stream
// (so location entropy declines with check-in volume, Fig. 3), and
// log-uniform per-user check-in counts.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/par"
	"repro/internal/randx"
)

// CheckIn is one raw spatiotemporal observation ("check-in" in the paper).
type CheckIn struct {
	Pos  geo.Point `json:"pos"`
	Time time.Time `json:"time"`
}

// TopLocation is ground truth for one of a user's routine locations.
type TopLocation struct {
	Pos   geo.Point `json:"pos"`
	Count int       `json:"count"`
}

// User is one mobile user's trace with ground-truth top locations.
type User struct {
	ID string `json:"id"`
	// CheckIns are sorted by ascending time.
	CheckIns []CheckIn `json:"check_ins"`
	// TrueTops are the ground-truth routine locations sorted by descending
	// visit count; TrueTops[0] is the top-1 location (e.g. home).
	TrueTops []TopLocation `json:"true_tops"`
}

// Points returns the check-in coordinates, preserving order.
func (u *User) Points() []geo.Point {
	pts := make([]geo.Point, len(u.CheckIns))
	for i, c := range u.CheckIns {
		pts[i] = c.Pos
	}
	return pts
}

// Between returns the check-ins with Time in [from, to), preserving order.
func (u *User) Between(from, to time.Time) []CheckIn {
	var out []CheckIn
	for _, c := range u.CheckIns {
		if !c.Time.Before(from) && c.Time.Before(to) {
			out = append(out, c)
		}
	}
	return out
}

// Dataset is a set of user traces in a common local plane.
type Dataset struct {
	// Origin is the projection origin that maps the plane back to WGS-84.
	Origin geo.LatLon `json:"origin"`
	Users  []*User    `json:"users"`
}

// Config parameterises the synthetic generator. Zero fields take the
// paper-calibrated defaults from DefaultConfig.
type Config struct {
	// NumUsers is the population size (paper: 37,262).
	NumUsers int
	// MinCheckIns / MaxCheckIns bound the log-uniform per-user check-in
	// count (paper: 20 and 11,435).
	MinCheckIns int
	MaxCheckIns int
	// MinTops / MaxTops bound the number of ground-truth top locations.
	MinTops int
	MaxTops int
	// ZipfExponent skews the visit frequency across top locations.
	ZipfExponent float64
	// WanderSigma is the per-axis Gaussian GPS wander around each top
	// location in metres; 15 m keeps most revisits within the paper's 50 m
	// connectivity threshold.
	WanderSigma float64
	// NomadicScale controls the number of one-off nomadic check-ins:
	// roughly NomadicScale·√total per user, so the nomadic fraction — and
	// with it the location entropy — declines as check-in volume grows.
	NomadicScale float64
	// Diurnal gives routine check-ins realistic time-of-day structure:
	// the most-visited location is visited at night (home), the second on
	// weekday business hours (work place), everything else uniformly.
	// Off, all timestamps are uniform over the window.
	Diurnal bool
	// Region is the named generation extent (projection origin plus the
	// coordinate bounds in plane metres); users' locations are drawn
	// uniformly inside it. DefaultConfig uses Shanghai(); traveler
	// scenarios and external adapters can supply any Cities() entry or
	// their own NewRegion.
	Region Region
	// Start / End bound check-in timestamps (paper: 2019-06-01…2021-05-31).
	Start time.Time
	End   time.Time
	// Seed makes generation reproducible.
	Seed uint64
	// Parallelism bounds the worker count used to generate users
	// concurrently; ≤ 0 selects runtime.NumCPU(). The generated dataset is
	// bit-identical for every parallelism level: each user draws from an
	// index-derived randx stream, never from a shared one.
	Parallelism int
}

// DefaultConfig returns the paper-calibrated configuration: the Shanghai
// bounding box (lat ∈ [30.7, 31.4], lon ∈ [121, 122]) projected around its
// centre, the paper's observation window, and its per-user volume range.
func DefaultConfig() Config {
	return Config{
		NumUsers:     1000,
		MinCheckIns:  20,
		MaxCheckIns:  11435,
		MinTops:      1,
		MaxTops:      6,
		ZipfExponent: 1.5,
		WanderSigma:  15,
		NomadicScale: 1.5,
		Region:       Shanghai(),
		Start:        time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC),
		End:          time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC),
		Seed:         1,
	}
}

// DefaultOrigin is the projection origin of DefaultConfig's region.
func DefaultOrigin() geo.LatLon { return Shanghai().Origin }

// Validate checks the configuration domain.
func (c Config) Validate() error {
	switch {
	case c.NumUsers < 1:
		return fmt.Errorf("trace: NumUsers %d must be positive", c.NumUsers)
	case c.MinCheckIns < 1 || c.MaxCheckIns < c.MinCheckIns:
		return fmt.Errorf("trace: check-in range [%d, %d] invalid", c.MinCheckIns, c.MaxCheckIns)
	case c.MinTops < 1 || c.MaxTops < c.MinTops:
		return fmt.Errorf("trace: top-location range [%d, %d] invalid", c.MinTops, c.MaxTops)
	case c.ZipfExponent <= 0 || math.IsNaN(c.ZipfExponent):
		return fmt.Errorf("trace: zipf exponent %g must be positive", c.ZipfExponent)
	case c.WanderSigma < 0:
		return fmt.Errorf("trace: wander sigma %g must be non-negative", c.WanderSigma)
	case c.NomadicScale < 0:
		return fmt.Errorf("trace: nomadic scale %g must be non-negative", c.NomadicScale)
	case c.Region.Width() <= 0 || c.Region.Height() <= 0:
		return fmt.Errorf("trace: degenerate region %+v", c.Region)
	case c.Region.Origin.Validate() != nil:
		return fmt.Errorf("trace: region origin: %v", c.Region.Origin.Validate())
	case !c.Start.Before(c.End):
		return fmt.Errorf("trace: time window [%v, %v) empty", c.Start, c.End)
	}
	return nil
}

// Generate synthesizes a dataset. The same Config (including Seed) always
// yields the same dataset.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rnd := randx.New(cfg.Seed, 0x9E3779B97F4A7C15)
	ds := &Dataset{
		Origin: cfg.Region.Origin,
		Users:  make([]*User, cfg.NumUsers),
	}
	// Users are generated in parallel, each from the stream derived from
	// its index, into its own slot — the dataset does not depend on worker
	// count or completion order.
	err := par.MapSeeded(cfg.Parallelism, cfg.NumUsers, rnd, func(i int, rnd *randx.Rand) error {
		u, err := generateUser(cfg, rnd, fmt.Sprintf("user-%06d", i))
		if err != nil {
			return fmt.Errorf("generating user %d: %w", i, err)
		}
		ds.Users[i] = u
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// GenerateUser synthesizes a single user with an explicit check-in count,
// used by case-study experiments (Fig. 2 and Fig. 4 use one user).
func GenerateUser(cfg Config, seed uint64, id string, checkIns int) (*User, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if checkIns < 1 {
		return nil, fmt.Errorf("trace: check-in count %d must be positive", checkIns)
	}
	cfg.MinCheckIns, cfg.MaxCheckIns = checkIns, checkIns
	rnd := randx.New(seed, 0xD1B54A32D192ED03)
	return generateUser(cfg, rnd, id)
}

func generateUser(cfg Config, rnd *randx.Rand, id string) (*User, error) {
	total := logUniformInt(rnd, cfg.MinCheckIns, cfg.MaxCheckIns)

	numTops := cfg.MinTops + rnd.IntN(cfg.MaxTops-cfg.MinTops+1)
	tops := make([]geo.Point, numTops)
	for i := range tops {
		tops[i] = randomInRegion(rnd, cfg.Region.BBox)
	}

	zipf, err := randx.NewZipf(rnd, numTops, cfg.ZipfExponent)
	if err != nil {
		return nil, fmt.Errorf("building zipf sampler: %w", err)
	}

	// Nomadic check-ins scale with √total so their fraction (and the
	// entropy they contribute) declines with volume.
	nomadic := int(math.Round(cfg.NomadicScale * math.Sqrt(float64(total))))
	if nomadic >= total {
		nomadic = total - 1
	}
	if nomadic < 0 {
		nomadic = 0
	}
	routine := total - nomadic

	counts := make([]int, numTops)
	checkIns := make([]CheckIn, 0, total)
	span := cfg.End.Sub(cfg.Start)
	randTime := func() time.Time {
		return cfg.Start.Add(time.Duration(rnd.Float64() * float64(span)))
	}
	for i := 0; i < routine; i++ {
		k := zipf.Next()
		counts[k]++
		pos := tops[k].Add(rnd.GaussianPolar(cfg.WanderSigma))
		at := randTime()
		if cfg.Diurnal {
			// Keep the reshaped time inside the window; near the window
			// edges the uniform time is kept instead.
			if d := diurnalTime(rnd, at, k); !d.Before(cfg.Start) && d.Before(cfg.End) {
				at = d
			}
		}
		checkIns = append(checkIns, CheckIn{Pos: pos, Time: at})
	}
	for i := 0; i < nomadic; i++ {
		checkIns = append(checkIns, CheckIn{Pos: randomInRegion(rnd, cfg.Region.BBox), Time: randTime()})
	}

	sortCheckIns(checkIns)

	trueTops := make([]TopLocation, 0, numTops)
	for i, c := range counts {
		if c > 0 {
			trueTops = append(trueTops, TopLocation{Pos: tops[i], Count: c})
		}
	}
	sortTops(trueTops)

	return &User{ID: id, CheckIns: checkIns, TrueTops: trueTops}, nil
}

// diurnalTime reshapes a uniform timestamp to the visit pattern of the
// rank-th top location: rank 0 (home) lands between 20:00 and 07:00,
// rank 1 (work) on a weekday between 09:00 and 18:00, deeper ranks keep
// the uniform time.
func diurnalTime(rnd *randx.Rand, at time.Time, rank int) time.Time {
	day := at.Truncate(24 * time.Hour)
	switch rank {
	case 0:
		// 20:00–31:00 (i.e. up to 07:00 next day).
		hour := 20 + rnd.Float64()*11
		return day.Add(time.Duration(hour * float64(time.Hour)))
	case 1:
		// Shift to the nearest weekday, then 09:00–18:00.
		for wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday; wd = day.Weekday() {
			day = day.AddDate(0, 0, 1)
		}
		hour := 9 + rnd.Float64()*9
		return day.Add(time.Duration(hour * float64(time.Hour)))
	default:
		return at
	}
}

// logUniformInt draws an integer log-uniformly from [lo, hi].
func logUniformInt(rnd *randx.Rand, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	lg := math.Log(float64(lo)) + rnd.Float64()*(math.Log(float64(hi))-math.Log(float64(lo)))
	v := int(math.Round(math.Exp(lg)))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

func randomInRegion(rnd *randx.Rand, b geo.BBox) geo.Point {
	return geo.Point{
		X: b.MinX + rnd.Float64()*b.Width(),
		Y: b.MinY + rnd.Float64()*b.Height(),
	}
}

func sortCheckIns(cs []CheckIn) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Time.Before(cs[j].Time) })
}

func sortTops(ts []TopLocation) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Count > ts[j].Count })
}

// Stats summarises a dataset for calibration checks.
type Stats struct {
	Users          int
	TotalCheckIns  int
	MinCheckIns    int
	MaxCheckIns    int
	MeanCheckIns   float64
	MeanTops       float64
	NomadicPercent float64 // estimated singleton fraction is not tracked here
}

// ComputeStats summarises ds.
func ComputeStats(ds *Dataset) Stats {
	s := Stats{Users: len(ds.Users), MinCheckIns: math.MaxInt}
	var topSum int
	for _, u := range ds.Users {
		n := len(u.CheckIns)
		s.TotalCheckIns += n
		if n < s.MinCheckIns {
			s.MinCheckIns = n
		}
		if n > s.MaxCheckIns {
			s.MaxCheckIns = n
		}
		topSum += len(u.TrueTops)
	}
	if s.Users > 0 {
		s.MeanCheckIns = float64(s.TotalCheckIns) / float64(s.Users)
		s.MeanTops = float64(topSum) / float64(s.Users)
	} else {
		s.MinCheckIns = 0
	}
	return s
}
