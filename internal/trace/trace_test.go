package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
)

func smallConfig(users int) Config {
	cfg := DefaultConfig()
	cfg.NumUsers = users
	cfg.MaxCheckIns = 800
	return cfg
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero users", func(c *Config) { c.NumUsers = 0 }},
		{"min checkins", func(c *Config) { c.MinCheckIns = 0 }},
		{"inverted checkins", func(c *Config) { c.MaxCheckIns = c.MinCheckIns - 1 }},
		{"zero tops", func(c *Config) { c.MinTops = 0 }},
		{"inverted tops", func(c *Config) { c.MaxTops = c.MinTops - 1 }},
		{"zipf", func(c *Config) { c.ZipfExponent = 0 }},
		{"wander", func(c *Config) { c.WanderSigma = -1 }},
		{"nomadic", func(c *Config) { c.NomadicScale = -0.1 }},
		{"region", func(c *Config) { c.Region = Region{} }},
		{"time", func(c *Config) { c.End = c.Start }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig(50)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 50 {
		t.Fatalf("users = %d", len(ds.Users))
	}
	ids := make(map[string]bool)
	for _, u := range ds.Users {
		if ids[u.ID] {
			t.Errorf("duplicate user id %q", u.ID)
		}
		ids[u.ID] = true
		n := len(u.CheckIns)
		if n < cfg.MinCheckIns || n > cfg.MaxCheckIns {
			t.Errorf("user %s has %d check-ins outside [%d, %d]", u.ID, n, cfg.MinCheckIns, cfg.MaxCheckIns)
		}
		if len(u.TrueTops) < 1 || len(u.TrueTops) > cfg.MaxTops {
			t.Errorf("user %s has %d tops", u.ID, len(u.TrueTops))
		}
		// Tops sorted by descending count.
		for i := 1; i < len(u.TrueTops); i++ {
			if u.TrueTops[i].Count > u.TrueTops[i-1].Count {
				t.Errorf("user %s tops not sorted", u.ID)
			}
		}
		// Check-ins sorted by time and inside the window.
		for i, c := range u.CheckIns {
			if i > 0 && c.Time.Before(u.CheckIns[i-1].Time) {
				t.Errorf("user %s check-ins not time-sorted", u.ID)
			}
			if c.Time.Before(cfg.Start) || !c.Time.Before(cfg.End) {
				t.Errorf("user %s check-in time %v outside window", u.ID, c.Time)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(10)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		ua, ub := a.Users[i], b.Users[i]
		if len(ua.CheckIns) != len(ub.CheckIns) {
			t.Fatalf("user %d: %d vs %d check-ins", i, len(ua.CheckIns), len(ub.CheckIns))
		}
		for j := range ua.CheckIns {
			if ua.CheckIns[j] != ub.CheckIns[j] {
				t.Fatalf("user %d check-in %d differs", i, j)
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed++
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Users[0].CheckIns) == len(a.Users[0].CheckIns) &&
		c.Users[0].CheckIns[0] == a.Users[0].CheckIns[0] {
		t.Error("different seeds produced identical first user")
	}
}

// TestGenerateRoutineDominance: most check-ins cluster around the true
// tops (the generator's nomadic stream is sublinear).
func TestGenerateRoutineDominance(t *testing.T) {
	cfg := smallConfig(20)
	cfg.MinCheckIns = 400
	cfg.MaxCheckIns = 800
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ds.Users {
		near := 0
		for _, c := range u.CheckIns {
			for _, top := range u.TrueTops {
				if c.Pos.Dist(top.Pos) < 5*cfg.WanderSigma {
					near++
					break
				}
			}
		}
		frac := float64(near) / float64(len(u.CheckIns))
		if frac < 0.85 {
			t.Errorf("user %s: only %.2f of check-ins near tops", u.ID, frac)
		}
	}
}

// TestGenerateTopCountsConsistent: the recorded top counts must sum to
// the routine check-ins (total minus nomadic).
func TestGenerateTopCountsConsistent(t *testing.T) {
	cfg := smallConfig(20)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ds.Users {
		sum := 0
		for _, top := range u.TrueTops {
			sum += top.Count
		}
		if sum > len(u.CheckIns) || sum == 0 {
			t.Errorf("user %s: top counts %d vs %d check-ins", u.ID, sum, len(u.CheckIns))
		}
	}
}

func TestGenerateUserFixedCount(t *testing.T) {
	cfg := DefaultConfig()
	u, err := GenerateUser(cfg, 7, "case-study", 1969)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.CheckIns) != 1969 {
		t.Errorf("check-ins = %d, want 1969", len(u.CheckIns))
	}
	if u.ID != "case-study" {
		t.Errorf("ID = %q", u.ID)
	}
	if _, err := GenerateUser(cfg, 7, "x", 0); err == nil {
		t.Error("checkIns=0 expected error")
	}
}

func TestUserBetween(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	u := &User{
		CheckIns: []CheckIn{
			{Time: base},
			{Time: base.Add(24 * time.Hour)},
			{Time: base.Add(48 * time.Hour)},
		},
	}
	got := u.Between(base, base.Add(36*time.Hour))
	if len(got) != 2 {
		t.Errorf("Between returned %d check-ins, want 2", len(got))
	}
	if got := u.Between(base.Add(72*time.Hour), base.Add(96*time.Hour)); len(got) != 0 {
		t.Errorf("empty window returned %d", len(got))
	}
}

func TestUserPoints(t *testing.T) {
	u := &User{CheckIns: []CheckIn{
		{Pos: geo.Point{X: 1, Y: 2}},
		{Pos: geo.Point{X: 3, Y: 4}},
	}}
	pts := u.Points()
	if len(pts) != 2 || pts[0] != (geo.Point{X: 1, Y: 2}) || pts[1] != (geo.Point{X: 3, Y: 4}) {
		t.Errorf("Points = %v", pts)
	}
}

// TestGenerateDiurnal: with Diurnal set, top-1 visits happen at night
// and top-2 visits on weekday business hours.
func TestGenerateDiurnal(t *testing.T) {
	cfg := smallConfig(10)
	cfg.Diurnal = true
	cfg.MinTops = 2
	cfg.MinCheckIns = 300
	cfg.MaxCheckIns = 600
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ds.Users {
		if len(u.TrueTops) < 2 {
			continue
		}
		top1, top2 := u.TrueTops[0].Pos, u.TrueTops[1].Pos
		var night1, total1, biz2, total2 int
		for _, c := range u.CheckIns {
			switch {
			case c.Pos.Dist(top1) < 5*cfg.WanderSigma:
				total1++
				if h := c.Time.Hour(); h >= 20 || h < 7 {
					night1++
				}
			case c.Pos.Dist(top2) < 5*cfg.WanderSigma:
				total2++
				wd := c.Time.Weekday()
				if h := c.Time.Hour(); wd >= time.Monday && wd <= time.Friday && h >= 9 && h < 18 {
					biz2++
				}
			}
		}
		if total1 > 20 && float64(night1)/float64(total1) < 0.8 {
			t.Errorf("user %s: only %d/%d top-1 visits at night", u.ID, night1, total1)
		}
		if total2 > 20 && float64(biz2)/float64(total2) < 0.8 {
			t.Errorf("user %s: only %d/%d top-2 visits in business hours", u.ID, biz2, total2)
		}
		// Window bounds still hold.
		for _, c := range u.CheckIns {
			if c.Time.Before(cfg.Start) || !c.Time.Before(cfg.End) {
				t.Fatalf("user %s check-in outside window: %v", u.ID, c.Time)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	cfg := smallConfig(30)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(ds)
	if s.Users != 30 {
		t.Errorf("Users = %d", s.Users)
	}
	if s.MinCheckIns < cfg.MinCheckIns || s.MaxCheckIns > cfg.MaxCheckIns {
		t.Errorf("check-in bounds [%d, %d]", s.MinCheckIns, s.MaxCheckIns)
	}
	if s.MeanCheckIns <= 0 || s.MeanTops < 1 {
		t.Errorf("means = %g, %g", s.MeanCheckIns, s.MeanTops)
	}
	empty := ComputeStats(&Dataset{})
	if empty.Users != 0 || empty.MinCheckIns != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := smallConfig(5)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Origin != ds.Origin {
		t.Errorf("origin %v vs %v", back.Origin, ds.Origin)
	}
	if len(back.Users) != len(ds.Users) {
		t.Fatalf("users %d vs %d", len(back.Users), len(ds.Users))
	}
	for i := range ds.Users {
		a, b := ds.Users[i], back.Users[i]
		if a.ID != b.ID || len(a.CheckIns) != len(b.CheckIns) || len(a.TrueTops) != len(b.TrueTops) {
			t.Fatalf("user %d mismatch", i)
		}
		for j := range a.CheckIns {
			if a.CheckIns[j].Pos != b.CheckIns[j].Pos || !a.CheckIns[j].Time.Equal(b.CheckIns[j].Time) {
				t.Fatalf("user %d check-in %d mismatch", i, j)
			}
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.jsonl")
	ds, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != 3 {
		t.Errorf("users = %d", len(back.Users))
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file expected error")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage input expected error")
	}
}

func TestLogUniformIntBounds(t *testing.T) {
	cfg := smallConfig(200)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Log-uniform draws should produce wide dynamic range: some users near
	// the bottom decade and some near the top.
	low, high := 0, 0
	for _, u := range ds.Users {
		if len(u.CheckIns) < 3*cfg.MinCheckIns {
			low++
		}
		if len(u.CheckIns) > cfg.MaxCheckIns/3 {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("log-uniform spread missing extremes: low=%d high=%d", low, high)
	}
}

// TestDefaultRegionScale: the configured region must be the ~95 km × 78 km
// Shanghai box of the paper.
func TestDefaultRegionScale(t *testing.T) {
	cfg := DefaultConfig()
	if w := cfg.Region.Width(); math.Abs(w-95_000) > 5_000 {
		t.Errorf("region width = %g m", w)
	}
	if h := cfg.Region.Height(); math.Abs(h-78_000) > 5_000 {
		t.Errorf("region height = %g m", h)
	}
}

func BenchmarkGenerateUser(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateUser(cfg, uint64(i), "bench", 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGenerateDeterministicAcrossParallelism: the dataset must be
// byte-identical no matter how many workers generate it.
func TestGenerateDeterministicAcrossParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumUsers = 40
	cfg.MaxCheckIns = 400
	cfg.Seed = 33

	encode := func(parallelism int) []byte {
		cfg.Parallelism = parallelism
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := encode(1)
	for _, parallelism := range []int{2, 8} {
		if got := encode(parallelism); !bytes.Equal(got, want) {
			t.Fatalf("parallelism=%d: dataset differs from sequential generation", parallelism)
		}
	}
}
