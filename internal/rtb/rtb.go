// Package rtb implements the real-time-bidding layer of the LBA business
// model (paper Section II-A): when a user triggers an ad request, the ad
// network invites advertisers to bid on it; matching must complete
// within a hard time limit (the paper cites 100 ms), and the winning ad
// is delivered.
//
// The exchange runs sealed-bid second-price auctions: bidders are
// queried concurrently under a per-auction deadline, late bidders are
// dropped from the round, the highest bid wins, and the winner pays the
// maximum of the second-highest bid and the reserve price.
package rtb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adnet"
	"repro/internal/geo"
)

// Auction errors.
var (
	// ErrNoBids reports an auction with no valid bids at or above the
	// reserve.
	ErrNoBids = errors.New("rtb: no bids")
	// ErrNoBidders reports an exchange with no registered bidders.
	ErrNoBidders = errors.New("rtb: no bidders registered")
)

// BidRequest is what the exchange shows bidders: the (already
// obfuscated, when Edge-PrivLocAd is in front) user location plus a
// stable user identifier.
type BidRequest struct {
	ID     string    `json:"id"`
	UserID string    `json:"user_id"`
	Loc    geo.Point `json:"loc"`
	At     time.Time `json:"at"`
}

// Bid is one advertiser's sealed bid.
type Bid struct {
	BidderID string   `json:"bidder_id"`
	PriceCPM float64  `json:"price_cpm"`
	Ad       adnet.Ad `json:"ad"`
}

// Bidder is an advertiser-side bidding agent.
type Bidder interface {
	// ID identifies the bidder.
	ID() string
	// Bid returns this bidder's response; ok=false means no bid. The
	// context carries the auction deadline; slow bidders whose context
	// expires are excluded from the round.
	Bid(ctx context.Context, req BidRequest) (bid Bid, ok bool)
}

// Result is one completed auction.
type Result struct {
	Request       BidRequest
	Winner        Bid
	ClearingPrice float64
	// Participants is the number of bids received in time.
	Participants int
	// TimedOut is the number of bidders that missed the deadline.
	TimedOut int
}

// Exchange runs auctions over a fixed bidder set. It is safe for
// concurrent use.
type Exchange struct {
	timeout time.Duration
	reserve float64

	// met holds the optional telemetry handles (see Instrument); nil
	// until instrumented.
	met atomic.Pointer[exchangeMetrics]

	mu      sync.RWMutex
	bidders []Bidder

	statsMu  sync.Mutex
	auctions int
	noFills  int
}

// NewExchange builds an exchange with the given per-auction deadline
// (≤ 0 selects the paper's 100 ms) and reserve price in CPM (≥ 0).
func NewExchange(timeout time.Duration, reserveCPM float64) (*Exchange, error) {
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	if reserveCPM < 0 {
		return nil, fmt.Errorf("rtb: reserve %g must be non-negative", reserveCPM)
	}
	return &Exchange{timeout: timeout, reserve: reserveCPM}, nil
}

// Register adds a bidder to future auctions.
func (e *Exchange) Register(b Bidder) error {
	if b == nil {
		return fmt.Errorf("rtb: nil bidder")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bidders = append(e.bidders, b)
	return nil
}

// Bidders returns the number of registered bidders.
func (e *Exchange) Bidders() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.bidders)
}

// Stats reports lifetime auction counts: total auctions and no-fill
// (ErrNoBids) auctions.
func (e *Exchange) Stats() (auctions, noFills int) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.auctions, e.noFills
}

// RunAuction executes one sealed-bid second-price auction under the
// exchange deadline. The winner is notified via its WinNotice method
// when it implements WinListener.
func (e *Exchange) RunAuction(ctx context.Context, req BidRequest) (*Result, error) {
	e.mu.RLock()
	bidders := make([]Bidder, len(e.bidders))
	copy(bidders, e.bidders)
	e.mu.RUnlock()

	e.statsMu.Lock()
	e.auctions++
	e.statsMu.Unlock()

	if len(bidders) == 0 {
		return nil, ErrNoBidders
	}

	start := time.Now()
	auctionCtx, cancel := context.WithTimeout(ctx, e.timeout)
	defer cancel()

	type answer struct {
		bid Bid
		ok  bool
	}
	answers := make(chan answer, len(bidders))
	for _, b := range bidders {
		go func(b Bidder) {
			bid, ok := b.Bid(auctionCtx, req)
			select {
			case answers <- answer{bid: bid, ok: ok}:
			case <-auctionCtx.Done():
			}
		}(b)
	}

	var bids []Bid
	received := 0
collect:
	for received < len(bidders) {
		select {
		case a := <-answers:
			received++
			if a.ok && a.bid.PriceCPM >= e.reserve {
				bids = append(bids, a.bid)
			}
		case <-auctionCtx.Done():
			break collect
		}
	}
	timedOut := len(bidders) - received
	e.met.Load().observeAuction(start, timedOut, len(bids) > 0)

	if len(bids) == 0 {
		e.statsMu.Lock()
		e.noFills++
		e.statsMu.Unlock()
		return nil, fmt.Errorf("%w for request %s (%d bidders, %d timed out)",
			ErrNoBids, req.ID, len(bidders), timedOut)
	}

	// Second-price: sort descending by price, stable tie-break by bidder
	// ID for determinism.
	sort.Slice(bids, func(a, b int) bool {
		if bids[a].PriceCPM != bids[b].PriceCPM {
			return bids[a].PriceCPM > bids[b].PriceCPM
		}
		return bids[a].BidderID < bids[b].BidderID
	})
	winner := bids[0]
	clearing := e.reserve
	if len(bids) > 1 && bids[1].PriceCPM > clearing {
		clearing = bids[1].PriceCPM
	}

	result := &Result{
		Request:       req,
		Winner:        winner,
		ClearingPrice: clearing,
		Participants:  len(bids),
		TimedOut:      timedOut,
	}
	e.notifyWinner(bidders, result)
	return result, nil
}

// WinListener is implemented by bidders that need win notices (budget
// pacing, frequency capping).
type WinListener interface {
	WinNotice(res *Result)
}

func (e *Exchange) notifyWinner(bidders []Bidder, res *Result) {
	for _, b := range bidders {
		if b.ID() != res.Winner.BidderID {
			continue
		}
		if wl, ok := b.(WinListener); ok {
			wl.WinNotice(res)
		}
		return
	}
}

// CampaignBidder is a standard advertiser agent: it bids on requests
// whose location falls inside its campaign's targeting circle, with a
// price that decays linearly with distance from the business, and it
// stops bidding when its budget is exhausted. Budget is debited by the
// clearing price on each win notice.
type CampaignBidder struct {
	campaign adnet.Campaign
	baseCPM  float64

	mu     sync.Mutex
	budget float64
	wins   int
	spend  float64
}

var (
	_ Bidder      = (*CampaignBidder)(nil)
	_ WinListener = (*CampaignBidder)(nil)
)

// NewCampaignBidder builds a bidder for the campaign with the given base
// price (CPM at distance zero) and total budget.
func NewCampaignBidder(c adnet.Campaign, baseCPM, budget float64) (*CampaignBidder, error) {
	if err := c.Validate(nil); err != nil {
		return nil, fmt.Errorf("rtb: campaign bidder: %w", err)
	}
	if baseCPM <= 0 {
		return nil, fmt.Errorf("rtb: base CPM %g must be positive", baseCPM)
	}
	if budget < 0 {
		return nil, fmt.Errorf("rtb: budget %g must be non-negative", budget)
	}
	return &CampaignBidder{campaign: c, baseCPM: baseCPM, budget: budget}, nil
}

// ID implements Bidder.
func (b *CampaignBidder) ID() string { return b.campaign.ID }

// Bid implements Bidder.
func (b *CampaignBidder) Bid(_ context.Context, req BidRequest) (Bid, bool) {
	d := b.campaign.Location.Dist(req.Loc)
	if d > b.campaign.Radius {
		return Bid{}, false
	}
	price := b.baseCPM * (1 - d/b.campaign.Radius)
	if price <= 0 {
		return Bid{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if price > b.budget {
		return Bid{}, false
	}
	return Bid{BidderID: b.campaign.ID, PriceCPM: price, Ad: b.campaign.Ad}, true
}

// WinNotice implements WinListener: debit the clearing price.
func (b *CampaignBidder) WinNotice(res *Result) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wins++
	b.spend += res.ClearingPrice
	b.budget -= res.ClearingPrice
	if b.budget < 0 {
		b.budget = 0
	}
}

// Budget returns the remaining budget.
func (b *CampaignBidder) Budget() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.budget
}

// Wins returns the number of auctions won.
func (b *CampaignBidder) Wins() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wins
}

// Spend returns the total amount debited.
func (b *CampaignBidder) Spend() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spend
}
