package rtb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/adnet"
	"repro/internal/geo"
)

// SlotResult is one slot of a multi-slot auction.
type SlotResult struct {
	Slot          int
	Winner        Bid
	ClearingPrice float64
}

// RunMultiSlotAuction runs a generalized second-price (GSP) auction for
// up to `slots` ad slots: bids are collected once under the deadline,
// ranked by price, the top k bidders win slots in order, and the winner
// of slot i pays max(bid_{i+1}, reserve). Win notices fire per slot.
func (e *Exchange) RunMultiSlotAuction(ctx context.Context, req BidRequest, slots int) ([]SlotResult, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("rtb: slots %d must be positive", slots)
	}
	e.mu.RLock()
	bidders := make([]Bidder, len(e.bidders))
	copy(bidders, e.bidders)
	e.mu.RUnlock()

	e.statsMu.Lock()
	e.auctions++
	e.statsMu.Unlock()

	if len(bidders) == 0 {
		return nil, ErrNoBidders
	}

	start := time.Now()
	auctionCtx, cancel := context.WithTimeout(ctx, e.timeout)
	defer cancel()

	type answer struct {
		bid Bid
		ok  bool
	}
	answers := make(chan answer, len(bidders))
	for _, b := range bidders {
		go func(b Bidder) {
			bid, ok := b.Bid(auctionCtx, req)
			select {
			case answers <- answer{bid: bid, ok: ok}:
			case <-auctionCtx.Done():
			}
		}(b)
	}

	var bids []Bid
	received := 0
collect:
	for received < len(bidders) {
		select {
		case a := <-answers:
			received++
			if a.ok && a.bid.PriceCPM >= e.reserve {
				bids = append(bids, a.bid)
			}
		case <-auctionCtx.Done():
			break collect
		}
	}
	e.met.Load().observeAuction(start, len(bidders)-received, len(bids) > 0)

	if len(bids) == 0 {
		e.statsMu.Lock()
		e.noFills++
		e.statsMu.Unlock()
		return nil, fmt.Errorf("%w for request %s", ErrNoBids, req.ID)
	}

	sort.Slice(bids, func(a, b int) bool {
		if bids[a].PriceCPM != bids[b].PriceCPM {
			return bids[a].PriceCPM > bids[b].PriceCPM
		}
		return bids[a].BidderID < bids[b].BidderID
	})
	if slots > len(bids) {
		slots = len(bids)
	}
	results := make([]SlotResult, 0, slots)
	for i := 0; i < slots; i++ {
		clearing := e.reserve
		if i+1 < len(bids) && bids[i+1].PriceCPM > clearing {
			clearing = bids[i+1].PriceCPM
		}
		res := SlotResult{Slot: i + 1, Winner: bids[i], ClearingPrice: clearing}
		results = append(results, res)
		e.notifyWinner(bidders, &Result{
			Request:       req,
			Winner:        res.Winner,
			ClearingPrice: res.ClearingPrice,
			Participants:  len(bids),
		})
	}
	return results, nil
}

// Provider adapts an Exchange to the edge service's AdProvider contract:
// every ad request runs one GSP auction and returns the winning ads in
// slot order. Like adnet.Network, it keeps the bid-request log that a
// longitudinal attacker observes.
type Provider struct {
	exchange *Exchange

	mu  sync.Mutex
	seq int
	log []adnet.BidRecord
}

// NewProvider wraps an exchange.
func NewProvider(exchange *Exchange) (*Provider, error) {
	if exchange == nil {
		return nil, errors.New("rtb: provider requires an exchange")
	}
	return &Provider{exchange: exchange}, nil
}

// RequestAds implements the edge.AdProvider contract.
func (p *Provider) RequestAds(userID string, loc geo.Point, at time.Time, limit int) []adnet.Ad {
	p.mu.Lock()
	p.seq++
	id := fmt.Sprintf("req-%08d", p.seq)
	p.log = append(p.log, adnet.BidRecord{UserID: userID, Loc: loc, Time: at})
	p.mu.Unlock()

	slots := limit
	if slots <= 0 {
		slots = 10
	}
	results, err := p.exchange.RunMultiSlotAuction(context.Background(), BidRequest{
		ID: id, UserID: userID, Loc: loc, At: at,
	}, slots)
	if err != nil {
		return nil // no fill: the user simply gets no ads
	}
	ads := make([]adnet.Ad, len(results))
	for i, r := range results {
		ads[i] = r.Winner.Ad
	}
	return ads
}

// BidLog returns a copy of the observed bid records.
func (p *Provider) BidLog() []adnet.BidRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]adnet.BidRecord, len(p.log))
	copy(out, p.log)
	return out
}

// LogSize returns the number of logged bid requests.
func (p *Provider) LogSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.log)
}

// ObservedLocations returns the locations logged for one user, in
// request order — the longitudinal attacker's input.
func (p *Provider) ObservedLocations(userID string) []geo.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []geo.Point
	for _, rec := range p.log {
		if rec.UserID == userID {
			out = append(out, rec.Loc)
		}
	}
	return out
}
