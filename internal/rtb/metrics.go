package rtb

import (
	"time"

	"repro/internal/telemetry"
)

// exchangeMetrics holds the exchange's telemetry handles, resolved once
// at Instrument time.
type exchangeMetrics struct {
	auctions     *telemetry.Counter
	noFills      *telemetry.Counter
	deadlineMiss *telemetry.Counter
	latency      *telemetry.Histogram
}

// Instrument registers the exchange's runtime metrics with reg and
// starts recording. rtb_auction_seconds tracks wall-clock auction
// latency against the paper's 100 ms matching deadline;
// rtb_deadline_miss_total counts auctions in which at least one bidder
// was dropped for missing the deadline.
func (e *Exchange) Instrument(reg *telemetry.Registry) {
	e.met.Store(&exchangeMetrics{
		auctions:     reg.Counter("rtb_auctions_total", "Auctions run (single and multi-slot)."),
		noFills:      reg.Counter("rtb_no_fill_total", "Auctions that produced no valid bid at or above the reserve."),
		deadlineMiss: reg.Counter("rtb_deadline_miss_total", "Auctions where at least one bidder missed the matching deadline."),
		latency:      reg.Histogram("rtb_auction_seconds", "Auction wall-clock duration (the paper cites a 100 ms matching limit).", nil),
	})
}

// observeAuction records one completed bid-collection round.
func (m *exchangeMetrics) observeAuction(start time.Time, timedOut int, filled bool) {
	if m == nil {
		return
	}
	m.auctions.Inc()
	m.latency.ObserveDuration(time.Since(start))
	if timedOut > 0 {
		m.deadlineMiss.Inc()
	}
	if !filled {
		m.noFills.Inc()
	}
}
