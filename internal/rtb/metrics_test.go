package rtb

import (
	"context"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/geo"
	"repro/internal/telemetry"
)

// stallBidder blocks until the auction deadline expires, then declines.
type stallBidder struct{ id string }

func (b *stallBidder) ID() string { return b.id }

func (b *stallBidder) Bid(ctx context.Context, _ BidRequest) (Bid, bool) {
	<-ctx.Done()
	return Bid{}, false
}

// fastBidder answers immediately with a fixed price.
type fastBidder struct {
	id    string
	price float64
}

func (b *fastBidder) ID() string { return b.id }

func (b *fastBidder) Bid(_ context.Context, _ BidRequest) (Bid, bool) {
	return Bid{BidderID: b.id, PriceCPM: b.price, Ad: adnet.Ad{ID: "ad-" + b.id}}, true
}

func TestExchangeMetrics(t *testing.T) {
	ex, err := NewExchange(20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ex.Instrument(reg)
	if err := ex.Register(&fastBidder{id: "fast", price: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Register(&stallBidder{id: "slow"}); err != nil {
		t.Fatal(err)
	}

	req := BidRequest{ID: "r1", UserID: "u", Loc: geo.Point{}, At: time.Now()}
	res, err := ex.RunAuction(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1", res.TimedOut)
	}

	if got := reg.Counter("rtb_auctions_total", "").Value(); got != 1 {
		t.Errorf("auctions = %d, want 1", got)
	}
	if got := reg.Counter("rtb_deadline_miss_total", "").Value(); got != 1 {
		t.Errorf("deadline misses = %d, want 1", got)
	}
	if got := reg.Counter("rtb_no_fill_total", "").Value(); got != 0 {
		t.Errorf("no-fills = %d, want 0", got)
	}
	h := reg.Histogram("rtb_auction_seconds", "", nil)
	if got := h.Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
	// The stalled bidder pinned the auction to its deadline: the observed
	// latency must be at least the 20 ms timeout.
	if sum := h.Sum(); sum < 0.02 {
		t.Errorf("auction latency sum = %gs, want >= 0.02s", sum)
	}
}

func TestExchangeMetricsMultiSlotAndNoFill(t *testing.T) {
	ex, err := NewExchange(20*time.Millisecond, 5) // reserve above every bid
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ex.Instrument(reg)
	if err := ex.Register(&fastBidder{id: "cheap", price: 1}); err != nil {
		t.Fatal(err)
	}

	req := BidRequest{ID: "r1", UserID: "u", Loc: geo.Point{}, At: time.Now()}
	if _, err := ex.RunMultiSlotAuction(context.Background(), req, 3); err == nil {
		t.Fatal("below-reserve auction filled")
	}

	if got := reg.Counter("rtb_auctions_total", "").Value(); got != 1 {
		t.Errorf("auctions = %d, want 1", got)
	}
	if got := reg.Counter("rtb_no_fill_total", "").Value(); got != 1 {
		t.Errorf("no-fills = %d, want 1", got)
	}
	if got := reg.Counter("rtb_deadline_miss_total", "").Value(); got != 0 {
		t.Errorf("deadline misses = %d, want 0", got)
	}
}

func TestUninstrumentedExchangeStillWorks(t *testing.T) {
	ex, err := NewExchange(20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Register(&fastBidder{id: "fast", price: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.RunAuction(context.Background(), BidRequest{ID: "r", UserID: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.RunMultiSlotAuction(context.Background(), BidRequest{ID: "r2", UserID: "u"}, 2); err != nil {
		t.Fatal(err)
	}
}
