package rtb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/geo"
)

// fixedBidder always bids a fixed price.
type fixedBidder struct {
	id    string
	price float64
	skip  bool
	delay time.Duration
}

func (f *fixedBidder) ID() string { return f.id }

func (f *fixedBidder) Bid(ctx context.Context, _ BidRequest) (Bid, bool) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return Bid{}, false
		}
	}
	if f.skip {
		return Bid{}, false
	}
	return Bid{BidderID: f.id, PriceCPM: f.price, Ad: adnet.Ad{ID: "ad-" + f.id}}, true
}

// winTracker records win notices.
type winTracker struct {
	fixedBidder
	mu   sync.Mutex
	wins []*Result
}

func (w *winTracker) WinNotice(res *Result) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wins = append(w.wins, res)
}

func req(id string) BidRequest {
	return BidRequest{ID: id, UserID: "u", Loc: geo.Point{}, At: time.Now()}
}

func TestNewExchangeDefaults(t *testing.T) {
	e, err := NewExchange(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.timeout != 100*time.Millisecond {
		t.Errorf("default timeout = %v", e.timeout)
	}
	if _, err := NewExchange(time.Second, -1); err == nil {
		t.Error("negative reserve expected error")
	}
}

func TestRegisterValidation(t *testing.T) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(nil); err == nil {
		t.Error("nil bidder expected error")
	}
	if err := e.Register(&fixedBidder{id: "a", price: 1}); err != nil {
		t.Fatal(err)
	}
	if e.Bidders() != 1 {
		t.Errorf("Bidders = %d", e.Bidders())
	}
}

func TestAuctionNoBidders(t *testing.T) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAuction(context.Background(), req("r1")); !errors.Is(err, ErrNoBidders) {
		t.Errorf("empty exchange: %v", err)
	}
}

// TestSecondPriceSemantics: highest bid wins, pays the second price.
func TestSecondPriceSemantics(t *testing.T) {
	e, err := NewExchange(time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*fixedBidder{
		{id: "low", price: 1.0},
		{id: "mid", price: 2.5},
		{id: "high", price: 4.0},
	} {
		if err := e.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.RunAuction(context.Background(), req("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner.BidderID != "high" {
		t.Errorf("winner = %s", res.Winner.BidderID)
	}
	if res.ClearingPrice != 2.5 {
		t.Errorf("clearing = %g, want second price 2.5", res.ClearingPrice)
	}
	if res.Participants != 3 || res.TimedOut != 0 {
		t.Errorf("participants/timeouts = %d/%d", res.Participants, res.TimedOut)
	}
}

func TestSingleBidderPaysReserve(t *testing.T) {
	e, err := NewExchange(time.Second, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "only", price: 9}); err != nil {
		t.Fatal(err)
	}
	res, err := e.RunAuction(context.Background(), req("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ClearingPrice != 1.5 {
		t.Errorf("clearing = %g, want reserve 1.5", res.ClearingPrice)
	}
}

func TestReserveFiltersBids(t *testing.T) {
	e, err := NewExchange(time.Second, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "cheap", price: 1.0}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAuction(context.Background(), req("r1")); !errors.Is(err, ErrNoBids) {
		t.Errorf("below-reserve bid: %v", err)
	}
	auctions, noFills := e.Stats()
	if auctions != 1 || noFills != 1 {
		t.Errorf("stats = %d/%d", auctions, noFills)
	}
}

// TestDeadlineDropsSlowBidders: the 100 ms matching limit — a bidder
// slower than the deadline is excluded, the fast one wins.
func TestDeadlineDropsSlowBidders(t *testing.T) {
	e, err := NewExchange(50*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "fast", price: 1.0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "slow-but-rich", price: 100, delay: 500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := e.RunAuction(context.Background(), req("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("auction took %v, deadline not enforced", elapsed)
	}
	if res.Winner.BidderID != "fast" {
		t.Errorf("winner = %s, slow bidder should have been dropped", res.Winner.BidderID)
	}
	if res.TimedOut != 1 {
		t.Errorf("timed out = %d, want 1", res.TimedOut)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "zeta", price: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "alpha", price: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := e.RunAuction(context.Background(), req(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner.BidderID != "alpha" {
			t.Fatalf("tie break not deterministic: %s", res.Winner.BidderID)
		}
	}
}

func TestWinNoticeDelivered(t *testing.T) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := &winTracker{fixedBidder: fixedBidder{id: "w", price: 5}}
	if err := e.Register(w); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "l", price: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAuction(context.Background(), req("r1")); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.wins) != 1 || w.wins[0].ClearingPrice != 1 {
		t.Errorf("win notices = %+v", w.wins)
	}
}

func TestCampaignBidderValidation(t *testing.T) {
	c := adnet.Campaign{ID: "c", Location: geo.Point{}, Radius: 5000, Ad: adnet.Ad{ID: "a"}}
	if _, err := NewCampaignBidder(adnet.Campaign{}, 1, 10); err == nil {
		t.Error("invalid campaign expected error")
	}
	if _, err := NewCampaignBidder(c, 0, 10); err == nil {
		t.Error("zero CPM expected error")
	}
	if _, err := NewCampaignBidder(c, 1, -1); err == nil {
		t.Error("negative budget expected error")
	}
	b, err := NewCampaignBidder(c, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() != "c" || b.Budget() != 10 {
		t.Errorf("bidder = %s, budget %g", b.ID(), b.Budget())
	}
}

func TestCampaignBidderTargeting(t *testing.T) {
	c := adnet.Campaign{ID: "c", Location: geo.Point{}, Radius: 5000, Ad: adnet.Ad{ID: "a"}}
	b, err := NewCampaignBidder(c, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// At the centre: full base price.
	bid, ok := b.Bid(ctx, BidRequest{Loc: geo.Point{}})
	if !ok || bid.PriceCPM != 2 {
		t.Errorf("centre bid = %+v, %v", bid, ok)
	}
	// Halfway out: half price.
	bid, ok = b.Bid(ctx, BidRequest{Loc: geo.Point{X: 2500, Y: 0}})
	if !ok || bid.PriceCPM != 1 {
		t.Errorf("half-radius bid = %+v, %v", bid, ok)
	}
	// Outside: no bid.
	if _, ok := b.Bid(ctx, BidRequest{Loc: geo.Point{X: 6000, Y: 0}}); ok {
		t.Error("out-of-range bid placed")
	}
	// At the exact edge the linear price is zero: no bid.
	if _, ok := b.Bid(ctx, BidRequest{Loc: geo.Point{X: 5000, Y: 0}}); ok {
		t.Error("zero-price bid placed")
	}
}

// TestCampaignBudgetEnforcement: a bidder stops bidding once its budget
// cannot cover its own price, and win notices debit the clearing price.
func TestCampaignBudgetEnforcement(t *testing.T) {
	c := adnet.Campaign{ID: "rich", Location: geo.Point{}, Radius: 5000, Ad: adnet.Ad{ID: "a"}}
	b, err := NewCampaignBidder(c, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "rival", price: 3}); err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i := 0; i < 10; i++ {
		res, err := e.RunAuction(context.Background(), req(fmt.Sprintf("r%d", i)))
		if err != nil {
			break
		}
		if res.Winner.BidderID == "rich" {
			wins++
		}
	}
	// Budget 10 at clearing price 3 allows exactly 3 wins (spend 9,
	// remaining 1 < own price 4 → no further bids).
	if wins != 3 {
		t.Errorf("wins = %d, want 3", wins)
	}
	if b.Spend() != 9 || b.Budget() != 1 {
		t.Errorf("spend/budget = %g/%g", b.Spend(), b.Budget())
	}
	if b.Wins() != 3 {
		t.Errorf("Wins() = %d", b.Wins())
	}
}

// TestAuctionConcurrency: concurrent auctions over shared bidders are
// race-free and all complete.
func TestAuctionConcurrency(t *testing.T) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Register(&fixedBidder{id: fmt.Sprintf("b%d", i), price: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := e.RunAuction(context.Background(), req(fmt.Sprintf("r%d-%d", g, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Winner.BidderID != "b4" {
					t.Errorf("winner = %s", res.Winner.BidderID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	auctions, noFills := e.Stats()
	if auctions != 320 || noFills != 0 {
		t.Errorf("stats = %d/%d", auctions, noFills)
	}
}

// TestClearingPriceNeverExceedsWinnerBid property over many auctions.
func TestClearingPriceNeverExceedsWinnerBid(t *testing.T) {
	e, err := NewExchange(time.Second, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := e.Register(&fixedBidder{id: fmt.Sprintf("b%d", i), price: float64(i%5) + 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		res, err := e.RunAuction(context.Background(), req(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.ClearingPrice > res.Winner.PriceCPM {
			t.Fatalf("clearing %g exceeds winning bid %g", res.ClearingPrice, res.Winner.PriceCPM)
		}
		if res.ClearingPrice < 0.25 {
			t.Fatalf("clearing %g below reserve", res.ClearingPrice)
		}
	}
}

func BenchmarkAuction8Bidders(b *testing.B) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := e.Register(&fixedBidder{id: fmt.Sprintf("b%d", i), price: float64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunAuction(ctx, req("bench")); err != nil {
			b.Fatal(err)
		}
	}
}
