package rtb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/geo"
)

func TestMultiSlotGSP(t *testing.T) {
	e, err := NewExchange(time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*fixedBidder{
		{id: "a", price: 5},
		{id: "b", price: 4},
		{id: "c", price: 3},
		{id: "d", price: 0.1}, // below reserve: filtered
	} {
		if err := e.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	results, err := e.RunMultiSlotAuction(context.Background(), req("r1"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("slots = %d", len(results))
	}
	// GSP: slot 1 winner "a" pays bid 2 ("b": 4); slot 2 winner "b" pays
	// bid 3 ("c": 3).
	if results[0].Winner.BidderID != "a" || results[0].ClearingPrice != 4 {
		t.Errorf("slot 1 = %+v", results[0])
	}
	if results[1].Winner.BidderID != "b" || results[1].ClearingPrice != 3 {
		t.Errorf("slot 2 = %+v", results[1])
	}
}

func TestMultiSlotFewerBidsThanSlots(t *testing.T) {
	e, err := NewExchange(time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&fixedBidder{id: "solo", price: 2}); err != nil {
		t.Fatal(err)
	}
	results, err := e.RunMultiSlotAuction(context.Background(), req("r1"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("slots filled = %d, want 1", len(results))
	}
	// Sole winner pays the reserve.
	if results[0].ClearingPrice != 1 {
		t.Errorf("clearing = %g", results[0].ClearingPrice)
	}
}

func TestMultiSlotErrors(t *testing.T) {
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunMultiSlotAuction(context.Background(), req("r"), 0); err == nil {
		t.Error("zero slots expected error")
	}
	if _, err := e.RunMultiSlotAuction(context.Background(), req("r"), 1); !errors.Is(err, ErrNoBidders) {
		t.Errorf("no bidders: %v", err)
	}
	if err := e.Register(&fixedBidder{id: "x", skip: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunMultiSlotAuction(context.Background(), req("r"), 1); !errors.Is(err, ErrNoBids) {
		t.Errorf("no bids: %v", err)
	}
}

// TestMultiSlotGSPPricesMonotone property: slot prices never increase
// with slot rank and never exceed the slot winner's own bid.
func TestMultiSlotGSPPricesMonotone(t *testing.T) {
	e, err := NewExchange(time.Second, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.Register(&fixedBidder{id: fmt.Sprintf("b%02d", i), price: float64((i*7)%10) + 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	results, err := e.RunMultiSlotAuction(context.Background(), req("r"), 10)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, r := range results {
		if r.ClearingPrice > r.Winner.PriceCPM {
			t.Fatalf("slot %d clears above its own bid", r.Slot)
		}
		if r.ClearingPrice > prev {
			t.Fatalf("slot %d price %g exceeds previous %g", r.Slot, r.ClearingPrice, prev)
		}
		prev = r.ClearingPrice
	}
}

func TestProviderAdapter(t *testing.T) {
	if _, err := NewProvider(nil); err == nil {
		t.Error("nil exchange expected error")
	}
	e, err := NewExchange(time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	shop := geo.Point{X: 1000, Y: 0}
	campaign := adnet.Campaign{ID: "c1", Location: shop, Radius: 20_000, Ad: adnet.Ad{ID: "ad1", Location: shop}}
	bidder, err := NewCampaignBidder(campaign, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(bidder); err != nil {
		t.Fatal(err)
	}
	p, err := NewProvider(e)
	if err != nil {
		t.Fatal(err)
	}

	at := time.Now()
	ads := p.RequestAds("u1", geo.Point{}, at, 3)
	if len(ads) != 1 || ads[0].ID != "ad1" {
		t.Errorf("ads = %+v", ads)
	}
	// No fill far away: empty, not an error.
	if ads := p.RequestAds("u1", geo.Point{X: 90_000, Y: 0}, at, 3); len(ads) != 0 {
		t.Errorf("far request returned %v", ads)
	}
	// Both requests were logged (the attacker sees no-fill requests too).
	if got := len(p.BidLog()); got != 2 {
		t.Errorf("bid log = %d", got)
	}
	obs := p.ObservedLocations("u1")
	if len(obs) != 2 || obs[0] != (geo.Point{}) {
		t.Errorf("observed = %v", obs)
	}
	if got := p.ObservedLocations("nobody"); got != nil {
		t.Errorf("unknown user observed %v", got)
	}
}
