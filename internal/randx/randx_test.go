package randx

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/mathx"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 1)
	b := New(42, 1)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("identical seeds diverged")
		}
	}
	c := New(42, 2)
	same := true
	a2 := New(42, 1)
	for i := 0; i < 16; i++ {
		if a2.Float64() != c.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different streams produced identical output")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7, 7)
	child := parent.Split()
	if child == nil {
		t.Fatal("nil child")
	}
	// Two splits from identical parents are identical.
	p2 := New(7, 7)
	c2 := p2.Split()
	for i := 0; i < 32; i++ {
		if child.Float64() != c2.Float64() {
			t.Fatal("deterministic split diverged")
		}
	}
}

// TestGaussianPolarMoments: the sampler must produce zero-mean noise with
// per-axis standard deviation sigma and Rayleigh-distributed radii.
func TestGaussianPolarMoments(t *testing.T) {
	const n = 200_000
	sigma := 750.0
	r := New(1, 1)
	var mx, my, mr mathx.OnlineMoments
	within := 0
	rMedian := sigma * math.Sqrt(2*math.Ln2) // Rayleigh median
	for i := 0; i < n; i++ {
		p := r.GaussianPolar(sigma)
		mx.Add(p.X)
		my.Add(p.Y)
		d := p.Norm()
		mr.Add(d)
		if d <= rMedian {
			within++
		}
	}
	if math.Abs(mx.Mean()) > 5*sigma/math.Sqrt(n)*3 {
		t.Errorf("x mean = %g, want ~0", mx.Mean())
	}
	if math.Abs(my.Mean()) > 5*sigma/math.Sqrt(n)*3 {
		t.Errorf("y mean = %g, want ~0", my.Mean())
	}
	if rel := math.Abs(mx.StdDev()-sigma) / sigma; rel > 0.01 {
		t.Errorf("x stddev = %g, want %g", mx.StdDev(), sigma)
	}
	if rel := math.Abs(my.StdDev()-sigma) / sigma; rel > 0.01 {
		t.Errorf("y stddev = %g, want %g", my.StdDev(), sigma)
	}
	// Rayleigh mean radius is σ√(π/2).
	wantMeanR := sigma * math.Sqrt(math.Pi/2)
	if rel := math.Abs(mr.Mean()-wantMeanR) / wantMeanR; rel > 0.01 {
		t.Errorf("mean radius = %g, want %g", mr.Mean(), wantMeanR)
	}
	if frac := float64(within) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction within Rayleigh median = %g, want 0.5", frac)
	}
}

func TestGaussianPolarDegenerateSigma(t *testing.T) {
	r := New(1, 1)
	if p := r.GaussianPolar(0); p != (geo.Point{}) {
		t.Errorf("sigma=0 => origin, got %v", p)
	}
	if p := r.GaussianPolar(-5); p != (geo.Point{}) {
		t.Errorf("sigma<0 => origin, got %v", p)
	}
}

// TestPlanarLaplaceRadiusDistribution: empirical CDF of the radius must
// match C_ε(r) = 1 - (1+εr)e^(-εr).
func TestPlanarLaplaceRadiusDistribution(t *testing.T) {
	const n = 100_000
	eps := math.Log(4) / 200
	r := New(2, 9)
	var radii []float64
	for i := 0; i < n; i++ {
		p, err := r.PlanarLaplace(eps)
		if err != nil {
			t.Fatal(err)
		}
		radii = append(radii, p.Norm())
	}
	for _, checkR := range []float64{100, 200, 400, 800, 1600} {
		within := 0
		for _, rad := range radii {
			if rad <= checkR {
				within++
			}
		}
		got := float64(within) / n
		want := mathx.PlanarLaplaceCDF(checkR, eps)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("CDF at %g m: empirical %g vs analytic %g", checkR, got, want)
		}
	}
}

func TestPlanarLaplaceInvalidEpsilon(t *testing.T) {
	r := New(1, 1)
	if _, err := r.PlanarLaplace(0); err == nil {
		t.Error("epsilon=0 expected error")
	}
	if _, err := r.PlanarLaplace(-1); err == nil {
		t.Error("epsilon<0 expected error")
	}
}

// TestUniformDiskUniformity: area uniformity means the fraction of points
// within radius ρ is (ρ/R)².
func TestUniformDiskUniformity(t *testing.T) {
	const n = 100_000
	radius := 1000.0
	r := New(3, 3)
	counts := map[float64]int{250: 0, 500: 0, 750: 0}
	for i := 0; i < n; i++ {
		p := r.UniformDisk(radius)
		d := p.Norm()
		if d > radius {
			t.Fatalf("sample outside disk: %g > %g", d, radius)
		}
		for rho := range counts {
			if d <= rho {
				counts[rho]++
			}
		}
	}
	for rho, c := range counts {
		got := float64(c) / n
		want := (rho / radius) * (rho / radius)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("fraction within %g = %g, want %g", rho, got, want)
		}
	}
}

func TestUniformInCircleStaysInside(t *testing.T) {
	c := geo.Circle{Center: geo.Point{X: 100, Y: -50}, Radius: 30}
	r := New(4, 4)
	for i := 0; i < 10_000; i++ {
		p := r.UniformInCircle(c)
		if !c.Contains(p) {
			t.Fatalf("point %v escaped circle %v", p, c)
		}
	}
}

func TestUniformDiskDegenerateRadius(t *testing.T) {
	r := New(1, 1)
	if p := r.UniformDisk(0); p != (geo.Point{}) {
		t.Errorf("radius=0 => origin, got %v", p)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(5, 5)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var o mathx.OnlineMoments
		for i := 0; i < 50_000; i++ {
			o.Add(float64(r.Poisson(mean)))
		}
		if rel := math.Abs(o.Mean()-mean) / mean; rel > 0.05 {
			t.Errorf("Poisson(%g) mean = %g", mean, o.Mean())
		}
		if rel := math.Abs(o.Variance()-mean) / mean; rel > 0.1 {
			t.Errorf("Poisson(%g) variance = %g", mean, o.Variance())
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(6, 6)
	z, err := NewZipf(r, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	counts := make([]int, 5)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	w := z.Weights()
	var totalW float64
	for i, ww := range w {
		totalW += ww
		got := float64(counts[i]) / n
		if math.Abs(got-ww) > 0.01 {
			t.Errorf("rank %d: frequency %g vs weight %g", i, got, ww)
		}
	}
	if math.Abs(totalW-1) > 1e-12 {
		t.Errorf("weights sum to %g", totalW)
	}
	// Rank order must be decreasing.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("rank %d more frequent than rank %d", i, i-1)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	r := New(1, 1)
	if _, err := NewZipf(r, 0, 1); err == nil {
		t.Error("n=0 expected error")
	}
	if _, err := NewZipf(r, 5, 0); err == nil {
		t.Error("s=0 expected error")
	}
	if _, err := NewZipf(r, 5, math.NaN()); err == nil {
		t.Error("NaN s expected error")
	}
}

func TestPassthroughSamplers(t *testing.T) {
	r := New(15, 15)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("Uint64 produced only %d distinct values in 100 draws", len(seen))
	}
	var o mathx.OnlineMoments
	for i := 0; i < 20_000; i++ {
		o.Add(r.NormFloat64())
	}
	if math.Abs(o.Mean()) > 0.05 || math.Abs(o.StdDev()-1) > 0.05 {
		t.Errorf("NormFloat64 moments: mean %g stddev %g", o.Mean(), o.StdDev())
	}
	perm := r.Perm(10)
	present := make([]bool, 10)
	for _, p := range perm {
		present[p] = true
	}
	for i, ok := range present {
		if !ok {
			t.Errorf("Perm missing %d", i)
		}
	}
	vals := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", vals)
	}
	if a := r.Angle(); a < 0 || a >= 2*math.Pi {
		t.Errorf("Angle out of range: %g", a)
	}
}

func TestMarshalStateRoundTrip(t *testing.T) {
	r := New(9, 9)
	// Burn some values so the state is mid-stream.
	for i := 0; i < 100; i++ {
		r.Float64()
	}
	state, err := r.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromState(state)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Float64(), restored.Float64(); a != b {
			t.Fatalf("restored stream diverged at %d: %g vs %g", i, a, b)
		}
	}
	if _, err := NewFromState([]byte("bogus")); err == nil {
		t.Error("garbage state expected error")
	}
}

func BenchmarkGaussianPolar(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.GaussianPolar(1000)
	}
}

func BenchmarkPlanarLaplace(b *testing.B) {
	r := New(1, 1)
	eps := math.Log(4) / 200
	for i := 0; i < b.N; i++ {
		if _, err := r.PlanarLaplace(eps); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSeqStreamsDeterministicAndIndependent(t *testing.T) {
	// Stream(i) must be a pure function of (Seq, i): two Seqs split from
	// identically-seeded parents yield identical indexed streams, in any
	// derivation order.
	qa := New(11, 7).SplitSeq()
	qb := New(11, 7).SplitSeq()
	for _, i := range []int{0, 1, 5, 2, 100000, 3} {
		a, b := qa.Stream(i), qb.Stream(i)
		for k := 0; k < 16; k++ {
			if va, vb := a.Uint64(), b.Uint64(); va != vb {
				t.Fatalf("stream %d draw %d: %d vs %d", i, k, va, vb)
			}
		}
	}

	// Adjacent indexes must be decorrelated: their first draws differ and
	// a crude correlation check over many draws stays near zero.
	s0, s1 := qa.Stream(0), qa.Stream(1)
	if s0.Uint64() == s1.Uint64() {
		t.Fatal("adjacent indexed streams share their first draw")
	}
	var match int
	const draws = 4096
	for k := 0; k < draws; k++ {
		if (s0.Uint64()>>63)^(s1.Uint64()>>63) == 0 {
			match++
		}
	}
	if frac := float64(match) / draws; frac < 0.45 || frac > 0.55 {
		t.Errorf("adjacent streams correlated: top-bit agreement %.3f", frac)
	}

	// Splitting consumes the parent deterministically: the parent's next
	// draw is the same as after two manual draws.
	p1, p2 := New(11, 7), New(11, 7)
	p1.SplitSeq()
	p2.Uint64()
	p2.Uint64()
	if p1.Uint64() != p2.Uint64() {
		t.Error("SplitSeq consumed an unexpected number of parent draws")
	}
}
