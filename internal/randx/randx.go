// Package randx provides deterministic, seedable random sampling for the
// Edge-PrivLocAd reproduction: the paper's polar Gaussian sampler
// (Algorithm 3), the planar-Laplace sampler of geo-indistinguishability,
// uniform-in-disk sampling, and the Poisson/Zipf generators that drive the
// synthetic mobility workload.
//
// Every sampler draws from an explicit *Rand stream so experiments are
// reproducible run-to-run and parallel workers can own independent streams.
package randx

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/geo"
	"repro/internal/mathx"
)

// Rand is a deterministic random stream. It wraps the standard PCG
// generator with the domain samplers the reproduction needs.
type Rand struct {
	pcg *rand.PCG
	src *rand.Rand
}

// New creates a stream seeded with the pair (seed, stream). Distinct
// (seed, stream) pairs yield independent sequences.
func New(seed, stream uint64) *Rand {
	pcg := rand.NewPCG(seed, stream)
	return &Rand{pcg: pcg, src: rand.New(pcg)}
}

// MarshalState captures the stream's exact position so a restored stream
// continues the identical sequence (engine snapshots rely on this to
// stay reproducible across restarts).
func (r *Rand) MarshalState() ([]byte, error) {
	data, err := r.pcg.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("randx: marshalling PCG state: %w", err)
	}
	return data, nil
}

// NewFromState rebuilds a stream from MarshalState output.
func NewFromState(data []byte) (*Rand, error) {
	pcg := rand.NewPCG(0, 0)
	if err := pcg.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("randx: unmarshalling PCG state: %w", err)
	}
	return &Rand{pcg: pcg, src: rand.New(pcg)}, nil
}

// Split derives a new independent stream from r; the derived stream is a
// pure function of r's current state, so splitting is itself deterministic.
func (r *Rand) Split() *Rand {
	return New(r.src.Uint64(), r.src.Uint64())
}

// Seq is frozen base material for deriving an indexed family of
// independent streams: Stream(i) is a pure function of (Seq, i), so a
// parallel fan-out that hands shard i the stream Seq.Stream(i) produces
// results independent of worker count and completion order. internal/par
// builds on this for its deterministic MapSeeded.
type Seq struct {
	seed, stream uint64
}

// SplitSeq consumes exactly two draws from r — the same cost for any
// later fan-out width — and returns base material for indexed streams.
func (r *Rand) SplitSeq() Seq {
	return Seq{seed: r.src.Uint64(), stream: r.src.Uint64()}
}

// GoldenGamma is the SplitMix64 increment (2⁶⁴/φ, odd): consecutive
// indexes multiplied by it land maximally far apart before the Mix64
// avalanche.
const GoldenGamma = 0x9E3779B97F4A7C15

// Stream derives the i-th stream of the family. Distinct indexes yield
// independent PCG streams via a SplitMix64 finalizer on the index.
func (q Seq) Stream(i int) *Rand {
	return New(q.seed, Mix64(q.stream+uint64(i)*GoldenGamma))
}

// Mix64 is the SplitMix64 finalizer: a bijective avalanche so that
// consecutive indexes map to well-separated PCG stream selectors.
// Callers deriving an indexed seed family (e.g. per-edge engine seeds)
// should avalanche BEFORE adding the index increment — a plain
// seed + i*GoldenGamma is linear, so nearby base seeds collide across
// indexes (seed s index 1 == seed s+GoldenGamma index 0).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Angle returns a uniform angle in [0, 2π).
func (r *Rand) Angle() float64 { return 2 * math.Pi * r.src.Float64() }

// GaussianPolar draws an isotropic 2-D Gaussian offset with per-axis
// standard deviation sigma, following the paper's Algorithm 3: a uniform
// angle θ and a radius obtained by inverting the Rayleigh CDF
// F_R(r) = 1 - e^(-r²/2σ²).
func (r *Rand) GaussianPolar(sigma float64) geo.Point {
	if sigma <= 0 {
		return geo.Point{}
	}
	theta := r.Angle()
	// RayleighQuantile cannot fail for p ∈ [0,1) and sigma > 0.
	radius, _ := mathx.RayleighQuantile(r.src.Float64(), sigma)
	return geo.Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
}

// PlanarLaplace draws a planar-Laplace offset with privacy parameter
// epsilon (the geo-indistinguishability noise of Andres et al.): a uniform
// angle and a radius from the inverse CDF r = -(1/ε)(W₋₁((p-1)/e) + 1).
func (r *Rand) PlanarLaplace(epsilon float64) (geo.Point, error) {
	if epsilon <= 0 {
		return geo.Point{}, fmt.Errorf("randx: planar laplace epsilon %g must be positive", epsilon)
	}
	theta := r.Angle()
	radius, err := mathx.PlanarLaplaceQuantile(r.src.Float64(), epsilon)
	if err != nil {
		return geo.Point{}, fmt.Errorf("sampling planar laplace radius: %w", err)
	}
	return geo.Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}, nil
}

// UniformDisk draws a point uniformly from the disk of the given radius
// centred at the origin (radius scaled by √u for area uniformity).
func (r *Rand) UniformDisk(radius float64) geo.Point {
	if radius <= 0 {
		return geo.Point{}
	}
	theta := r.Angle()
	rho := radius * math.Sqrt(r.src.Float64())
	return geo.Point{X: rho * math.Cos(theta), Y: rho * math.Sin(theta)}
}

// UniformInCircle draws a point uniformly from the given circle.
func (r *Rand) UniformInCircle(c geo.Circle) geo.Point {
	return c.Center.Add(r.UniformDisk(c.Radius))
}

// Poisson draws from a Poisson distribution with the given mean, using
// Knuth's product method for small means and the normal approximation
// (rounded, clamped at zero) for large ones.
func (r *Rand) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		limit := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.src.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	default:
		n := math.Round(mean + math.Sqrt(mean)*r.src.NormFloat64())
		if n < 0 {
			return 0
		}
		return int(n)
	}
}

// Zipf samples indexes in [0, n) with probability proportional to
// 1/(i+1)^s. The cumulative table is precomputed once.
type Zipf struct {
	cdf []float64
	rnd *Rand
}

// NewZipf builds a bounded Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rnd *Rand, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("randx: zipf over %d ranks", n)
	}
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("randx: zipf exponent %g must be positive", s)
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rnd: rnd}, nil
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rnd.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weights returns the probability mass of each rank (useful when a caller
// wants expected frequencies rather than samples).
func (z *Zipf) Weights() []float64 {
	w := make([]float64, len(z.cdf))
	prev := 0.0
	for i, c := range z.cdf {
		w[i] = c - prev
		prev = c
	}
	return w
}
