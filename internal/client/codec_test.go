package client

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/wire"
)

// codecRecordingTransport records the codec headers of every attempt.
type codecRecordingTransport struct {
	mu       sync.Mutex
	failures int
	headers  []http.Header
	next     http.RoundTripper
}

func (rt *codecRecordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.headers = append(rt.headers, req.Header.Clone())
	fail := rt.failures > 0
	if fail {
		rt.failures--
	}
	rt.mu.Unlock()
	if fail {
		return nil, errors.New("connection reset by peer")
	}
	return rt.next.RoundTrip(req)
}

// TestBinaryClientRoundTrip drives the full serving path with a binary
// client: report, batch with per-item errors, ads, and stats all frame
// both directions, and the results match what a JSON client sees.
func TestBinaryClientRoundTrip(t *testing.T) {
	ts, network := newTestEdge(t)
	if err := network.Register(adnet.Campaign{
		ID: "c1", Location: geo.Point{X: 50, Y: 50}, Radius: 10_000,
		Ad: adnet.Ad{ID: "ad1", Title: "t", Location: geo.Point{X: 50, Y: 50}},
	}); err != nil {
		t.Fatal(err)
	}
	bin, err := New(ts.URL, nil, WithCodec(edge.CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	js, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	home := geo.Point{X: 40, Y: 40}

	if err := bin.Report(ctx, "u-bin", home, time.Time{}); err != nil {
		t.Fatalf("binary report: %v", err)
	}
	batch, err := bin.ReportBatch(ctx, []edge.ReportRequest{
		{UserID: "u-bin", Pos: home},
		{Pos: home}, // rejected
		{UserID: "u-bin2", Pos: home},
	})
	if err != nil {
		t.Fatalf("binary batch: %v", err)
	}
	if batch.Accepted != 2 || len(batch.Errors) != 1 || batch.Errors[0].Index != 1 {
		t.Fatalf("binary batch response = %+v", batch)
	}
	ads, err := bin.RequestAds(ctx, "u-bin", home, 5)
	if err != nil {
		t.Fatalf("binary ads: %v", err)
	}
	if ads.Reported == (geo.Point{}) {
		t.Fatal("binary ads response missing reported location")
	}
	binStats, err := bin.Stats(ctx)
	if err != nil {
		t.Fatalf("binary stats: %v", err)
	}
	jsStats, err := js.Stats(ctx)
	if err != nil {
		t.Fatalf("json stats: %v", err)
	}
	if binStats != jsStats {
		t.Fatalf("codecs disagree on stats: binary %+v, json %+v", binStats, jsStats)
	}
	if binStats.Users == 0 {
		t.Fatalf("implausible stats %+v", binStats)
	}

	// Control-plane calls stay JSON but still work on a binary client.
	if err := bin.Rebuild(ctx, "u-bin", time.Time{}); err != nil {
		t.Fatalf("rebuild on binary client: %v", err)
	}
	if _, err := bin.Profile(ctx, "u-bin"); err != nil {
		t.Fatalf("profile on binary client: %v", err)
	}
}

// TestBinaryClientErrorEnvelope checks a binary client maps framed
// error envelopes into the same apiError a JSON client gets.
func TestBinaryClientErrorEnvelope(t *testing.T) {
	ts, _ := newTestEdge(t)
	bin, err := New(ts.URL, nil, WithCodec(edge.CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	rerr := bin.Report(context.Background(), "", geo.Point{X: 1}, time.Time{})
	if StatusCode(rerr) != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (err %v)", StatusCode(rerr), rerr)
	}
	var ae *apiError
	if !errors.As(rerr, &ae) || ae.Message != "user_id is required" {
		t.Fatalf("error envelope not decoded: %v", rerr)
	}
}

// TestCodecHeadersSurviveRetries pins the per-attempt header contract:
// a retried idempotent call re-sends Accept (and Content-Type) on every
// rebuilt request, so a retry negotiates exactly like the first attempt.
func TestCodecHeadersSurviveRetries(t *testing.T) {
	ts, _ := newTestEdge(t)
	rt := &codecRecordingTransport{failures: 2, next: http.DefaultTransport}
	bin, err := New(ts.URL, &http.Client{Transport: rt},
		WithRetry(3, time.Millisecond, 5*time.Millisecond), WithRetrySeed(9), WithCodec(edge.CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	if err := bin.Rebuild(context.Background(), "nobody", time.Time{}); StatusCode(err) != http.StatusNotFound {
		t.Fatalf("rebuild on unknown user: %v", err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.headers) != 3 {
		t.Fatalf("recorded %d attempts, want 3", len(rt.headers))
	}
	for i, h := range rt.headers {
		if got := h.Get("Accept"); got != wire.ContentType {
			t.Errorf("attempt %d Accept = %q, want %q", i, got, wire.ContentType)
		}
		// Rebuild is a control-plane call: its body stays JSON even on a
		// binary client.
		if got := h.Get("Content-Type"); got != "application/json" {
			t.Errorf("attempt %d Content-Type = %q, want application/json", i, got)
		}
	}
}

// TestJSONClientAgainstBinaryEdge is the compatibility direction: a
// default (JSON) client must work unmodified against the binary-capable
// edge, and must never send the wire media type.
func TestJSONClientAgainstBinaryEdge(t *testing.T) {
	ts, _ := newTestEdge(t)
	rt := &codecRecordingTransport{next: http.DefaultTransport}
	js, err := New(ts.URL, &http.Client{Transport: rt})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := js.Report(ctx, "u-js", geo.Point{X: 2, Y: 3}, time.Time{}); err != nil {
		t.Fatalf("json report: %v", err)
	}
	if _, err := js.Stats(ctx); err != nil {
		t.Fatalf("json stats: %v", err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, h := range rt.headers {
		if h.Get("Accept") != "" || h.Get("Content-Type") == wire.ContentType {
			t.Errorf("attempt %d leaked wire negotiation headers: %v", i, h)
		}
	}
}
