package client

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/edge"
	"repro/internal/geo"
)

func TestClientReportBatch(t *testing.T) {
	ts, _ := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	reports := []edge.ReportRequest{
		{UserID: "u1", Pos: geo.Point{X: 1, Y: 1}, Time: at},
		{Pos: geo.Point{X: 2, Y: 2}, Time: at}, // malformed: no user_id
		{UserID: "u1", Pos: geo.Point{X: 3, Y: 3}, Time: at.Add(time.Minute)},
	}
	resp, err := c.ReportBatch(context.Background(), reports)
	if err != nil {
		t.Fatalf("ReportBatch: %v", err)
	}
	if resp.Accepted != 2 {
		t.Errorf("accepted = %d, want 2", resp.Accepted)
	}
	if len(resp.Errors) != 1 || resp.Errors[0].Index != 1 {
		t.Fatalf("errors = %+v, want one error at index 1", resp.Errors)
	}
}

func TestNoRetryReportBatch(t *testing.T) {
	ts, _ := newTestEdge(t)
	ft := &flakyTransport{failures: 99, next: http.DefaultTransport}
	c, err := New(ts.URL, &http.Client{Transport: ft},
		WithRetry(5, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// A lost batch response leaves the edge possibly having recorded the
	// whole batch; re-sending would double-count every check-in in it.
	if _, err := c.ReportBatch(context.Background(), []edge.ReportRequest{
		{UserID: "u1", Pos: geo.Point{X: 1, Y: 1}},
	}); err == nil {
		t.Fatal("expected connection error")
	}
	if got := ft.count(); got != 1 {
		t.Errorf("ReportBatch attempts = %d, want 1 (no retry)", got)
	}
}

func TestDefaultTransportKeepAlive(t *testing.T) {
	c, err := New("http://127.0.0.1:9", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := c.http.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default transport is %T, want *http.Transport", c.http.Transport)
	}
	if tr.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost {
		t.Errorf("MaxIdleConnsPerHost = %d, want %d", tr.MaxIdleConnsPerHost, DefaultMaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < DefaultMaxIdleConnsPerHost {
		t.Errorf("MaxIdleConns = %d, want >= %d", tr.MaxIdleConns, DefaultMaxIdleConnsPerHost)
	}
	// The clone must keep the stdlib defaults it doesn't override.
	if tr.Proxy == nil {
		t.Error("transport clone dropped the proxy function")
	}
	// A caller-supplied client is left untouched.
	own := &http.Client{}
	c2, err := New("http://127.0.0.1:9", own)
	if err != nil {
		t.Fatal(err)
	}
	if c2.http != own {
		t.Error("caller-supplied http.Client was replaced")
	}
}
