package client

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
)

func newTestEdge(t *testing.T) (*httptest.Server, *adnet.Network) {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer(engine, network, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, network
}

func TestNewValidation(t *testing.T) {
	if _, err := New("://bad", nil); err == nil {
		t.Error("malformed URL expected error")
	}
	if _, err := New("ftp://host", nil); err == nil {
		t.Error("non-http scheme expected error")
	}
	if _, err := New("http://127.0.0.1:9", nil); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

func TestClientRoundTrip(t *testing.T) {
	ts, network := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	if err := network.Register(adnet.Campaign{
		ID: "c1", Location: geo.Point{X: 500, Y: 0}, Radius: 40_000,
		Ad: adnet.Ad{ID: "ad1", Title: "coffee", Location: geo.Point{X: 500, Y: 0}},
	}); err != nil {
		t.Fatal(err)
	}

	home := geo.Point{X: 0, Y: 0}
	rnd := randx.New(8, 8)
	base := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		at := base.Add(time.Duration(i) * time.Hour)
		if err := c.Report(ctx, "u1", home.Add(rnd.GaussianPolar(12)), at); err != nil {
			t.Fatalf("Report: %v", err)
		}
	}
	if err := c.Rebuild(ctx, "u1", base.Add(200*time.Hour)); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}

	prof, err := c.Profile(ctx, "u1")
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if prof.UserID != "u1" || len(prof.Tops) == 0 {
		t.Fatalf("profile = %+v", prof)
	}
	if d := prof.Tops[0].Loc.Dist(home); d > 20 {
		t.Errorf("top-1 %g m from home", d)
	}

	ads, err := c.RequestAds(ctx, "u1", home, 10)
	if err != nil {
		t.Fatalf("RequestAds: %v", err)
	}
	if !ads.FromTable {
		t.Error("expected answer from permanent table")
	}
	if ads.Reported == home {
		t.Error("true location leaked")
	}
	if len(ads.Ads) != 1 || ads.Ads[0].ID != "ad1" {
		t.Errorf("ads = %+v", ads.Ads)
	}
}

func TestClientPrivacy(t *testing.T) {
	ts, _ := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Without a configured budget the loss is zero but the endpoint works.
	pr, err := c.Privacy(ctx, "whoever")
	if err != nil {
		t.Fatalf("Privacy: %v", err)
	}
	if pr.UserID != "whoever" || pr.Epsilon != 0 || pr.Delta != 0 {
		t.Errorf("privacy = %+v", pr)
	}
}

func TestClientErrorMapping(t *testing.T) {
	ts, _ := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, err = c.Profile(ctx, "ghost")
	if err == nil {
		t.Fatal("unknown user expected error")
	}
	if got := StatusCode(err); got != 404 {
		t.Errorf("StatusCode = %d, want 404", got)
	}
	if err := c.Report(ctx, "", geo.Point{}, time.Time{}); err == nil {
		t.Error("empty user expected error")
	} else if StatusCode(err) != 400 {
		t.Errorf("StatusCode = %d, want 400", StatusCode(err))
	}
	// Non-API error has no status.
	if got := StatusCode(context.Canceled); got != 0 {
		t.Errorf("StatusCode of non-API error = %d", got)
	}
}

func TestClientConnectionFailure(t *testing.T) {
	c, err := New("http://127.0.0.1:1", nil) // port 1: nothing listening
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Health(ctx); err == nil {
		t.Error("expected connection error")
	}
}
