package client

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

func newTestEdge(t *testing.T) (*httptest.Server, *adnet.Network) {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer(engine, network, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, network
}

func TestNewValidation(t *testing.T) {
	if _, err := New("://bad", nil); err == nil {
		t.Error("malformed URL expected error")
	}
	if _, err := New("ftp://host", nil); err == nil {
		t.Error("non-http scheme expected error")
	}
	if _, err := New("http://127.0.0.1:9", nil); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

func TestClientRoundTrip(t *testing.T) {
	ts, network := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	if err := network.Register(adnet.Campaign{
		ID: "c1", Location: geo.Point{X: 500, Y: 0}, Radius: 40_000,
		Ad: adnet.Ad{ID: "ad1", Title: "coffee", Location: geo.Point{X: 500, Y: 0}},
	}); err != nil {
		t.Fatal(err)
	}

	home := geo.Point{X: 0, Y: 0}
	rnd := randx.New(8, 8)
	base := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		at := base.Add(time.Duration(i) * time.Hour)
		if err := c.Report(ctx, "u1", home.Add(rnd.GaussianPolar(12)), at); err != nil {
			t.Fatalf("Report: %v", err)
		}
	}
	if err := c.Rebuild(ctx, "u1", base.Add(200*time.Hour)); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}

	prof, err := c.Profile(ctx, "u1")
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if prof.UserID != "u1" || len(prof.Tops) == 0 {
		t.Fatalf("profile = %+v", prof)
	}
	if d := prof.Tops[0].Loc.Dist(home); d > 20 {
		t.Errorf("top-1 %g m from home", d)
	}

	ads, err := c.RequestAds(ctx, "u1", home, 10)
	if err != nil {
		t.Fatalf("RequestAds: %v", err)
	}
	if !ads.FromTable {
		t.Error("expected answer from permanent table")
	}
	if ads.Reported == home {
		t.Error("true location leaked")
	}
	if len(ads.Ads) != 1 || ads.Ads[0].ID != "ad1" {
		t.Errorf("ads = %+v", ads.Ads)
	}
}

func TestClientPrivacy(t *testing.T) {
	ts, _ := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Without a configured budget the loss is zero but the endpoint works.
	pr, err := c.Privacy(ctx, "whoever")
	if err != nil {
		t.Fatalf("Privacy: %v", err)
	}
	if pr.UserID != "whoever" || pr.Epsilon != 0 || pr.Delta != 0 {
		t.Errorf("privacy = %+v", pr)
	}
}

func TestClientErrorMapping(t *testing.T) {
	ts, _ := newTestEdge(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, err = c.Profile(ctx, "ghost")
	if err == nil {
		t.Fatal("unknown user expected error")
	}
	if got := StatusCode(err); got != 404 {
		t.Errorf("StatusCode = %d, want 404", got)
	}
	if err := c.Report(ctx, "", geo.Point{}, time.Time{}); err == nil {
		t.Error("empty user expected error")
	} else if StatusCode(err) != 400 {
		t.Errorf("StatusCode = %d, want 400", StatusCode(err))
	}
	// Non-API error has no status.
	if got := StatusCode(context.Canceled); got != 0 {
		t.Errorf("StatusCode of non-API error = %d", got)
	}
}

func TestClientConnectionFailure(t *testing.T) {
	c, err := New("http://127.0.0.1:1", nil) // port 1: nothing listening
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Health(ctx); err == nil {
		t.Error("expected connection error")
	}
}

// flakyTransport fails the first `failures` requests at the connection
// level, then delegates to the real transport. It counts every attempt.
type flakyTransport struct {
	mu       sync.Mutex
	failures int
	attempts int
	next     http.RoundTripper
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	ft.attempts++
	fail := ft.failures > 0
	if fail {
		ft.failures--
	}
	ft.mu.Unlock()
	if fail {
		return nil, errors.New("connection reset by peer")
	}
	return ft.next.RoundTrip(req)
}

func (ft *flakyTransport) count() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.attempts
}

func TestNewTrimsTrailingSlash(t *testing.T) {
	ts, _ := newTestEdge(t)
	// Regression: a trailing slash used to survive into baseURL, producing
	// //v1/... request paths that miss the edge mux and 404.
	c, err := New(ts.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health through slash-suffixed base URL: %v", err)
	}
	if err := c.Report(context.Background(), "u1", geo.Point{X: 1, Y: 2}, time.Time{}); err != nil {
		t.Fatalf("Report through slash-suffixed base URL: %v", err)
	}
}

func TestRetryIdempotentConnectionFailure(t *testing.T) {
	ts, _ := newTestEdge(t)
	ft := &flakyTransport{failures: 2, next: http.DefaultTransport}
	c, err := New(ts.URL, &http.Client{Transport: ft},
		WithRetry(3, time.Millisecond, 5*time.Millisecond), WithRetrySeed(7))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health should succeed on third attempt: %v", err)
	}
	if got := ft.count(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := reg.Counter("client_retries_total", "").Value(); got != 2 {
		t.Errorf("client_retries_total = %d, want 2", got)
	}
}

// headerRecordingTransport records the traceparent header of every
// attempt while failing the first `failures` at the connection level.
type headerRecordingTransport struct {
	mu           sync.Mutex
	failures     int
	traceparents []string
	next         http.RoundTripper
}

func (rt *headerRecordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.traceparents = append(rt.traceparents, req.Header.Get(tracing.TraceparentHeader))
	fail := rt.failures > 0
	if fail {
		rt.failures--
	}
	rt.mu.Unlock()
	if fail {
		return nil, errors.New("connection reset by peer")
	}
	return rt.next.RoundTrip(req)
}

// TestTraceparentSurvivesRetries checks the end-to-end propagation
// contract on the flaky-link path: a call whose context carries a trace
// sends the SAME traceparent on every attempt (the request is rebuilt
// per send), so the edge's spans join one trace no matter how many
// connection-level retries the call needed.
func TestTraceparentSurvivesRetries(t *testing.T) {
	ts, _ := newTestEdge(t)
	rt := &headerRecordingTransport{failures: 2, next: http.DefaultTransport}
	c, err := New(ts.URL, &http.Client{Transport: rt},
		WithRetry(3, time.Millisecond, 5*time.Millisecond), WithRetrySeed(7))
	if err != nil {
		t.Fatal(err)
	}

	tracer := tracing.New(42)
	ctx, root := tracer.StartTrace(context.Background(), "client.health")
	want, ok := tracing.ContextTraceparent(ctx)
	if !ok {
		t.Fatal("trace context lost before the call")
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health should succeed on the third attempt: %v", err)
	}
	root.End()

	rt.mu.Lock()
	got := append([]string(nil), rt.traceparents...)
	rt.mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("recorded %d attempts, want 3", len(got))
	}
	for i, tp := range got {
		if tp != want {
			t.Errorf("attempt %d traceparent = %q, want %q", i, tp, want)
		}
	}
	// And the inverse: without a trace in the context, no header is sent.
	rt.mu.Lock()
	rt.traceparents = rt.traceparents[:0]
	rt.mu.Unlock()
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.traceparents) != 1 || rt.traceparents[0] != "" {
		t.Errorf("untraced call sent traceparent %q", rt.traceparents)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	ts, _ := newTestEdge(t)
	ft := &flakyTransport{failures: 99, next: http.DefaultTransport}
	c, err := New(ts.URL, &http.Client{Transport: ft},
		WithRetry(3, time.Millisecond, 5*time.Millisecond), WithRetrySeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("expected failure after exhausting retry budget")
	}
	if got := ft.count(); got != 3 {
		t.Errorf("attempts = %d, want exactly maxAttempts=3", got)
	}
}

func TestNoRetryNonIdempotent(t *testing.T) {
	ts, _ := newTestEdge(t)
	ft := &flakyTransport{failures: 99, next: http.DefaultTransport}
	c, err := New(ts.URL, &http.Client{Transport: ft},
		WithRetry(5, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Report records a check-in on the edge: re-sending after a lost
	// response could double-count it, so it must never be retried.
	if err := c.Report(context.Background(), "u1", geo.Point{}, time.Time{}); err == nil {
		t.Fatal("expected connection error")
	}
	if got := ft.count(); got != 1 {
		t.Errorf("Report attempts = %d, want 1 (no retry)", got)
	}
	ft2 := &flakyTransport{failures: 99, next: http.DefaultTransport}
	c2, err := New(ts.URL, &http.Client{Transport: ft2},
		WithRetry(5, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.RequestAds(context.Background(), "u1", geo.Point{}, 5); err == nil {
		t.Fatal("expected connection error")
	}
	if got := ft2.count(); got != 1 {
		t.Errorf("RequestAds attempts = %d, want 1 (no retry)", got)
	}
}

func TestNoRetryAPIError(t *testing.T) {
	ts, _ := newTestEdge(t)
	ft := &flakyTransport{next: http.DefaultTransport}
	c, err := New(ts.URL, &http.Client{Transport: ft},
		WithRetry(5, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// A 404 is a real answer from the edge, not a connection failure.
	if _, err := c.Profile(context.Background(), "ghost"); StatusCode(err) != 404 {
		t.Fatalf("Profile err = %v, want 404", err)
	}
	if got := ft.count(); got != 1 {
		t.Errorf("attempts = %d, want 1 (API errors are final)", got)
	}
}

func TestRetryHonorsContextDeadline(t *testing.T) {
	ft := &flakyTransport{failures: 99, next: http.DefaultTransport}
	c, err := New("http://127.0.0.1:1", &http.Client{Transport: ft},
		WithRetry(10, 200*time.Millisecond, time.Second), WithRetrySeed(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.Health(ctx); err == nil {
		t.Fatal("expected failure")
	}
	// The first backoff (>=100 ms) would outlive the 50 ms deadline, so
	// the call must give up quickly instead of sleeping through it.
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("call took %s; retries ignored the context deadline", elapsed)
	}
	if got := ft.count(); got != 1 {
		t.Errorf("attempts = %d, want 1 (deadline cannot fit a backoff)", got)
	}
}
