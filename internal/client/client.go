// Package client is the mobile-device side of Edge-PrivLocAd: a typed
// HTTP client for the edge service that mobile apps (or the trace replay
// tooling) use to report locations and fetch privacy-filtered ads.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/edge"
	"repro/internal/geo"
)

// Client talks to one edge device.
type Client struct {
	baseURL string
	http    *http.Client
}

// New builds a client for the edge service at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default with a
// 10 s timeout.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: u.String(), http: httpClient}, nil
}

// apiError is a non-2xx response from the edge.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("client: edge returned %d: %s", e.Status, e.Message)
}

// StatusCode extracts the HTTP status of an edge error, or 0 when err is
// not an edge API error.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return fmt.Errorf("client: building %s request: %w", path, err)
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
		}
		msg := ""
		if body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			if jerr := json.Unmarshal(body, &env); jerr == nil {
				msg = env.Error
			} else {
				msg = string(body)
			}
		}
		return &apiError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}

// Report sends one location check-in. A zero time lets the edge stamp it.
func (c *Client) Report(ctx context.Context, userID string, pos geo.Point, at time.Time) error {
	return c.post(ctx, "/v1/report", edge.ReportRequest{UserID: userID, Pos: pos, Time: at}, nil)
}

// RequestAds asks the edge for ads relevant to the user's true position;
// the edge handles obfuscation and AOI filtering.
func (c *Client) RequestAds(ctx context.Context, userID string, pos geo.Point, limit int) (edge.AdsResponse, error) {
	var resp edge.AdsResponse
	err := c.post(ctx, "/v1/ads", edge.AdsRequest{UserID: userID, Pos: pos, Limit: limit}, &resp)
	return resp, err
}

// Rebuild forces an immediate profile recomputation for the user.
func (c *Client) Rebuild(ctx context.Context, userID string, now time.Time) error {
	return c.post(ctx, "/v1/rebuild", edge.RebuildRequest{UserID: userID, Now: now}, nil)
}

// Profile fetches the user's current top-location profile.
func (c *Client) Profile(ctx context.Context, userID string) (edge.ProfileResponse, error) {
	var resp edge.ProfileResponse
	err := c.get(ctx, "/v1/profile?user="+url.QueryEscape(userID), &resp)
	return resp, err
}

// Privacy fetches the user's cumulative nomadic privacy loss.
func (c *Client) Privacy(ctx context.Context, userID string) (edge.PrivacyResponse, error) {
	var resp edge.PrivacyResponse
	err := c.get(ctx, "/v1/privacy?user="+url.QueryEscape(userID), &resp)
	return resp, err
}

// Health checks the edge liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil)
}
