// Package client is the mobile-device side of Edge-PrivLocAd: a typed
// HTTP client for the edge service that mobile apps (or the trace replay
// tooling) use to report locations and fetch privacy-filtered ads.
//
// Edge devices are cheap hardware on flaky last-mile links, so the
// client retries: idempotent calls (every GET, plus POST /v1/rebuild)
// that fail at the connection level are re-sent with exponential backoff
// and deterministic jitter, under a per-call attempt budget and never
// past the caller's context deadline. Non-idempotent calls (report, ads)
// are never retried — a dropped response leaves the edge possibly having
// recorded the check-in, and re-sending would double-count it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/wire"
)

// Client talks to one edge device. It is safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
	codec   edge.Codec

	// Retry policy for idempotent calls.
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration

	jmu    sync.Mutex
	jitter *randx.Rand

	retries *telemetry.Counter // nil until Instrument
}

// Option customises a Client.
type Option func(*Client)

// WithRetry sets the retry policy for idempotent calls: at most
// maxAttempts total tries per call (1 disables retries), with
// exponential backoff starting at baseDelay and capped at maxDelay.
func WithRetry(maxAttempts int, baseDelay, maxDelay time.Duration) Option {
	return func(c *Client) {
		if maxAttempts >= 1 {
			c.maxAttempts = maxAttempts
		}
		if baseDelay > 0 {
			c.baseDelay = baseDelay
		}
		if maxDelay > 0 {
			c.maxDelay = maxDelay
		}
	}
}

// WithRetrySeed seeds the backoff jitter stream, making retry timing
// reproducible in tests.
func WithRetrySeed(seed uint64) Option {
	return func(c *Client) { c.jitter = randx.New(seed, 0xC11E47) }
}

// WithCodec selects the serving-path encoding. edge.CodecBinary sends
// report/batch/ads bodies as application/x-privlocad-bin frames and asks
// (via Accept, set on every retry attempt) for binary responses;
// control-plane calls (rebuild, profile, privacy) stay JSON either way.
// The default is edge.CodecJSON, wire-compatible with pre-binary edges.
func WithCodec(codec edge.Codec) Option {
	return func(c *Client) { c.codec = codec }
}

// Codec reports the serving-path encoding the client was built with.
func (c *Client) Codec() edge.Codec { return c.codec }

// DefaultMaxIdleConnsPerHost is the connection-pool depth of the
// default transport. net/http's own default keeps only 2 idle
// connections per host, so any workload with more than two concurrent
// workers against one edge (loadgen, lbasim replays, busy devices
// behind a NAT) would close and re-dial connections on nearly every
// request, serialising the serving path on TCP handshakes instead of
// reusing keep-alive connections.
const DefaultMaxIdleConnsPerHost = 64

// defaultTransport clones the stdlib default transport (keeping its
// proxy, dialer, and timeout settings) and deepens the keep-alive pool
// so concurrent workers reuse connections instead of re-dialing.
func defaultTransport() *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = DefaultMaxIdleConnsPerHost
	return tr
}

// New builds a client for the edge service at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default with a
// 10 s timeout and a keep-alive pool of DefaultMaxIdleConnsPerHost idle
// connections per edge (the stdlib default of 2 collapses concurrent
// replays into serial re-dials). Trailing slashes on baseURL are
// trimmed: the client appends rooted paths like /v1/report, and a kept
// slash would produce //v1/report-style URLs that miss the edge's
// ServeMux patterns.
func New(baseURL string, httpClient *http.Client, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second, Transport: defaultTransport()}
	}
	c := &Client{
		baseURL:     strings.TrimRight(u.String(), "/"),
		http:        httpClient,
		maxAttempts: 3,
		baseDelay:   50 * time.Millisecond,
		maxDelay:    2 * time.Second,
		jitter:      randx.New(1, 0xC11E47),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Instrument registers the client's retry counter
// (client_retries_total) with reg and starts recording.
func (c *Client) Instrument(reg *telemetry.Registry) {
	c.retries = reg.Counter("client_retries_total", "Idempotent edge calls re-sent after a connection-level failure.")
}

// apiError is a non-2xx response from the edge.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("client: edge returned %d: %s", e.Status, e.Message)
}

// StatusCode extracts the HTTP status of an edge error, or 0 when err is
// not an edge API error.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// connError marks a connection-level failure: the request may never have
// reached the edge, so no response (not even an error envelope) arrived.
// Only these failures are retry candidates.
type connError struct{ err error }

func (e *connError) Error() string { return e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

func (c *Client) post(ctx context.Context, path string, body, out any, idempotent bool) error {
	// Serving-path messages go binary when the client was built with
	// WithCodec(edge.CodecBinary); everything else (and every message on a
	// JSON client) takes the legacy JSON encoding.
	if m, ok := body.(wire.Message); ok && c.codec == edge.CodecBinary {
		return c.call(ctx, http.MethodPost, path, wire.ContentType, wire.Encode(m), out, idempotent)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	return c.call(ctx, http.MethodPost, path, "application/json", payload, out, idempotent)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.call(ctx, http.MethodGet, path, "", nil, out, true)
}

// call performs one logical API call, re-sending idempotent requests
// after connection-level failures under the retry budget. The request is
// rebuilt each attempt (the body reader is consumed by a send), and the
// codec headers are set on every rebuild so a retried call negotiates
// identically to the first attempt.
func (c *Client) call(ctx context.Context, method, path, contentType string, payload []byte, out any, idempotent bool) error {
	attempts := 1
	if idempotent {
		attempts = c.maxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				return lastErr
			}
			if c.retries != nil {
				c.retries.Inc()
			}
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
		if err != nil {
			return fmt.Errorf("client: building %s request: %w", path, err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", contentType)
		}
		if c.codec == edge.CodecBinary {
			req.Header.Set("Accept", wire.ContentType)
		}
		// When the caller's context carries a trace, propagate it as a
		// traceparent header. Injected on every attempt — the request is
		// rebuilt per send — so a retried call keeps its trace ID and the
		// edge's spans join the same trace as the first attempt's.
		if tp, ok := tracing.ContextTraceparent(ctx); ok {
			req.Header.Set(tracing.TraceparentHeader, tp)
		}
		err = c.do(req, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(ctx, err) {
			return err
		}
	}
	return lastErr
}

// retryable reports whether err is worth re-sending: a connection-level
// failure with the caller's context still live. API errors, decode
// errors, and context cancellation/expiry are final.
func retryable(ctx context.Context, err error) bool {
	var ce *connError
	if !errors.As(err, &ce) {
		return false
	}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// backoff sleeps the attempt's jittered exponential delay. It returns a
// non-nil error — telling the caller to give up with the previous
// failure — when the context is done or its deadline would expire before
// the delay elapses.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	delay := c.baseDelay << (attempt - 1)
	if delay > c.maxDelay || delay <= 0 {
		delay = c.maxDelay
	}
	// Half fixed, half jitter: spreads synchronized retry storms without
	// ever collapsing the delay to zero.
	c.jmu.Lock()
	delay = delay/2 + time.Duration(c.jitter.Float64()*float64(delay/2))
	c.jmu.Unlock()
	if deadline, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(deadline) {
		return context.DeadlineExceeded
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return &connError{err: fmt.Errorf("client: %s %s: %w", req.Method, req.URL.Path, err)}
	}
	defer resp.Body.Close()

	binaryResp := strings.HasPrefix(resp.Header.Get("Content-Type"), wire.ContentType)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := ""
		if body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			var env wire.ErrorResponse
			switch {
			case binaryResp:
				if derr := wire.Decode(body, &env); derr == nil {
					msg = env.Error
				}
			case json.Unmarshal(body, &env) == nil:
				msg = env.Error
			default:
				msg = string(body)
			}
		}
		return &apiError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	// The response body's own Content-Type picks the decoder: a
	// binary-preferring client still decodes JSON answers from routes (or
	// old edges) that never negotiate.
	if binaryResp {
		m, ok := out.(wire.Message)
		if !ok {
			return fmt.Errorf("client: %s answered %s but %T is not a wire message", req.URL.Path, wire.ContentType, out)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return &connError{err: fmt.Errorf("client: reading %s response: %w", req.URL.Path, err)}
		}
		if err := wire.Decode(body, m); err != nil {
			return fmt.Errorf("client: decoding %s response: %w", req.URL.Path, err)
		}
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}

// Report sends one location check-in. A zero time lets the edge stamp
// it. Not retried: a lost response leaves the edge possibly having
// recorded the check-in already.
func (c *Client) Report(ctx context.Context, userID string, pos geo.Point, at time.Time) error {
	return c.post(ctx, "/v1/report", &edge.ReportRequest{UserID: userID, Pos: pos, Time: at}, nil, false)
}

// ReportBatch sends many location check-ins in one round trip. Like
// Report it is not retried: a lost response leaves the edge possibly
// having recorded some or all of the batch, and re-sending would
// double-count those check-ins. The response carries per-item errors
// (by input index); entries without an error were accepted.
func (c *Client) ReportBatch(ctx context.Context, reports []edge.ReportRequest) (edge.ReportBatchResponse, error) {
	var resp edge.ReportBatchResponse
	err := c.post(ctx, "/v1/report/batch", &edge.ReportBatchRequest{Reports: reports}, &resp, false)
	return resp, err
}

// RequestAds asks the edge for ads relevant to the user's true position;
// the edge handles obfuscation and AOI filtering. Not retried: the edge
// records the request position as an implicit check-in.
func (c *Client) RequestAds(ctx context.Context, userID string, pos geo.Point, limit int) (edge.AdsResponse, error) {
	var resp edge.AdsResponse
	err := c.post(ctx, "/v1/ads", &edge.AdsRequest{UserID: userID, Pos: pos, Limit: limit}, &resp, false)
	return resp, err
}

// Rebuild forces an immediate profile recomputation for the user.
// Idempotent (recomputing twice converges to the same state), so it is
// retried on connection failures.
func (c *Client) Rebuild(ctx context.Context, userID string, now time.Time) error {
	return c.post(ctx, "/v1/rebuild", edge.RebuildRequest{UserID: userID, Now: now}, nil, true)
}

// Profile fetches the user's current top-location profile.
func (c *Client) Profile(ctx context.Context, userID string) (edge.ProfileResponse, error) {
	var resp edge.ProfileResponse
	err := c.get(ctx, "/v1/profile?user="+url.QueryEscape(userID), &resp)
	return resp, err
}

// Privacy fetches the user's cumulative nomadic privacy loss.
func (c *Client) Privacy(ctx context.Context, userID string) (edge.PrivacyResponse, error) {
	var resp edge.PrivacyResponse
	err := c.get(ctx, "/v1/privacy?user="+url.QueryEscape(userID), &resp)
	return resp, err
}

// Stats fetches the edge's O(1) serving aggregates. Idempotent, so it
// is retried on connection failures; binary clients receive it framed.
func (c *Client) Stats(ctx context.Context) (edge.StatsResponse, error) {
	var resp edge.StatsResponse
	err := c.get(ctx, "/v1/stats", &resp)
	return resp, err
}

// Health checks the edge liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil)
}
