package profile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/randx"
)

// makeCheckIns builds a synthetic check-in cloud: count[i] points
// Gaussian-scattered (sigma 10 m) around centres[i].
func makeCheckIns(t *testing.T, centres []geo.Point, counts []int) []geo.Point {
	t.Helper()
	rnd := randx.New(42, 42)
	var pts []geo.Point
	for i, c := range centres {
		for j := 0; j < counts[i]; j++ {
			pts = append(pts, c.Add(rnd.GaussianPolar(10)))
		}
	}
	return pts
}

func TestBuildProfile(t *testing.T) {
	centres := []geo.Point{{X: 0, Y: 0}, {X: 5000, Y: 0}, {X: 0, Y: 5000}}
	counts := []int{100, 60, 20}
	pts := makeCheckIns(t, centres, counts)
	p, err := Build(pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) < 3 {
		t.Fatalf("profile has %d locations, want >= 3", len(p))
	}
	// Descending frequency order.
	for i := 1; i < len(p); i++ {
		if p[i].Freq > p[i-1].Freq {
			t.Errorf("profile not sorted at %d", i)
		}
	}
	// Top-3 must recover the three centres (within wander).
	for i, c := range centres {
		if d := p[i].Loc.Dist(c); d > 15 {
			t.Errorf("location %d recovered %g m away", i, d)
		}
	}
	if p.Total() != 180 {
		t.Errorf("Total = %d, want 180", p.Total())
	}
}

func TestBuildEmptyAndErrors(t *testing.T) {
	p, err := Build(nil, 50)
	if err != nil || p != nil && len(p) != 0 {
		t.Errorf("empty input: %v, %v", p, err)
	}
}

func TestEntropyKnownValues(t *testing.T) {
	// Uniform over 4 locations: entropy = ln 4.
	p := Profile{
		{Loc: geo.Point{X: 0, Y: 0}, Freq: 10},
		{Loc: geo.Point{X: 1, Y: 0}, Freq: 10},
		{Loc: geo.Point{X: 2, Y: 0}, Freq: 10},
		{Loc: geo.Point{X: 3, Y: 0}, Freq: 10},
	}
	if got := p.Entropy(); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %g, want ln4 = %g", got, math.Log(4))
	}
	// Single location: zero entropy.
	single := Profile{{Freq: 42}}
	if got := single.Entropy(); got != 0 {
		t.Errorf("single-location entropy = %g", got)
	}
	// Empty: zero.
	if got := (Profile{}).Entropy(); got != 0 {
		t.Errorf("empty entropy = %g", got)
	}
	// Zero-frequency entries are ignored.
	withZero := Profile{{Freq: 10}, {Freq: 0}}
	if got := withZero.Entropy(); got != 0 {
		t.Errorf("zero-entry entropy = %g", got)
	}
}

// TestEntropyBounds property: 0 ≤ entropy ≤ ln(M).
func TestEntropyBounds(t *testing.T) {
	f := func(freqs []uint8) bool {
		var p Profile
		m := 0
		for _, fr := range freqs {
			if fr == 0 {
				continue
			}
			p = append(p, LocationFreq{Freq: int(fr)})
			m++
		}
		h := p.Entropy()
		if m == 0 {
			return h == 0
		}
		return h >= -1e-12 && h <= math.Log(float64(m))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEntropyDominanceMonotone: concentrating mass on one location
// reduces entropy.
func TestEntropyDominanceMonotone(t *testing.T) {
	prev := math.Inf(1)
	for dominant := 10; dominant <= 1000; dominant *= 2 {
		p := Profile{{Freq: dominant}, {Freq: 10}, {Freq: 10}}
		h := p.Entropy()
		if h >= prev {
			t.Fatalf("entropy did not fall as dominance grew: %g >= %g", h, prev)
		}
		prev = h
	}
}

func TestEtaFrequentSet(t *testing.T) {
	p := Profile{
		{Loc: geo.Point{X: 1, Y: 0}, Freq: 50},
		{Loc: geo.Point{X: 2, Y: 0}, Freq: 30},
		{Loc: geo.Point{X: 3, Y: 0}, Freq: 15},
		{Loc: geo.Point{X: 4, Y: 0}, Freq: 5},
	}
	tests := []struct {
		eta  int
		want int // number of locations
	}{
		{1, 1}, {50, 1}, {51, 2}, {80, 2}, {81, 3}, {95, 3}, {96, 4}, {100, 4},
		{1000, 4}, // above total: whole profile
	}
	for _, tt := range tests {
		got := p.EtaFrequentSet(tt.eta)
		if len(got) != tt.want {
			t.Errorf("eta=%d: %d locations, want %d", tt.eta, len(got), tt.want)
		}
	}
	if got := p.EtaFrequentSet(0); got != nil {
		t.Errorf("eta=0 should be nil, got %v", got)
	}
	if got := (Profile{}).EtaFrequentSet(10); got != nil {
		t.Errorf("empty profile eta-set should be nil")
	}
}

// TestEtaFrequentSetMinimality property (Definition 6): the returned set
// reaches eta and removing its last element drops below eta.
func TestEtaFrequentSetMinimality(t *testing.T) {
	f := func(rawFreqs []uint8, rawEta uint16) bool {
		var p Profile
		for i, fr := range rawFreqs {
			if fr == 0 {
				continue
			}
			p = append(p, LocationFreq{Loc: geo.Point{X: float64(i)}, Freq: int(fr)})
		}
		p.sort()
		total := p.Total()
		if total == 0 {
			return true
		}
		eta := int(rawEta)%total + 1
		set := p.EtaFrequentSet(eta)
		sum := set.Total()
		if sum < eta && len(set) != len(p) {
			return false // did not reach eta despite unused locations
		}
		if len(set) > 0 && sum-set[len(set)-1].Freq >= eta {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEtaFractionSet(t *testing.T) {
	p := Profile{{Freq: 90}, {Freq: 10}}
	if got := p.EtaFractionSet(0.9); len(got) != 1 {
		t.Errorf("0.9 fraction: %d locations", len(got))
	}
	if got := p.EtaFractionSet(0.91); len(got) != 2 {
		t.Errorf("0.91 fraction: %d locations", len(got))
	}
	if got := p.EtaFractionSet(0); got != nil {
		t.Error("frac=0 should be nil")
	}
	if got := p.EtaFractionSet(1.5); got != nil {
		t.Error("frac>1 should be nil")
	}
	if got := p.EtaFractionSet(math.NaN()); got != nil {
		t.Error("NaN frac should be nil")
	}
}

func TestTopN(t *testing.T) {
	p := Profile{{Freq: 3}, {Freq: 2}, {Freq: 1}}
	if got := p.TopN(2); len(got) != 2 || got[0].Freq != 3 {
		t.Errorf("TopN(2) = %v", got)
	}
	if got := p.TopN(10); len(got) != 3 {
		t.Errorf("TopN(10) = %v", got)
	}
	if got := p.TopN(0); got != nil {
		t.Errorf("TopN(0) = %v", got)
	}
	// Copy semantics: mutating the result must not touch the original.
	cp := p.TopN(3)
	cp[0].Freq = 999
	if p[0].Freq != 3 {
		t.Error("TopN aliases the original profile")
	}
}

func TestMerge(t *testing.T) {
	// Two edges observed the same home location (within 50 m) and
	// different work locations.
	a := Profile{
		{Loc: geo.Point{X: 0, Y: 0}, Freq: 60},
		{Loc: geo.Point{X: 8000, Y: 0}, Freq: 20},
	}
	b := Profile{
		{Loc: geo.Point{X: 20, Y: 0}, Freq: 30},
		{Loc: geo.Point{X: 0, Y: 9000}, Freq: 10},
	}
	m, err := Merge([]Profile{a, b}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("merged profile has %d locations, want 3", len(m))
	}
	// Home merged: 90 visits, frequency-weighted centroid (60·0+30·20)/90.
	if m[0].Freq != 90 {
		t.Errorf("merged home freq = %d, want 90", m[0].Freq)
	}
	wantX := (60*0.0 + 30*20.0) / 90.0
	if math.Abs(m[0].Loc.X-wantX) > 1e-9 {
		t.Errorf("merged home X = %g, want %g", m[0].Loc.X, wantX)
	}
	if m.Total() != 120 {
		t.Errorf("merged total = %d", m.Total())
	}
}

func TestMergeEmpty(t *testing.T) {
	m, err := Merge(nil, 50)
	if err != nil || m != nil {
		t.Errorf("Merge(nil) = %v, %v", m, err)
	}
	m, err = Merge([]Profile{{}, {}}, 50)
	if err != nil || m != nil {
		t.Errorf("Merge(empty parts) = %v, %v", m, err)
	}
	// Zero-frequency entries are dropped.
	m, err = Merge([]Profile{{{Freq: 0}}}, 50)
	if err != nil || m != nil {
		t.Errorf("Merge(zero freq) = %v, %v", m, err)
	}
}

// TestMergePreservesTotal property: merging never changes total mass.
func TestMergePreservesTotal(t *testing.T) {
	rnd := randx.New(3, 14)
	for trial := 0; trial < 20; trial++ {
		var parts []Profile
		want := 0
		for e := 0; e < 3; e++ {
			var p Profile
			for l := 0; l < 1+rnd.IntN(5); l++ {
				f := 1 + rnd.IntN(100)
				want += f
				p = append(p, LocationFreq{
					Loc:  geo.Point{X: rnd.Float64() * 10000, Y: rnd.Float64() * 10000},
					Freq: f,
				})
			}
			parts = append(parts, p)
		}
		m, err := Merge(parts, 50)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != want {
			t.Fatalf("trial %d: merged total %d, want %d", trial, m.Total(), want)
		}
	}
}

func BenchmarkBuildProfile(b *testing.B) {
	rnd := randx.New(1, 1)
	centres := []geo.Point{{X: 0, Y: 0}, {X: 4000, Y: 100}, {X: -3000, Y: 2000}}
	pts := make([]geo.Point, 0, 2000)
	for i := 0; i < 2000; i++ {
		pts = append(pts, centres[i%3].Add(rnd.GaussianPolar(12)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, 50); err != nil {
			b.Fatal(err)
		}
	}
}
