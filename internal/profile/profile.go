// Package profile implements the user location profile of the paper
// (Section III-B.1 and V-B): clustering raw check-ins into a set of
// (location, frequency) tuples, the location entropy metric (Eq. 3), the
// η-frequent location set (Definition 6, Algorithm 2), and the merge of
// partial profiles recorded by different edge devices.
package profile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/geo"
)

// DefaultConnectivityThreshold is the paper's 50 m clustering threshold:
// two check-ins belong to the same location when within 50 m.
const DefaultConnectivityThreshold = 50.0

// LocationFreq is one entry of a location profile: a location's
// representative coordinate and its visit frequency.
type LocationFreq struct {
	Loc  geo.Point `json:"loc"`
	Freq int       `json:"freq"`
}

// Profile is a user location profile P = {(l₁, f₁), …, (l_M, f_M)},
// ordered by descending frequency (ties broken deterministically by
// coordinates).
type Profile []LocationFreq

// Build constructs a profile from raw check-in coordinates using the
// paper's connectivity-based clustering: check-ins within threshold are
// transitively merged, each cluster's centroid becomes the location and
// its size the frequency. threshold ≤ 0 selects the paper's 50 m default.
func Build(pts []geo.Point, threshold float64) (Profile, error) {
	if threshold <= 0 {
		threshold = DefaultConnectivityThreshold
	}
	clusters, err := cluster.Connectivity(pts, threshold)
	if err != nil {
		return nil, fmt.Errorf("profile: clustering check-ins: %w", err)
	}
	p := make(Profile, len(clusters))
	for i, c := range clusters {
		p[i] = LocationFreq{Loc: c.Centroid, Freq: c.Size()}
	}
	p.sort()
	return p, nil
}

// sort orders the profile by descending frequency, with coordinate
// tie-breaks for determinism.
func (p Profile) sort() {
	sort.Slice(p, func(i, j int) bool {
		if p[i].Freq != p[j].Freq {
			return p[i].Freq > p[j].Freq
		}
		if p[i].Loc.X != p[j].Loc.X {
			return p[i].Loc.X < p[j].Loc.X
		}
		return p[i].Loc.Y < p[j].Loc.Y
	})
}

// Total returns the total frequency mass (the check-in count).
func (p Profile) Total() int {
	sum := 0
	for _, lf := range p {
		sum += lf.Freq
	}
	return sum
}

// Entropy computes the paper's location entropy (Eq. 3) in nats:
//
//	Entropy = Σᵢ (fᵢ/sum)·ln(sum/fᵢ)
//
// Lower entropy means the user's activity concentrates on few locations.
// An empty profile has zero entropy.
func (p Profile) Entropy() float64 {
	sum := float64(p.Total())
	if sum == 0 {
		return 0
	}
	var h float64
	for _, lf := range p {
		if lf.Freq <= 0 {
			continue
		}
		f := float64(lf.Freq)
		h += f / sum * math.Log(sum/f)
	}
	return h
}

// EtaFrequentSet implements Algorithm 2: the minimal prefix of the
// frequency-ordered profile whose cumulative frequency reaches eta.
// When the whole profile sums below eta, the full profile is returned
// (every location is needed).
func (p Profile) EtaFrequentSet(eta int) Profile {
	if eta <= 0 || len(p) == 0 {
		return nil
	}
	total := 0
	for i, lf := range p {
		total += lf.Freq
		if total >= eta {
			out := make(Profile, i+1)
			copy(out, p[:i+1])
			return out
		}
	}
	out := make(Profile, len(p))
	copy(out, p)
	return out
}

// EtaFractionSet is EtaFrequentSet with eta expressed as a fraction of the
// total frequency mass (e.g. 0.9 keeps the locations covering 90% of
// check-ins). frac outside (0, 1] returns nil.
func (p Profile) EtaFractionSet(frac float64) Profile {
	if frac <= 0 || frac > 1 || math.IsNaN(frac) {
		return nil
	}
	eta := int(math.Ceil(frac * float64(p.Total())))
	return p.EtaFrequentSet(eta)
}

// TopN returns the n most frequent locations (or fewer when the profile
// is smaller), as a copy.
func (p Profile) TopN(n int) Profile {
	if n <= 0 {
		return nil
	}
	if n > len(p) {
		n = len(p)
	}
	out := make(Profile, n)
	copy(out, p)
	return out
}

// Merge combines partial profiles recorded by different edge devices into
// one: locations within threshold across the partials are unified with a
// frequency-weighted centroid and summed frequencies. threshold ≤ 0
// selects the 50 m default.
//
// The paper notes this step can be wrapped in secure multi-party
// computation; the merge semantics implemented here are what that
// protocol would compute.
func Merge(parts []Profile, threshold float64) (Profile, error) {
	if threshold <= 0 {
		threshold = DefaultConnectivityThreshold
	}
	var pts []geo.Point
	var freqs []int
	for _, part := range parts {
		for _, lf := range part {
			if lf.Freq <= 0 {
				continue
			}
			pts = append(pts, lf.Loc)
			freqs = append(freqs, lf.Freq)
		}
	}
	if len(pts) == 0 {
		return nil, nil
	}
	clusters, err := cluster.Connectivity(pts, threshold)
	if err != nil {
		return nil, fmt.Errorf("profile: merging partial profiles: %w", err)
	}
	merged := make(Profile, 0, len(clusters))
	for _, c := range clusters {
		var fx, fy float64
		freq := 0
		for _, i := range c.Members {
			w := float64(freqs[i])
			fx += pts[i].X * w
			fy += pts[i].Y * w
			freq += freqs[i]
		}
		merged = append(merged, LocationFreq{
			Loc:  geo.Point{X: fx / float64(freq), Y: fy / float64(freq)},
			Freq: freq,
		})
	}
	merged.sort()
	return merged, nil
}
