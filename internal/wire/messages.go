package wire

import (
	"time"

	"repro/internal/adnet"
	"repro/internal/geo"
)

// The serving-path message types. These are the canonical definitions:
// internal/edge aliases them (type ReportRequest = wire.ReportRequest)
// so the HTTP layer's exported API is unchanged while both codecs share
// one struct per message. JSON tags define the legacy encoding; the
// methods below define the binary one.

// ReportRequest is the body of POST /v1/report.
type ReportRequest struct {
	UserID string    `json:"user_id"`
	Pos    geo.Point `json:"pos"`
	// Time is optional; zero means "now" at the edge.
	Time time.Time `json:"time,omitempty"`
}

func (*ReportRequest) wireType() byte { return typeReport }

func (m *ReportRequest) appendBody(dst []byte) []byte {
	dst = appendString(dst, m.UserID)
	dst = appendPoint(dst, m.Pos)
	return appendTime(dst, m.Time)
}

func (m *ReportRequest) readBody(r *reader) {
	m.UserID = r.str()
	m.Pos = r.point()
	m.Time = r.time()
}

// ReportBatchRequest is the body of POST /v1/report/batch: many
// check-ins in one round-trip (ad SDKs piggyback several location fixes
// per session; shipping them one HTTP call at a time wastes most of the
// serving budget on connection and framing overhead).
type ReportBatchRequest struct {
	Reports []ReportRequest `json:"reports"`
}

func (*ReportBatchRequest) wireType() byte { return typeReportBatch }

func (m *ReportBatchRequest) appendBody(dst []byte) []byte {
	dst = appendLen(dst, m.Reports)
	for i := range m.Reports {
		dst = m.Reports[i].appendBody(dst)
	}
	return dst
}

func (m *ReportBatchRequest) readBody(r *reader) {
	n, ok := r.sliceLen()
	if !ok {
		m.Reports = nil
		return
	}
	m.Reports = make([]ReportRequest, n)
	for i := range m.Reports {
		m.Reports[i].readBody(r)
	}
}

// BatchItemError is one rejected entry of a batch: Index is the entry's
// position in the request's reports array.
type BatchItemError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// ReportBatchResponse is the body returned by POST /v1/report/batch.
// Malformed or failing entries are rejected individually — the rest of
// the batch is still ingested — so clients can retry or drop exactly the
// entries that failed.
type ReportBatchResponse struct {
	Accepted int              `json:"accepted"`
	Errors   []BatchItemError `json:"errors,omitempty"`
}

func (*ReportBatchResponse) wireType() byte { return typeReportBatchResponse }

func (m *ReportBatchResponse) appendBody(dst []byte) []byte {
	dst = appendInt(dst, m.Accepted)
	dst = appendLen(dst, m.Errors)
	for i := range m.Errors {
		dst = appendInt(dst, m.Errors[i].Index)
		dst = appendString(dst, m.Errors[i].Error)
	}
	return dst
}

func (m *ReportBatchResponse) readBody(r *reader) {
	m.Accepted = r.int_()
	n, ok := r.sliceLen()
	if !ok {
		m.Errors = nil
		return
	}
	m.Errors = make([]BatchItemError, n)
	for i := range m.Errors {
		m.Errors[i].Index = r.int_()
		m.Errors[i].Error = r.str()
	}
}

// AdsRequest is the body of POST /v1/ads.
type AdsRequest struct {
	UserID string    `json:"user_id"`
	Pos    geo.Point `json:"pos"`
	Limit  int       `json:"limit,omitempty"`
}

func (*AdsRequest) wireType() byte { return typeAdsRequest }

func (m *AdsRequest) appendBody(dst []byte) []byte {
	dst = appendString(dst, m.UserID)
	dst = appendPoint(dst, m.Pos)
	return appendInt(dst, m.Limit)
}

func (m *AdsRequest) readBody(r *reader) {
	m.UserID = r.str()
	m.Pos = r.point()
	m.Limit = r.int_()
}

// AdsResponse is the body returned by POST /v1/ads.
type AdsResponse struct {
	// Ads are the provider's matches filtered to the user's true AOI.
	Ads []adnet.Ad `json:"ads"`
	// Reported is the obfuscated location the edge exposed to the
	// provider (returned for transparency/debugging; it is already public
	// to the provider).
	Reported geo.Point `json:"reported"`
	// FromTable reports whether the location was served from the
	// permanent obfuscation table (top location) or freshly noised
	// (nomadic).
	FromTable bool `json:"from_table"`
	// Fetched is the number of ads returned by the provider before AOI
	// filtering.
	Fetched int `json:"fetched"`
	// Degraded reports that the provider call was abandoned at the
	// configured timeout and the empty ad list is a degraded answer, not
	// a genuine no-match.
	Degraded bool `json:"degraded,omitempty"`
}

func (*AdsResponse) wireType() byte { return typeAdsResponse }

func (m *AdsResponse) appendBody(dst []byte) []byte {
	dst = appendLen(dst, m.Ads)
	for i := range m.Ads {
		dst = appendString(dst, m.Ads[i].ID)
		dst = appendString(dst, m.Ads[i].Title)
		dst = appendPoint(dst, m.Ads[i].Location)
	}
	dst = appendPoint(dst, m.Reported)
	dst = appendBool(dst, m.FromTable)
	dst = appendInt(dst, m.Fetched)
	return appendBool(dst, m.Degraded)
}

func (m *AdsResponse) readBody(r *reader) {
	n, ok := r.sliceLen()
	if !ok {
		m.Ads = nil
	} else {
		m.Ads = make([]adnet.Ad, n)
		for i := range m.Ads {
			m.Ads[i].ID = r.str()
			m.Ads[i].Title = r.str()
			m.Ads[i].Location = r.point()
		}
	}
	m.Reported = r.point()
	m.FromTable = r.bool_()
	m.Fetched = r.int_()
	m.Degraded = r.bool_()
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Users          int `json:"users"`
	ProtectedTops  int `json:"protected_tops"`
	TotalCandidate int `json:"total_candidates"`
}

func (*StatsResponse) wireType() byte { return typeStats }

func (m *StatsResponse) appendBody(dst []byte) []byte {
	dst = appendInt(dst, m.Users)
	dst = appendInt(dst, m.ProtectedTops)
	return appendInt(dst, m.TotalCandidate)
}

func (m *StatsResponse) readBody(r *reader) {
	m.Users = r.int_()
	m.ProtectedTops = r.int_()
	m.TotalCandidate = r.int_()
}

// ErrorResponse is the error envelope of every serving-path route, in
// whichever codec the client negotiated (JSON clients keep receiving
// the {"error": ...} object unchanged).
type ErrorResponse struct {
	Error string `json:"error"`
}

func (*ErrorResponse) wireType() byte { return typeError }

func (m *ErrorResponse) appendBody(dst []byte) []byte { return appendString(dst, m.Error) }

func (m *ErrorResponse) readBody(r *reader) { m.Error = r.str() }
