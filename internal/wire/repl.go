package wire

import (
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/profile"
)

// ReplDelta is the replication-path message: one merge round's update
// for one user, shipped obfuscator → replica. Obfuscation tables are
// append-only (first writer wins), so any replica's table is a prefix of
// the obfuscator's; a delta therefore carries only the suffix the
// replica is missing, content-addressed by the fingerprint chain of
// internal/core:
//
//   - BaseLen/BaseFP name the prefix the delta extends: the replica
//     must hold exactly BaseLen entries hashing to BaseFP (the
//     core.FingerprintTable chain value) for Entries to apply.
//   - FullFP is the chain value after appending Entries — the
//     byte-identity the replica must land on.
//   - BaseLen == 0 (BaseFP == core.FingerprintSeed) is a full snapshot:
//     the fallback when a replica's content proof fails.
//
// Unlike the serving messages, deltas never travel as JSON in
// production — the struct still carries tags so the codec-equivalence
// fuzzers can cross-check the binary encoding against encoding/json.
type ReplDelta struct {
	UserID string `json:"user_id"`
	// Version is the journal version this delta brings the replica to.
	Version uint64 `json:"version"`
	BaseLen int    `json:"base_len"`
	BaseFP  uint64 `json:"base_fp"`
	FullFP  uint64 `json:"full_fp"`
	// Entries are the obfuscator's table rows [BaseLen, BaseLen+len) —
	// the suffix the replica is missing.
	Entries []core.TableEntry `json:"entries"`
	// Tops is the merged η-frequent top set installed with the round.
	Tops profile.Profile `json:"tops"`
	// At is the merge round's timestamp.
	At time.Time `json:"at"`
}

func (*ReplDelta) wireType() byte { return typeReplDelta }

func (m *ReplDelta) appendBody(dst []byte) []byte {
	dst = appendString(dst, m.UserID)
	dst = appendUvarint(dst, m.Version)
	dst = appendInt(dst, m.BaseLen)
	dst = appendUint64(dst, m.BaseFP)
	dst = appendUint64(dst, m.FullFP)
	dst = appendLen(dst, m.Entries)
	for i := range m.Entries {
		e := &m.Entries[i]
		dst = appendPoint(dst, e.Top)
		dst = appendLen(dst, e.Candidates)
		for _, cand := range e.Candidates {
			dst = appendPoint(dst, cand)
		}
		dst = appendTime(dst, e.CreatedAt)
	}
	dst = appendLen(dst, m.Tops)
	for i := range m.Tops {
		dst = appendPoint(dst, m.Tops[i].Loc)
		dst = appendInt(dst, m.Tops[i].Freq)
	}
	return appendTime(dst, m.At)
}

func (m *ReplDelta) readBody(r *reader) {
	m.UserID = r.str()
	m.Version = r.uvarint()
	m.BaseLen = r.int_()
	m.BaseFP = r.uint64()
	m.FullFP = r.uint64()
	n, ok := r.sliceLen()
	if !ok {
		m.Entries = nil
	} else {
		m.Entries = make([]core.TableEntry, n)
		for i := range m.Entries {
			e := &m.Entries[i]
			e.Top = r.point()
			cn, cok := r.sliceLen()
			if !cok {
				e.Candidates = nil
			} else {
				e.Candidates = make([]geo.Point, cn)
				for j := range e.Candidates {
					e.Candidates[j] = r.point()
				}
			}
			e.CreatedAt = r.time()
		}
	}
	n, ok = r.sliceLen()
	if !ok {
		m.Tops = nil
	} else {
		m.Tops = make(profile.Profile, n)
		for i := range m.Tops {
			m.Tops[i].Loc = r.point()
			m.Tops[i].Freq = r.int_()
		}
	}
	m.At = r.time()
}
