// Package wire implements the compact binary wire protocol of the
// serving hot path. At the request volumes the load generator sustains,
// JSON encode/decode dominates per-request CPU; this codec replaces it
// with a length-prefixed, CRC-checksummed, versioned binary framing —
// the same idiom internal/wal uses on disk — negotiated per request via
// HTTP content types, so JSON and binary clients interoperate against
// the same edge.
//
// Framing (all integers little-endian, matching the WAL):
//
//	[4B payload length][4B CRC32(payload)][payload]
//	payload = [1B version][1B message type][body]
//
// Bodies are encoded with varints for integers, raw IEEE-754 bits for
// floats, and length-prefixed byte strings, so a batch of 64 check-ins
// costs a few hundred bytes instead of several kilobytes of JSON. Every
// message type round-trips to an identical struct (times are normalized
// to UTC; nil and empty slices are distinguished), a property pinned by
// the fuzz tests in this package.
//
// The codec is deliberately not self-describing: each HTTP route knows
// the message type it expects, and Decode rejects a frame whose type
// byte disagrees — a mis-routed body fails loudly instead of decoding
// into garbage.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/geo"
)

// ContentType is the HTTP media type of binary-encoded serving-path
// bodies. Clients send it as Content-Type (request body encoding) and
// Accept (requested response encoding); anything else is served as the
// pre-existing application/json.
const ContentType = "application/x-privlocad-bin"

// Version is the current protocol version; Decode rejects frames from
// any other version so an old client can never be silently misread.
const Version = 1

const (
	// headerSize is the frame prefix: 4B length + 4B CRC.
	headerSize = 8
	// MaxMessageBytes bounds a frame's payload; a corrupt length prefix
	// must never trigger a huge allocation.
	MaxMessageBytes = 16 << 20
)

// Message type bytes. The zero value is reserved so an all-zero frame
// can never pass for a real message.
const (
	typeInvalid byte = iota
	typeReport
	typeReportBatch
	typeReportBatchResponse
	typeAdsRequest
	typeAdsResponse
	typeStats
	typeError
	typeReplDelta
)

// Codec errors.
var (
	// ErrFrame reports a structurally broken frame: truncated header,
	// length prefix disagreeing with the body, or trailing garbage.
	ErrFrame = errors.New("wire: malformed frame")
	// ErrChecksum reports a payload whose CRC32 does not match the header.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrVersion reports a frame from an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrType reports a frame whose message type differs from the one the
	// caller expected for this route.
	ErrType = errors.New("wire: unexpected message type")
	// ErrBody reports a payload whose body failed to decode (truncated
	// fields, oversized counts, trailing bytes).
	ErrBody = errors.New("wire: malformed body")
)

// Message is one serving-path message type. Implementations live in
// this package (messages.go); internal/edge aliases them so the HTTP
// layer's exported request/response types are the wire types.
type Message interface {
	wireType() byte
	appendBody(dst []byte) []byte
	readBody(r *reader)
}

// Append encodes m as one binary frame appended to dst and returns the
// extended slice. Encoding into a caller-pooled buffer keeps the server
// hot path allocation-free.
func Append(dst []byte, m Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header, patched below
	dst = append(dst, Version, m.wireType())
	dst = m.appendBody(dst)
	payload := dst[start+headerSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// Encode returns m as one freshly allocated binary frame.
func Encode(m Message) []byte { return Append(nil, m) }

// Decode parses one binary frame into m. The frame must span data
// exactly: checksummed length prefix, matching version and type bytes,
// and a body with no bytes left over.
func Decode(data []byte, m Message) error {
	payload, err := RawFramePayload(data)
	if err != nil {
		return err
	}
	if len(payload) < 2 {
		return fmt.Errorf("%w: payload too short for version and type", ErrFrame)
	}
	if payload[0] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, payload[0])
	}
	if payload[1] != m.wireType() {
		return fmt.Errorf("%w: got %d, want %d", ErrType, payload[1], m.wireType())
	}
	r := &reader{buf: payload[2:]}
	m.readBody(r)
	if r.err != nil {
		return fmt.Errorf("%w: %v", ErrBody, r.err)
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBody, len(r.buf)-r.off)
	}
	return nil
}

// --- encoding primitives ---

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendInt(dst []byte, v int) []byte { return binary.AppendVarint(dst, int64(v)) }

func appendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendUint64 encodes a fixed 8-byte little-endian word. Fingerprints
// use it instead of a varint: hash values occupy the full 64-bit range,
// where varints cost 9-10 bytes.
func appendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendPoint(dst []byte, p geo.Point) []byte {
	dst = appendFloat64(dst, p.X)
	return appendFloat64(dst, p.Y)
}

// appendTime encodes t as a zero flag plus unix seconds and
// nanoseconds. The location is not carried: decoding yields the same
// instant in UTC, which is all the serving path ever compares.
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendVarint(dst, t.Unix())
	return appendUvarint(dst, uint64(t.Nanosecond()))
}

// appendLen encodes a slice length with nil-ness preserved: 0 is nil,
// k+1 is a k-element slice, so binary round trips are identity for both
// nil and empty slices (JSON makes the same distinction via null).
func appendLen[T any](dst []byte, s []T) []byte {
	if s == nil {
		return appendUvarint(dst, 0)
	}
	return appendUvarint(dst, uint64(len(s))+1)
}

// --- decoding primitives ---

// reader walks a payload body with a sticky error, so message decoders
// read field after field and check once at the end.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) int_() int { return int(r.varint64()) }

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated uint64 at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float64 at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string length %d exceeds %d remaining bytes", n, len(r.buf)-r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bool_() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("bool byte %d at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

func (r *reader) point() geo.Point {
	x := r.float64()
	y := r.float64()
	return geo.Point{X: x, Y: y}
}

func (r *reader) time() time.Time {
	if !r.bool_() {
		return time.Time{}
	}
	s := r.varint64()
	n := r.uvarint()
	if r.err != nil {
		return time.Time{}
	}
	if n >= 1e9 {
		r.fail("time nanoseconds %d out of range", n)
		return time.Time{}
	}
	return time.Unix(s, int64(n)).UTC()
}

// sliceLen inverts appendLen: it returns the element count and whether
// the slice was non-nil, bounding the count by the bytes remaining so a
// corrupt frame cannot force a huge allocation (every element costs at
// least one byte).
func (r *reader) sliceLen() (int, bool) {
	v := r.uvarint()
	if r.err != nil || v == 0 {
		return 0, false
	}
	n := v - 1
	if n > uint64(len(r.buf)-r.off) {
		r.fail("slice length %d exceeds %d remaining bytes", n, len(r.buf)-r.off)
		return 0, false
	}
	return int(n), true
}
