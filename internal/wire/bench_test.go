package wire

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/profile"
)

// benchReport builds one representative check-in.
func benchReport(i int) ReportRequest {
	return ReportRequest{
		UserID: fmt.Sprintf("u%05d", i),
		Pos:    geo.Point{X: 12_345.678 + float64(i), Y: -9_876.543},
		Time:   time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
	}
}

// benchBatch builds the canonical 64-check-in batch of the serving
// sweeps.
func benchBatch() *ReportBatchRequest {
	b := &ReportBatchRequest{Reports: make([]ReportRequest, 64)}
	for i := range b.Reports {
		b.Reports[i] = benchReport(i)
	}
	return b
}

// benchAds builds an ads response with ten matched creatives.
func benchAds() *AdsResponse {
	resp := &AdsResponse{
		Ads:      make([]adnet.Ad, 10),
		Reported: geo.Point{X: 100, Y: 200},
		Fetched:  10,
	}
	for i := range resp.Ads {
		resp.Ads[i] = adnet.Ad{
			ID:       fmt.Sprintf("ad%05d", i),
			Title:    fmt.Sprintf("Offer %d", i),
			Location: geo.Point{X: float64(i) * 1000, Y: 500},
		}
	}
	return resp
}

// benchEncode times one message's encode in both codecs. The encoded
// frame (or JSON document) size lands in the frame_bytes metric so the
// archive records the wire-size reduction next to the CPU ratio.
func benchEncode(b *testing.B, m Message) {
	b.Run("codec=json", func(b *testing.B) {
		var n int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(m)
			if err != nil {
				b.Fatal(err)
			}
			n = len(data)
		}
		b.ReportMetric(float64(n), "frame_bytes")
	})
	b.Run("codec=binary", func(b *testing.B) {
		buf := make([]byte, 0, 1<<14)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = Append(buf[:0], m)
		}
		b.ReportMetric(float64(len(buf)), "frame_bytes")
	})
}

func benchDecode(b *testing.B, m Message, fresh func() Message) {
	jsonData, err := json.Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	binData := Encode(m)
	b.Run("codec=json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := json.Unmarshal(jsonData, fresh()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("codec=binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := Decode(binData, fresh()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWireEncodeReport(b *testing.B) {
	r := benchReport(0)
	benchEncode(b, &r)
}

func BenchmarkWireDecodeReport(b *testing.B) {
	r := benchReport(0)
	benchDecode(b, &r, func() Message { return &ReportRequest{} })
}

func BenchmarkWireEncodeBatch64(b *testing.B) {
	benchEncode(b, benchBatch())
}

func BenchmarkWireDecodeBatch64(b *testing.B) {
	benchDecode(b, benchBatch(), func() Message { return &ReportBatchRequest{} })
}

func BenchmarkWireEncodeAds10(b *testing.B) {
	benchEncode(b, benchAds())
}

func BenchmarkWireDecodeAds10(b *testing.B) {
	benchDecode(b, benchAds(), func() Message { return &AdsResponse{} })
}

// benchReplDelta builds a replication delta carrying n table entries
// with the engine's default 8 candidates each — the shape one merge
// round ships per changed user.
func benchReplDelta(n int) *ReplDelta {
	d := &ReplDelta{
		UserID:  "u00042",
		Version: 12345,
		BaseLen: 7,
		BaseFP:  0x1234_5678_9abc_def0,
		FullFP:  0x0fed_cba9_8765_4321,
		Entries: make([]core.TableEntry, n),
		Tops:    make(profile.Profile, n),
		At:      time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC),
	}
	for i := range d.Entries {
		e := &d.Entries[i]
		e.Top = geo.Point{X: float64(i) * 500, Y: 250}
		e.Candidates = make([]geo.Point, 8)
		for j := range e.Candidates {
			e.Candidates[j] = geo.Point{X: float64(i*100 + j), Y: float64(j) * 33.5}
		}
		e.CreatedAt = d.At.Add(time.Duration(i) * time.Minute)
		d.Tops[i] = profile.LocationFreq{Loc: e.Top, Freq: 50 - i}
	}
	return d
}

func BenchmarkWireEncodeReplDelta4(b *testing.B) {
	benchEncode(b, benchReplDelta(4))
}

func BenchmarkWireDecodeReplDelta4(b *testing.B) {
	benchDecode(b, benchReplDelta(4), func() Message { return &ReplDelta{} })
}
