package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Raw frames are the codec's outer framing — [4B length][4B CRC32]
// [payload] — factored out from the version/type payload envelope.
// Decode routes through RawFramePayload, so there is exactly one
// definition of what a well-formed frame is; callers that ship opaque
// payloads under the same corruption-detection idiom (the engine's
// cold-user spill frames use the identical layout on disk) get the
// checksummed framing without the message envelope.

// RawFrameOverhead is the fixed per-frame framing cost in bytes.
const RawFrameOverhead = headerSize

// AppendRawFrame appends payload to dst as one checksummed frame and
// returns the extended slice.
func AppendRawFrame(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// RawFramePayload verifies a frame produced by AppendRawFrame and
// returns its payload (aliasing data, not a copy). The frame must span
// data exactly.
func RawFramePayload(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrFrame, len(data), headerSize)
	}
	n := binary.LittleEndian.Uint32(data)
	if n > MaxMessageBytes {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrame, n, MaxMessageBytes)
	}
	if uint32(len(data)-headerSize) != n {
		return nil, fmt.Errorf("%w: header says %d payload bytes, frame has %d", ErrFrame, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[4:]); got != want {
		return nil, fmt.Errorf("%w: %08x, header says %08x", ErrChecksum, got, want)
	}
	return payload, nil
}
