package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
)

// messageTypes enumerates every serving-path message; the fuzz and
// property tests below run each check over all of them.
var messageTypes = []struct {
	name string
	new  func() Message
}{
	{"report", func() Message { return &ReportRequest{} }},
	{"report_batch", func() Message { return &ReportBatchRequest{} }},
	{"report_batch_response", func() Message { return &ReportBatchResponse{} }},
	{"ads_request", func() Message { return &AdsRequest{} }},
	{"ads_response", func() Message { return &AdsResponse{} }},
	{"stats", func() Message { return &StatsResponse{} }},
	{"error", func() Message { return &ErrorResponse{} }},
	{"repl_delta", func() Message { return &ReplDelta{} }},
}

// genString draws a short ASCII string (JSON-marshalable without
// replacement characters, so binary and JSON round trips can be
// compared for struct equality).
func genString(rnd *randx.Rand) string {
	const charset = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-/.:,!?\"\\{}"
	n := rnd.IntN(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = charset[rnd.IntN(len(charset))]
	}
	return string(b)
}

// genFloat draws a finite float (JSON cannot carry NaN/Inf), mixing
// plain coordinates with exact integers and negative values.
func genFloat(rnd *randx.Rand) float64 {
	switch rnd.IntN(4) {
	case 0:
		return 0
	case 1:
		return float64(rnd.IntN(2_000_000) - 1_000_000)
	default:
		return (rnd.Float64() - 0.5) * 2e6
	}
}

func genPoint(rnd *randx.Rand) geo.Point {
	return geo.Point{X: genFloat(rnd), Y: genFloat(rnd)}
}

// genTime draws either the zero time or a UTC instant with nanoseconds
// in the RFC 3339-representable year range. UTC matters: the binary
// codec normalizes decoded times to UTC, and JSON round-trips "Z"
// timestamps back to UTC, so generated values compare equal under
// reflect.DeepEqual after either codec.
func genTime(rnd *randx.Rand) time.Time {
	if rnd.IntN(4) == 0 {
		return time.Time{}
	}
	sec := int64(rnd.IntN(4_000_000_000)) - 1_000_000_000 // ~1938..2096
	return time.Unix(sec, int64(rnd.IntN(1_000_000_000))).UTC()
}

func genInt(rnd *randx.Rand) int {
	return rnd.IntN(1_000_000) - 500_000
}

func genReport(rnd *randx.Rand) ReportRequest {
	return ReportRequest{UserID: genString(rnd), Pos: genPoint(rnd), Time: genTime(rnd)}
}

// genMessage draws a random value of the given message type. Slices are
// nil, empty, or populated with roughly equal probability, covering the
// nil-preservation encoding.
func genMessage(rnd *randx.Rand, name string) Message {
	genReports := func() []ReportRequest {
		switch rnd.IntN(3) {
		case 0:
			return nil
		case 1:
			return []ReportRequest{}
		}
		out := make([]ReportRequest, 1+rnd.IntN(8))
		for i := range out {
			out[i] = genReport(rnd)
		}
		return out
	}
	switch name {
	case "report":
		r := genReport(rnd)
		return &r
	case "report_batch":
		return &ReportBatchRequest{Reports: genReports()}
	case "report_batch_response":
		m := &ReportBatchResponse{Accepted: genInt(rnd)}
		// Errors carries json omitempty, which collapses a non-nil empty
		// slice to nil across a JSON round trip; the server only ever
		// produces nil or populated, so the generator does too.
		if rnd.IntN(2) == 0 {
			m.Errors = make([]BatchItemError, 1+rnd.IntN(6))
			for i := range m.Errors {
				m.Errors[i] = BatchItemError{Index: genInt(rnd), Error: genString(rnd)}
			}
		}
		return m
	case "ads_request":
		return &AdsRequest{UserID: genString(rnd), Pos: genPoint(rnd), Limit: genInt(rnd)}
	case "ads_response":
		m := &AdsResponse{
			Reported:  genPoint(rnd),
			FromTable: rnd.IntN(2) == 0,
			Fetched:   genInt(rnd),
			Degraded:  rnd.IntN(2) == 0,
		}
		switch rnd.IntN(3) {
		case 0:
			m.Ads = nil
		case 1:
			m.Ads = []adnet.Ad{}
		default:
			m.Ads = make([]adnet.Ad, 1+rnd.IntN(6))
			for i := range m.Ads {
				m.Ads[i] = adnet.Ad{ID: genString(rnd), Title: genString(rnd), Location: genPoint(rnd)}
			}
		}
		return m
	case "stats":
		return &StatsResponse{Users: genInt(rnd), ProtectedTops: genInt(rnd), TotalCandidate: genInt(rnd)}
	case "error":
		return &ErrorResponse{Error: genString(rnd)}
	case "repl_delta":
		d := genReplDelta(rnd)
		return &d
	}
	panic("unknown message type " + name)
}

func genTableEntries(rnd *randx.Rand, n int) []core.TableEntry {
	out := make([]core.TableEntry, n)
	for i := range out {
		out[i].Top = genPoint(rnd)
		switch rnd.IntN(3) {
		case 0:
			out[i].Candidates = nil
		case 1:
			out[i].Candidates = []geo.Point{}
		default:
			out[i].Candidates = make([]geo.Point, 1+rnd.IntN(6))
			for j := range out[i].Candidates {
				out[i].Candidates[j] = genPoint(rnd)
			}
		}
		out[i].CreatedAt = genTime(rnd)
	}
	return out
}

func genReplDelta(rnd *randx.Rand) ReplDelta {
	d := ReplDelta{
		UserID:  genString(rnd),
		Version: rnd.Uint64(),
		BaseLen: rnd.IntN(1000),
		BaseFP:  rnd.Uint64(),
		FullFP:  rnd.Uint64(),
		At:      genTime(rnd),
	}
	switch rnd.IntN(3) {
	case 0:
		d.Entries = nil
	case 1:
		d.Entries = []core.TableEntry{}
	default:
		d.Entries = genTableEntries(rnd, 1+rnd.IntN(6))
	}
	switch rnd.IntN(3) {
	case 0:
		d.Tops = nil
	case 1:
		d.Tops = profile.Profile{}
	default:
		d.Tops = make(profile.Profile, 1+rnd.IntN(6))
		for i := range d.Tops {
			d.Tops[i] = profile.LocationFreq{Loc: genPoint(rnd), Freq: genInt(rnd)}
		}
	}
	return d
}

// FuzzReplDelta is the delta codec fuzzer verify.sh smokes: beyond
// round-trip identity, it pins the content-address contract — for a
// random table and a fuzzer-chosen split point, the delta built from the
// suffix names its base and full states by fingerprint chain, and
// applying the decoded suffix onto the base prefix reproduces the full
// table's fingerprint exactly (delta ≡ snapshot).
func FuzzReplDelta(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed, uint(seed))
	}
	f.Fuzz(func(t *testing.T, seed uint64, splitRaw uint) {
		rnd := randx.New(seed, 0x0DE1)
		d := genReplDelta(rnd)
		checkRoundTrip(t, "repl_delta", &d, func() Message { return &ReplDelta{} })

		full := genTableEntries(rnd, 1+rnd.IntN(12))
		split := int(splitRaw % uint(len(full)+1))
		delta := ReplDelta{
			UserID:  genString(rnd),
			Version: rnd.Uint64(),
			BaseLen: split,
			BaseFP:  core.FingerprintTable(full[:split]),
			FullFP:  core.FingerprintTable(full),
			Entries: full[split:],
			At:      genTime(rnd),
		}
		var got ReplDelta
		if err := Decode(Encode(&delta), &got); err != nil {
			t.Fatalf("delta decode: %v", err)
		}
		if fp := core.ExtendFingerprint(got.BaseFP, got.Entries); fp != got.FullFP {
			t.Fatalf("split %d: applying decoded suffix onto base fp %x gives %x, want %x",
				split, got.BaseFP, fp, got.FullFP)
		}
		if snap := core.FingerprintTable(full); snap != got.FullFP {
			t.Fatalf("split %d: delta landed on %x, snapshot says %x", split, got.FullFP, snap)
		}
		if split == 0 && got.BaseFP != core.FingerprintSeed {
			t.Fatalf("snapshot delta base fp = %x, want seed", got.BaseFP)
		}
	})
}

// FuzzRoundTrip drives the structured properties from a fuzzer-chosen
// seed: for every message type, (1) binary encode→decode is identity,
// and (2) decoding the JSON encoding yields the same struct the binary
// decode yields.
func FuzzRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rnd := randx.New(seed, 0x3142)
		for _, mt := range messageTypes {
			orig := genMessage(rnd, mt.name)
			checkRoundTrip(t, mt.name, orig, mt.new)
		}
	})
}

func checkRoundTrip(t *testing.T, name string, orig Message, fresh func() Message) {
	t.Helper()
	// Binary round trip is identity.
	frame := Encode(orig)
	binDecoded := fresh()
	if err := Decode(frame, binDecoded); err != nil {
		t.Fatalf("%s: binary decode: %v (value %+v)", name, err, orig)
	}
	if !reflect.DeepEqual(orig, binDecoded) {
		t.Fatalf("%s: binary round trip not identity:\n orig: %+v\n got:  %+v", name, orig, binDecoded)
	}
	// JSON and binary decodes of the same value agree struct-for-struct.
	jsonBytes, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("%s: json marshal: %v", name, err)
	}
	jsonDecoded := fresh()
	if err := json.Unmarshal(jsonBytes, jsonDecoded); err != nil {
		t.Fatalf("%s: json unmarshal: %v", name, err)
	}
	if !reflect.DeepEqual(jsonDecoded, binDecoded) {
		t.Fatalf("%s: codecs disagree:\n json:   %+v\n binary: %+v", name, jsonDecoded, binDecoded)
	}
	// Appending to a dirty buffer produces the same frame.
	prefixed := Append([]byte("junk-prefix"), orig)
	if !bytes.Equal(prefixed[len("junk-prefix"):], frame) {
		t.Fatalf("%s: Append onto a prefix diverges from Encode", name)
	}
}

// TestRoundTripSeeds runs the seed corpus through plain `go test` with
// many more draws per type than one fuzz execution.
func TestRoundTripSeeds(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		rnd := randx.New(seed, 0x3142)
		for _, mt := range messageTypes {
			checkRoundTrip(t, mt.name, genMessage(rnd, mt.name), mt.new)
		}
	}
}

// FuzzDecodeArbitrary throws raw bytes at every message decoder. The
// decoder must never panic or over-allocate; when it accepts the input,
// re-encoding the decoded value must produce a frame that decodes to the
// same value again (byte-compared through a second encode, which also
// holds for NaN floats where DeepEqual would not).
func FuzzDecodeArbitrary(f *testing.F) {
	for _, mt := range messageTypes {
		rnd := randx.New(7, 0x3142)
		f.Add(Encode(genMessage(rnd, mt.name)))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mt := range messageTypes {
			m := mt.new()
			if err := Decode(data, m); err != nil {
				continue
			}
			first := Encode(m)
			m2 := mt.new()
			if err := Decode(first, m2); err != nil {
				t.Fatalf("%s: re-decode of canonical frame failed: %v", mt.name, err)
			}
			if second := Encode(m2); !bytes.Equal(first, second) {
				t.Fatalf("%s: canonical encoding unstable:\n first:  %x\n second: %x", mt.name, first, second)
			}
		}
	})
}

// TestDecodeRejectsCorruption pins the error taxonomy: truncation,
// flipped payload bits, wrong version, and mismatched type each fail
// with their dedicated sentinel.
func TestDecodeRejectsCorruption(t *testing.T) {
	orig := &ReportRequest{UserID: "u1", Pos: geo.Point{X: 1, Y: 2}, Time: time.Unix(1609459200, 0).UTC()}
	frame := Encode(orig)

	for cut := 0; cut < len(frame); cut++ {
		if err := Decode(frame[:cut], &ReportRequest{}); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(frame))
		}
	}
	for i := headerSize; i < len(frame); i++ {
		bad := bytes.Clone(frame)
		bad[i] ^= 0x40
		err := Decode(bad, &ReportRequest{})
		if err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip at %d: got %v, want checksum mismatch", i, err)
		}
	}
	if err := Decode(frame, &AdsRequest{}); !errors.Is(err, ErrType) {
		t.Fatalf("wrong message type: got %v, want ErrType", err)
	}

	// A frame with a bad version but a valid checksum.
	payload := bytes.Clone(frame[headerSize:])
	payload[0] = Version + 1
	bad := make([]byte, headerSize, headerSize+len(payload))
	bad = append(bad, payload...)
	writeHeader(bad)
	if err := Decode(bad, &ReportRequest{}); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	// Trailing garbage inside a checksummed payload.
	payload = append(bytes.Clone(frame[headerSize:]), 0xAB)
	bad = append(make([]byte, headerSize, headerSize+len(payload)), payload...)
	writeHeader(bad)
	if err := Decode(bad, &ReportRequest{}); !errors.Is(err, ErrBody) {
		t.Fatalf("trailing bytes: got %v, want ErrBody", err)
	}
	// An oversized length prefix must be rejected before any allocation.
	huge := make([]byte, headerSize)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if err := Decode(huge, &ReportRequest{}); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized prefix: got %v, want ErrFrame", err)
	}
}

// writeHeader stamps the length and CRC header of a hand-built frame.
func writeHeader(frame []byte) {
	payload := frame[headerSize:]
	frame[0] = byte(len(payload))
	frame[1] = byte(len(payload) >> 8)
	frame[2] = byte(len(payload) >> 16)
	frame[3] = byte(len(payload) >> 24)
	sum := crc32.ChecksumIEEE(payload)
	frame[4] = byte(sum)
	frame[5] = byte(sum >> 8)
	frame[6] = byte(sum >> 16)
	frame[7] = byte(sum >> 24)
}

// TestTimeNormalization documents the one intentional lossy edge: a
// non-UTC time decodes to the same instant in UTC.
func TestTimeNormalization(t *testing.T) {
	loc := time.FixedZone("UTC+7", 7*3600)
	orig := &ReportRequest{UserID: "u", Time: time.Unix(1700000000, 123).In(loc)}
	var got ReportRequest
	if err := Decode(Encode(orig), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(orig.Time) {
		t.Fatalf("instant changed: %v -> %v", orig.Time, got.Time)
	}
	if got.Time.Location() != time.UTC {
		t.Fatalf("location = %v, want UTC", got.Time.Location())
	}
}

// TestFrameOverhead pins the size win the protocol exists for: a
// 64-report binary batch must be several times smaller than its JSON
// encoding.
func TestFrameOverhead(t *testing.T) {
	rnd := randx.New(1, 0xBEEF)
	batch := &ReportBatchRequest{Reports: make([]ReportRequest, 64)}
	for i := range batch.Reports {
		batch.Reports[i] = ReportRequest{
			UserID: fmt.Sprintf("user-%04d", i),
			Pos:    genPoint(rnd),
			Time:   genTime(rnd),
		}
	}
	bin := Encode(batch)
	js, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(js)) / float64(len(bin)); ratio < 2 {
		t.Fatalf("binary batch only %.2fx smaller than JSON (%d vs %d bytes)", ratio, len(bin), len(js))
	}
	t.Logf("64-report batch: binary %d bytes, JSON %d bytes", len(bin), len(js))
}
