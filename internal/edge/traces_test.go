package edge

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/geo"
	"repro/internal/tracing"
)

// tracesDoc mirrors the /debug/traces response shape.
type tracesDoc struct {
	ActiveSpans int64                 `json:"active_spans"`
	Traces      []tracing.TraceRecord `json:"traces"`
}

func getTraces(t *testing.T, url string) tracesDoc {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", resp.StatusCode)
	}
	var doc tracesDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestDebugTracesEndpoint drives the golden traffic and checks the ring
// endpoint: every request left a finished trace with per-stage spans,
// and no span is still active afterwards.
func TestDebugTracesEndpoint(t *testing.T) {
	f := newMetricsFixture(t)
	driveGoldenTraffic(t, f)

	doc := getTraces(t, f.ts.URL)
	if doc.ActiveSpans != 0 {
		t.Errorf("active_spans = %d, want 0", doc.ActiveSpans)
	}
	if len(doc.Traces) == 0 {
		t.Fatal("no traces in the ring after golden traffic")
	}
	stages := map[string]bool{}
	names := map[string]bool{}
	for _, tr := range doc.Traces {
		if tr.TraceID == "" || len(tr.TraceID) != 32 {
			t.Errorf("trace %q has malformed ID %q", tr.Name, tr.TraceID)
		}
		names[tr.Name] = true
		if len(tr.Spans) == 0 {
			t.Errorf("trace %s has no spans", tr.TraceID)
		}
		for _, sp := range tr.Spans {
			stages[sp.Stage] = true
		}
	}
	for _, want := range []string{"/v1/report", "/v1/ads", "/v1/rebuild"} {
		if !names[want] {
			t.Errorf("no trace named %s in the ring (got %v)", want, names)
		}
	}
	// The golden traffic exercises the handler, engine apply, WAL append,
	// and provider stages (no cluster, so no failover).
	for _, want := range []string{"handler", "apply", "wal", "provider"} {
		if !stages[want] {
			t.Errorf("no %s span in any ring trace (got %v)", want, stages)
		}
	}

	// ?n=1 returns only the slowest trace.
	resp, err := http.Get(f.ts.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var one tracesDoc
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if len(one.Traces) != 1 {
		t.Errorf("?n=1 returned %d traces", len(one.Traces))
	}
}

// TestTraceparentAdoption checks the middleware joins the caller's
// trace: a request carrying a traceparent header finishes a trace under
// the REMOTE trace ID, which then shows up in /debug/traces.
func TestTraceparentAdoption(t *testing.T) {
	f := newMetricsFixture(t)

	caller := tracing.New(99)
	ctx, root := caller.StartTrace(t.Context(), "caller")
	wantID, ok := tracing.ContextTraceID(ctx)
	if !ok {
		t.Fatal("caller trace has no ID")
	}
	tp, _ := tracing.ContextTraceparent(ctx)

	payload, err := json.Marshal(ReportRequest{UserID: "remote", Pos: geo.Point{X: 10, Y: 10}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/v1/report", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tracing.TraceparentHeader, tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	root.End()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("report status = %d", resp.StatusCode)
	}

	doc := getTraces(t, f.ts.URL)
	found := false
	for _, tr := range doc.Traces {
		if tr.TraceID == wantID {
			found = true
		}
	}
	if !found {
		t.Errorf("edge did not adopt the caller's trace ID %s; ring has %d traces", wantID, len(doc.Traces))
	}
}

// TestWithTracerNilDisables checks the opt-out: no tracer means no
// /debug/traces route and an untraced (but still served) request path.
func TestWithTracerNilDisables(t *testing.T) {
	f := newMetricsFixtureOpts(t, WithTracer(nil))
	resp, err := http.Get(f.ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces with tracing disabled: status %d, want 404", resp.StatusCode)
	}
	r := f.post(t, "/v1/report", ReportRequest{UserID: "u", Pos: geo.Point{X: 1, Y: 1}})
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Errorf("report with tracing disabled: status %d", r.StatusCode)
	}
}
