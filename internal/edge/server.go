// Package edge implements the edge-device service of Edge-PrivLocAd
// (Section V-A): an HTTP front that trusted edge devices expose to nearby
// mobile users. The edge collects location reports, maintains the
// privacy engine (profiles, permanent obfuscation table, output
// selection), forwards ad requests to the untrusted LBA provider using
// only obfuscated locations, and filters the returned ads down to the
// user's true area of interest before delivery.
package edge

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/wire"
)

// AdProvider is the untrusted LBA service the edge forwards obfuscated
// requests to. *adnet.Network implements it.
type AdProvider interface {
	RequestAds(userID string, loc geo.Point, at time.Time, limit int) []adnet.Ad
}

// ContextAdProvider is the context-aware variant: providers that can
// abandon work early (remote exchanges, networked ad services) implement
// it and are handed the request's deadline-bounded context. Providers
// without it still cannot hold /v1/ads past the timeout — the edge
// abandons the call and serves a degraded empty-ads response.
type ContextAdProvider interface {
	RequestAdsContext(ctx context.Context, userID string, loc geo.Point, at time.Time, limit int) []adnet.Ad
}

var _ AdProvider = (*adnet.Network)(nil)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// Server is the edge HTTP service. Every route is wrapped in a
// telemetry middleware (per-route request counters by status class, a
// latency histogram, an in-flight gauge), and the server's registry —
// shared with the engine via Registry — is exposed at GET /metrics in
// Prometheus text format.
type Server struct {
	engine   *core.Engine
	provider AdProvider
	clock    Clock
	logger   *slog.Logger
	tracer   *tracing.Tracer
	mux      *http.ServeMux
	reg      *telemetry.Registry
	inFlight *telemetry.Gauge

	// providerTimeout bounds each AdProvider call; 0 disables the bound.
	providerTimeout  time.Duration
	providerTimeouts *telemetry.Counter

	// tracerSet marks an explicit WithTracer (including nil, which
	// disables tracing); without it NewServer builds a default tracer
	// seeded from the engine.
	tracerSet bool

	// wireReqs / wireDecodeErrs count serving-path requests and body
	// decode failures per codec, indexed by Codec.
	wireReqs       [2]*telemetry.Counter
	wireDecodeErrs [2]*telemetry.Counter
}

// ServerOption customises a Server.
type ServerOption func(*Server)

// DefaultProviderTimeout bounds AdProvider calls unless overridden: the
// provider is untrusted remote infrastructure, and a hung call must not
// hold /v1/ads (and its client) indefinitely.
const DefaultProviderTimeout = 2 * time.Second

// WithProviderTimeout overrides the AdProvider call bound; d ≤ 0
// disables it (the provider may then block /v1/ads indefinitely).
func WithProviderTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.providerTimeout = d }
}

// WithTracer replaces the server's default request tracer — e.g. one
// built with a slow-trace threshold and logger. nil disables tracing
// (and the /debug/traces route) entirely.
func WithTracer(t *tracing.Tracer) ServerOption {
	return func(s *Server) { s.tracer, s.tracerSet = t, true }
}

// NewServer wires an engine and an ad provider into an HTTP service.
// clock may be nil (wall clock); logger may be nil (logging disabled).
// The server owns a fresh telemetry registry and instruments the engine
// against it; callers that add their own metrics (e.g. the RTB exchange)
// register them on Registry. Every instrumented route runs under a
// request trace (adopting the client's traceparent header when present),
// and the slowest recent traces are served at GET /debug/traces.
func NewServer(engine *core.Engine, provider AdProvider, clock Clock, logger *slog.Logger, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("edge: server requires an engine")
	}
	if provider == nil {
		return nil, fmt.Errorf("edge: server requires an ad provider")
	}
	if clock == nil {
		clock = time.Now
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		engine: engine, provider: provider, clock: clock, logger: logger, reg: reg,
		providerTimeout: DefaultProviderTimeout,
	}
	for _, opt := range opts {
		opt(s)
	}
	if !s.tracerSet {
		// The default tracer shares the engine's seed so trace IDs are as
		// reproducible as the rest of the serving state.
		s.tracer = tracing.New(engine.Config().Seed)
	}
	if s.tracer != nil {
		s.tracer.Instrument(reg)
	}
	s.inFlight = reg.Gauge(metricHTTPInFlight, "HTTP requests currently being served.")
	s.providerTimeouts = reg.Counter("edge_provider_timeouts_total", "AdProvider calls abandoned at the timeout and served as degraded empty-ads responses.")
	// Both codec series are pre-created so the exposition always carries
	// them, even before the first binary (or JSON) client connects.
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		s.wireReqs[c] = reg.Counter("wire_requests_total", "Serving-path requests by negotiated response codec.", telemetry.L("codec", c.String()))
		s.wireDecodeErrs[c] = reg.Counter("wire_decode_errors_total", "Serving-path request bodies that failed to decode, by request codec.", telemetry.L("codec", c.String()))
	}
	engine.Instrument(reg)
	telemetry.RegisterRuntimeMem(reg)
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		route   string
		h       http.HandlerFunc
	}{
		{"GET /healthz", "/healthz", s.handleHealth},
		{"POST /v1/report", "/v1/report", s.handleReport},
		{"POST /v1/report/batch", "/v1/report/batch", s.handleReportBatch},
		{"POST /v1/ads", "/v1/ads", s.handleAds},
		{"POST /v1/rebuild", "/v1/rebuild", s.handleRebuild},
		{"GET /v1/profile", "/v1/profile", s.handleProfile},
		{"GET /v1/privacy", "/v1/privacy", s.handlePrivacy},
		{"GET /v1/stats", "/v1/stats", s.handleStats},
		{"GET /v1/fingerprint", "/v1/fingerprint", s.handleFingerprint},
	}
	for _, r := range routes {
		mux.Handle(r.pattern, s.instrument(r.route, r.h))
	}
	// The scrape endpoint itself is left uninstrumented so monitoring
	// traffic does not pollute the serving-path metrics; likewise the
	// trace-ring debug endpoint, which must not trace itself.
	mux.Handle("GET /metrics", reg.Handler())
	if s.tracer != nil {
		mux.Handle("GET /debug/traces", s.tracer.TracesHandler())
	}
	s.mux = mux
	return s, nil
}

// Tracer returns the server's request tracer (nil when tracing was
// disabled with WithTracer(nil)).
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's telemetry registry, for wiring further
// subsystems (RTB exchange, command-level gauges) into GET /metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// NewHTTPServer builds the http.Server every HTTP front of the service
// runs on: ReadHeaderTimeout caps how long a connection may dribble its
// request headers (the classic slowloris hold) and IdleTimeout reclaims
// keep-alive connections that stop sending requests. Body sizes are
// bounded per route (MaxRequestBody / MaxBatchBody), not here, because
// the batch route legitimately accepts bigger payloads.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve runs the service on the listener until ctx is cancelled, then
// shuts down gracefully.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := NewHTTPServer(s.mux)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("edge: shutdown: %w", err)
		}
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("edge: serve: %w", err)
	}
}

// log emits one structured line, attaching the request's trace ID when
// ctx carries one so log lines join their trace in /debug/traces.
func (s *Server) log(ctx context.Context, level slog.Level, msg string, args ...any) {
	if s.logger == nil {
		return
	}
	if id, ok := tracing.ContextTraceID(ctx); ok {
		args = append(args, slog.String("trace_id", id))
	}
	s.logger.Log(ctx, level, msg, args...)
}

// The serving-path message types live in internal/wire, which defines
// both their JSON tags and their binary encodings; the aliases keep this
// package's exported API unchanged. Control-plane types (rebuild,
// profile, privacy, fingerprint) stay JSON-only and are defined below.
type (
	// ReportRequest is the body of POST /v1/report.
	ReportRequest = wire.ReportRequest
	// ReportBatchRequest is the body of POST /v1/report/batch.
	ReportBatchRequest = wire.ReportBatchRequest
	// BatchItemError is one rejected entry of a batch response.
	BatchItemError = wire.BatchItemError
	// ReportBatchResponse is the body returned by POST /v1/report/batch.
	ReportBatchResponse = wire.ReportBatchResponse
	// AdsRequest is the body of POST /v1/ads.
	AdsRequest = wire.AdsRequest
	// AdsResponse is the body returned by POST /v1/ads.
	AdsResponse = wire.AdsResponse
	// StatsResponse is the body of GET /v1/stats.
	StatsResponse = wire.StatsResponse
)

// RebuildRequest is the body of POST /v1/rebuild.
type RebuildRequest struct {
	UserID string    `json:"user_id"`
	Now    time.Time `json:"now,omitempty"`
}

// ProfileResponse is the body of GET /v1/profile.
type ProfileResponse struct {
	UserID string         `json:"user_id"`
	Tops   []ProfileEntry `json:"tops"`
}

// ProfileEntry is one top location of a profile response.
type ProfileEntry struct {
	Loc  geo.Point `json:"loc"`
	Freq int       `json:"freq"`
}

// PrivacyResponse is the body of GET /v1/privacy: the user's cumulative
// nomadic privacy loss under the engine's best composition bound. Both
// fields are zero when the engine runs without a nomadic budget.
type PrivacyResponse struct {
	UserID  string  `json:"user_id"`
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// jsonBuf pairs a reusable buffer with a JSON encoder bound to it, so
// the serving path neither allocates a fresh encoder per response nor
// grows a fresh buffer through the payload size every request.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// maxPooledBuf caps the buffers the pool retains: a rare huge response
// (a giant batch's error list) should not pin megabytes forever.
const maxPooledBuf = 1 << 18

func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	// Encoding into the buffer first means an encoding failure can still
	// become a clean 500 instead of a half-written 200; the payloads here
	// are plain structs that cannot realistically fail.
	if err := jb.enc.Encode(v); err != nil {
		jsonBufPool.Put(jb)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jb.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(jb.buf.Bytes())
	if jb.buf.Cap() <= maxPooledBuf {
		jsonBufPool.Put(jb)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, wire.ErrorResponse{Error: err.Error()})
}

// bodyBufPool recycles request-body read buffers for decodeBody.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// MaxRequestBody bounds single-message request bodies. Exported so
// every HTTP front of the service (the edge server here and the
// cluster gateway in internal/edgecluster) enforces the same limit
// instead of drifting apart on hardcoded copies.
const MaxRequestBody = 1 << 20

// readBodyBuf reads the request body (bounded at limit bytes) into a
// pooled buffer; release returns the buffer to the pool. Pooling the
// read buffer keeps the per-request allocation profile flat even for
// large batch payloads, which would otherwise regrow a decoder's
// internal buffer on every request.
func readBodyBuf(w http.ResponseWriter, r *http.Request, limit int64) (buf *bytes.Buffer, release func(), err error) {
	buf = bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	release = func() {
		if buf.Cap() <= maxPooledBuf {
			bodyBufPool.Put(buf)
		}
	}
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); err != nil {
		release()
		return nil, nil, fmt.Errorf("reading request: %w", err)
	}
	return buf, release, nil
}

// decodeJSONStrict decodes data into v, rejecting unknown fields.
func decodeJSONStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// decodeBody is the JSON-only decode path used by the control-plane
// routes (rebuild and friends), which are not wire-negotiated.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	buf, release, err := readBodyBuf(w, r, MaxRequestBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	defer release()
	if err := decodeJSONStrict(buf.Bytes(), v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	reqCodec, respCodec := s.negotiate(r)
	var req ReportRequest
	if !s.readBody(w, r, reqCodec, respCodec, &req, MaxRequestBody) {
		return
	}
	if req.UserID == "" {
		WriteCodecError(w, respCodec, http.StatusBadRequest, errors.New("user_id is required"))
		return
	}
	at := req.Time
	if at.IsZero() {
		at = s.clock()
	}
	if err := s.engine.ReportCtx(r.Context(), req.UserID, req.Pos, at); err != nil {
		s.log(r.Context(), slog.LevelError, "report failed", "user", req.UserID, "err", err)
		WriteCodecError(w, respCodec, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// MaxBatchBody bounds POST /v1/report/batch bodies; batches are bigger
// than single reports by design, so they get a wider limit.
const MaxBatchBody = 8 << 20

func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	reqCodec, respCodec := s.negotiate(r)
	var req ReportBatchRequest
	if !s.readBody(w, r, reqCodec, respCodec, &req, MaxBatchBody) {
		return
	}
	if len(req.Reports) == 0 {
		WriteCodecError(w, respCodec, http.StatusBadRequest, errors.New("reports must be non-empty"))
		return
	}

	now := s.clock()
	items := make([]core.BatchReport, 0, len(req.Reports))
	origIndex := make([]int, 0, len(req.Reports)) // engine item -> request index
	var itemErrs []BatchItemError
	for i, rr := range req.Reports {
		if rr.UserID == "" {
			itemErrs = append(itemErrs, BatchItemError{Index: i, Error: "user_id is required"})
			continue
		}
		at := rr.Time
		if at.IsZero() {
			at = now
		}
		items = append(items, core.BatchReport{UserID: rr.UserID, Pos: rr.Pos, At: at})
		origIndex = append(origIndex, i)
	}
	for _, be := range s.engine.ReportBatchCtx(r.Context(), items) {
		s.log(r.Context(), slog.LevelError, "batch item failed", "user", items[be.Index].UserID, "err", be.Err)
		itemErrs = append(itemErrs, BatchItemError{Index: origIndex[be.Index], Error: be.Err.Error()})
	}
	sort.Slice(itemErrs, func(a, b int) bool { return itemErrs[a].Index < itemErrs[b].Index })
	WriteMessage(w, respCodec, http.StatusOK, &ReportBatchResponse{
		Accepted: len(req.Reports) - len(itemErrs),
		Errors:   itemErrs,
	})
}

func (s *Server) handleAds(w http.ResponseWriter, r *http.Request) {
	reqCodec, respCodec := s.negotiate(r)
	var req AdsRequest
	if !s.readBody(w, r, reqCodec, respCodec, &req, MaxRequestBody) {
		return
	}
	if req.UserID == "" {
		WriteCodecError(w, respCodec, http.StatusBadRequest, errors.New("user_id is required"))
		return
	}

	// Implicit location management: an ad request reveals the user's
	// position to the trusted edge, which records it as a check-in.
	at := s.clock()
	if err := s.engine.ReportCtx(r.Context(), req.UserID, req.Pos, at); err != nil {
		s.log(r.Context(), slog.LevelError, "ads implicit report failed", "user", req.UserID, "err", err)
		WriteCodecError(w, respCodec, http.StatusInternalServerError, err)
		return
	}

	obfuscated, fromTable, err := s.engine.RequestCtx(r.Context(), req.UserID, req.Pos)
	if err != nil {
		s.log(r.Context(), slog.LevelError, "ads output selection failed", "user", req.UserID, "err", err)
		WriteCodecError(w, respCodec, http.StatusInternalServerError, err)
		return
	}

	// Only the obfuscated location crosses the trust boundary.
	ads, degraded := s.fetchAds(r.Context(), req.UserID, obfuscated, at, req.Limit)
	if degraded {
		s.log(r.Context(), slog.LevelWarn, "provider timeout, serving degraded response",
			"user", req.UserID, "timeout", s.providerTimeout)
		WriteMessage(w, respCodec, http.StatusOK, &AdsResponse{
			Ads:       []adnet.Ad{},
			Reported:  obfuscated,
			FromTable: fromTable,
			Degraded:  true,
		})
		return
	}

	// The AOI filter runs on pooled scratch slices: WriteMessage
	// serialises synchronously before the scratch is returned, so
	// nothing escapes.
	sc := adsScratchPool.Get().(*adsScratch)
	sc.locs = sc.locs[:0]
	sc.keep = sc.keep[:0]
	sc.filtered = sc.filtered[:0]
	for _, ad := range ads {
		sc.locs = append(sc.locs, ad.Location)
	}
	sc.keep = s.engine.FilterAdsAppend(sc.keep, req.Pos, sc.locs)
	for _, i := range sc.keep {
		sc.filtered = append(sc.filtered, ads[i])
	}

	WriteMessage(w, respCodec, http.StatusOK, &AdsResponse{
		Ads:       sc.filtered,
		Reported:  obfuscated,
		FromTable: fromTable,
		Fetched:   len(ads),
	})
	adsScratchPool.Put(sc)
}

// adsScratch holds the per-request working slices of handleAds.
type adsScratch struct {
	locs     []geo.Point
	keep     []int
	filtered []adnet.Ad
}

// The filtered slice starts non-nil so an all-filtered response encodes
// as [] (matching the pre-pooling behaviour), never null.
var adsScratchPool = sync.Pool{New: func() any { return &adsScratch{filtered: []adnet.Ad{}} }}

// fetchAds calls the provider under the configured timeout. The provider
// runs on its own goroutine so even a context-oblivious implementation
// cannot hold the handler past the bound: the handler abandons the call
// (the goroutine drains into a buffered channel when the provider
// eventually returns) and reports a degraded response. Context-aware
// providers additionally receive the deadline so they can stop early.
func (s *Server) fetchAds(ctx context.Context, userID string, loc geo.Point, at time.Time, limit int) (ads []adnet.Ad, degraded bool) {
	// The provider span covers the whole call, including a timed-out
	// wait: a degraded response records providerTimeout as provider cost.
	_, sp := tracing.StartSpan(ctx, tracing.StageProvider)
	defer sp.End()
	if s.providerTimeout <= 0 {
		if cp, ok := s.provider.(ContextAdProvider); ok {
			return cp.RequestAdsContext(ctx, userID, loc, at, limit), false
		}
		return s.provider.RequestAds(userID, loc, at, limit), false
	}
	ctx, cancel := context.WithTimeout(ctx, s.providerTimeout)
	defer cancel()
	ch := make(chan []adnet.Ad, 1)
	go func() {
		if cp, ok := s.provider.(ContextAdProvider); ok {
			ch <- cp.RequestAdsContext(ctx, userID, loc, at, limit)
			return
		}
		ch <- s.provider.RequestAds(userID, loc, at, limit)
	}()
	select {
	case ads = <-ch:
		return ads, false
	case <-ctx.Done():
		s.providerTimeouts.Inc()
		return nil, true
	}
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	var req RebuildRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.UserID == "" {
		writeError(w, http.StatusBadRequest, errors.New("user_id is required"))
		return
	}
	now := req.Now
	if now.IsZero() {
		now = s.clock()
	}
	if err := s.engine.RebuildProfileCtx(r.Context(), req.UserID, now); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrUnknownUser) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	userID := r.URL.Query().Get("user")
	if userID == "" {
		writeError(w, http.StatusBadRequest, errors.New("user query parameter is required"))
		return
	}
	tops, err := s.engine.TopLocations(userID)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrUnknownUser):
			status = http.StatusNotFound
		case errors.Is(err, core.ErrNoProfile):
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	resp := ProfileResponse{UserID: userID, Tops: make([]ProfileEntry, len(tops))}
	for i, lf := range tops {
		resp.Tops[i] = ProfileEntry{Loc: lf.Loc, Freq: lf.Freq}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// A GET carries no body, so negotiation reduces to the Accept header
	// (absent Accept means JSON — GETs have no request codec to mirror).
	_, respCodec := s.negotiate(r)
	// Served from the engine's always-on atomic aggregates: O(1), no
	// engine locks, no walk over users and tables.
	st := s.engine.Stats()
	WriteMessage(w, respCodec, http.StatusOK, &StatsResponse{
		Users:          st.Users,
		ProtectedTops:  st.ProtectedTops,
		TotalCandidate: st.Candidates,
	})
}

// FingerprintResponse is the body of GET /v1/fingerprint.
type FingerprintResponse struct {
	UserID string `json:"user_id"`
	// Fingerprint is the 64-bit obfuscation-table digest in zero-padded
	// hex. Comparing it across a restart (or across replicas) proves the
	// permanent table survived byte-identically.
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	userID := r.URL.Query().Get("user")
	if userID == "" {
		writeError(w, http.StatusBadRequest, errors.New("user query parameter is required"))
		return
	}
	// Unknown users deliberately answer with the empty-table
	// fingerprint rather than 404: a freshly recovered node that never
	// replayed the user must still agree with one that did but holds no
	// table entries for them.
	fp, err := s.engine.TableFingerprint(userID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, FingerprintResponse{
		UserID:      userID,
		Fingerprint: fmt.Sprintf("%016x", fp),
	})
}

func (s *Server) handlePrivacy(w http.ResponseWriter, r *http.Request) {
	userID := r.URL.Query().Get("user")
	if userID == "" {
		writeError(w, http.StatusBadRequest, errors.New("user query parameter is required"))
		return
	}
	loss, err := s.engine.NomadicLoss(userID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, PrivacyResponse{
		UserID:  userID,
		Epsilon: loss.Epsilon,
		Delta:   loss.Delta,
	})
}
