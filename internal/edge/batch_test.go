package edge

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/geo"
)

func decodeBatchResponse(t *testing.T, resp *http.Response) ReportBatchResponse {
	t.Helper()
	defer resp.Body.Close()
	var out ReportBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestReportBatchEndpoint(t *testing.T) {
	f := newFixture(t)
	at := time.Date(2021, 1, 2, 0, 0, 0, 0, time.UTC)
	reports := make([]ReportRequest, 0, 10)
	for i := 0; i < 10; i++ {
		reports = append(reports, ReportRequest{
			UserID: "alice",
			Pos:    geo.Point{X: float64(i), Y: 1},
			Time:   at.Add(time.Duration(i) * time.Minute),
		})
	}
	resp := f.post(t, "/v1/report/batch", ReportBatchRequest{Reports: reports})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	out := decodeBatchResponse(t, resp)
	if out.Accepted != 10 || len(out.Errors) != 0 {
		t.Fatalf("accepted=%d errors=%v, want 10 accepted", out.Accepted, out.Errors)
	}
	if got := f.engine.Stats().Users; got != 1 {
		t.Errorf("engine users = %d, want 1", got)
	}
}

// TestReportBatchPerItemErrors is the golden shape of partial failure:
// malformed entries are rejected WITH their input index while every
// well-formed entry in the same batch is still ingested — the batch is
// never dropped wholesale.
func TestReportBatchPerItemErrors(t *testing.T) {
	f := newFixture(t)
	at := time.Date(2021, 1, 2, 0, 0, 0, 0, time.UTC)
	reports := []ReportRequest{
		{UserID: "bob", Pos: geo.Point{X: 1, Y: 1}, Time: at},
		{Pos: geo.Point{X: 2, Y: 2}, Time: at}, // malformed: no user_id
		{UserID: "carol", Pos: geo.Point{X: 3, Y: 3}, Time: at},
		{Pos: geo.Point{X: 4, Y: 4}, Time: at}, // malformed: no user_id
	}
	resp := f.post(t, "/v1/report/batch", ReportBatchRequest{Reports: reports})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	out := decodeBatchResponse(t, resp)
	if out.Accepted != 2 {
		t.Errorf("accepted = %d, want 2", out.Accepted)
	}
	if len(out.Errors) != 2 || out.Errors[0].Index != 1 || out.Errors[1].Index != 3 {
		t.Fatalf("errors = %+v, want indexes [1 3]", out.Errors)
	}
	for _, e := range out.Errors {
		if e.Error != "user_id is required" {
			t.Errorf("error at %d = %q", e.Index, e.Error)
		}
	}
	// The valid entries landed despite their malformed neighbours.
	if got := f.engine.Stats().Users; got != 2 {
		t.Errorf("engine users = %d, want 2 (bob and carol)", got)
	}
}

func TestReportBatchValidation(t *testing.T) {
	f := newFixture(t)
	// Empty batch is a 400, not a silent no-op.
	resp := f.post(t, "/v1/report/batch", ReportBatchRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", resp.StatusCode)
	}
	// Unknown fields are rejected like every other endpoint.
	raw := []byte(`{"reports":[],"bogus":1}`)
	resp2, err := http.Post(f.server.URL+"/v1/report/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", resp2.StatusCode)
	}
}

// TestReportBatchMatchesSingleReports drives the same check-ins through
// /v1/report one at a time and through /v1/report/batch, and expects
// byte-identical engine state — the HTTP batch path must not change what
// the engine records.
func TestReportBatchMatchesSingleReports(t *testing.T) {
	single := newFixture(t)
	batched := newFixture(t)
	at := time.Date(2021, 1, 2, 0, 0, 0, 0, time.UTC)

	var reports []ReportRequest
	for i := 0; i < 30; i++ {
		reports = append(reports, ReportRequest{
			UserID: "dave",
			Pos:    geo.Point{X: float64(i % 5), Y: float64(i % 3)},
			Time:   at.Add(time.Duration(i) * time.Minute),
		})
	}
	for _, rr := range reports {
		resp := single.post(t, "/v1/report", rr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("single report status = %d", resp.StatusCode)
		}
	}
	resp := batched.post(t, "/v1/report/batch", ReportBatchRequest{Reports: reports})
	out := decodeBatchResponse(t, resp)
	if out.Accepted != len(reports) {
		t.Fatalf("accepted = %d, want %d", out.Accepted, len(reports))
	}

	want, err := single.engine.TableFingerprint("dave")
	if err != nil {
		t.Fatal(err)
	}
	got, err := batched.engine.TableFingerprint("dave")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fingerprint diverged: %x vs %x", got, want)
	}
}
