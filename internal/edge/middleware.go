package edge

import (
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// HTTP telemetry middleware: every route is wrapped in an instrument
// handler that records request counts by status class, a latency
// histogram, and the server-wide in-flight gauge. Handles are resolved
// at wiring time, so the per-request cost is a few atomic adds plus two
// clock reads (request latency is milliseconds-scale; unlike the
// engine's nanosecond selection path, timing every request is free).

// routeMetrics is the pre-resolved telemetry of one route.
type routeMetrics struct {
	reg     *telemetry.Registry
	route   string
	latency *telemetry.Histogram
	// byClass caches the request counters by status class (index
	// status/100). Classes that handlers can emit are pre-created so the
	// exposition lists them from the first scrape; others are resolved
	// through the registry on first occurrence.
	byClass [6]*telemetry.Counter
}

const (
	metricHTTPRequests = "edge_http_requests_total"
	metricHTTPLatency  = "edge_request_latency_seconds"
	metricHTTPInFlight = "edge_http_in_flight_requests"
)

func newRouteMetrics(reg *telemetry.Registry, route string) *routeMetrics {
	rm := &routeMetrics{
		reg:   reg,
		route: route,
		latency: reg.Histogram(metricHTTPLatency, "HTTP request latency by route.",
			nil, telemetry.L("route", route)),
	}
	for _, class := range []int{2, 4, 5} {
		rm.byClass[class] = rm.classCounter(class)
	}
	return rm
}

func (rm *routeMetrics) classCounter(class int) *telemetry.Counter {
	return rm.reg.Counter(metricHTTPRequests, "HTTP requests by route and status class.",
		telemetry.L("route", rm.route), telemetry.L("code", statusClassLabel(class)))
}

func statusClassLabel(class int) string {
	switch class {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	}
	return "other"
}

// statusRecorder captures the response status for the middleware.
// Recorders are pooled: the wrapper is the only per-request allocation
// the middleware would otherwise make, and the serving path creates one
// for every single request.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

var statusRecorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// instrument wraps next with the telemetry middleware for one route,
// and — when the server traces — opens the request's root span, adopting
// the client's traceparent header so edge spans join the caller's trace.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	rm := newRouteMetrics(s.reg, route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inFlight.Inc()
		start := time.Now()
		var root *tracing.Span
		if s.tracer != nil {
			var ctx context.Context
			if id, parent, ok := tracing.ParseTraceparent(r.Header.Get(tracing.TraceparentHeader)); ok {
				ctx, root = s.tracer.StartTraceRemote(r.Context(), route, id, parent)
			} else {
				ctx, root = s.tracer.StartTrace(r.Context(), route)
			}
			r = r.WithContext(ctx)
		}
		rec := statusRecorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status = w, http.StatusOK
		next.ServeHTTP(rec, r)
		root.End()
		rm.latency.ObserveDuration(time.Since(start))
		class := rec.status / 100
		if class < 1 || class > 5 {
			class = 5
		}
		rec.ResponseWriter = nil // don't pin the response writer in the pool
		statusRecorderPool.Put(rec)
		c := rm.byClass[class]
		if c == nil {
			// Rare classes (1xx/3xx) resolve through the registry; the
			// get-or-create is cheap and only paid on first occurrence per
			// scrape-visible series.
			c = rm.classCounter(class)
		}
		c.Inc()
		s.inFlight.Dec()
	})
}
