package edge

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
)

// testFixture bundles a running edge server with its engine and network.
type testFixture struct {
	engine  *core.Engine
	network *adnet.Network
	server  *httptest.Server
	now     time.Time
	mu      sync.Mutex
}

func (f *testFixture) clock() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(time.Minute)
	return f.now
}

func newFixture(t *testing.T) *testFixture {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &testFixture{
		engine:  engine,
		network: network,
		now:     time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	srv, err := NewServer(engine, network, f.clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.server = httptest.NewServer(srv.Handler())
	t.Cleanup(f.server.Close)
	return f
}

func (f *testFixture) post(t *testing.T, path string, body any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.server.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestNewServerValidation(t *testing.T) {
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(nil, network, nil, nil); err == nil {
		t.Error("nil engine expected error")
	}
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: mech})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(engine, nil, nil, nil); err == nil {
		t.Error("nil provider expected error")
	}
}

func TestHealthEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.server.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestReportValidation(t *testing.T) {
	f := newFixture(t)
	resp := f.post(t, "/v1/report", ReportRequest{Pos: geo.Point{X: 1, Y: 1}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user_id: status = %d", resp.StatusCode)
	}

	// Unknown fields are rejected.
	raw := []byte(`{"user_id":"u","pos":{"x":1,"y":2},"bogus":true}`)
	resp2, err := http.Post(f.server.URL+"/v1/report", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d", resp2.StatusCode)
	}

	resp3 := f.post(t, "/v1/report", ReportRequest{UserID: "u", Pos: geo.Point{X: 1, Y: 2}})
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Errorf("valid report: status = %d", resp3.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.server.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status = %d", resp.StatusCode)
	}
}

func TestProfileEndpointStates(t *testing.T) {
	f := newFixture(t)
	// No user param.
	resp, err := http.Get(f.server.URL + "/v1/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user: %d", resp.StatusCode)
	}
	// Unknown user.
	resp, err = http.Get(f.server.URL + "/v1/profile?user=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown user: %d", resp.StatusCode)
	}
	// Known user without a profile yet.
	r := f.post(t, "/v1/report", ReportRequest{UserID: "newbie", Pos: geo.Point{}})
	r.Body.Close()
	resp, err = http.Get(f.server.URL + "/v1/profile?user=newbie")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("no profile yet: %d", resp.StatusCode)
	}
}

func TestRebuildEndpoint(t *testing.T) {
	f := newFixture(t)
	resp := f.post(t, "/v1/rebuild", RebuildRequest{UserID: "ghost"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("rebuild unknown user: %d", resp.StatusCode)
	}
	r := f.post(t, "/v1/report", ReportRequest{UserID: "u", Pos: geo.Point{X: 1, Y: 1}})
	r.Body.Close()
	resp = f.post(t, "/v1/rebuild", RebuildRequest{UserID: "u"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("rebuild known user: %d", resp.StatusCode)
	}
}

// TestEndToEndPrivacyBoundary is the system integration test: a user
// reports from home repeatedly; ad requests must (a) reach the provider
// only with obfuscated coordinates, (b) produce AOI-relevant ads after
// filtering, and (c) keep the provider-visible locations inside the
// permanent candidate set.
func TestEndToEndPrivacyBoundary(t *testing.T) {
	f := newFixture(t)
	home := geo.Point{X: 0, Y: 0}
	rnd := randx.New(3, 3)

	// Campaign inside the AOI (1 km from home) and one far outside.
	mustRegister := func(id string, at geo.Point, radius float64) {
		t.Helper()
		if err := f.network.Register(adnet.Campaign{
			ID: id, Location: at, Radius: radius,
			Ad: adnet.Ad{ID: "ad-" + id, Title: id, Location: at},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Radius 30 km so even heavily obfuscated requests still match it.
	mustRegister("nearby-cafe", geo.Point{X: 1000, Y: 0}, 30_000)
	mustRegister("far-mall", geo.Point{X: 60_000, Y: 0}, 30_000)

	// Feed check-ins from home, then force the profile rebuild.
	for i := 0; i < 120; i++ {
		resp := f.post(t, "/v1/report", ReportRequest{
			UserID: "alice",
			Pos:    home.Add(rnd.GaussianPolar(12)),
		})
		resp.Body.Close()
	}
	resp := f.post(t, "/v1/rebuild", RebuildRequest{UserID: "alice"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("rebuild failed: %d", resp.StatusCode)
	}

	entries, err := f.engine.Table("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no obfuscation table entry for alice")
	}
	allowed := make(map[geo.Point]bool)
	for _, e := range entries {
		for _, c := range e.Candidates {
			allowed[c] = true
		}
	}

	for i := 0; i < 25; i++ {
		resp := f.post(t, "/v1/ads", AdsRequest{UserID: "alice", Pos: home})
		var ar AdsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !ar.FromTable {
			t.Fatal("top-location request not served from permanent table")
		}
		if !allowed[ar.Reported] {
			t.Fatalf("reported location %v escaped the permanent candidate set", ar.Reported)
		}
		if ar.Reported == home {
			t.Fatal("true location leaked verbatim")
		}
		// All delivered ads must be inside the true AOI (5 km default).
		for _, ad := range ar.Ads {
			if ad.Location.Dist(home) > 5000 {
				t.Fatalf("irrelevant ad delivered: %v", ad)
			}
		}
	}

	// The attacker-side view: every logged bid location is obfuscated.
	for _, rec := range f.network.BidLog() {
		if rec.Loc == home {
			t.Fatal("bid log contains the raw location")
		}
		if !allowed[rec.Loc] {
			t.Fatalf("bid log contains non-candidate location %v", rec.Loc)
		}
	}
	if f.network.LogSize() != 25 {
		t.Errorf("bid log size = %d, want 25", f.network.LogSize())
	}
}

func TestStatsEndpoint(t *testing.T) {
	f := newFixture(t)
	rnd := randx.New(12, 12)
	for i := 0; i < 80; i++ {
		resp := f.post(t, "/v1/report", ReportRequest{
			UserID: "stat-user",
			Pos:    geo.Point{X: 0, Y: 0}.Add(rnd.GaussianPolar(12)),
		})
		resp.Body.Close()
	}
	resp := f.post(t, "/v1/rebuild", RebuildRequest{UserID: "stat-user"})
	resp.Body.Close()

	statsResp, err := http.Get(f.server.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Users != 1 {
		t.Errorf("Users = %d", stats.Users)
	}
	if stats.ProtectedTops == 0 {
		t.Error("no protected tops reported")
	}
	if stats.TotalCandidate != stats.ProtectedTops*10 {
		t.Errorf("candidates = %d for %d tops", stats.TotalCandidate, stats.ProtectedTops)
	}
}

func TestFingerprintEndpoint(t *testing.T) {
	f := newFixture(t)
	// Missing user parameter is rejected.
	resp, err := http.Get(f.server.URL + "/v1/fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user: status = %d", resp.StatusCode)
	}

	fetch := func(user string) string {
		t.Helper()
		resp, err := http.Get(f.server.URL + "/v1/fingerprint?user=" + user)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fingerprint(%s): status = %d", user, resp.StatusCode)
		}
		var fr FingerprintResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		if fr.UserID != user || len(fr.Fingerprint) != 16 {
			t.Fatalf("fingerprint(%s) = %+v", user, fr)
		}
		return fr.Fingerprint
	}

	// Unknown users answer with the shared empty-table fingerprint.
	empty := fetch("nobody")
	if other := fetch("also-nobody"); other != empty {
		t.Errorf("empty-table fingerprints differ: %s vs %s", other, empty)
	}

	rnd := randx.New(5, 5)
	for i := 0; i < 80; i++ {
		resp := f.post(t, "/v1/report", ReportRequest{
			UserID: "fp-user",
			Pos:    geo.Point{X: 0, Y: 0}.Add(rnd.GaussianPolar(12)),
		})
		resp.Body.Close()
	}
	resp2 := f.post(t, "/v1/rebuild", RebuildRequest{UserID: "fp-user"})
	resp2.Body.Close()
	got := fetch("fp-user")
	if got == empty {
		t.Error("populated table still hashes like an empty one")
	}
	want, err := f.engine.TableFingerprint("fp-user")
	if err != nil {
		t.Fatal(err)
	}
	if got != fmt.Sprintf("%016x", want) {
		t.Errorf("endpoint fingerprint %s != engine %016x", got, want)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	f := newFixture(t)
	srv, err := NewServer(f.engine, f.network, f.clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// The server must answer while running.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestAdsRequestValidation(t *testing.T) {
	f := newFixture(t)
	resp := f.post(t, "/v1/ads", AdsRequest{Pos: geo.Point{}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user_id: %d", resp.StatusCode)
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	f := newFixture(t)
	if err := f.network.Register(adnet.Campaign{
		ID: "c", Location: geo.Point{}, Radius: 50_000, Ad: adnet.Ad{ID: "ad"},
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < 8; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", u)
			for i := 0; i < 20; i++ {
				r := f.post(t, "/v1/report", ReportRequest{UserID: id, Pos: geo.Point{X: float64(u), Y: float64(i)}})
				r.Body.Close()
				r = f.post(t, "/v1/ads", AdsRequest{UserID: id, Pos: geo.Point{X: float64(u), Y: float64(i)}})
				r.Body.Close()
			}
		}(u)
	}
	wg.Wait()
	if got := f.network.LogSize(); got != 160 {
		t.Errorf("bid log = %d, want 160", got)
	}
}

// TestNewHTTPServer is the regression for the missing slowloris
// bounds: every HTTP front built through NewHTTPServer must cap
// header-read time and reclaim idle keep-alive connections. Without
// ReadHeaderTimeout a client can hold a connection open indefinitely by
// dribbling header bytes; without IdleTimeout finished connections pin
// server resources forever.
func TestNewHTTPServer(t *testing.T) {
	srv := NewHTTPServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("NewHTTPServer: ReadHeaderTimeout unset — slowloris headers unbounded")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("NewHTTPServer: IdleTimeout unset — idle keep-alives pinned forever")
	}
	if srv.Handler == nil {
		t.Error("NewHTTPServer: handler not wired")
	}
}
