package edge

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/wire"
)

// Content negotiation for the serving-path routes. The request body
// codec follows Content-Type; the response codec follows Accept, and
// defaults to mirroring the request so a binary client that omits
// Accept still gets binary back. Everything that is not the wire
// protocol's media type is the pre-existing JSON, so old clients (and
// plain curl) keep working against a binary-capable edge unmodified.

// Codec identifies one of the two serving-path encodings.
type Codec int

const (
	// CodecJSON is the legacy application/json encoding.
	CodecJSON Codec = iota
	// CodecBinary is the application/x-privlocad-bin encoding from
	// internal/wire.
	CodecBinary
)

// String returns the codec's metric/flag name.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// ParseCodec parses a -wire style flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	}
	return CodecJSON, fmt.Errorf("edge: unknown codec %q (want json or binary)", s)
}

// RequestCodec reports how the request body is encoded, from the
// Content-Type header.
func RequestCodec(r *http.Request) Codec {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, wire.ContentType) {
		return CodecBinary
	}
	return CodecJSON
}

// ResponseCodec reports how the response should be encoded: binary when
// Accept names the wire media type, JSON when Accept names anything
// else, and the request's own codec when Accept is absent.
func ResponseCodec(r *http.Request) Codec {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return RequestCodec(r)
	}
	if strings.Contains(accept, wire.ContentType) {
		return CodecBinary
	}
	return CodecJSON
}

// binBufPool recycles binary encode buffers, mirroring jsonBufPool on
// the JSON side: the serving path reuses one flat buffer per response
// instead of allocating a fresh frame.
var binBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// WriteMessage writes m with the given status in the chosen codec,
// setting Content-Type and Content-Length. It is shared by the edge
// server and the edgecluster gateway.
func WriteMessage(w http.ResponseWriter, codec Codec, status int, m wire.Message) {
	if codec == CodecJSON {
		writeJSON(w, status, m)
		return
	}
	bp := binBufPool.Get().(*[]byte)
	buf := wire.Append((*bp)[:0], m)
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf
		binBufPool.Put(bp)
	}
}

// WriteCodecError writes the error envelope in the chosen codec. JSON
// clients keep receiving the {"error": ...} object byte-for-byte.
func WriteCodecError(w http.ResponseWriter, codec Codec, status int, err error) {
	WriteMessage(w, codec, status, &wire.ErrorResponse{Error: err.Error()})
}

// ReadMessage decodes the request body (bounded at limit bytes) into m
// according to reqCodec, answering a 400 in respCodec on failure. Both
// codecs read through the same pooled buffer, so binary decode extends
// the JSON path's flat allocation profile rather than forking it.
func ReadMessage(w http.ResponseWriter, r *http.Request, reqCodec, respCodec Codec, m wire.Message, limit int64) error {
	buf, release, err := readBodyBuf(w, r, limit)
	if err != nil {
		WriteCodecError(w, respCodec, http.StatusBadRequest, err)
		return err
	}
	defer release()
	if reqCodec == CodecJSON {
		err = decodeJSONStrict(buf.Bytes(), m)
	} else if err = wire.Decode(buf.Bytes(), m); err != nil {
		err = fmt.Errorf("decoding request: %w", err)
	}
	if err != nil {
		WriteCodecError(w, respCodec, http.StatusBadRequest, err)
		return err
	}
	return nil
}

// --- server-side wrappers that feed the wire_* metric families ---

// negotiate resolves both codecs for a serving-path request and counts
// it under wire_requests_total{codec} (keyed by the response codec the
// client ends up seeing).
func (s *Server) negotiate(r *http.Request) (reqCodec, respCodec Codec) {
	reqCodec, respCodec = RequestCodec(r), ResponseCodec(r)
	s.wireReqs[respCodec].Inc()
	return reqCodec, respCodec
}

// readBody is ReadMessage plus the decode-error counter, keyed by the
// codec of the body that failed to parse.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, reqCodec, respCodec Codec, m wire.Message, limit int64) bool {
	if err := ReadMessage(w, r, reqCodec, respCodec, m, limit); err != nil {
		s.wireDecodeErrs[reqCodec].Inc()
		return false
	}
	return true
}
