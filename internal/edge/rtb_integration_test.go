package edge

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/rtb"
)

// The RTB provider must satisfy the edge's provider contract.
var _ AdProvider = (*rtb.Provider)(nil)

// TestEdgeWithRTBExchange runs the full auction-backed stack: edge
// service → RTB exchange with budgeted campaign bidders → GSP auctions,
// with the user's location protected by the permanent table.
func TestEdgeWithRTBExchange(t *testing.T) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}

	exchange, err := rtb.NewExchange(500*time.Millisecond, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 0, Y: 0}
	// Two advertisers close to home, one across town.
	campaigns := []struct {
		id     string
		at     geo.Point
		cpm    float64
		budget float64
	}{
		{"cafe", geo.Point{X: 800, Y: 0}, 3.0, 1000},
		{"gym", geo.Point{X: -1200, Y: 500}, 2.0, 1000},
		{"faraway", geo.Point{X: 70_000, Y: 0}, 9.0, 1000},
	}
	bidders := make(map[string]*rtb.CampaignBidder)
	for _, c := range campaigns {
		bidder, err := rtb.NewCampaignBidder(adnet.Campaign{
			ID: c.id, Location: c.at, Radius: 30_000,
			Ad: adnet.Ad{ID: "ad-" + c.id, Title: c.id, Location: c.at},
		}, c.cpm, c.budget)
		if err != nil {
			t.Fatal(err)
		}
		if err := exchange.Register(bidder); err != nil {
			t.Fatal(err)
		}
		bidders[c.id] = bidder
	}
	provider, err := rtb.NewProvider(exchange)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(engine, provider, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	rnd := randx.New(6, 6)
	for i := 0; i < 100; i++ {
		resp := post("/v1/report", ReportRequest{UserID: "dana", Pos: home.Add(rnd.GaussianPolar(12))})
		resp.Body.Close()
	}
	resp := post("/v1/rebuild", RebuildRequest{UserID: "dana"})
	resp.Body.Close()

	sawAd := false
	for i := 0; i < 10; i++ {
		resp := post("/v1/ads", AdsRequest{UserID: "dana", Pos: home, Limit: 3})
		var ar AdsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !ar.FromTable {
			t.Fatal("request not answered from the permanent table")
		}
		for _, ad := range ar.Ads {
			sawAd = true
			// AOI filtering: only the two nearby businesses survive.
			if ad.ID == "ad-faraway" {
				t.Fatal("irrelevant ad delivered")
			}
			if ad.Location.Dist(home) > 5000 {
				t.Fatalf("ad outside AOI: %+v", ad)
			}
		}
	}
	if !sawAd {
		t.Error("no ads delivered across 10 requests")
	}

	// Auction economics happened: the nearby campaigns spent budget.
	if bidders["cafe"].Wins()+bidders["gym"].Wins() == 0 {
		t.Error("no campaign won any auction")
	}
	// Privacy boundary: the exchange's log never contains the raw home.
	for _, rec := range provider.BidLog() {
		if rec.Loc == home {
			t.Fatal("bid log contains the raw location")
		}
	}
}
