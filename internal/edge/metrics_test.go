package edge

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// metricsFixture is like testFixture but keeps the *Server so tests can
// reach its telemetry registry.
type metricsFixture struct {
	engine *core.Engine
	store  *wal.Store
	srv    *Server
	ts     *httptest.Server
	now    time.Time
}

func newMetricsFixture(t *testing.T) *metricsFixture {
	t.Helper()
	return newMetricsFixtureOpts(t)
}

func newMetricsFixtureOpts(t *testing.T, opts ...ServerOption) *metricsFixture {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &metricsFixture{engine: engine, now: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)}
	// Durable mode mirrors edged -data-dir: every mutation is WAL-logged
	// (fsync on each append, so counts stay deterministic) and the wal_*
	// metric families join the exposition.
	store, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if _, err := engine.Recover(store); err != nil {
		t.Fatal(err)
	}
	f.store = store
	clock := func() time.Time {
		f.now = f.now.Add(time.Minute)
		return f.now
	}
	srv, err := NewServer(engine, network, clock, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	f.srv = srv
	store.Instrument(srv.Registry())
	instrumentScenario(t, srv.Registry())
	f.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(f.ts.Close)
	return f
}

// instrumentScenario registers the workload and collusion telemetry
// families into the fixture registry the way lbasim's scenario runner
// does, from a tiny fixed collude workload, so the golden exposition
// locks workload_events_total{mode=...} and attack_collusion_*_total.
func instrumentScenario(t *testing.T, reg *telemetry.Registry) {
	t.Helper()
	tcfg := trace.DefaultConfig()
	tcfg.NumUsers = 6
	tcfg.MaxCheckIns = 30
	tcfg.Seed = 5
	wl, err := workload.Build(workload.Synthetic{Config: tcfg}, workload.Config{Mode: workload.ModeCollude, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wl.Instrument(reg)
	var obs []attack.Observation
	for _, s := range wl.Streams {
		for _, e := range s.Events {
			obs = append(obs, attack.Observation{AdID: e.AdID, Net: e.Net, Loc: e.Pos, Time: e.Time})
		}
	}
	_, stats, err := attack.Collude(obs, attack.CollusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	attack.RecordCollusion(reg, &stats)
}

func (f *metricsFixture) post(t *testing.T, path string, body any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// driveGoldenTraffic issues a fixed, deterministic request sequence.
func driveGoldenTraffic(t *testing.T, f *metricsFixture) {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	home := geo.Point{X: 2000, Y: 2000}
	rnd := randx.New(42, 7)
	for i := 0; i < 60; i++ {
		resp := f.post(t, "/v1/report", ReportRequest{UserID: "golden", Pos: home.Add(rnd.GaussianPolar(10))})
		resp.Body.Close()
	}
	resp = f.post(t, "/v1/rebuild", RebuildRequest{UserID: "golden"})
	resp.Body.Close()
	resp = f.post(t, "/v1/ads", AdsRequest{UserID: "golden", Pos: home, Limit: 5})
	resp.Body.Close()
	for _, path := range []string{"/v1/profile?user=golden", "/v1/privacy?user=golden", "/v1/stats", "/v1/fingerprint?user=golden"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One validation failure populates the 4xx counter.
	resp = f.post(t, "/v1/report", ReportRequest{Pos: home})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing user_id: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// One checkpoint populates the wal checkpoint families.
	lsn, data, err := f.engine.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.store.WriteCheckpoint(lsn, data); err != nil {
		t.Fatal(err)
	}
}

// latencyValueLine matches exposition lines whose value depends on
// wall-clock timing: latency histogram buckets, sums, and overflow
// counts (an observation past the top bound is timing, not traffic).
// The _count lines stay exact (they count requests, not durations).
var latencyValueLine = regexp.MustCompile(`(?m)^((?:edge_request_latency_seconds|engine_rebuild_seconds|engine_selection_seconds|tracing_span_seconds|wal_fsync_seconds)_(?:bucket|sum|overflow)(?:\{[^}]*\})?) .*$`)

// walTimingLine matches the remaining wall-clock-dependent wal series:
// the last checkpoint's duration gauge.
var walTimingLine = regexp.MustCompile(`(?m)^(wal_checkpoint_duration_seconds) .*$`)

// memValueLine matches the process-memory gauges, whose values depend
// on allocator and GC state, not traffic.
var memValueLine = regexp.MustCompile(`(?m)^(mem_(?:heap_alloc_bytes|sys_bytes|gc_total)) .*$`)

func normalizeMetrics(s string) string {
	s = latencyValueLine.ReplaceAllString(s, "$1 *")
	s = walTimingLine.ReplaceAllString(s, "$1 *")
	return memValueLine.ReplaceAllString(s, "$1 *")
}

// TestMetricsGolden locks the full /metrics exposition — family set,
// series labels, and every timing-independent value — to a golden file.
// Regenerate with: go test ./internal/edge/ -run TestMetricsGolden -update-golden
func TestMetricsGolden(t *testing.T) {
	f := newMetricsFixture(t)
	driveGoldenTraffic(t, f)

	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	got := normalizeMetrics(body.String())

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("/metrics exposition drifted from golden file (rerun with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestAdsPopulatesLatencyBuckets asserts the /v1/ads middleware records
// one latency observation per request into the route's histogram.
func TestAdsPopulatesLatencyBuckets(t *testing.T) {
	f := newMetricsFixture(t)
	reg := f.srv.Registry()
	h := reg.Histogram(metricHTTPLatency, "", nil, telemetry.L("route", "/v1/ads"))
	if got := h.Count(); got != 0 {
		t.Fatalf("latency count before traffic = %d", got)
	}

	const requests = 3
	for i := 0; i < requests; i++ {
		resp := f.post(t, "/v1/ads", AdsRequest{UserID: "u", Pos: geo.Point{X: 100, Y: 100}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ads status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	s := h.Snapshot()
	if s.Count != requests {
		t.Errorf("latency observations = %d, want %d", s.Count, requests)
	}
	var inBuckets uint64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != requests {
		t.Errorf("bucket mass = %d, want %d", inBuckets, requests)
	}
	if s.Sum <= 0 {
		t.Errorf("latency sum = %g, want > 0", s.Sum)
	}
	if got := reg.Counter(metricHTTPRequests, "", telemetry.L("route", "/v1/ads"), telemetry.L("code", "2xx")).Value(); got != requests {
		t.Errorf("2xx counter = %d, want %d", got, requests)
	}
	if got := reg.Gauge(metricHTTPInFlight, "").Value(); got != 0 {
		t.Errorf("in-flight after traffic = %d, want 0", got)
	}
}

// TestStatsMatchesEngineWalk pins the O(1) /v1/stats response to the
// values a full table walk would produce.
func TestStatsMatchesEngineWalk(t *testing.T) {
	f := newMetricsFixture(t)
	driveGoldenTraffic(t, f)

	resp, err := http.Get(f.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}

	var want StatsResponse
	for _, id := range f.engine.Users() {
		want.Users++
		entries, err := f.engine.Table(id)
		if err != nil {
			t.Fatal(err)
		}
		want.ProtectedTops += len(entries)
		for _, e := range entries {
			want.TotalCandidate += len(e.Candidates)
		}
	}
	if stats != want {
		t.Errorf("/v1/stats = %+v, engine walk = %+v", stats, want)
	}
	if stats.Users == 0 || stats.ProtectedTops == 0 {
		t.Errorf("implausible stats %+v", stats)
	}
}

// TestMetricsEndpointSelfExcludes checks the scrape endpoint does not
// count itself in the serving-path metrics.
func TestMetricsEndpointSelfExcludes(t *testing.T) {
	f := newMetricsFixture(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(f.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body.String(), `route="/metrics"`) {
		t.Error("scrape endpoint instrumented itself")
	}
}
