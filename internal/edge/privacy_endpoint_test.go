package edge

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geoind"
)

// TestPrivacyEndpoint verifies the /v1/privacy surface against an engine
// running with a nomadic budget: the reported loss grows with nomadic
// requests and the edge starts refusing once the budget is spent.
func TestPrivacyEndpoint(t *testing.T) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{
		Mechanism:            mech,
		NomadicMechanism:     nomadic,
		NomadicBudget:        &geoind.Loss{Epsilon: 2, Delta: 1},
		NomadicReportEpsilon: 1,
		Seed:                 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, network, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Missing user param.
	resp, err := http.Get(ts.URL + "/v1/privacy")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user: %d", resp.StatusCode)
	}

	getLoss := func() PrivacyResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/privacy?user=eva")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("privacy status = %d", resp.StatusCode)
		}
		var pr PrivacyResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	if loss := getLoss(); loss.Epsilon != 0 {
		t.Errorf("fresh user loss = %+v", loss)
	}

	postAds := func() int {
		t.Helper()
		payload, err := json.Marshal(AdsRequest{UserID: "eva", Pos: geo.Point{X: 9e4, Y: 9e4}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/ads", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	// Two nomadic requests fit the eps=2 budget at eps=1 per report.
	for i := 0; i < 2; i++ {
		if code := postAds(); code != http.StatusOK {
			t.Fatalf("request %d status = %d", i+1, code)
		}
	}
	if loss := getLoss(); loss.Epsilon != 2 {
		t.Errorf("loss after 2 requests = %+v, want eps 2", loss)
	}
	// The third must be refused (budget exhausted).
	if code := postAds(); code != http.StatusInternalServerError {
		t.Errorf("over-budget request status = %d, want 500", code)
	}
}
