package edge

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adnet"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geoind"
)

// hungProvider blocks every RequestAds call until released, simulating a
// wedged upstream ad network.
type hungProvider struct {
	release chan struct{}
	calls   atomic.Int64
}

func (p *hungProvider) RequestAds(userID string, loc geo.Point, at time.Time, limit int) []adnet.Ad {
	p.calls.Add(1)
	<-p.release
	return []adnet.Ad{{ID: "late", Location: loc}}
}

// ctxProvider is context-aware: it hangs until the deadline, then obeys it.
type ctxProvider struct {
	canceled atomic.Bool
}

func (p *ctxProvider) RequestAds(userID string, loc geo.Point, at time.Time, limit int) []adnet.Ad {
	return p.RequestAdsContext(context.Background(), userID, loc, at, limit)
}

func (p *ctxProvider) RequestAdsContext(ctx context.Context, userID string, loc geo.Point, at time.Time, limit int) []adnet.Ad {
	<-ctx.Done()
	p.canceled.Store(true)
	return nil
}

func newTimeoutFixture(t *testing.T, provider AdProvider, timeout time.Duration) (*httptest.Server, *Server) {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, provider, nil, nil, WithProviderTimeout(timeout))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestHungProviderBoundedByTimeout is the acceptance check for bounded
// provider calls: a provider that never returns cannot hold /v1/ads past
// the configured timeout; the edge answers with a degraded empty ad list
// instead of hanging the device.
func TestHungProviderBoundedByTimeout(t *testing.T) {
	provider := &hungProvider{release: make(chan struct{})}
	defer close(provider.release) // drain the abandoned goroutine
	ts, srv := newTimeoutFixture(t, provider, 100*time.Millisecond)

	f := &testFixture{server: ts}
	start := time.Now()
	resp := f.post(t, "/v1/ads", AdsRequest{UserID: "u1", Pos: geo.Point{X: 10, Y: 10}, Limit: 5})
	elapsed := time.Since(start)
	defer resp.Body.Close()

	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 degraded response", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("/v1/ads took %s; hung provider held the handler past the timeout", elapsed)
	}
	var ar AdsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Degraded {
		t.Error("response not marked degraded")
	}
	if len(ar.Ads) != 0 {
		t.Errorf("degraded response carried %d ads, want 0", len(ar.Ads))
	}
	if ar.Reported == (geo.Point{X: 10, Y: 10}) {
		t.Error("true location leaked in degraded response")
	}
	if got := provider.calls.Load(); got != 1 {
		t.Errorf("provider calls = %d, want 1", got)
	}
	if got := srv.Registry().Counter("edge_provider_timeouts_total", "").Value(); got != 1 {
		t.Errorf("edge_provider_timeouts_total = %d, want 1", got)
	}
}

// TestContextProviderReceivesDeadline verifies context-aware providers
// get the timeout as a context deadline so they can stop work early.
func TestContextProviderReceivesDeadline(t *testing.T) {
	provider := &ctxProvider{}
	ts, _ := newTimeoutFixture(t, provider, 50*time.Millisecond)

	f := &testFixture{server: ts}
	resp := f.post(t, "/v1/ads", AdsRequest{UserID: "u1", Pos: geo.Point{}, Limit: 5})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The provider returns only after observing cancellation; give its
	// goroutine a beat to record it.
	deadline := time.Now().Add(time.Second)
	for !provider.canceled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("context-aware provider never saw the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFastProviderUnaffectedByTimeout: the bound is invisible when the
// provider answers in time.
func TestFastProviderUnaffectedByTimeout(t *testing.T) {
	network, err := adnet.NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Register(adnet.Campaign{
		ID: "c1", Location: geo.Point{}, Radius: 50_000,
		Ad: adnet.Ad{ID: "ad1", Title: "near", Location: geo.Point{}},
	}); err != nil {
		t.Fatal(err)
	}
	ts, _ := newTimeoutFixture(t, network, time.Second)
	f := &testFixture{server: ts}
	resp := f.post(t, "/v1/ads", AdsRequest{UserID: "u1", Pos: geo.Point{}, Limit: 5})
	defer resp.Body.Close()
	var ar AdsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Degraded {
		t.Error("fast provider marked degraded")
	}
	if len(ar.Ads) == 0 {
		t.Error("expected ads from fast provider")
	}
}
