package edge

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// postWire sends m with explicit Content-Type/Accept headers and returns
// the response.
func postWire(t *testing.T, url string, m wire.Message, contentType, accept string) *http.Response {
	t.Helper()
	var payload []byte
	if contentType == wire.ContentType {
		payload = wire.Encode(m)
	} else {
		var err error
		if payload, err = json.Marshal(m); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBatchResp(t *testing.T, resp *http.Response) ReportBatchResponse {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out ReportBatchResponse
	if strings.HasPrefix(resp.Header.Get("Content-Type"), wire.ContentType) {
		if err := wire.Decode(body, &out); err != nil {
			t.Fatalf("binary decode: %v", err)
		}
	} else if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	return out
}

// TestCodecNegotiationMatrix drives the same batch through all four
// request/response codec combinations against one edge and requires
// identical semantic results: JSON clients, binary clients, and mixed
// clients interoperate on the same routes.
func TestCodecNegotiationMatrix(t *testing.T) {
	f := newFixture(t)
	batch := &ReportBatchRequest{Reports: []ReportRequest{
		{UserID: "alice", Pos: geo.Point{X: 10, Y: 10}},
		{Pos: geo.Point{X: 20, Y: 20}}, // rejected: no user_id
		{UserID: "bob", Pos: geo.Point{X: 30, Y: 30}},
	}}
	cases := []struct {
		name        string
		contentType string
		accept      string
		wantRespCT  string
	}{
		{"json_to_json", "application/json", "", "application/json"},
		{"binary_to_binary", wire.ContentType, "", wire.ContentType},
		{"binary_asks_json", wire.ContentType, "application/json", "application/json"},
		{"json_asks_binary", "application/json", wire.ContentType, wire.ContentType},
		{"curl_style_accept_any", "application/json", "*/*", "application/json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postWire(t, f.server.URL+"/v1/report/batch", batch, tc.contentType, tc.accept)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantRespCT) {
				t.Fatalf("response content type = %q, want %q", ct, tc.wantRespCT)
			}
			out := decodeBatchResp(t, resp)
			if out.Accepted != 2 || len(out.Errors) != 1 || out.Errors[0].Index != 1 {
				t.Fatalf("batch response = %+v, want 2 accepted with error at index 1", out)
			}
		})
	}
}

// TestBinaryReportAndAds exercises the full binary serving path: a
// framed report (204), then a framed ads request whose binary response
// carries the obfuscated location.
func TestBinaryReportAndAds(t *testing.T) {
	f := newFixture(t)
	home := geo.Point{X: 1000, Y: 1000}
	for i := 0; i < 3; i++ {
		resp := postWire(t, f.server.URL+"/v1/report", &ReportRequest{UserID: "u1", Pos: home}, wire.ContentType, "")
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("binary report status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postWire(t, f.server.URL+"/v1/ads", &AdsRequest{UserID: "u1", Pos: home, Limit: 3}, wire.ContentType, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ads status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wire.ContentType) {
		t.Fatalf("ads response content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ads AdsResponse
	if err := wire.Decode(body, &ads); err != nil {
		t.Fatalf("decoding binary ads response: %v", err)
	}
	if ads.Reported == (geo.Point{}) {
		t.Fatal("binary ads response missing the reported location")
	}
	if ads.Ads == nil {
		t.Fatal("binary ads response must carry a non-nil (possibly empty) ads slice")
	}
}

// TestBinaryErrorEnvelope requires error responses to honour the
// negotiated codec: a binary client's validation failure arrives as a
// framed ErrorResponse, a JSON client's as the legacy JSON object.
func TestBinaryErrorEnvelope(t *testing.T) {
	f := newFixture(t)
	resp := postWire(t, f.server.URL+"/v1/report", &ReportRequest{Pos: geo.Point{X: 1}}, wire.ContentType, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wire.ContentType) {
		t.Fatalf("error content type = %q, want binary", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env wire.ErrorResponse
	if err := wire.Decode(body, &env); err != nil {
		t.Fatalf("decoding binary error envelope: %v", err)
	}
	if env.Error != "user_id is required" {
		t.Fatalf("error message = %q", env.Error)
	}
}

// TestBinaryStats checks GET negotiation: Accept alone flips /v1/stats
// to binary frames.
func TestBinaryStats(t *testing.T) {
	f := newFixture(t)
	resp := postWire(t, f.server.URL+"/v1/report", &ReportRequest{UserID: "s", Pos: geo.Point{X: 5, Y: 5}}, wire.ContentType, "")
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodGet, f.server.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	body, err := io.ReadAll(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := wire.Decode(body, &stats); err != nil {
		t.Fatalf("decoding binary stats: %v", err)
	}
	if stats.Users != 1 {
		t.Fatalf("stats users = %d, want 1", stats.Users)
	}
}

// TestWireMetricsCount checks the wire_requests_total and decode-error
// counters follow the negotiated codecs.
func TestWireMetricsCount(t *testing.T) {
	f := newMetricsFixture(t)
	reqs := func(codec Codec) uint64 {
		return f.srv.Registry().Counter("wire_requests_total", "", telemetry.L("codec", codec.String())).Value()
	}
	decErrs := func(codec Codec) uint64 {
		return f.srv.Registry().Counter("wire_decode_errors_total", "", telemetry.L("codec", codec.String())).Value()
	}

	resp := postWire(t, f.ts.URL+"/v1/report", &ReportRequest{UserID: "m", Pos: geo.Point{X: 1}}, wire.ContentType, "")
	resp.Body.Close()
	resp = f.post(t, "/v1/report", ReportRequest{UserID: "m", Pos: geo.Point{X: 1}})
	resp.Body.Close()
	if got := reqs(CodecBinary); got != 1 {
		t.Fatalf("binary requests = %d, want 1", got)
	}
	if got := reqs(CodecJSON); got != 1 {
		t.Fatalf("json requests = %d, want 1", got)
	}

	// A garbage binary frame counts one binary decode error.
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/v1/report", bytes.NewReader([]byte("not a frame")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame status = %d", bresp.StatusCode)
	}
	if got := decErrs(CodecBinary); got != 1 {
		t.Fatalf("binary decode errors = %d, want 1", got)
	}
	if got := decErrs(CodecJSON); got != 0 {
		t.Fatalf("json decode errors = %d, want 0", got)
	}
}
