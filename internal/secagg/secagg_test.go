package secagg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
)

func testRegion() geo.BBox {
	return geo.BBox{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 10_000}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(1, 10, 1); err == nil {
		t.Error("1 party expected error")
	}
	if _, err := NewSession(3, 0, 1); err == nil {
		t.Error("zero length expected error")
	}
	s, err := NewSession(3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parties() != 3 || s.Length() != 10 {
		t.Errorf("session = %d parties, %d length", s.Parties(), s.Length())
	}
}

func TestVectorAdd(t *testing.T) {
	a := Vector{1, 2, math.MaxUint64}
	b := Vector{10, 20, 1}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 11 || sum[1] != 22 || sum[2] != 0 { // wraparound
		t.Errorf("sum = %v", sum)
	}
	if _, err := a.Add(Vector{1}); err == nil {
		t.Error("length mismatch expected error")
	}
}

// TestMaskCancellation is the protocol's core correctness property: the
// sum of all masked inputs equals the sum of the plaintext inputs.
func TestMaskCancellation(t *testing.T) {
	rnd := randx.New(1, 1)
	for _, parties := range []int{2, 3, 5, 8} {
		const length = 64
		s, err := NewSession(parties, length, 99)
		if err != nil {
			t.Fatal(err)
		}
		want := make(Vector, length)
		shares := make([]Vector, parties)
		for p := 0; p < parties; p++ {
			v := make(Vector, length)
			for k := range v {
				v[k] = uint64(rnd.IntN(1000))
				want[k] += v[k]
			}
			share, err := s.MaskedInput(p, v)
			if err != nil {
				t.Fatal(err)
			}
			shares[p] = share
		}
		got, err := s.Aggregate(shares)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("parties=%d: aggregate[%d] = %d, want %d", parties, k, got[k], want[k])
			}
		}
	}
}

// TestMaskingHidesInput: a single published share must differ from the
// plaintext in essentially every slot (it is one-time-pad masked).
func TestMaskingHidesInput(t *testing.T) {
	const length = 256
	s, err := NewSession(3, length, 7)
	if err != nil {
		t.Fatal(err)
	}
	v := make(Vector, length) // all zeros: any unchanged slot would leak
	share, err := s.MaskedInput(0, v)
	if err != nil {
		t.Fatal(err)
	}
	unchanged := 0
	for k := range share {
		if share[k] == 0 {
			unchanged++
		}
	}
	if unchanged > 2 {
		t.Errorf("%d of %d slots unmasked", unchanged, length)
	}
}

// TestSharesUniformity: masked shares of identical inputs from different
// parties must differ (each party's mask pattern is distinct).
func TestSharesUniformity(t *testing.T) {
	const length = 64
	s, err := NewSession(4, length, 13)
	if err != nil {
		t.Fatal(err)
	}
	v := make(Vector, length)
	for k := range v {
		v[k] = 42
	}
	seen := make(map[uint64]bool)
	for p := 0; p < 4; p++ {
		share, err := s.MaskedInput(p, v)
		if err != nil {
			t.Fatal(err)
		}
		if seen[share[0]] {
			t.Errorf("party %d first slot collides", p)
		}
		seen[share[0]] = true
	}
}

func TestMaskedInputErrors(t *testing.T) {
	s, err := NewSession(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MaskedInput(-1, make(Vector, 4)); err == nil {
		t.Error("negative party expected error")
	}
	if _, err := s.MaskedInput(2, make(Vector, 4)); err == nil {
		t.Error("out-of-range party expected error")
	}
	if _, err := s.MaskedInput(0, make(Vector, 3)); err == nil {
		t.Error("wrong length expected error")
	}
}

func TestAggregateDropoutRejected(t *testing.T) {
	s, err := NewSession(3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([]Vector, 2) // one party dropped out
	for i := range shares {
		sh, err := s.MaskedInput(i, make(Vector, 4))
		if err != nil {
			t.Fatal(err)
		}
		shares[i] = sh
	}
	if _, err := s.Aggregate(shares); err == nil {
		t.Error("missing share expected error")
	}
	// Wrong-length share rejected too.
	bad := []Vector{make(Vector, 4), make(Vector, 4), make(Vector, 3)}
	if _, err := s.Aggregate(bad); err == nil {
		t.Error("short share expected error")
	}
}

func TestNewGridCodecValidation(t *testing.T) {
	if _, err := NewGridCodec(geo.BBox{}, 100); err == nil {
		t.Error("empty region expected error")
	}
	if _, err := NewGridCodec(testRegion(), 0); err == nil {
		t.Error("zero cell expected error")
	}
	if _, err := NewGridCodec(testRegion(), 0.001); err == nil {
		t.Error("absurd grid size expected error")
	}
	g, err := NewGridCodec(testRegion(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Length() != 100*100 {
		t.Errorf("Length = %d", g.Length())
	}
}

func TestGridCodecRoundTrip(t *testing.T) {
	g, err := NewGridCodec(testRegion(), 100)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Profile{
		{Loc: geo.Point{X: 150, Y: 250}, Freq: 10},
		{Loc: geo.Point{X: 5050, Y: 5050}, Freq: 5},
		{Loc: geo.Point{X: -999, Y: 0}, Freq: 3}, // outside: dropped
		{Loc: geo.Point{X: 10, Y: 10}, Freq: 0},  // zero: ignored
	}
	v, dropped := g.Encode(p)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	back, err := g.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d locations, want 2", len(back))
	}
	if back[0].Freq != 10 || back[1].Freq != 5 {
		t.Errorf("decoded freqs = %d, %d", back[0].Freq, back[1].Freq)
	}
	// Locations quantized to cell centres: within cell/√2 of the truth.
	if d := back[0].Loc.Dist(geo.Point{X: 150, Y: 250}); d > 100*math.Sqrt2/2 {
		t.Errorf("decoded location %g m off", d)
	}
}

func TestGridCodecDecodeErrors(t *testing.T) {
	g, err := NewGridCodec(testRegion(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Decode(make(Vector, 3)); err == nil {
		t.Error("wrong-length decode expected error")
	}
	v := make(Vector, g.Length())
	v[0] = math.MaxUint64 - 5 // an uncancelled mask residue
	if _, err := g.Decode(v); err == nil {
		t.Error("implausible count expected error")
	}
}

// TestMergeProfilesMatchesPlaintext: the secure merge must equal the
// plaintext profile merge up to grid quantization.
func TestMergeProfilesMatchesPlaintext(t *testing.T) {
	region := testRegion()
	partA := profile.Profile{
		{Loc: geo.Point{X: 1000, Y: 1000}, Freq: 60},
		{Loc: geo.Point{X: 8000, Y: 2000}, Freq: 20},
	}
	partB := profile.Profile{
		{Loc: geo.Point{X: 1010, Y: 1010}, Freq: 30}, // same cell as A's home
		{Loc: geo.Point{X: 3000, Y: 9000}, Freq: 10},
	}
	merged, dropped, err := MergeProfiles([]profile.Profile{partA, partB}, region, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
	if merged.Total() != 120 {
		t.Errorf("total = %d, want 120", merged.Total())
	}
	if merged[0].Freq != 90 {
		t.Errorf("top freq = %d, want merged 90", merged[0].Freq)
	}
	if d := merged[0].Loc.Dist(geo.Point{X: 1000, Y: 1000}); d > 50 {
		t.Errorf("merged home %g m off", d)
	}
}

func TestMergeProfilesErrors(t *testing.T) {
	if _, _, err := MergeProfiles([]profile.Profile{{}}, testRegion(), 50, 1); err == nil {
		t.Error("single party expected error")
	}
	if _, _, err := MergeProfiles([]profile.Profile{{}, {}}, geo.BBox{}, 50, 1); err == nil {
		t.Error("bad region expected error")
	}
}

// TestMergeProfilesTotalProperty: the merged total equals the in-region
// plaintext total for random inputs.
func TestMergeProfilesTotalProperty(t *testing.T) {
	region := testRegion()
	f := func(rawFreqs []uint16, seed uint64) bool {
		if len(rawFreqs) == 0 {
			return true
		}
		rnd := randx.New(seed, 3)
		parts := make([]profile.Profile, 3)
		want := 0
		for i, raw := range rawFreqs {
			freq := int(raw%500) + 1
			want += freq
			parts[i%3] = append(parts[i%3], profile.LocationFreq{
				Loc:  geo.Point{X: rnd.Float64() * 10_000, Y: rnd.Float64() * 10_000},
				Freq: freq,
			})
		}
		merged, dropped, err := MergeProfiles(parts, region, 200, seed)
		if err != nil {
			return false
		}
		return dropped == 0 && merged.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMergeProfiles3Parties(b *testing.B) {
	region := testRegion()
	rnd := randx.New(1, 1)
	parts := make([]profile.Profile, 3)
	for i := range parts {
		for l := 0; l < 10; l++ {
			parts[i] = append(parts[i], profile.LocationFreq{
				Loc:  geo.Point{X: rnd.Float64() * 10_000, Y: rnd.Float64() * 10_000},
				Freq: 1 + rnd.IntN(100),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MergeProfiles(parts, region, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
