// Package secagg implements the secure multi-party aggregation the paper
// invokes for merging a user's partial location profiles across edge
// devices (Section V-B: "this step can be accomplished through a secure
// multi-party computation protocol").
//
// The protocol is pairwise additive masking (the core of Bonawitz et al.
// secure aggregation, without dropout recovery): every ordered pair of
// parties (i < j) derives a shared mask vector from a pairwise seed;
// party i adds the mask, party j subtracts it. Each party publishes only
// its masked vector; the masks cancel in the sum, so the aggregator
// learns exactly Σᵢ vᵢ and nothing about any individual vᵢ (each
// published vector is one-time-pad masked modulo 2⁶⁴).
//
// Location profiles are carried as grid histograms (GridCodec): counts
// over fixed cells of the agreed region, which makes profile addition
// well-defined across parties.
package secagg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
)

// Protocol errors.
var (
	// ErrParticipants reports an invalid party count or index.
	ErrParticipants = errors.New("secagg: invalid participants")
	// ErrVectorLength reports mismatched vector lengths.
	ErrVectorLength = errors.New("secagg: vector length mismatch")
)

// Vector is an additive-share vector over Z_{2^64}.
type Vector []uint64

// Add returns the elementwise sum (mod 2⁶⁴) of a and b.
func (v Vector) Add(o Vector) (Vector, error) {
	if len(v) != len(o) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrVectorLength, len(v), len(o))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + o[i]
	}
	return out, nil
}

// Session is one aggregation round among a fixed set of parties over
// vectors of a fixed length. Pairwise seeds are derived deterministically
// from a session seed; in a deployment they would come from a key
// agreement, which is orthogonal to the aggregation algebra tested here.
type Session struct {
	parties int
	length  int
	seed    uint64
}

// NewSession creates a round for the given number of parties and vector
// length.
func NewSession(parties, length int, seed uint64) (*Session, error) {
	if parties < 2 {
		return nil, fmt.Errorf("%w: %d parties (need at least 2)", ErrParticipants, parties)
	}
	if length <= 0 {
		return nil, fmt.Errorf("%w: vector length %d", ErrVectorLength, length)
	}
	return &Session{parties: parties, length: length, seed: seed}, nil
}

// Parties returns the number of participants.
func (s *Session) Parties() int { return s.parties }

// Length returns the vector length of the round.
func (s *Session) Length() int { return s.length }

// pairMask derives the shared mask vector of the ordered pair (i, j),
// i < j. Both parties can compute it; nobody else holds the pair seed.
func (s *Session) pairMask(i, j int) Vector {
	rnd := randx.New(s.seed, (uint64(i)<<32)|uint64(j)|0x5EC466<<40)
	mask := make(Vector, s.length)
	for k := range mask {
		mask[k] = rnd.Uint64()
	}
	return mask
}

// MaskedInput produces party's published share: its private vector plus
// all pairwise masks with higher-indexed parties, minus all pairwise
// masks with lower-indexed parties.
func (s *Session) MaskedInput(party int, v Vector) (Vector, error) {
	if party < 0 || party >= s.parties {
		return nil, fmt.Errorf("%w: party %d of %d", ErrParticipants, party, s.parties)
	}
	if len(v) != s.length {
		return nil, fmt.Errorf("%w: got %d, session uses %d", ErrVectorLength, len(v), s.length)
	}
	out := make(Vector, s.length)
	copy(out, v)
	for other := 0; other < s.parties; other++ {
		switch {
		case other == party:
			continue
		case party < other:
			mask := s.pairMask(party, other)
			for k := range out {
				out[k] += mask[k]
			}
		default:
			mask := s.pairMask(other, party)
			for k := range out {
				out[k] -= mask[k]
			}
		}
	}
	return out, nil
}

// Aggregate sums the published shares of ALL parties; the pairwise masks
// cancel and the true sum emerges. It fails if any share is missing —
// dropout recovery is out of scope, matching the paper's assumption of
// cooperating edge devices.
func (s *Session) Aggregate(shares []Vector) (Vector, error) {
	if len(shares) != s.parties {
		return nil, fmt.Errorf("%w: got %d shares for %d parties (dropout is not supported)",
			ErrParticipants, len(shares), s.parties)
	}
	total := make(Vector, s.length)
	for pi, sh := range shares {
		if len(sh) != s.length {
			return nil, fmt.Errorf("%w: share %d has length %d, want %d", ErrVectorLength, pi, len(sh), s.length)
		}
		for k := range total {
			total[k] += sh[k]
		}
	}
	return total, nil
}

// GridCodec encodes location profiles as count histograms over a fixed
// grid, the vector form the aggregation runs on.
type GridCodec struct {
	region geo.BBox
	cell   float64
	cols   int
	rows   int
}

// NewGridCodec builds a codec over region with the given cell edge.
func NewGridCodec(region geo.BBox, cell float64) (*GridCodec, error) {
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("secagg: degenerate region %+v", region)
	}
	if !(cell > 0) || math.IsInf(cell, 0) {
		return nil, fmt.Errorf("secagg: cell size %g must be positive and finite", cell)
	}
	cols := int(math.Ceil(region.Width() / cell))
	rows := int(math.Ceil(region.Height() / cell))
	if cols <= 0 || rows <= 0 || cols*rows > 1<<26 {
		return nil, fmt.Errorf("secagg: grid %dx%d out of range (shrink the region or grow the cell)", cols, rows)
	}
	return &GridCodec{region: region, cell: cell, cols: cols, rows: rows}, nil
}

// Length returns the encoded vector length.
func (g *GridCodec) Length() int { return g.cols * g.rows }

// cellIndex maps a point to its vector slot; ok is false outside the
// region.
func (g *GridCodec) cellIndex(p geo.Point) (int, bool) {
	if !g.region.Contains(p) {
		return 0, false
	}
	cx := int((p.X - g.region.MinX) / g.cell)
	cy := int((p.Y - g.region.MinY) / g.cell)
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx, true
}

// cellCenter returns the centre point of a vector slot.
func (g *GridCodec) cellCenter(idx int) geo.Point {
	cx := idx % g.cols
	cy := idx / g.cols
	return geo.Point{
		X: g.region.MinX + (float64(cx)+0.5)*g.cell,
		Y: g.region.MinY + (float64(cy)+0.5)*g.cell,
	}
}

// Encode converts a profile to its histogram vector. Locations outside
// the region are dropped (reported via the second return value).
func (g *GridCodec) Encode(p profile.Profile) (Vector, int) {
	v := make(Vector, g.Length())
	dropped := 0
	for _, lf := range p {
		if lf.Freq <= 0 {
			continue
		}
		idx, ok := g.cellIndex(lf.Loc)
		if !ok {
			dropped++
			continue
		}
		v[idx] += uint64(lf.Freq)
	}
	return v, dropped
}

// Decode converts an aggregated histogram back to a profile whose
// locations are cell centres (quantized to cell resolution) ordered by
// descending frequency.
func (g *GridCodec) Decode(v Vector) (profile.Profile, error) {
	if len(v) != g.Length() {
		return nil, fmt.Errorf("%w: got %d, codec uses %d", ErrVectorLength, len(v), g.Length())
	}
	var p profile.Profile
	for idx, count := range v {
		if count == 0 {
			continue
		}
		if count > math.MaxInt32 {
			return nil, fmt.Errorf("secagg: cell %d count %d implausible (corrupted aggregate?)", idx, count)
		}
		p = append(p, profile.LocationFreq{Loc: g.cellCenter(idx), Freq: int(count)})
	}
	// Reuse the profile ordering by rebuilding through Merge with a tiny
	// threshold — instead, sort inline to avoid re-clustering.
	sortProfile(p)
	return p, nil
}

// sortProfile orders by descending frequency with coordinate tie-breaks.
func sortProfile(p profile.Profile) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0; j-- {
			a, b := p[j-1], p[j]
			better := b.Freq > a.Freq ||
				(b.Freq == a.Freq && (b.Loc.X < a.Loc.X || (b.Loc.X == a.Loc.X && b.Loc.Y < a.Loc.Y)))
			if !better {
				break
			}
			p[j-1], p[j] = b, a
		}
	}
}

// MergeProfiles runs the whole protocol: each party encodes its partial
// profile, publishes a masked share, and the aggregator decodes the sum.
// It returns the merged profile at cell resolution plus the number of
// locations dropped for lying outside the region.
func MergeProfiles(parts []profile.Profile, region geo.BBox, cell float64, seed uint64) (profile.Profile, int, error) {
	codec, err := NewGridCodec(region, cell)
	if err != nil {
		return nil, 0, fmt.Errorf("building codec: %w", err)
	}
	if len(parts) < 2 {
		return nil, 0, fmt.Errorf("%w: %d parties (need at least 2)", ErrParticipants, len(parts))
	}
	session, err := NewSession(len(parts), codec.Length(), seed)
	if err != nil {
		return nil, 0, fmt.Errorf("building session: %w", err)
	}
	shares := make([]Vector, len(parts))
	droppedTotal := 0
	for i, part := range parts {
		v, dropped := codec.Encode(part)
		droppedTotal += dropped
		share, err := session.MaskedInput(i, v)
		if err != nil {
			return nil, 0, fmt.Errorf("masking party %d: %w", i, err)
		}
		shares[i] = share
	}
	total, err := session.Aggregate(shares)
	if err != nil {
		return nil, 0, fmt.Errorf("aggregating: %w", err)
	}
	merged, err := codec.Decode(total)
	if err != nil {
		return nil, 0, fmt.Errorf("decoding aggregate: %w", err)
	}
	return merged, droppedTotal, nil
}
