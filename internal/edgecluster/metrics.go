package edgecluster

import "repro/internal/telemetry"

// clusterMetrics holds the cluster's telemetry handles, resolved once at
// Instrument time so merge/route paths never touch the registry.
type clusterMetrics struct {
	failovers      *telemetry.Counter
	merges         *telemetry.Counter
	degradedMerges *telemetry.Counter
	mergeDropped   *telemetry.Counter
	replicaErrors  *telemetry.Counter
	journalReplays *telemetry.Counter
	nodesDown      *telemetry.Gauge
}

// Instrument registers the cluster's fault-tolerance metrics with reg
// and starts recording. Counters: cluster_failovers_total (requests
// rerouted past a down nearest edge), cluster_merges_total,
// cluster_degraded_merges_total (rounds that missed part of the
// cluster), cluster_merge_dropped_total (merged check-ins outside the
// aggregation region), cluster_replica_errors_total (replication applies
// that failed mid-round), cluster_journal_replays_total (journal rounds
// applied during catch-up). Gauge: cluster_nodes_down.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	m := &clusterMetrics{
		failovers:      reg.Counter("cluster_failovers_total", "Requests rerouted to the next-nearest covering edge because the nearest was down."),
		merges:         reg.Counter("cluster_merges_total", "Profile merge rounds completed."),
		degradedMerges: reg.Counter("cluster_degraded_merges_total", "Merge rounds completed without reaching the whole cluster."),
		mergeDropped:   reg.Counter("cluster_merge_dropped_total", "Merged check-ins dropped for falling outside the aggregation region."),
		replicaErrors:  reg.Counter("cluster_replica_errors_total", "Replication applies that failed mid-round, leaving the replica to catch up later."),
		journalReplays: reg.Counter("cluster_journal_replays_total", "Journal rounds applied while catching a node up after downtime or a failed apply."),
		nodesDown:      reg.Gauge("cluster_nodes_down", "Edges currently marked down."),
	}
	c.met.Store(m)
}
