package edgecluster

import "repro/internal/telemetry"

// clusterMetrics holds the cluster's telemetry handles, resolved once at
// Instrument time so merge/route paths never touch the registry.
type clusterMetrics struct {
	failovers      *telemetry.Counter
	merges         *telemetry.Counter
	degradedMerges *telemetry.Counter
	mergeDropped   *telemetry.Counter
	replicaErrors  *telemetry.Counter
	journalReplays *telemetry.Counter
	nodesDown      *telemetry.Gauge

	// Delta replication accounting.
	replicationBytes         *telemetry.Counter
	replicationSnapshotBytes *telemetry.Counter
	replicationEntries       *telemetry.Counter
	snapshotFallbacks        *telemetry.Counter

	// Failure-detector activity.
	probes        *telemetry.Counter
	probeFailures *telemetry.Counter
	autoDowns     *telemetry.Counter
	autoRevives   *telemetry.Counter
	nodesSuspect  *telemetry.Gauge
}

// Instrument registers the cluster's fault-tolerance metrics with reg
// and starts recording. Counters: cluster_failovers_total (requests
// rerouted past a down nearest edge), cluster_merges_total,
// cluster_degraded_merges_total (rounds that missed part of the
// cluster), cluster_merge_dropped_total (merged check-ins outside the
// aggregation region), cluster_replica_errors_total (replication applies
// that failed mid-round), cluster_journal_replays_total (journal rounds
// applied during catch-up), cluster_replication_bytes_total (wire bytes
// the content-addressed delta frames actually shipped),
// cluster_replication_snapshot_bytes_total (what full-snapshot
// replication would have shipped for the same applies),
// cluster_replication_entries_total (table entries shipped),
// cluster_snapshot_fallbacks_total (applies whose content proof failed),
// cluster_probes_total / cluster_probe_failures_total (failure-detector
// pings), cluster_auto_downs_total / cluster_auto_revives_total (health
// transitions the detector drove without an operator). Gauges:
// cluster_nodes_down, cluster_nodes_suspect.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	m := &clusterMetrics{
		failovers:      reg.Counter("cluster_failovers_total", "Requests rerouted to the next-nearest covering edge because the nearest was down."),
		merges:         reg.Counter("cluster_merges_total", "Profile merge rounds completed."),
		degradedMerges: reg.Counter("cluster_degraded_merges_total", "Merge rounds completed without reaching the whole cluster."),
		mergeDropped:   reg.Counter("cluster_merge_dropped_total", "Merged check-ins dropped for falling outside the aggregation region."),
		replicaErrors:  reg.Counter("cluster_replica_errors_total", "Replication applies that failed mid-round, leaving the replica to catch up later."),
		journalReplays: reg.Counter("cluster_journal_replays_total", "Journal rounds applied while catching a node up after downtime or a failed apply."),
		nodesDown:      reg.Gauge("cluster_nodes_down", "Edges currently marked down."),

		replicationBytes:         reg.Counter("cluster_replication_bytes_total", "Wire bytes shipped to replicas as content-addressed delta frames."),
		replicationSnapshotBytes: reg.Counter("cluster_replication_snapshot_bytes_total", "Wire bytes full-snapshot replication would have shipped for the same applies."),
		replicationEntries:       reg.Counter("cluster_replication_entries_total", "Obfuscation-table entries shipped to replicas."),
		snapshotFallbacks:        reg.Counter("cluster_snapshot_fallbacks_total", "Replication applies whose content proof failed, forcing a full-snapshot delta."),

		probes:        reg.Counter("cluster_probes_total", "Failure-detector pings sent between edges."),
		probeFailures: reg.Counter("cluster_probe_failures_total", "Failure-detector pings that went unanswered."),
		autoDowns:     reg.Counter("cluster_auto_downs_total", "Edges the failure detector confirmed down without an operator."),
		autoRevives:   reg.Counter("cluster_auto_revives_total", "Edges the failure detector revived after probes resumed answering."),
		nodesSuspect:  reg.Gauge("cluster_nodes_suspect", "Edges currently suspected by the failure detector but not yet confirmed down."),
	}
	c.met.Store(m)
}
