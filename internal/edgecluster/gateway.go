package edgecluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/wire"
)

// Gateway is the HTTP front of a multi-edge cluster: the same serving
// routes a single edge exposes, but routed through the cluster's
// health-aware failover logic. It speaks both serving codecs with the
// same Content-Type/Accept negotiation as internal/edge, so a batch
// whose items fan out (or fail over) across several nodes still answers
// in the codec the client asked for, with per-item error indexes
// remapped to the original request order.
type Gateway struct {
	cluster *Cluster
	clock   edge.Clock
	tracer  *tracing.Tracer
	mux     *http.ServeMux

	// wireReqs / wireDecodeErrs mirror the edge server's wire_* families,
	// indexed by edge.Codec; nil until Instrument.
	wireReqs       [2]*telemetry.Counter
	wireDecodeErrs [2]*telemetry.Counter
}

// GatewayOption customises a Gateway.
type GatewayOption func(*Gateway)

// WithGatewayTracer makes the gateway open a root span per request,
// adopting the client's traceparent header, so cluster failover spans
// join the caller's trace exactly as they do on the direct API.
func WithGatewayTracer(t *tracing.Tracer) GatewayOption {
	return func(g *Gateway) { g.tracer = t }
}

// NewGateway wires a cluster into an HTTP service. clock may be nil
// (wall clock) and stamps reports that arrive without a time.
func NewGateway(c *Cluster, clock edge.Clock, opts ...GatewayOption) (*Gateway, error) {
	if c == nil {
		return nil, fmt.Errorf("edgecluster: gateway requires a cluster")
	}
	if clock == nil {
		clock = time.Now
	}
	g := &Gateway{cluster: c, clock: clock}
	for _, opt := range opts {
		opt(g)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("POST /v1/report", g.handleReport)
	mux.HandleFunc("POST /v1/report/batch", g.handleReportBatch)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux = mux
	return g, nil
}

// Handler returns the HTTP handler for the gateway.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Serve runs the gateway on the listener until ctx is cancelled, then
// shuts down gracefully. It uses the same hardened http.Server as the
// single-edge front (edge.NewHTTPServer): header-read and idle
// timeouts, per-route body limits.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	srv := edge.NewHTTPServer(g.mux)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("edgecluster: gateway shutdown: %w", err)
		}
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("edgecluster: gateway serve: %w", err)
	}
}

// Instrument registers the gateway's wire_requests_total and
// wire_decode_errors_total families with reg and starts recording.
func (g *Gateway) Instrument(reg *telemetry.Registry) {
	for _, c := range []edge.Codec{edge.CodecJSON, edge.CodecBinary} {
		g.wireReqs[c] = reg.Counter("wire_requests_total", "Serving-path requests by negotiated response codec.", telemetry.L("codec", c.String()))
		g.wireDecodeErrs[c] = reg.Counter("wire_decode_errors_total", "Serving-path request bodies that failed to decode, by request codec.", telemetry.L("codec", c.String()))
	}
}

// negotiate resolves both codecs and counts the request.
func (g *Gateway) negotiate(r *http.Request) (reqCodec, respCodec edge.Codec) {
	reqCodec, respCodec = edge.RequestCodec(r), edge.ResponseCodec(r)
	if g.wireReqs[respCodec] != nil {
		g.wireReqs[respCodec].Inc()
	}
	return reqCodec, respCodec
}

func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request, reqCodec, respCodec edge.Codec, m wire.Message, limit int64) bool {
	if err := edge.ReadMessage(w, r, reqCodec, respCodec, m, limit); err != nil {
		if g.wireDecodeErrs[reqCodec] != nil {
			g.wireDecodeErrs[reqCodec].Inc()
		}
		return false
	}
	return true
}

// trace opens the request's root span when the gateway traces, adopting
// a client traceparent if one arrived.
func (g *Gateway) trace(r *http.Request, route string) (*http.Request, *tracing.Span) {
	if g.tracer == nil {
		return r, nil
	}
	var (
		ctx  context.Context
		root *tracing.Span
	)
	if id, parent, ok := tracing.ParseTraceparent(r.Header.Get(tracing.TraceparentHeader)); ok {
		ctx, root = g.tracer.StartTraceRemote(r.Context(), route, id, parent)
	} else {
		ctx, root = g.tracer.StartTrace(r.Context(), route)
	}
	return r.WithContext(ctx), root
}

func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	live := 0
	for _, n := range g.cluster.Nodes() {
		if !n.Down() {
			live++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"live_edges\":%d}\n", live)
}

func (g *Gateway) handleReport(w http.ResponseWriter, r *http.Request) {
	reqCodec, respCodec := g.negotiate(r)
	r, root := g.trace(r, "/v1/report")
	defer root.End()
	var req edge.ReportRequest
	if !g.readBody(w, r, reqCodec, respCodec, &req, edge.MaxRequestBody) {
		return
	}
	if req.UserID == "" {
		edge.WriteCodecError(w, respCodec, http.StatusBadRequest, errors.New("user_id is required"))
		return
	}
	at := req.Time
	if at.IsZero() {
		at = g.clock()
	}
	if _, err := g.cluster.ReportCtx(r.Context(), req.UserID, req.Pos, at); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoCoverage) || errors.Is(err, ErrNoLiveEdge) {
			status = http.StatusServiceUnavailable
		}
		edge.WriteCodecError(w, respCodec, status, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	reqCodec, respCodec := g.negotiate(r)
	r, root := g.trace(r, "/v1/report/batch")
	defer root.End()
	var req edge.ReportBatchRequest
	if !g.readBody(w, r, reqCodec, respCodec, &req, edge.MaxBatchBody) {
		return
	}
	if len(req.Reports) == 0 {
		edge.WriteCodecError(w, respCodec, http.StatusBadRequest, errors.New("reports must be non-empty"))
		return
	}
	now := g.clock()
	items := make([]core.BatchReport, 0, len(req.Reports))
	origIndex := make([]int, 0, len(req.Reports)) // cluster item -> request index
	var itemErrs []edge.BatchItemError
	for i, rr := range req.Reports {
		if rr.UserID == "" {
			itemErrs = append(itemErrs, edge.BatchItemError{Index: i, Error: "user_id is required"})
			continue
		}
		at := rr.Time
		if at.IsZero() {
			at = now
		}
		items = append(items, core.BatchReport{UserID: rr.UserID, Pos: rr.Pos, At: at})
		origIndex = append(origIndex, i)
	}
	// The cluster fans the batch out per routed node (failing over past
	// down edges) and already remaps error indexes to its input order;
	// one more remap restores the client's original indexes past any
	// entries rejected above.
	for _, be := range g.cluster.ReportBatchCtx(r.Context(), items) {
		itemErrs = append(itemErrs, edge.BatchItemError{Index: origIndex[be.Index], Error: be.Err.Error()})
	}
	sort.Slice(itemErrs, func(a, b int) bool { return itemErrs[a].Index < itemErrs[b].Index })
	edge.WriteMessage(w, respCodec, http.StatusOK, &edge.ReportBatchResponse{
		Accepted: len(req.Reports) - len(itemErrs),
		Errors:   itemErrs,
	})
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	_, respCodec := g.negotiate(r)
	var resp edge.StatsResponse
	for _, n := range g.cluster.Nodes() {
		st := n.Engine.Stats()
		resp.Users += st.Users
		resp.ProtectedTops += st.ProtectedTops
		resp.TotalCandidate += st.Candidates
	}
	edge.WriteMessage(w, respCodec, http.StatusOK, &resp)
}
