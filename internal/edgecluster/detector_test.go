package edgecluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/randx"
)

// tickN runs n detector ticks and returns all transitions, failing the
// test on revival errors.
func tickN(t *testing.T, d *Detector, n int) []Transition {
	t.Helper()
	var all []Transition
	for i := 0; i < n; i++ {
		trs, err := d.Tick()
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		all = append(all, trs...)
	}
	return all
}

// TestDetectorLifecycle walks one edge through the full
// alive → suspect → down → alive cycle and pins the exact tick each
// threshold fires at, plus the side effects: MarkDown when confirmed,
// MarkUp (journal catch-up, lag drained) when probes answer again.
func TestDetectorLifecycle(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	// Probes=3 over 3 edges: every peer is probed every tick, so the
	// suspect/confirm thresholds fire on exact tick counts.
	d := c.NewDetector(DetectorConfig{Probes: 3, SuspectAfter: 2, ConfirmAfter: 2, Seed: 9})

	rnd := randx.New(3, 0xCAFE)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		at = at.Add(time.Hour)
		if _, err := c.Report("u", geo.Point{X: 500, Y: 500}.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.MergeProfiles("u", at); err != nil {
		t.Fatal(err)
	}

	if err := c.SetReachable(1, false); err != nil {
		t.Fatal(err)
	}
	if trs := tickN(t, d, 1); len(trs) != 0 {
		t.Fatalf("tick 1: unexpected transitions %v (one failed probe must not suspect yet)", trs)
	}
	trs := tickN(t, d, 1)
	want := []Transition{{Edge: 1, Node: c.Nodes()[1].ID, From: HealthAlive, To: HealthSuspect}}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("tick 2 transitions = %v, want %v", trs, want)
	}
	if c.Nodes()[1].Down() {
		t.Fatal("suspect edge already marked down — confirmation threshold ignored")
	}
	if trs := tickN(t, d, 1); len(trs) != 0 {
		t.Fatalf("tick 3: unexpected transitions %v", trs)
	}
	trs = tickN(t, d, 1)
	want = []Transition{{Edge: 1, Node: c.Nodes()[1].ID, From: HealthSuspect, To: HealthDown}}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("tick 4 transitions = %v, want %v", trs, want)
	}
	if !c.Nodes()[1].Down() {
		t.Fatal("confirmed edge not marked down")
	}
	if got := d.Health(1); got != HealthDown {
		t.Fatalf("Health(1) = %v, want down", got)
	}

	// Merge a round past it so revival has something to catch up.
	for i := 0; i < 15; i++ {
		at = at.Add(time.Hour)
		if _, err := c.Report("u", geo.Point{X: 5_500, Y: 500}.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.MergeProfiles("u", at); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeLag(1); got == 0 {
		t.Fatal("down edge accrued no lag — revival catch-up untested")
	}

	if err := c.SetReachable(1, true); err != nil {
		t.Fatal(err)
	}
	trs = tickN(t, d, 1)
	want = []Transition{{Edge: 1, Node: c.Nodes()[1].ID, From: HealthDown, To: HealthAlive}}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("revival transitions = %v, want %v", trs, want)
	}
	if c.Nodes()[1].Down() {
		t.Fatal("revived edge still marked down")
	}
	if got := c.NodeLag(1); got != 0 {
		t.Fatalf("revived edge still lagging %d users", got)
	}
	fp0 := fingerprint(t, c.Nodes()[0], "u")
	if fp := fingerprint(t, c.Nodes()[1], "u"); fp != fp0 {
		t.Fatalf("revived edge fingerprint %016x != obfuscator %016x", fp, fp0)
	}
}

// TestDetectorDeterministicSchedule: with a sparse probe budget the
// pseudo-random target choice matters, and two detectors built from the
// same seed over identically scripted outages must observe the exact
// same transition sequence — the determinism contract chaos replays
// rely on.
func TestDetectorDeterministicSchedule(t *testing.T) {
	run := func() []Transition {
		c, err := New(testClusterConfig(t, overlappingEdges()))
		if err != nil {
			t.Fatal(err)
		}
		d := c.NewDetector(DetectorConfig{Probes: 1, SuspectAfter: 1, ConfirmAfter: 1, Seed: 31})
		var all []Transition
		script := []struct {
			edge      int
			reachable bool
		}{{1, false}, {-1, false}, {2, false}, {1, true}, {-1, false}, {2, true}, {-1, false}}
		for _, step := range script {
			if step.edge >= 0 {
				if err := c.SetReachable(step.edge, step.reachable); err != nil {
					t.Fatal(err)
				}
			}
			all = append(all, tickN(t, d, 3)...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("script produced no transitions — schedule assertions vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, same script, different transitions:\n  %v\nvs\n  %v", a, b)
	}
}

// TestDetectorAdoptsOperatorMarkDown: an operator MarkDown is adopted
// as detector state (so an unreachable node is not re-counted through
// suspicion), and once probes answer again the detector — not the
// operator — revives it.
func TestDetectorAdoptsOperatorMarkDown(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	d := c.NewDetector(DetectorConfig{Probes: 3, SuspectAfter: 2, ConfirmAfter: 2, Seed: 13})

	if err := c.SetReachable(2, false); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	if trs := tickN(t, d, 1); len(trs) != 0 {
		t.Fatalf("adoption tick produced transitions %v, want none", trs)
	}
	if got := d.Health(2); got != HealthDown {
		t.Fatalf("Health(2) = %v after operator MarkDown, want down", got)
	}

	// The endpoint comes back: the next tick revives it without any
	// operator MarkUp.
	if err := c.SetReachable(2, true); err != nil {
		t.Fatal(err)
	}
	trs := tickN(t, d, 1)
	want := []Transition{{Edge: 2, Node: c.Nodes()[2].ID, From: HealthDown, To: HealthAlive}}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("revival transitions = %v, want %v", trs, want)
	}
	if c.Nodes()[2].Down() {
		t.Fatal("edge still down after detector revival")
	}

	// Corollary of single authority: downing a node whose endpoint still
	// answers is overruled on the next tick.
	if err := c.MarkDown(1); err != nil {
		t.Fatal(err)
	}
	trs = tickN(t, d, 1)
	want = []Transition{{Edge: 1, Node: c.Nodes()[1].ID, From: HealthDown, To: HealthAlive}}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("overrule transitions = %v, want %v", trs, want)
	}
	if c.Nodes()[1].Down() {
		t.Fatal("reachable edge left down despite answering probes")
	}
}

// TestDetectorTransientBlip: an outage shorter than SuspectAfter ticks
// never surfaces — no suspicion, no MarkDown, no transitions. Failed
// tick counts reset the moment a probe answers.
func TestDetectorTransientBlip(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	d := c.NewDetector(DetectorConfig{Probes: 3, SuspectAfter: 2, ConfirmAfter: 1, Seed: 17})

	for round := 0; round < 4; round++ {
		if err := c.SetReachable(1, false); err != nil {
			t.Fatal(err)
		}
		if trs := tickN(t, d, 1); len(trs) != 0 {
			t.Fatalf("round %d: blip produced transitions %v", round, trs)
		}
		if err := c.SetReachable(1, true); err != nil {
			t.Fatal(err)
		}
		if trs := tickN(t, d, 2); len(trs) != 0 {
			t.Fatalf("round %d: recovery produced transitions %v", round, trs)
		}
	}
	if c.Nodes()[1].Down() {
		t.Fatal("edge marked down by repeated sub-threshold blips")
	}
	if got := d.Health(1); got != HealthAlive {
		t.Fatalf("Health(1) = %v, want alive", got)
	}
}
