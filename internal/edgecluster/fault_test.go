package edgecluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

// overlappingEdges gives every point several covering edges, so killing
// one leaves a live fallback — the geometry failover needs.
func overlappingEdges() []geo.Circle {
	return []geo.Circle{
		{Center: geo.Point{X: 0, Y: 0}, Radius: 15_000},
		{Center: geo.Point{X: 5_000, Y: 0}, Radius: 15_000},
		{Center: geo.Point{X: 0, Y: 5_000}, Radius: 15_000},
	}
}

func fingerprint(t *testing.T, n *Node, userID string) uint64 {
	t.Helper()
	fp, err := n.Engine.TableFingerprint(userID)
	if err != nil {
		t.Fatalf("fingerprint at %s: %v", n.ID, err)
	}
	return fp
}

func TestFailoverRouting(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	now := time.Now()
	pos := geo.Point{X: 200, Y: 100} // nearest: edge-00, then edge-01

	if node, err := c.Report("u", pos, now); err != nil || node != "edge-00" {
		t.Fatalf("healthy routing = %s, %v", node, err)
	}
	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	node, err := c.Report("u", pos, now)
	if err != nil || node != "edge-01" {
		t.Fatalf("failover routing = %s, %v; want edge-01", node, err)
	}
	if got := reg.Counter("cluster_failovers_total", "").Value(); got != 1 {
		t.Errorf("failovers counter = %d, want 1", got)
	}

	// Every covering edge down: live-edge error, distinct from no
	// coverage at all.
	if err := c.MarkDown(1); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report("u", pos, now); !errors.Is(err, ErrNoLiveEdge) {
		t.Errorf("all-down report error = %v, want ErrNoLiveEdge", err)
	}
	if _, _, err := c.Request("u", pos); !errors.Is(err, ErrNoLiveEdge) {
		t.Errorf("all-down request error = %v, want ErrNoLiveEdge", err)
	}
	if _, err := c.Report("u", geo.Point{X: 90_000, Y: 90_000}, now); !errors.Is(err, ErrNoCoverage) {
		t.Errorf("uncovered report error = %v, want ErrNoCoverage", err)
	}

	if err := c.MarkUp(0); err != nil {
		t.Fatal(err)
	}
	if node, err := c.Report("u", pos, now); err != nil || node != "edge-00" {
		t.Errorf("post-revival routing = %s, %v", node, err)
	}
	if got := reg.Gauge("cluster_nodes_down", "").Value(); got != 2 {
		t.Errorf("nodes_down gauge = %d, want 2", got)
	}
	if err := c.MarkDown(0); err != nil { // double-down is a no-op
		t.Fatal(err)
	}
	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("cluster_nodes_down", "").Value(); got != 3 {
		t.Errorf("nodes_down gauge after double MarkDown = %d, want 3", got)
	}
}

// TestChaosDegradedMergeAndJournalCatchUp is the chaos regression of the
// fault-tolerance layer: with three edges and one killed mid-run,
// requests fail over to a covering live edge, MergeProfiles completes in
// degraded mode, and after revival the recovered edge's obfuscation
// table is byte-identical to the obfuscator's via journal catch-up —
// including when the killed edge is the designated obfuscator itself.
func TestChaosDegradedMergeAndJournalCatchUp(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)

	home := geo.Point{X: 0, Y: 0}      // nearest edge-00
	work := geo.Point{X: 5_100, Y: 0}  // nearest edge-01
	gym := geo.Point{X: 100, Y: 5_100} // nearest edge-02
	rnd := randx.New(7, 7)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	user := "chaos"
	visit := func(pos geo.Point, times int) {
		for i := 0; i < times; i++ {
			at = at.Add(time.Hour)
			if _, err := c.Report(user, pos.Add(rnd.GaussianPolar(10)), at); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Round 1: full cluster.
	visit(home, 120)
	visit(work, 60)
	if _, stats, err := c.MergeProfilesStats(user, at); err != nil || stats.Degraded {
		t.Fatalf("healthy merge: stats=%+v err=%v", stats, err)
	}
	base := fingerprint(t, c.Nodes()[0], user)
	for _, n := range c.Nodes()[1:] {
		if fp := fingerprint(t, n, user); fp != base {
			t.Fatalf("healthy replication: %s fingerprint %x != obfuscator %x", n.ID, fp, base)
		}
	}

	// Kill edge-02 mid-run: traffic near it fails over, the merge
	// degrades, and its table goes stale.
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	if node, err := c.Report(user, gym, at.Add(time.Minute)); err != nil || node == "edge-02" {
		t.Fatalf("report near dead edge routed to %s, %v", node, err)
	}
	if reg.Counter("cluster_failovers_total", "").Value() == 0 {
		t.Error("failover counter did not move")
	}
	visit(home, 60)
	visit(work, 30)
	tops, stats, err := c.MergeProfilesStats(user, at)
	if err != nil {
		t.Fatalf("degraded merge: %v", err)
	}
	if !stats.Degraded || stats.SkippedDown != 1 || stats.Live != 2 || stats.Obfuscator != "edge-00" {
		t.Fatalf("degraded merge stats = %+v", stats)
	}
	if len(tops) == 0 {
		t.Fatal("degraded merge returned no tops")
	}
	fp0 := fingerprint(t, c.Nodes()[0], user)
	if fp := fingerprint(t, c.Nodes()[1], user); fp != fp0 {
		t.Fatalf("live replica diverged during degraded merge: %x vs %x", fp, fp0)
	}

	// Revival: journal catch-up must leave the recovered table
	// byte-identical to the obfuscator's.
	if err := c.MarkUp(2); err != nil {
		t.Fatalf("MarkUp(2): %v", err)
	}
	if fp := fingerprint(t, c.Nodes()[2], user); fp != fp0 {
		t.Fatalf("revived edge not caught up: %x vs obfuscator %x", fp, fp0)
	}
	if reg.Counter("cluster_journal_replays_total", "").Value() == 0 {
		t.Error("journal replay counter did not move")
	}
	if got := reg.Counter("cluster_degraded_merges_total", "").Value(); got != 1 {
		t.Errorf("degraded merges counter = %d, want 1", got)
	}

	// Now kill the obfuscator itself: the round falls over to the next
	// live node, which obfuscates the NEW top exactly once; the revived
	// former obfuscator catches up to that table byte-for-byte.
	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	visit(gym, 150) // a new frequent location while edge-00 is dead
	tops, stats, err = c.MergeProfilesStats(user, at)
	if err != nil {
		t.Fatalf("obfuscator-down merge: %v", err)
	}
	if stats.Obfuscator != "edge-01" || !stats.Degraded {
		t.Fatalf("obfuscator fallback stats = %+v", stats)
	}
	foundGym := false
	for _, lf := range tops {
		if lf.Loc.Dist(gym) < 80 {
			foundGym = true
		}
	}
	if !foundGym {
		t.Fatalf("gym missing from merged tops %+v", tops)
	}
	before := fingerprint(t, c.Nodes()[0], user)
	fp1 := fingerprint(t, c.Nodes()[1], user)
	if before == fp1 {
		t.Fatal("dead edge unexpectedly already matches the new obfuscator")
	}
	if err := c.MarkUp(0); err != nil {
		t.Fatalf("MarkUp(0): %v", err)
	}
	if fp := fingerprint(t, c.Nodes()[0], user); fp != fp1 {
		t.Fatalf("revived ex-obfuscator not caught up: %x vs %x", fp, fp1)
	}
	if fp := fingerprint(t, c.Nodes()[2], user); fp != fp1 {
		t.Fatalf("replica diverged from fallback obfuscator: %x vs %x", fp, fp1)
	}
}

// TestReplicationFailureRetry pins the satellite bugfix: a replication
// failure at node 1 of 3 must leave the round cleanly retryable — after
// the retry every table agrees again, with no re-obfuscation.
func TestReplicationFailureRetry(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	rnd := randx.New(3, 3)
	home := geo.Point{X: 100, Y: 100}
	work := geo.Point{X: 19_500, Y: 100}
	at := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		at = at.Add(time.Hour)
		pos := home
		if i%3 == 0 {
			pos = work
		}
		if _, err := c.Report("victim", pos.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}

	c.Nodes()[1].SetFailApply(func(string) error { return errors.New("injected crash") })
	_, stats, err := c.MergeProfilesStats("victim", at)
	if err != nil {
		t.Fatalf("merge with failing replica must still complete: %v", err)
	}
	if stats.ReplicaErrors != 1 || !stats.Degraded {
		t.Fatalf("stats = %+v, want 1 replica error", stats)
	}
	fp0 := fingerprint(t, c.Nodes()[0], "victim")
	if fp := fingerprint(t, c.Nodes()[1], "victim"); fp == fp0 {
		t.Fatal("failed replica unexpectedly matches the obfuscator")
	}
	if fp := fingerprint(t, c.Nodes()[2], "victim"); fp != fp0 {
		t.Fatalf("healthy replica diverged: %x vs %x", fp, fp0)
	}

	// Retry: clear the fault and reconcile. The journal round replays
	// idempotently; all three tables agree byte-for-byte.
	c.Nodes()[1].SetFailApply(nil)
	if err := c.Reconcile(); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	for _, n := range c.Nodes() {
		if fp := fingerprint(t, n, "victim"); fp != fp0 {
			t.Fatalf("after retry %s fingerprint %x != %x", n.ID, fp, fp0)
		}
	}
	// A further merge round must not re-obfuscate anything.
	if _, stats, err := c.MergeProfilesStats("victim", at); err != nil || stats.ReplicaErrors != 0 {
		t.Fatalf("post-retry merge: stats=%+v err=%v", stats, err)
	}
	for _, n := range c.Nodes()[1:] {
		if fp := fingerprint(t, n, "victim"); fp != fingerprint(t, c.Nodes()[0], "victim") {
			t.Fatalf("%s diverged after post-retry merge", n.ID)
		}
	}
}

// TestMergeReportsDropsInsteadOfFailing pins the satellite bugfix: one
// stray check-in outside MergeRegion must not permanently block a user's
// merges — the round completes on the in-region mass and reports drops.
func TestMergeReportsDropsInsteadOfFailing(t *testing.T) {
	cfg := testClusterConfig(t, overlappingEdges())
	cfg.MergeRegion = geo.BBox{MinX: -10_000, MinY: -10_000, MaxX: 10_000, MaxY: 10_000}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	rnd := randx.New(11, 11)
	home := geo.Point{X: 0, Y: 0}
	work := geo.Point{X: 5_100, Y: 0}
	at := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 150; i++ {
		at = at.Add(time.Hour)
		pos := home
		if i%3 == 0 {
			pos = work
		}
		if _, err := c.Report("strayer", pos.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	// One check-in inside edge-00's coverage but outside the merge region.
	if _, err := c.Report("strayer", geo.Point{X: 0, Y: 14_000}, at); err != nil {
		t.Fatal(err)
	}

	tops, stats, err := c.MergeProfilesStats("strayer", at)
	if err != nil {
		t.Fatalf("merge with stray check-in must complete: %v", err)
	}
	if stats.Dropped == 0 {
		t.Fatal("stats.Dropped = 0, want the stray check-in counted")
	}
	if len(tops) == 0 || tops[0].Loc.Dist(home) > 80 {
		t.Fatalf("merged tops lost the in-region mass: %+v", tops)
	}
	if got := reg.Counter("cluster_merge_dropped_total", "").Value(); got == 0 {
		t.Error("cluster_merge_dropped_total did not move")
	}
}

// TestEdgeSeedDerivation pins the satellite bugfix: per-edge engine
// seeds must not collide across clusters with nearby base seeds. The old
// cfg.Seed + i*GoldenGamma derivation was linear, so cluster s edge 1
// equalled cluster s+GoldenGamma edge 0.
func TestEdgeSeedDerivation(t *testing.T) {
	for _, s := range []uint64{0, 1, 42, 0xDEADBEEF} {
		if a, b := edgeSeed(s, 1), edgeSeed(s+randx.GoldenGamma, 0); a == b {
			t.Errorf("seed %d: edge 1 collides with cluster seed+gamma edge 0 (%x)", s, a)
		}
	}
	seen := make(map[uint64]string)
	for _, s := range []uint64{1, 1 + randx.GoldenGamma, 2, 2 + randx.GoldenGamma} {
		for i := 0; i < 8; i++ {
			seed := edgeSeed(s, i)
			if prev, ok := seen[seed]; ok {
				t.Fatalf("engine seed collision: cluster %d edge %d vs %s", s, i, prev)
			}
			seen[seed] = fmt.Sprintf("cluster %d edge %d", s, i)
		}
	}
}

// TestClusterConcurrentStress exercises concurrent Report / Request /
// MergeProfiles across roaming users while a chaos goroutine kills and
// revives edges; run under -race it verifies the cluster's locking
// discipline (cluster mutex for merge/journal/health transitions,
// engine-level per-user locks for traffic).
func TestClusterConcurrentStress(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	c.Instrument(telemetry.NewRegistry())
	spots := []geo.Point{
		{X: 0, Y: 0},
		{X: 5_100, Y: 0},
		{X: 100, Y: 5_100},
		{X: 2_500, Y: 2_500},
	}
	base := time.Date(2021, 8, 1, 0, 0, 0, 0, time.UTC)

	const workers = 8
	const opsPerWorker = 150
	var wg, chaosWG sync.WaitGroup
	stop := make(chan struct{})

	// Chaos: cycle one node down and back up at a time until the
	// workers finish.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			i := k % len(c.Nodes())
			if err := c.MarkDown(i); err != nil {
				t.Error(err)
			}
			if err := c.MarkUp(i); err != nil {
				t.Error(err)
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := randx.New(uint64(w)+100, 0)
			user := fmt.Sprintf("roamer-%02d", w)
			at := base
			for i := 0; i < opsPerWorker; i++ {
				at = at.Add(time.Hour)
				pos := spots[rnd.IntN(len(spots))].Add(rnd.GaussianPolar(15))
				if _, err := c.Report(user, pos, at); err != nil && !errors.Is(err, ErrNoLiveEdge) {
					t.Errorf("report: %v", err)
				}
				if _, _, err := c.Request(user, pos); err != nil &&
					!errors.Is(err, ErrNoLiveEdge) && !errors.Is(err, core.ErrUnknownUser) {
					t.Errorf("request: %v", err)
				}
				if i%40 == 39 {
					if _, _, err := c.MergeProfilesStats(user, at); err != nil &&
						!errors.Is(err, core.ErrUnknownUser) && !errors.Is(err, ErrNoLiveEdge) {
						t.Errorf("merge: %v", err)
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	chaosWG.Wait()

	// Converge and verify the replication invariant end-state.
	for i := range c.Nodes() {
		if err := c.MarkUp(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		user := fmt.Sprintf("roamer-%02d", w)
		if _, _, err := c.MergeProfilesStats(user, base.Add(opsPerWorker*time.Hour)); err != nil &&
			!errors.Is(err, core.ErrUnknownUser) {
			t.Fatal(err)
		}
		want := fingerprint(t, c.Nodes()[0], user)
		for _, n := range c.Nodes()[1:] {
			if fp := fingerprint(t, n, user); fp != want {
				t.Fatalf("user %s: %s fingerprint %x != %x", user, n.ID, fp, want)
			}
		}
	}
}

// TestNoLocalRebuildOnLongTraces: a single-edge engine rebuilds (and
// obfuscates) on its own when a report closes the 90-day profile window.
// Cluster edges must never do that — each edge would obfuscate the same
// top independently, voiding the single-obfuscator invariant. Regression:
// a two-year trace used to leave byte-divergent tables before any merge
// replicated.
func TestNoLocalRebuildOnLongTraces(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	rnd := randx.New(31, 7)
	// Two years of check-ins alternating between two edges' home turf —
	// far past the default window, so an unsuppressed engine would rebuild
	// locally on both.
	for day := 0; day < 730; day++ {
		at := base.Add(time.Duration(day) * 24 * time.Hour)
		pos := geo.Point{X: 0, Y: 0}
		if day%2 == 1 {
			pos = geo.Point{X: 5000, Y: 0}
		}
		if _, err := c.Report("longhaul", pos.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.Nodes() {
		entries, err := n.Engine.Table("longhaul")
		if err != nil && !errors.Is(err, core.ErrUnknownUser) {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("%s obfuscated %d tops locally before any merge", n.ID, len(entries))
		}
	}
	// The merge is where obfuscation happens — once, then replicated.
	if _, err := c.MergeProfiles("longhaul", base.AddDate(2, 0, 1)); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, c.Nodes()[0], "longhaul")
	for _, n := range c.Nodes()[1:] {
		if got := fingerprint(t, n, "longhaul"); got != want {
			t.Fatalf("%s fingerprint %x != %x after merge", n.ID, got, want)
		}
	}
}
