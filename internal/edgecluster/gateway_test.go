package edgecluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func newGatewayFixture(t *testing.T) (*Cluster, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	g.Instrument(reg)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return c, ts, reg
}

func gatewayPost(t *testing.T, url string, m wire.Message, contentType, accept string) *http.Response {
	t.Helper()
	var payload []byte
	if contentType == wire.ContentType {
		payload = wire.Encode(m)
	} else {
		var err error
		if payload, err = json.Marshal(m); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeGatewayBatch(t *testing.T, resp *http.Response) edge.ReportBatchResponse {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out edge.ReportBatchResponse
	if strings.HasPrefix(resp.Header.Get("Content-Type"), wire.ContentType) {
		if err := wire.Decode(body, &out); err != nil {
			t.Fatalf("binary decode: %v", err)
		}
	} else if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	return out
}

// TestGatewayBatchCodecsAcrossFailover drives the same mixed batch — items
// routing to different nodes, one routed past a down node, one with no
// user id, one outside every coverage circle — through the gateway in both
// codecs, and requires identical semantic results with the response framed
// in the negotiated codec and error indexes in the client's original order.
func TestGatewayBatchCodecsAcrossFailover(t *testing.T) {
	cluster, ts, _ := newGatewayFixture(t)
	if err := cluster.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	batch := &edge.ReportBatchRequest{Reports: []edge.ReportRequest{
		{UserID: "roamer", Pos: geo.Point{X: 10_000, Y: 0}},   // edge 0 down -> fails over to edge 1
		{Pos: geo.Point{X: 0, Y: 20_000}},                     // rejected: no user_id
		{UserID: "roamer", Pos: geo.Point{X: 20_000, Y: 0}},   // edge 1 directly
		{UserID: "lost", Pos: geo.Point{X: 500_000, Y: 0}},    // outside every coverage circle
		{UserID: "roamer", Pos: geo.Point{X: 100, Y: 20_000}}, // edge 2
	}}
	for _, codec := range []string{"application/json", wire.ContentType} {
		resp := gatewayPost(t, ts.URL+"/v1/report/batch", batch, codec, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("codec %s: status = %d", codec, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, codec) {
			t.Fatalf("codec %s: response content type = %q", codec, ct)
		}
		out := decodeGatewayBatch(t, resp)
		if out.Accepted != 3 || len(out.Errors) != 2 {
			t.Fatalf("codec %s: batch response = %+v, want 3 accepted / 2 errors", codec, out)
		}
		if out.Errors[0].Index != 1 || out.Errors[0].Error != "user_id is required" {
			t.Fatalf("codec %s: first error = %+v", codec, out.Errors[0])
		}
		if out.Errors[1].Index != 3 || !strings.Contains(out.Errors[1].Error, "no edge covers") {
			t.Fatalf("codec %s: second error = %+v", codec, out.Errors[1])
		}
	}
	// The failed-over item must have landed on a live node, not the down one.
	if got := cluster.Nodes()[0].Engine.Stats().Users; got != 0 {
		t.Fatalf("down node ingested %d users", got)
	}
}

// TestGatewaySingleReportAndStats covers the binary single-report path
// and Accept-negotiated stats aggregation over every node.
func TestGatewaySingleReportAndStats(t *testing.T) {
	_, ts, reg := newGatewayFixture(t)
	for _, rr := range []edge.ReportRequest{
		{UserID: "u0", Pos: geo.Point{X: 0, Y: 0}},
		{UserID: "u1", Pos: geo.Point{X: 20_000, Y: 0}},
	} {
		resp := gatewayPost(t, ts.URL+"/v1/report", &rr, wire.ContentType, "")
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("binary report status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var stats edge.StatsResponse
	if err := wire.Decode(body, &stats); err != nil {
		t.Fatalf("decoding binary stats: %v", err)
	}
	if stats.Users != 2 {
		t.Fatalf("aggregated users = %d, want 2", stats.Users)
	}

	binReqs := reg.Counter("wire_requests_total", "", telemetry.L("codec", "binary")).Value()
	if binReqs != 3 { // two reports + one stats
		t.Fatalf("wire_requests_total{codec=binary} = %d, want 3", binReqs)
	}
}

// TestGatewayErrorsAndHealth pins the unavailable/decode error envelopes
// and the health endpoint's live-edge count.
func TestGatewayErrorsAndHealth(t *testing.T) {
	cluster, ts, reg := newGatewayFixture(t)

	// No coverage -> 503 framed in the request's codec.
	resp := gatewayPost(t, ts.URL+"/v1/report",
		&edge.ReportRequest{UserID: "far", Pos: geo.Point{X: 900_000, Y: 0}}, wire.ContentType, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncovered report status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var env wire.ErrorResponse
	if err := wire.Decode(body, &env); err != nil {
		t.Fatalf("decoding binary 503 envelope: %v", err)
	}
	if !strings.Contains(env.Error, "no edge covers") {
		t.Fatalf("503 error = %q", env.Error)
	}

	// A garbage binary frame counts one decode error.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/report", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame status = %d", bresp.StatusCode)
	}
	if got := reg.Counter("wire_decode_errors_total", "", telemetry.L("codec", "binary")).Value(); got != 1 {
		t.Fatalf("wire_decode_errors_total{codec=binary} = %d, want 1", got)
	}

	if err := cluster.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status    string `json:"status"`
		LiveEdges int    `json:"live_edges"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.LiveEdges != 2 {
		t.Fatalf("health = %+v, want ok with 2 live edges", health)
	}
}

// TestGatewayBodyLimits is the regression for the gateway's hardcoded
// body-limit copies: both fronts must enforce the SAME per-route limits
// (edge.MaxRequestBody / edge.MaxBatchBody), rejecting oversized bodies
// instead of buffering whatever a client streams.
func TestGatewayBodyLimits(t *testing.T) {
	_, ts, _ := newGatewayFixture(t)

	post := func(path string, size int) int {
		t.Helper()
		body := bytes.NewReader(bytes.Repeat([]byte("x"), size))
		resp, err := http.Post(ts.URL+path, "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := post("/v1/report", edge.MaxRequestBody+1); got != http.StatusBadRequest {
		t.Errorf("report body over MaxRequestBody: status %d, want %d", got, http.StatusBadRequest)
	}
	if got := post("/v1/report/batch", edge.MaxBatchBody+1); got != http.StatusBadRequest {
		t.Errorf("batch body over MaxBatchBody: status %d, want %d", got, http.StatusBadRequest)
	}
	// A batch bigger than the single-message limit but under the batch
	// limit must NOT be rejected for size (it fails later, on content):
	// proves the two routes use their own limits, not one shared cap.
	padded := bytes.Repeat([]byte(" "), edge.MaxRequestBody+1)
	copy(padded, "{\"reports\":[]}")
	resp, err := http.Post(ts.URL+"/v1/report/batch", "application/json", bytes.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "non-empty") {
		t.Errorf("mid-size batch: status %d body %q, want empty-reports rejection", resp.StatusCode, raw)
	}
}

// TestGatewayServeHardened boots Gateway.Serve on a real listener and
// checks it serves traffic and shuts down on context cancel; the
// slowloris bounds themselves are pinned by edge.TestNewHTTPServer.
func TestGatewayServeHardened(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Serve(ctx, ln) }()
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
