package edgecluster

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/wal"
)

// TestRestartNodeDurableRecovery: an edge with a WAL crashes (store
// abandoned, never closed), the cluster keeps merging without it, and
// RestartNode rebuilds the edge from its own durable state plus the
// journal rounds it missed. The revived node must be byte-identical to
// its peers — and must arrive there from recovered state, not from a
// cold engine.
func TestRestartNodeDurableRecovery(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Attach durability to edge-00 only: it is the node we will crash.
	if _, err := c.Nodes()[0].Engine.Recover(st); err != nil {
		t.Fatal(err)
	}

	home := geo.Point{X: 0, Y: 0}      // nearest edge-00
	work := geo.Point{X: 5_100, Y: 0}  // nearest edge-01
	gym := geo.Point{X: 100, Y: 5_100} // nearest edge-02
	rnd := randx.New(9, 9)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	const user = "durable"
	visit := func(pos geo.Point, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			at = at.Add(time.Hour)
			if _, err := c.Report(user, pos.Add(rnd.GaussianPolar(10)), at); err != nil {
				t.Fatal(err)
			}
		}
	}

	visit(home, 20)
	visit(work, 12)
	if _, err := c.MergeProfiles(user, at); err != nil {
		t.Fatalf("first merge: %v", err)
	}
	preCrash := fingerprint(t, c.Nodes()[0], user)
	if empty := fingerprint(t, c.Nodes()[0], "nobody"); preCrash == empty {
		t.Fatal("merge left edge-00 with an empty table")
	}

	// Crash edge-00: the store is abandoned mid-flight, never closed.
	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	// The cluster keeps going: more reports (failing over past edge-00)
	// and a degraded merge that edge-00 never sees.
	visit(gym, 15)
	visit(home, 10) // home now routes to a fallback edge
	if _, err := c.MergeProfiles(user, at); err != nil {
		t.Fatalf("degraded merge: %v", err)
	}

	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(0, st2); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if c.Nodes()[0].Down() {
		t.Error("restarted node still marked down")
	}

	// The revived edge agrees byte-for-byte with both live peers,
	// including the round merged while it was down.
	fp0 := fingerprint(t, c.Nodes()[0], user)
	for _, n := range c.Nodes()[1:] {
		if fp := fingerprint(t, n, user); fp != fp0 {
			t.Errorf("%s fingerprint %016x != revived edge-00 %016x", n.ID, fp, fp0)
		}
	}
	// The permanent entries obfuscated before the crash survived into
	// the revived table (the table only ever grows; a cold engine that
	// merely caught up would coincide here, but losing the pre-crash
	// fingerprint entirely would mean recovery was skipped).
	if fp0 == preCrash {
		t.Error("fingerprint unchanged by the degraded merge — second round never replicated")
	}

	// The revived node serves traffic again.
	if node, err := c.Report(user, home, at.Add(time.Hour)); err != nil || node != "edge-00" {
		t.Errorf("post-restart routing = %s, %v; want edge-00", node, err)
	}

	if err := c.RestartNode(99, st2); err == nil {
		t.Error("out-of-range RestartNode accepted")
	}
}

// TestRestartNodePreservesRecoveredBaseline pins the "revived node is
// not cold" property directly: state that exists ONLY in edge-00's WAL
// (never merged, so absent from the journal) must be present after
// RestartNode.
func TestRestartNodePreservesRecoveredBaseline(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	n0 := c.Nodes()[0]
	if _, err := n0.Engine.Recover(st); err != nil {
		t.Fatal(err)
	}

	// Pending check-ins on edge-00 only; no merge, so no journal round.
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	rnd := randx.New(3, 3)
	for i := 0; i < 25; i++ {
		at = at.Add(time.Hour)
		if _, err := c.Report("solo", geo.Point{X: 0, Y: 0}.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	wantPending, err := n0.Engine.PendingProfile("solo")
	if err != nil {
		t.Fatal(err)
	}
	if len(wantPending) == 0 {
		t.Fatal("no pending profile before crash")
	}

	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(0, st2); err != nil {
		t.Fatal(err)
	}
	gotPending, err := c.Nodes()[0].Engine.PendingProfile("solo")
	if err != nil {
		t.Fatalf("pending profile lost in restart: %v", err)
	}
	if len(gotPending) != len(wantPending) {
		t.Errorf("recovered pending profile has %d tops, want %d", len(gotPending), len(wantPending))
	}
}
