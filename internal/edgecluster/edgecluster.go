// Package edgecluster implements a multi-edge Edge-PrivLocAd deployment:
// several edge devices with distinct coverage areas serve a roaming user
// population. Each edge records only the check-ins it observes (a local
// part of the user's location profile, Section V-B of the paper); a
// periodic merge combines the partial profiles through the secure
// aggregation protocol of internal/secagg, computes the η-frequent top
// set on the aggregate, obfuscates each new top exactly once, and
// replicates the permanent candidate sets to every edge.
//
// The replication step carries the deployment-critical invariant: if two
// edges obfuscated the same top location independently, the union of
// their outputs would exceed the (r, ε, δ, n) guarantee. The cluster
// therefore designates the lowest-indexed edge as the obfuscator for a
// merge round and copies its table rows to the rest.
package edgecluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/secagg"
)

// ErrNoCoverage reports a report or request outside every edge's
// coverage radius.
var ErrNoCoverage = errors.New("edgecluster: no edge covers this location")

// Node is one edge device: its coverage centre and its engine.
type Node struct {
	ID       string
	Coverage geo.Circle
	Engine   *core.Engine
}

// Config parameterises a cluster.
type Config struct {
	// Engine is the per-edge engine configuration; every edge runs the
	// same mechanisms. The per-edge Seed is derived from Config.Seed.
	Engine core.Config
	// Coverage lists each edge's service disk. At least one.
	Coverage []geo.Circle
	// MergeRegion bounds the secure-aggregation grid; it should contain
	// all coverage disks.
	MergeRegion geo.BBox
	// MergeCell is the aggregation grid resolution; ≤ 0 selects the
	// engine's connectivity threshold (50 m by default).
	MergeCell float64
	// EtaFraction selects the merged η-frequent set; ≤ 0 selects 0.9.
	EtaFraction float64
	// Seed drives cluster randomness (per-edge seeds, merge sessions).
	Seed uint64
}

// Cluster is a set of cooperating edge devices.
type Cluster struct {
	cfg   Config
	nodes []*Node
}

// New validates cfg and builds the cluster with one engine per coverage
// disk.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Coverage) == 0 {
		return nil, fmt.Errorf("edgecluster: at least one coverage disk required")
	}
	for i, c := range cfg.Coverage {
		if !(c.Radius > 0) || math.IsInf(c.Radius, 0) {
			return nil, fmt.Errorf("edgecluster: coverage %d radius %g must be positive and finite", i, c.Radius)
		}
	}
	if cfg.MergeRegion.Width() <= 0 || cfg.MergeRegion.Height() <= 0 {
		return nil, fmt.Errorf("edgecluster: degenerate merge region %+v", cfg.MergeRegion)
	}
	if cfg.MergeCell <= 0 {
		cfg.MergeCell = cfg.Engine.ConnectivityThreshold
		if cfg.MergeCell <= 0 {
			cfg.MergeCell = profile.DefaultConnectivityThreshold
		}
	}
	if cfg.EtaFraction <= 0 {
		cfg.EtaFraction = 0.9
	}

	cluster := &Cluster{cfg: cfg}
	for i, cov := range cfg.Coverage {
		engineCfg := cfg.Engine
		engineCfg.Seed = cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		engine, err := core.NewEngine(engineCfg)
		if err != nil {
			return nil, fmt.Errorf("edgecluster: building edge %d: %w", i, err)
		}
		cluster.nodes = append(cluster.nodes, &Node{
			ID:       fmt.Sprintf("edge-%02d", i),
			Coverage: cov,
			Engine:   engine,
		})
	}
	return cluster, nil
}

// Nodes returns the cluster's edges.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// route returns the covering edge nearest to pos.
func (c *Cluster) route(pos geo.Point) (*Node, error) {
	var best *Node
	bestD := math.Inf(1)
	for _, n := range c.nodes {
		d := n.Coverage.Center.Dist(pos)
		if d <= n.Coverage.Radius && d < bestD {
			best = n
			bestD = d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: (%.0f, %.0f)", ErrNoCoverage, pos.X, pos.Y)
	}
	return best, nil
}

// Report routes a check-in to the covering edge and returns its ID.
func (c *Cluster) Report(userID string, pos geo.Point, at time.Time) (string, error) {
	node, err := c.route(pos)
	if err != nil {
		return "", err
	}
	if err := node.Engine.Report(userID, pos, at); err != nil {
		return "", fmt.Errorf("edgecluster: reporting to %s: %w", node.ID, err)
	}
	return node.ID, nil
}

// Request routes an LBA request to the covering edge.
func (c *Cluster) Request(userID string, pos geo.Point) (geo.Point, bool, error) {
	node, err := c.route(pos)
	if err != nil {
		return geo.Point{}, false, err
	}
	out, fromTable, err := node.Engine.Request(userID, pos)
	if err != nil {
		return geo.Point{}, false, fmt.Errorf("edgecluster: requesting at %s: %w", node.ID, err)
	}
	return out, fromTable, nil
}

// MergeProfiles runs the periodic profile merge for one user:
//
//  1. every edge contributes its pending partial profile,
//  2. the partials are combined with the secure aggregation protocol
//     (no edge reveals its plaintext histogram),
//  3. the η-frequent top set is computed on the merged profile,
//  4. the designated obfuscator installs the tops (new ones are
//     obfuscated exactly once), and
//  5. the resulting permanent table rows replicate to every other edge.
//
// It returns the merged top set. Users the cluster has never seen yield
// ErrUnknownUser from the underlying engines.
func (c *Cluster) MergeProfiles(userID string, now time.Time) (profile.Profile, error) {
	partials := make([]profile.Profile, 0, len(c.nodes))
	seen := false
	for _, n := range c.nodes {
		part, err := n.Engine.PendingProfile(userID)
		switch {
		case errors.Is(err, core.ErrUnknownUser):
			partials = append(partials, nil) // this edge never saw the user
		case err != nil:
			return nil, fmt.Errorf("edgecluster: partial profile at %s: %w", n.ID, err)
		default:
			seen = true
			partials = append(partials, part)
		}
	}
	if !seen {
		return nil, fmt.Errorf("edgecluster: merge for %q: %w", userID, core.ErrUnknownUser)
	}

	var merged profile.Profile
	if len(c.nodes) == 1 {
		merged = partials[0]
	} else {
		var dropped int
		var err error
		merged, dropped, err = secagg.MergeProfiles(partials, c.cfg.MergeRegion, c.cfg.MergeCell, c.cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("edgecluster: secure merge for %q: %w", userID, err)
		}
		if dropped > 0 {
			return nil, fmt.Errorf("edgecluster: merge for %q dropped %d locations outside the region", userID, dropped)
		}
	}
	tops := merged.EtaFractionSet(c.cfg.EtaFraction)

	// Install at the designated obfuscator, then replicate its table.
	obfuscator := c.nodes[0]
	if err := obfuscator.Engine.InstallTops(userID, tops, now); err != nil {
		return nil, fmt.Errorf("edgecluster: installing tops at %s: %w", obfuscator.ID, err)
	}
	entries, err := obfuscator.Engine.Table(userID)
	if err != nil {
		return nil, fmt.Errorf("edgecluster: reading table at %s: %w", obfuscator.ID, err)
	}
	for _, n := range c.nodes[1:] {
		if err := n.Engine.ImportTable(userID, entries); err != nil {
			return nil, fmt.Errorf("edgecluster: replicating table to %s: %w", n.ID, err)
		}
		// Keep the merged top set consistent everywhere so TopLocations
		// answers identically regardless of the edge queried.
		if err := n.Engine.InstallTops(userID, tops, now); err != nil {
			return nil, fmt.Errorf("edgecluster: installing tops at %s: %w", n.ID, err)
		}
	}
	return tops, nil
}
