// Package edgecluster implements a multi-edge Edge-PrivLocAd deployment:
// several edge devices with distinct coverage areas serve a roaming user
// population. Each edge records only the check-ins it observes (a local
// part of the user's location profile, Section V-B of the paper); a
// periodic merge combines the partial profiles through the secure
// aggregation protocol of internal/secagg, computes the η-frequent top
// set on the aggregate, obfuscates each new top exactly once, and
// replicates the permanent candidate sets to every edge.
//
// The replication step carries the deployment-critical invariant: if two
// edges obfuscated the same top location independently, the union of
// their outputs would exceed the (r, ε, δ, n) guarantee. The cluster
// therefore designates one edge as the obfuscator for a merge round and
// copies its table rows to the rest.
//
// Edge devices are the class of hardware that fails, restarts, and drops
// requests, so the cluster is fault tolerant by construction:
//
//   - Every node carries a health state (MarkDown/MarkUp, or the
//     ping-based Detector driving those transitions automatically).
//     Routing skips down and unreachable nodes and fails over to the
//     next-nearest covering live edge.
//   - MergeProfiles degrades gracefully: it merges over reachable edges
//     only, picks the lowest-indexed LIVE node as the round's obfuscator,
//     and never aborts the round because one replica is unreachable.
//   - Replication is a versioned, idempotent journal shipping
//     content-addressed deltas: obfuscation tables are append-only, so a
//     round records the obfuscator's table plus its fingerprint chain
//     (core.FingerprintTable), and each replica receives only the suffix
//     beyond the prefix it proves it holds — O(changed entries) bytes,
//     not O(table). A replica whose content proof fails (arbitrary
//     divergence, e.g. a corrupt store) falls back to the full snapshot,
//     which the idempotent import still converges. A node that was down
//     (or crashed mid-replication) catches up to a byte-identical table
//     on recovery; a restarted node recovers its position from its own
//     durable state and replays only genuinely missed rounds.
package edgecluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/secagg"
	"repro/internal/tracing"
	"repro/internal/wire"
)

// Cluster errors.
var (
	// ErrNoCoverage reports a report or request outside every edge's
	// coverage radius.
	ErrNoCoverage = errors.New("edgecluster: no edge covers this location")
	// ErrNoLiveEdge reports that every edge covering the location (or, for
	// merges, every edge in the cluster) is marked down.
	ErrNoLiveEdge = errors.New("edgecluster: no live edge available")
)

// Node is one edge device: its coverage centre, its engine, and its
// health/replication state.
type Node struct {
	ID       string
	Coverage geo.Circle
	Engine   *core.Engine

	// down is the node's health state — the cluster's *belief*, driven
	// by MarkDown/MarkUp or the failure detector; a down node receives
	// no traffic and no replication until revived.
	down atomic.Bool
	// unreachable simulates loss of the node's endpoint (process death,
	// network partition) — the seam chaos runs kill. Unlike down, it is
	// ground truth: an unreachable node answers no probes, takes no
	// traffic, and fails replication applies whether or not the cluster
	// has noticed yet.
	unreachable atomic.Bool
	// lag maps userID → the journal version this node is known to be
	// missing, and carries an entry ONLY while the node is behind the
	// journal head for that user: a successful apply deletes the entry.
	// A healthy cluster therefore keeps every lag map empty regardless
	// of user count (the old always-growing applied map leaked an entry
	// per user forever). Guarded by the cluster mutex.
	lag map[string]uint64
	// failApply, when non-nil (failure injection for tests and chaos
	// runs), is consulted before each replication apply on this node; an
	// error simulates a crash mid-replication: the lag entry survives,
	// so the node stays cleanly retryable.
	failApply func(userID string) error
}

// Down reports whether the node is currently marked unhealthy.
func (n *Node) Down() bool { return n.down.Load() }

// Reachable reports whether the node's endpoint is answering — the
// ground truth the failure detector discovers, as opposed to Down, the
// cluster's current belief.
func (n *Node) Reachable() bool { return !n.unreachable.Load() }

// LagLen returns the number of users this node is known to be behind
// on. Guarded by the cluster mutex via Cluster.NodeLag.
func (n *Node) lagLen() int { return len(n.lag) }

// SetFailApply installs (or clears, with nil) the replication failure
// injection hook — the test/chaos seam for "node crashed mid-round".
func (n *Node) SetFailApply(fn func(userID string) error) { n.failApply = fn }

// Config parameterises a cluster.
type Config struct {
	// Engine is the per-edge engine configuration; every edge runs the
	// same mechanisms. The per-edge Seed is derived from Config.Seed.
	Engine core.Config
	// Coverage lists each edge's service disk. At least one.
	Coverage []geo.Circle
	// MergeRegion bounds the secure-aggregation grid; it should contain
	// all coverage disks.
	MergeRegion geo.BBox
	// MergeCell is the aggregation grid resolution; ≤ 0 selects the
	// engine's connectivity threshold (50 m by default).
	MergeCell float64
	// EtaFraction selects the merged η-frequent set; ≤ 0 selects 0.9.
	EtaFraction float64
	// Seed drives cluster randomness (per-edge seeds, merge sessions).
	Seed uint64
}

// Cluster is a set of cooperating edge devices. Report and Request fan
// out to per-node engines (which carry their own per-user locks) and are
// safe for concurrent use; merge rounds, journal access, and health
// transitions serialise on the cluster mutex.
type Cluster struct {
	cfg   Config
	nodes []*Node

	// mu guards the journal, every node's lag map, merge rounds, and the
	// encode scratch buffer.
	mu      sync.Mutex
	journal map[string]*mergeRound
	version uint64
	// encBuf is the pooled wire-encode buffer replication frames are
	// sized with; reused across applies under mu.
	encBuf []byte
	// repl accumulates replication traffic accounting across rounds.
	repl ReplStats

	met atomic.Pointer[clusterMetrics]
}

// mergeRound is one journal record: the latest merged state for a user.
// A round records the obfuscator's FULL authoritative table next to its
// fingerprint chain, but *ships* only deltas: the table is append-only,
// so any replica's table is a prefix of entries, and prefix[k] — the
// core.FingerprintTable digest of entries[:k] — lets a replica prove
// which prefix it holds and receive entries[k:] alone. Applying the
// latest round still brings any replica — fresh, stale, or partially
// replicated — to the byte-identical current state; intermediate rounds
// need never be replayed.
type mergeRound struct {
	version uint64
	tops    profile.Profile
	entries []core.TableEntry
	// prefix has len(entries)+1 values: prefix[k] is the fingerprint
	// chain of entries[:k], so prefix[0] == core.FingerprintSeed and
	// prefix[len(entries)] is the round's full-table digest.
	prefix []uint64
	// snapshotBytes is the wire frame size a full-snapshot scheme would
	// ship per replica for this round, computed once at journal time;
	// replication metrics report it next to the actual delta bytes.
	snapshotBytes int
	at            time.Time
}

// ReplStats is the cluster's cumulative replication-traffic accounting:
// what delta replication actually shipped versus what the old
// full-snapshot scheme would have shipped for the same applies.
type ReplStats struct {
	// DeltaBytes is the wire bytes actually shipped (delta frames).
	DeltaBytes int
	// SnapshotBytes is the bytes a full-snapshot round would have
	// shipped for the same applies.
	SnapshotBytes int
	// Entries is the table entries actually shipped.
	Entries int
	// Fallbacks counts applies whose content proof failed, forcing a
	// full-snapshot delta (BaseLen 0).
	Fallbacks int
}

// ReplStats returns the cluster's cumulative replication accounting.
func (c *Cluster) ReplStats() ReplStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.repl
}

// NodeLag returns how many users edge i is known to be behind on — the
// size of its lag map, which a healthy caught-up cluster keeps at zero.
func (c *Cluster) NodeLag(i int) int {
	if i < 0 || i >= len(c.nodes) {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i].lagLen()
}

// edgeSeed derives the engine seed of edge i from the cluster seed. The
// base seed is avalanched with SplitMix64 BEFORE the golden-ratio index
// increment (the internal/par.MapSeeded recipe): a plain
// seed + i*GoldenGamma is linear in both arguments, so cluster seed s
// edge 1 would share a stream with cluster seed s+GoldenGamma edge 0.
func edgeSeed(clusterSeed uint64, i int) uint64 {
	return randx.Mix64(randx.Mix64(clusterSeed) + uint64(i)*randx.GoldenGamma)
}

// New validates cfg and builds the cluster with one engine per coverage
// disk. All nodes start live.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Coverage) == 0 {
		return nil, fmt.Errorf("edgecluster: at least one coverage disk required")
	}
	for i, c := range cfg.Coverage {
		if !(c.Radius > 0) || math.IsInf(c.Radius, 0) {
			return nil, fmt.Errorf("edgecluster: coverage %d radius %g must be positive and finite", i, c.Radius)
		}
	}
	if cfg.MergeRegion.Width() <= 0 || cfg.MergeRegion.Height() <= 0 {
		return nil, fmt.Errorf("edgecluster: degenerate merge region %+v", cfg.MergeRegion)
	}
	if cfg.MergeCell <= 0 {
		cfg.MergeCell = cfg.Engine.ConnectivityThreshold
		if cfg.MergeCell <= 0 {
			cfg.MergeCell = profile.DefaultConnectivityThreshold
		}
	}
	if cfg.EtaFraction <= 0 {
		cfg.EtaFraction = 0.9
	}

	cluster := &Cluster{cfg: cfg, journal: make(map[string]*mergeRound)}
	for i, cov := range cfg.Coverage {
		engineCfg := cfg.Engine
		engineCfg.Seed = edgeSeed(cfg.Seed, i)
		// Profile recomputation belongs exclusively to the merge protocol:
		// a single-edge engine rebuilds on its own when a report closes the
		// profile window, but here that would obfuscate the same top
		// independently on every edge that observes the user — voiding the
		// single-obfuscator invariant on any trace longer than the window.
		// Disable per-edge auto-rebuild by pushing the window out of reach.
		engineCfg.ProfileWindow = time.Duration(math.MaxInt64)
		engine, err := core.NewEngine(engineCfg)
		if err != nil {
			return nil, fmt.Errorf("edgecluster: building edge %d: %w", i, err)
		}
		cluster.nodes = append(cluster.nodes, &Node{
			ID:       fmt.Sprintf("edge-%02d", i),
			Coverage: cov,
			Engine:   engine,
			lag:      make(map[string]uint64),
		})
	}
	return cluster, nil
}

// Nodes returns the cluster's edges.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// SetReachable flips edge i's endpoint between answering and dead — the
// chaos seam simulating process kill or partition. It does NOT touch the
// cluster's health belief: discovering (and eventually reviving) the
// node is the failure detector's job, or an operator's via
// MarkDown/MarkUp.
func (c *Cluster) SetReachable(i int, reachable bool) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("edgecluster: no edge %d", i)
	}
	c.nodes[i].unreachable.Store(!reachable)
	return nil
}

// MarkDown marks edge i unhealthy: routing and replication skip it until
// MarkUp. Marking an already-down node is a no-op.
func (c *Cluster) MarkDown(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("edgecluster: no edge %d", i)
	}
	if !c.nodes[i].down.Swap(true) {
		if m := c.met.Load(); m != nil {
			m.nodesDown.Inc()
		}
	}
	return nil
}

// MarkUp revives edge i and replays the replication journal so its
// tables catch up to the current merged state before it takes traffic
// again. The returned error reports catch-up failures; the node stays
// live (and cleanly retryable via Reconcile) either way.
func (c *Cluster) MarkUp(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("edgecluster: no edge %d", i)
	}
	n := c.nodes[i]
	c.mu.Lock()
	// Catch up BEFORE flipping the health flag: the revived edge must not
	// serve a stale table while the replay is still in flight.
	err := c.catchUpLocked(n)
	c.mu.Unlock()
	if n.down.Swap(false) {
		if m := c.met.Load(); m != nil {
			m.nodesDown.Dec()
		}
	}
	return err
}

// RestartNode simulates a full process restart of edge i backed by
// durable storage: a fresh engine is built from the node's
// configuration, its state is recovered from st (latest checkpoint +
// WAL tail replay), and the replication journal is then replayed on
// top. The recovered state — not a cold engine — is the catch-up
// baseline, so a revived node only needs the journal for rounds merged
// while it was down, and its permanent obfuscation table (the
// longitudinal guarantee) survives the crash byte-identically. The node
// is marked live on return; a catch-up failure is reported but leaves
// the node retryable via Reconcile, matching MarkUp.
func (c *Cluster) RestartNode(i int, st core.DurableStore) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("edgecluster: no edge %d", i)
	}
	n := c.nodes[i]
	engine, err := core.NewEngine(n.Engine.Config())
	if err != nil {
		return fmt.Errorf("edgecluster: rebuilding engine for %s: %w", n.ID, err)
	}
	if _, err := engine.Recover(st); err != nil {
		return fmt.Errorf("edgecluster: recovering %s: %w", n.ID, err)
	}
	c.mu.Lock()
	n.Engine = engine
	// The lag map tracked the dead process's journal position, but a
	// recovered engine can be behind what the bookkeeping says: a WAL
	// running fsync=interval/never loses its tail on a crash, silently
	// rewinding users the cluster believed current. Audit the whole
	// journal content-addressed instead of trusting the map: each user's
	// recovered table proves (by fingerprint chain) which prefix it
	// holds, users whose tables and tops already match the journal head
	// ship nothing, and the rest receive exactly the missing suffix —
	// the node's own WAL does the bulk of the recovery, the journal only
	// fills genuinely missed rounds.
	err = c.auditLocked(n)
	c.mu.Unlock()
	if n.down.Swap(false) {
		if m := c.met.Load(); m != nil {
			m.nodesDown.Dec()
		}
	}
	return err
}

// Reconcile replays the journal to every live node that is behind (a
// replica that failed mid-round, or a revival whose catch-up errored).
// It is idempotent: a fully consistent cluster is a no-op.
func (c *Cluster) Reconcile() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, n := range c.nodes {
		if n.down.Load() || !n.Reachable() {
			continue
		}
		if err := c.catchUpLocked(n); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// catchUpLocked applies the journal head for every user the node is
// known to be behind on. It walks the lag map, not the journal, so
// catch-up cost is proportional to how far the node fell behind, not to
// the cluster's total user count. The caller holds c.mu.
func (c *Cluster) catchUpLocked(n *Node) error {
	var firstErr error
	for userID := range n.lag {
		round := c.journal[userID]
		if round == nil {
			// The lag entry outlived its journal round; nothing to apply.
			delete(n.lag, userID)
			continue
		}
		if err := c.applyRoundLocked(n, userID, round, false); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m := c.met.Load(); m != nil {
			m.journalReplays.Inc()
		}
	}
	return firstErr
}

// auditLocked walks the WHOLE journal and repairs any user whose state
// on n is not byte-identical to the journal head — the recovery path
// where the lag bookkeeping cannot be trusted (a restarted process may
// have lost WAL tail beyond what the map records). Users whose content
// proof (fingerprint chain) and installed tops already match ship
// nothing at all. The caller holds c.mu.
func (c *Cluster) auditLocked(n *Node) error {
	var firstErr error
	for userID, round := range c.journal {
		ln, fp, err := n.Engine.TableState(userID)
		if err == nil && ln == len(round.entries) && fp == round.prefix[ln] && c.topsCurrent(n, userID, round) {
			delete(n.lag, userID)
			continue
		}
		if err := c.applyRoundLocked(n, userID, round, false); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m := c.met.Load(); m != nil {
			m.journalReplays.Inc()
		}
	}
	return firstErr
}

// topsCurrent reports whether the node already has the round's merged
// top set installed, so an audit can skip the user entirely.
func (c *Cluster) topsCurrent(n *Node, userID string, round *mergeRound) bool {
	got, err := n.Engine.TopLocations(userID)
	if err != nil || len(got) != len(round.tops) {
		return false
	}
	for i := range got {
		if got[i] != round.tops[i] {
			return false
		}
	}
	return true
}

// resolveBaseLocked returns how many of the round's entries the replica
// already holds, verified by content: the replica's table length and
// fingerprint must name a prefix of the round's chain. ok is false when
// the proof fails — the replica diverged arbitrarily (corrupt store,
// foreign state) and needs the full snapshot. The caller holds c.mu.
func (c *Cluster) resolveBaseLocked(n *Node, userID string, round *mergeRound) (base int, ok bool) {
	ln, fp, err := n.Engine.TableState(userID)
	if err != nil {
		return 0, false
	}
	if ln <= len(round.entries) && round.prefix[ln] == fp {
		return ln, true
	}
	return 0, false
}

// applyRoundLocked installs one journal round on a replica as a
// content-addressed delta: resolve the prefix the replica proves it
// holds, ship only the suffix beyond it (a failed proof falls back to
// the full snapshot, which the idempotent import — existing entries win
// — still converges), then install the merged top set so TopLocations
// answers identically on every edge. The shipped frame is sized with
// the real wire encoding so the replication metrics report bytes a
// networked deployment would put on the wire. merged reports whether
// the replica's pending check-ins were part of this round (live
// replication consumes the collection window; a catch-up replay
// preserves pending check-ins that never merged, so they contribute to
// the next round). On failure the node keeps a lag entry for the round,
// staying cleanly retryable. The caller holds c.mu.
func (c *Cluster) applyRoundLocked(n *Node, userID string, round *mergeRound, merged bool) (err error) {
	defer func() {
		if err != nil {
			n.lag[userID] = round.version
		} else {
			delete(n.lag, userID)
		}
	}()
	if !n.Reachable() {
		return fmt.Errorf("edgecluster: replicating round %d to %s: node unreachable", round.version, n.ID)
	}
	if n.failApply != nil {
		if err := n.failApply(userID); err != nil {
			return fmt.Errorf("edgecluster: replicating round %d to %s: %w", round.version, n.ID, err)
		}
	}
	base, ok := c.resolveBaseLocked(n, userID, round)
	if !ok {
		c.repl.Fallbacks++
		if m := c.met.Load(); m != nil {
			m.snapshotFallbacks.Inc()
		}
	}
	delta := wire.ReplDelta{
		UserID:  userID,
		Version: round.version,
		BaseLen: base,
		BaseFP:  round.prefix[base],
		FullFP:  round.prefix[len(round.entries)],
		Entries: round.entries[base:],
		Tops:    round.tops,
		At:      round.at,
	}
	c.encBuf = wire.Append(c.encBuf[:0], &delta)
	c.repl.DeltaBytes += len(c.encBuf)
	c.repl.SnapshotBytes += round.snapshotBytes
	c.repl.Entries += len(delta.Entries)
	if m := c.met.Load(); m != nil {
		m.replicationBytes.Add(uint64(len(c.encBuf)))
		m.replicationSnapshotBytes.Add(uint64(round.snapshotBytes))
		m.replicationEntries.Add(uint64(len(delta.Entries)))
	}
	if err := n.Engine.ImportTable(userID, delta.Entries); err != nil {
		return fmt.Errorf("edgecluster: replicating table to %s: %w", n.ID, err)
	}
	install := n.Engine.SyncTops
	if merged {
		install = n.Engine.InstallTops
	}
	if err := install(userID, round.tops, round.at); err != nil {
		return fmt.Errorf("edgecluster: installing tops at %s: %w", n.ID, err)
	}
	return nil
}

// route returns the covering LIVE edge nearest to pos, failing over past
// down or unreachable nodes to the next-nearest covering edge. A dead
// node the detector has not yet confirmed is skipped the same way a
// marked-down one is — the request path is its own passive failure
// detector. failedOver reports that the nearest covering edge was
// skipped, so callers can attribute the hop in their trace.
func (c *Cluster) route(pos geo.Point) (n *Node, failedOver bool, err error) {
	var best, bestLive *Node
	bestD, bestLiveD := math.Inf(1), math.Inf(1)
	for _, n := range c.nodes {
		d := n.Coverage.Center.Dist(pos)
		if d > n.Coverage.Radius {
			continue
		}
		if d < bestD {
			best, bestD = n, d
		}
		if !n.down.Load() && n.Reachable() && d < bestLiveD {
			bestLive, bestLiveD = n, d
		}
	}
	if best == nil {
		return nil, false, fmt.Errorf("%w: (%.0f, %.0f)", ErrNoCoverage, pos.X, pos.Y)
	}
	if bestLive == nil {
		return nil, false, fmt.Errorf("%w: every edge covering (%.0f, %.0f) is down", ErrNoLiveEdge, pos.X, pos.Y)
	}
	if bestLive != best {
		if m := c.met.Load(); m != nil {
			m.failovers.Inc()
		}
		return bestLive, true, nil
	}
	return bestLive, false, nil
}

// Report routes a check-in to the nearest covering live edge and returns
// its ID.
func (c *Cluster) Report(userID string, pos geo.Point, at time.Time) (string, error) {
	return c.ReportCtx(context.Background(), userID, pos, at)
}

// ReportCtx is Report with trace context: a check-in that failed over
// past a down edge runs inside a failover span, and the engine's apply
// and WAL work record their own spans under it — the same trace ID all
// the way from the client's traceparent to the fsync.
func (c *Cluster) ReportCtx(ctx context.Context, userID string, pos geo.Point, at time.Time) (string, error) {
	node, failedOver, err := c.route(pos)
	if err != nil {
		return "", err
	}
	if failedOver {
		var sp *tracing.Span
		ctx, sp = tracing.StartSpan(ctx, tracing.StageFailover)
		defer sp.End()
	}
	if err := node.Engine.ReportCtx(ctx, userID, pos, at); err != nil {
		return "", fmt.Errorf("edgecluster: reporting to %s: %w", node.ID, err)
	}
	return node.ID, nil
}

// ReportBatch routes a batch of check-ins across the cluster. Each item
// routes independently (failing over past down nodes exactly like
// Report), so one batch from a roaming user may fan out to several
// edges; items landing on the same edge are delivered as one
// Engine.ReportBatch call in their original arrival order. Items that
// route nowhere — or that the engine rejects — come back as per-item
// errors keyed by input index; the rest of the batch is still ingested.
func (c *Cluster) ReportBatch(items []core.BatchReport) []core.BatchError {
	return c.ReportBatchCtx(context.Background(), items)
}

// ReportBatchCtx is ReportBatch with trace context. A per-edge delivery
// whose items all routed past a down node runs inside a failover span;
// mixed groups (some items failed over, some not) attribute the whole
// delivery to failover, since the hop is per-delivery, not per-item.
func (c *Cluster) ReportBatchCtx(ctx context.Context, items []core.BatchReport) []core.BatchError {
	var errs []core.BatchError
	groups := make(map[*Node][]core.BatchReport)
	indexes := make(map[*Node][]int)
	failed := make(map[*Node]bool)
	var order []*Node
	for i, item := range items {
		node, failedOver, err := c.route(item.Pos)
		if err != nil {
			errs = append(errs, core.BatchError{Index: i, Err: err})
			continue
		}
		if _, ok := groups[node]; !ok {
			order = append(order, node)
		}
		groups[node] = append(groups[node], item)
		indexes[node] = append(indexes[node], i)
		if failedOver {
			failed[node] = true
		}
	}
	for _, node := range order {
		deliver := func(ctx context.Context) []core.BatchError {
			return node.Engine.ReportBatchCtx(ctx, groups[node])
		}
		var batchErrs []core.BatchError
		if failed[node] {
			fctx, sp := tracing.StartSpan(ctx, tracing.StageFailover)
			batchErrs = deliver(fctx)
			sp.End()
		} else {
			batchErrs = deliver(ctx)
		}
		for _, be := range batchErrs {
			errs = append(errs, core.BatchError{
				Index: indexes[node][be.Index],
				Err:   fmt.Errorf("edgecluster: reporting to %s: %w", node.ID, be.Err),
			})
		}
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return errs
}

// Request routes an LBA request to the nearest covering live edge.
func (c *Cluster) Request(userID string, pos geo.Point) (geo.Point, bool, error) {
	return c.RequestCtx(context.Background(), userID, pos)
}

// RequestCtx is Request with trace context: a request answered by a
// failover edge carries a failover span around the engine call, so the
// per-stage breakdown separates re-routed serving cost from the happy
// path.
func (c *Cluster) RequestCtx(ctx context.Context, userID string, pos geo.Point) (geo.Point, bool, error) {
	node, failedOver, err := c.route(pos)
	if err != nil {
		return geo.Point{}, false, err
	}
	if failedOver {
		var sp *tracing.Span
		ctx, sp = tracing.StartSpan(ctx, tracing.StageFailover)
		defer sp.End()
	}
	out, fromTable, err := node.Engine.RequestCtx(ctx, userID, pos)
	if err != nil {
		return geo.Point{}, false, fmt.Errorf("edgecluster: requesting at %s: %w", node.ID, err)
	}
	return out, fromTable, nil
}

// MergeStats describes how a merge round went: how much of the cluster
// participated and what was left behind.
type MergeStats struct {
	// Version is the journal version this round produced.
	Version uint64
	// Obfuscator is the node that obfuscated this round's new tops.
	Obfuscator string
	// Live is the number of edges that contributed and received the round.
	Live int
	// SkippedDown is the number of down edges excluded from the round;
	// their pending check-ins stay queued for a later round and their
	// tables catch up from the journal at MarkUp.
	SkippedDown int
	// Dropped counts merged check-ins outside MergeRegion; they are
	// excluded from the aggregate (and counted in telemetry) rather than
	// failing the round.
	Dropped int
	// ReplicaErrors is the number of live replicas the round failed to
	// apply to; they remain on their previous version and catch up on the
	// next merge, a Reconcile, or their next MarkUp.
	ReplicaErrors int
	// Degraded reports a round that did not reach the whole cluster
	// (SkippedDown > 0 or ReplicaErrors > 0).
	Degraded bool
	// DeltaBytes is the wire bytes this round actually shipped to
	// replicas (content-addressed delta frames).
	DeltaBytes int
	// SnapshotBytes is what the old full-snapshot scheme would have
	// shipped for the same applies.
	SnapshotBytes int
	// DeltaEntries is the table entries this round shipped.
	DeltaEntries int
}

// MergeProfiles runs the periodic profile merge for one user:
//
//  1. every LIVE edge contributes its pending partial profile,
//  2. the partials are combined with the secure aggregation protocol
//     (no edge reveals its plaintext histogram),
//  3. the η-frequent top set is computed on the merged profile,
//  4. the lowest-indexed live edge — this round's obfuscator — installs
//     the tops (new ones are obfuscated exactly once),
//  5. the round is recorded in the versioned replication journal, and
//  6. the journal round applies to every other live edge; failures leave
//     that replica cleanly retryable instead of aborting the round.
//
// It returns the merged top set. Users the cluster has never seen yield
// ErrUnknownUser from the underlying engines; a cluster with every edge
// down yields ErrNoLiveEdge.
func (c *Cluster) MergeProfiles(userID string, now time.Time) (profile.Profile, error) {
	tops, _, err := c.MergeProfilesStats(userID, now)
	return tops, err
}

// MergeProfilesStats is MergeProfiles with per-round statistics: which
// node obfuscated, how many edges were skipped or failed replication,
// and how many out-of-region locations were dropped from the aggregate.
func (c *Cluster) MergeProfilesStats(userID string, now time.Time) (profile.Profile, MergeStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	var stats MergeStats
	live := make([]*Node, 0, len(c.nodes))
	excluded := make([]*Node, 0, 2)
	for _, n := range c.nodes {
		// An unreachable node the detector has not yet confirmed down is
		// excluded exactly like a marked-down one: the merge protocol
		// cannot wait on a dead endpoint, and the journal lets it catch up
		// on revival either way.
		if n.down.Load() || !n.Reachable() {
			stats.SkippedDown++
			excluded = append(excluded, n)
			continue
		}
		live = append(live, n)
	}
	if len(live) == 0 {
		return nil, stats, fmt.Errorf("%w: merge for %q with every edge down", ErrNoLiveEdge, userID)
	}
	stats.Live = len(live)

	partials := make([]profile.Profile, 0, len(live))
	seen := false
	for _, n := range live {
		part, err := n.Engine.PendingProfile(userID)
		switch {
		case errors.Is(err, core.ErrUnknownUser):
			partials = append(partials, nil) // this edge never saw the user
		case err != nil:
			return nil, stats, fmt.Errorf("edgecluster: partial profile at %s: %w", n.ID, err)
		default:
			seen = true
			partials = append(partials, part)
		}
	}
	if !seen {
		return nil, stats, fmt.Errorf("edgecluster: merge for %q: %w", userID, core.ErrUnknownUser)
	}

	var merged profile.Profile
	if len(live) == 1 {
		merged = partials[0]
	} else {
		var dropped int
		var err error
		merged, dropped, err = secagg.MergeProfiles(partials, c.cfg.MergeRegion, c.cfg.MergeCell, c.cfg.Seed)
		if err != nil {
			return nil, stats, fmt.Errorf("edgecluster: secure merge for %q: %w", userID, err)
		}
		// A stray check-in outside the aggregation region must not block
		// the user's merges forever: complete the round on the in-region
		// mass and surface the drop count instead of failing.
		if dropped > 0 {
			stats.Dropped = dropped
			if m := c.met.Load(); m != nil {
				m.mergeDropped.Add(uint64(dropped))
			}
		}
	}
	tops := merged.EtaFractionSet(c.cfg.EtaFraction)

	// Install at this round's obfuscator: the lowest-indexed LIVE node.
	// The obfuscator must be CURRENT before generating candidates: a node
	// revived in the instant between a round's snapshot and its health
	// flip can be live yet missing that round's entries, and obfuscating
	// from a stale table would re-obfuscate an already-protected top —
	// the exact longitudinal leak the shared table prevents. Replaying
	// the user's latest journal round first closes that window.
	obfuscator := live[0]
	stats.Obfuscator = obfuscator.ID
	if _, behind := obfuscator.lag[userID]; behind {
		if prev := c.journal[userID]; prev != nil {
			if err := c.applyRoundLocked(obfuscator, userID, prev, false); err != nil {
				return nil, stats, fmt.Errorf("edgecluster: catching obfuscator %s up: %w", obfuscator.ID, err)
			}
		}
	}
	if err := obfuscator.Engine.InstallTops(userID, tops, now); err != nil {
		return nil, stats, fmt.Errorf("edgecluster: installing tops at %s: %w", obfuscator.ID, err)
	}
	entries, err := obfuscator.Engine.Table(userID)
	if err != nil {
		return nil, stats, fmt.Errorf("edgecluster: reading table at %s: %w", obfuscator.ID, err)
	}

	// Journal the round BEFORE touching replicas: from here on the merged
	// state has one authoritative record, and any replica — including one
	// that fails right now — converges to it by replaying the journal.
	// The fingerprint chain computed here is the round's content address:
	// every replica proves its prefix against it, and the byte-identity
	// gate compares its final value.
	c.version++
	round := &mergeRound{version: c.version, tops: tops, entries: entries, at: now}
	round.prefix = make([]uint64, len(entries)+1)
	round.prefix[0] = core.FingerprintSeed
	for i := range entries {
		round.prefix[i+1] = core.ExtendFingerprint(round.prefix[i], entries[i:i+1])
	}
	c.encBuf = wire.Append(c.encBuf[:0], &wire.ReplDelta{
		UserID:  userID,
		Version: c.version,
		BaseFP:  core.FingerprintSeed,
		FullFP:  round.prefix[len(entries)],
		Entries: entries,
		Tops:    tops,
		At:      now,
	})
	round.snapshotBytes = len(c.encBuf)
	c.journal[userID] = round
	stats.Version = round.version
	delete(obfuscator.lag, userID)
	// Excluded nodes miss this round by construction; record the debt so
	// their revival catch-up walks exactly the users they fell behind on.
	for _, n := range excluded {
		n.lag[userID] = round.version
	}

	before := c.repl
	for _, n := range live[1:] {
		if err := c.applyRoundLocked(n, userID, round, true); err != nil {
			stats.ReplicaErrors++
			if m := c.met.Load(); m != nil {
				m.replicaErrors.Inc()
			}
		}
	}
	stats.DeltaBytes = c.repl.DeltaBytes - before.DeltaBytes
	stats.SnapshotBytes = c.repl.SnapshotBytes - before.SnapshotBytes
	stats.DeltaEntries = c.repl.Entries - before.Entries
	stats.Degraded = stats.SkippedDown > 0 || stats.ReplicaErrors > 0
	if m := c.met.Load(); m != nil {
		m.merges.Inc()
		if stats.Degraded {
			m.degradedMerges.Inc()
		}
	}
	return tops, stats, nil
}
