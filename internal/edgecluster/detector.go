package edgecluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/randx"
)

// The failure detector replaces the operator: instead of someone
// hand-calling MarkDown when an edge dies and MarkUp when it returns,
// every live edge pings a few pseudo-randomly chosen peers each tick
// (the SWIM idiom), and the aggregated probe outcomes drive the
// cluster's health state through a suspect → down → revive lifecycle.
// The probe schedule is seeded, so a chaos replay observes the same
// probe order every run — the same determinism contract the rest of the
// repo keeps.

// NodeHealth is the detector's belief about one edge.
type NodeHealth int8

const (
	// HealthAlive: probes are answered (or the node has not failed
	// enough consecutive ticks to be suspected).
	HealthAlive NodeHealth = iota
	// HealthSuspect: probes failed SuspectAfter consecutive ticks; the
	// node is re-probed every tick but not yet marked down.
	HealthSuspect
	// HealthDown: the suspicion was confirmed and the detector called
	// MarkDown; the node is re-probed every tick for revival.
	HealthDown
)

// String names the state for logs and chaos summaries.
func (h NodeHealth) String() string {
	switch h {
	case HealthAlive:
		return "alive"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	}
	return fmt.Sprintf("health(%d)", int8(h))
}

// Transition is one health-state change a Tick produced.
type Transition struct {
	Edge     int
	Node     string
	From, To NodeHealth
}

// DetectorConfig parameterises the ping-based failure detector.
type DetectorConfig struct {
	// Probes is how many pseudo-randomly chosen peers each live edge
	// pings per tick; ≤ 0 selects 2. Suspected and down nodes are
	// additionally probed every tick regardless, so confirmation and
	// revival converge deterministically once suspicion starts.
	Probes int
	// SuspectAfter is the number of consecutive failed ticks before an
	// alive node becomes suspect; ≤ 0 selects 2.
	SuspectAfter int
	// ConfirmAfter is the number of further failed ticks before a
	// suspect is confirmed down; ≤ 0 selects 1.
	ConfirmAfter int
	// Seed drives the probe target schedule; derived from the cluster
	// seed when zero.
	Seed uint64
}

// Detector runs ping-based decentralized failure detection over a
// cluster. Construct one with Cluster.NewDetector, then either call
// Tick from the deployment's own cadence (simulations, tests) or Run it
// on an interval. Tick is safe for concurrent use with the cluster's
// serving and merge paths.
type Detector struct {
	c   *Cluster
	cfg DetectorConfig
	rnd *randx.Rand

	mu    sync.Mutex
	state []NodeHealth
	// fails counts consecutive ticks each node failed at least one
	// probe; any answered probe resets it.
	fails []int
}

// NewDetector builds a detector over the cluster's current membership.
func (c *Cluster) NewDetector(cfg DetectorConfig) *Detector {
	if cfg.Probes <= 0 {
		cfg.Probes = 2
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.ConfirmAfter <= 0 {
		cfg.ConfirmAfter = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = c.cfg.Seed
	}
	return &Detector{
		c:     c,
		cfg:   cfg,
		rnd:   randx.New(cfg.Seed, 0xD67EC7),
		state: make([]NodeHealth, len(c.nodes)),
		fails: make([]int, len(c.nodes)),
	}
}

// Cfg returns the detector's resolved configuration, with defaults
// applied — callers sizing tick budgets read thresholds from here.
func (d *Detector) Cfg() DetectorConfig { return d.cfg }

// Health returns the detector's current belief about edge i.
func (d *Detector) Health(i int) NodeHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.state) {
		return HealthAlive
	}
	return d.state[i]
}

// Tick runs one probe round and applies the resulting health
// transitions to the cluster:
//
//   - every live edge pings cfg.Probes pseudo-random peers; suspected
//     and down edges are pinged every tick on top,
//   - an edge failing probes SuspectAfter consecutive ticks becomes
//     suspect, and ConfirmAfter failed ticks later is confirmed down
//     (MarkDown — routing and merges already skipped it passively via
//     reachability, now the belief matches),
//   - a suspected edge that answers again is cleared,
//   - a down edge that answers again is revived (MarkUp), which
//     catches its tables up from the journal before it takes traffic.
//
// The returned transitions report what changed this tick. The error
// surfaces revival catch-up failures; the revived node stays live and
// retryable via Reconcile, matching MarkUp.
func (d *Detector) Tick() ([]Transition, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	nodes := d.c.nodes
	met := d.c.met.Load()

	// Adopt external MarkDowns: if an operator (or another detector
	// instance) downed a node, probing proceeds from that belief so an
	// answering node is revived rather than fought over.
	for i, n := range nodes {
		if n.Down() && d.state[i] != HealthDown {
			d.state[i] = HealthDown
			d.fails[i] = d.cfg.SuspectAfter + d.cfg.ConfirmAfter
		}
	}

	// Choose this tick's probe targets. Iteration is index-ordered and
	// the PRNG is seeded, so the schedule is deterministic.
	probed := make([]bool, len(nodes))
	for i, n := range nodes {
		if n.Down() || !n.Reachable() {
			continue // dead or confirmed-down edges do not probe
		}
		for p := 0; p < d.cfg.Probes && len(nodes) > 1; p++ {
			t := d.rnd.IntN(len(nodes) - 1)
			if t >= i {
				t++ // skip self
			}
			probed[t] = true
		}
	}
	// Suspected and down nodes are always re-probed: confirmation and
	// revival must not wait on the random schedule happening to pick
	// them.
	for i := range nodes {
		if d.state[i] != HealthAlive {
			probed[i] = true
		}
	}

	var transitions []Transition
	var firstErr error
	for i, n := range nodes {
		if !probed[i] {
			continue
		}
		if met != nil {
			met.probes.Inc()
		}
		if n.Reachable() {
			d.fails[i] = 0
			switch d.state[i] {
			case HealthSuspect:
				d.state[i] = HealthAlive
				transitions = append(transitions, Transition{Edge: i, Node: n.ID, From: HealthSuspect, To: HealthAlive})
				if met != nil {
					met.nodesSuspect.Dec()
				}
			case HealthDown:
				// The endpoint answers again: revive. MarkUp replays the
				// journal for lagging users before the node takes traffic.
				if err := d.c.MarkUp(i); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("edgecluster: reviving %s: %w", n.ID, err)
				}
				d.state[i] = HealthAlive
				transitions = append(transitions, Transition{Edge: i, Node: n.ID, From: HealthDown, To: HealthAlive})
				if met != nil {
					met.autoRevives.Inc()
				}
			}
			continue
		}
		if met != nil {
			met.probeFailures.Inc()
		}
		d.fails[i]++
		switch d.state[i] {
		case HealthAlive:
			if d.fails[i] >= d.cfg.SuspectAfter {
				d.state[i] = HealthSuspect
				transitions = append(transitions, Transition{Edge: i, Node: n.ID, From: HealthAlive, To: HealthSuspect})
				if met != nil {
					met.nodesSuspect.Inc()
				}
			}
		case HealthSuspect:
			if d.fails[i] >= d.cfg.SuspectAfter+d.cfg.ConfirmAfter {
				d.state[i] = HealthDown
				_ = d.c.MarkDown(i)
				transitions = append(transitions, Transition{Edge: i, Node: n.ID, From: HealthSuspect, To: HealthDown})
				if met != nil {
					met.nodesSuspect.Dec()
					met.autoDowns.Inc()
				}
			}
		}
	}
	return transitions, firstErr
}

// Run ticks the detector on an interval until ctx is cancelled,
// delivering transitions to onChange (which may be nil). Deployments
// that want their own cadence, logging, or error handling call Tick
// directly instead.
func (d *Detector) Run(ctx context.Context, interval time.Duration, onChange func([]Transition, error)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			trs, err := d.Tick()
			if onChange != nil && (len(trs) > 0 || err != nil) {
				onChange(trs, err)
			}
		}
	}
}
