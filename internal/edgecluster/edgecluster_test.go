package edgecluster

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

func testClusterConfig(t *testing.T, coverage []geo.Circle) Config {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Engine:      core.Config{Mechanism: mech, NomadicMechanism: nomadic},
		Coverage:    coverage,
		MergeRegion: geo.BBox{MinX: -50_000, MinY: -50_000, MaxX: 50_000, MaxY: 50_000},
		Seed:        1,
	}
}

func threeEdges() []geo.Circle {
	return []geo.Circle{
		{Center: geo.Point{X: 0, Y: 0}, Radius: 10_000},
		{Center: geo.Point{X: 20_000, Y: 0}, Radius: 10_000},
		{Center: geo.Point{X: 0, Y: 20_000}, Radius: 10_000},
	}
}

func TestNewValidation(t *testing.T) {
	cfg := testClusterConfig(t, threeEdges())

	bad := cfg
	bad.Coverage = nil
	if _, err := New(bad); err == nil {
		t.Error("no coverage expected error")
	}

	bad = cfg
	bad.Coverage = []geo.Circle{{Radius: 0}}
	if _, err := New(bad); err == nil {
		t.Error("zero-radius coverage expected error")
	}

	bad = cfg
	bad.MergeRegion = geo.BBox{}
	if _, err := New(bad); err == nil {
		t.Error("degenerate region expected error")
	}

	bad = cfg
	bad.Engine = core.Config{}
	if _, err := New(bad); err == nil {
		t.Error("invalid engine config expected error")
	}

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 3 {
		t.Errorf("nodes = %d", len(c.Nodes()))
	}
}

func TestRouting(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	tests := []struct {
		pos  geo.Point
		want string
	}{
		{geo.Point{X: 100, Y: 100}, "edge-00"},
		{geo.Point{X: 19_000, Y: 500}, "edge-01"},
		{geo.Point{X: 500, Y: 19_000}, "edge-02"},
	}
	for _, tt := range tests {
		node, err := c.Report("u", tt.pos, now)
		if err != nil {
			t.Fatalf("Report(%v): %v", tt.pos, err)
		}
		if node != tt.want {
			t.Errorf("Report(%v) routed to %s, want %s", tt.pos, node, tt.want)
		}
	}
	if _, err := c.Report("u", geo.Point{X: 40_000, Y: 40_000}, now); !errors.Is(err, ErrNoCoverage) {
		t.Errorf("uncovered report: %v", err)
	}
	if _, _, err := c.Request("u", geo.Point{X: 40_000, Y: 40_000}); !errors.Is(err, ErrNoCoverage) {
		t.Errorf("uncovered request: %v", err)
	}
}

// TestRoamingUserMerge is the package's core scenario: a user splits
// check-ins across two edges; the secure merge recovers the combined top
// set and both edges answer from the SAME permanent candidates.
func TestRoamingUserMerge(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 100, Y: 100}    // covered by edge-00
	work := geo.Point{X: 19_500, Y: 100} // covered by edge-01
	rnd := randx.New(4, 4)
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	at := base
	for i := 0; i < 300; i++ {
		at = at.Add(2 * time.Hour)
		pos := home
		if i%3 == 0 {
			pos = work
		}
		if _, err := c.Report("roamer", pos.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}

	tops, err := c.MergeProfiles("roamer", at)
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) < 2 {
		t.Fatalf("merged tops = %d, want >= 2 (home + work)", len(tops))
	}
	// Home has ~200 visits, work ~100; ranks must reflect that, and the
	// merged locations sit within grid resolution of the truth.
	if d := tops[0].Loc.Dist(home); d > 80 {
		t.Errorf("merged top-1 %g m from home", d)
	}
	if d := tops[1].Loc.Dist(work); d > 80 {
		t.Errorf("merged top-2 %g m from work", d)
	}

	// The replication invariant: both covering edges answer from the
	// same permanent candidate set.
	entries0, err := c.Nodes()[0].Engine.Table("roamer")
	if err != nil {
		t.Fatal(err)
	}
	entries1, err := c.Nodes()[1].Engine.Table("roamer")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries0) == 0 || len(entries0) != len(entries1) {
		t.Fatalf("table sizes differ: %d vs %d", len(entries0), len(entries1))
	}
	allowed := make(map[geo.Point]bool)
	for _, e := range entries0 {
		for _, cand := range e.Candidates {
			allowed[cand] = true
		}
	}
	for _, e := range entries1 {
		for _, cand := range e.Candidates {
			if !allowed[cand] {
				t.Fatalf("edge-01 has candidate %v that edge-00 lacks — independent obfuscation!", cand)
			}
		}
	}

	// Requests at either edge return only permanent candidates.
	for i := 0; i < 50; i++ {
		out, fromTable, err := c.Request("roamer", home)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTable || !allowed[out] {
			t.Fatalf("home request escaped the shared set (fromTable=%v)", fromTable)
		}
		out, fromTable, err = c.Request("roamer", work)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTable || !allowed[out] {
			t.Fatalf("work request escaped the shared set (fromTable=%v)", fromTable)
		}
	}
}

func TestMergeUnknownUser(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MergeProfiles("ghost", time.Now()); !errors.Is(err, core.ErrUnknownUser) {
		t.Errorf("merge unknown user: %v", err)
	}
}

func TestSingleEdgeClusterMergesWithoutSecagg(t *testing.T) {
	cfg := testClusterConfig(t, []geo.Circle{{Center: geo.Point{}, Radius: 10_000}})
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd := randx.New(9, 9)
	at := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	home := geo.Point{X: 50, Y: 50}
	for i := 0; i < 100; i++ {
		at = at.Add(time.Hour)
		if _, err := c.Report("solo", home.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	tops, err := c.MergeProfiles("solo", at)
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) == 0 || tops[0].Loc.Dist(home) > 20 {
		t.Errorf("single-edge merge tops = %+v", tops)
	}
}

// TestMergeIdempotentCandidates: a second merge round must not
// re-obfuscate already-protected top locations on any edge.
func TestMergeIdempotentCandidates(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	rnd := randx.New(5, 6)
	home := geo.Point{X: 200, Y: 200}
	at := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	feed := func() {
		for i := 0; i < 120; i++ {
			at = at.Add(time.Hour)
			if _, err := c.Report("stable", home.Add(rnd.GaussianPolar(10)), at); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed()
	if _, err := c.MergeProfiles("stable", at); err != nil {
		t.Fatal(err)
	}
	before, err := c.Nodes()[0].Engine.Table("stable")
	if err != nil {
		t.Fatal(err)
	}
	feed()
	if _, err := c.MergeProfiles("stable", at); err != nil {
		t.Fatal(err)
	}
	after, err := c.Nodes()[0].Engine.Table("stable")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("second merge grew the table: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Top != after[i].Top {
			t.Fatalf("entry %d top changed", i)
		}
		for j := range before[i].Candidates {
			if before[i].Candidates[j] != after[i].Candidates[j] {
				t.Fatalf("entry %d candidate %d re-obfuscated", i, j)
			}
		}
	}
}

func BenchmarkClusterMerge(b *testing.B) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Engine:      core.Config{Mechanism: mech, NomadicMechanism: mech},
		Coverage:    threeEdges(),
		MergeRegion: geo.BBox{MinX: -50_000, MinY: -50_000, MaxX: 50_000, MaxY: 50_000},
		MergeCell:   200,
		Seed:        1,
	}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rnd := randx.New(1, 1)
	at := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		at = at.Add(time.Hour)
		pos := geo.Point{X: 100, Y: 100}
		if i%3 == 0 {
			pos = geo.Point{X: 19_500, Y: 100}
		}
		if _, err := c.Report("bench", pos.Add(rnd.GaussianPolar(10)), at); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MergeProfiles("bench", at); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFailoverTracePropagation checks that a trace started by the caller
// flows through the cluster's failover routing into the engine: the
// finished trace's ring record carries a failover span (opened because
// the preferred edge was down) and the engine's apply span beneath it,
// all under the caller's trace ID.
func TestFailoverTracePropagation(t *testing.T) {
	// Two overlapping disks, so a point near edge-00's centre still has
	// edge-01 as a failover target.
	coverage := []geo.Circle{
		{Center: geo.Point{X: 0, Y: 0}, Radius: 10_000},
		{Center: geo.Point{X: 5_000, Y: 0}, Radius: 10_000},
	}
	c, err := New(testClusterConfig(t, coverage))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	tracer := tracing.New(7)
	tracer.Instrument(reg)

	pos := geo.Point{X: 1_000, Y: 0}
	now := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	rnd := randx.New(3, 3)
	for i := 0; i < 50; i++ {
		now = now.Add(time.Hour)
		ctx, root := tracer.StartTrace(context.Background(), "cluster.report")
		_, err := c.ReportCtx(ctx, "u", pos.Add(rnd.GaussianPolar(10)), now)
		root.End()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Merging replicates the user's table to every edge, so the failover
	// target can answer the request below.
	if _, err := c.MergeProfiles("u", now); err != nil {
		t.Fatal(err)
	}

	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	ctx, root := tracer.StartTrace(context.Background(), "cluster.request")
	wantID, _ := tracing.ContextTraceID(ctx)
	if _, _, err := c.RequestCtx(ctx, "u", pos); err != nil {
		t.Fatal(err)
	}
	root.End()

	if got := reg.Counter("cluster_failovers_total", "").Value(); got != 1 {
		t.Fatalf("cluster_failovers_total = %d, want 1", got)
	}
	var rec *tracing.TraceRecord
	for _, r := range tracer.SlowestTraces(10) {
		if r.Name == "cluster.request" {
			rec = &r
			break
		}
	}
	if rec == nil {
		t.Fatal("cluster.request trace not in the ring")
	}
	if rec.TraceID != wantID {
		t.Errorf("ring trace ID %s, want the caller's %s", rec.TraceID, wantID)
	}
	stages := map[string]tracing.SpanRecord{}
	for _, sp := range rec.Spans {
		stages[sp.Stage] = sp
	}
	fo, ok := stages["failover"]
	if !ok {
		t.Fatalf("no failover span in %+v", rec.Spans)
	}
	apply, ok := stages["apply"]
	if !ok {
		t.Fatalf("no apply span in %+v", rec.Spans)
	}
	// The engine's apply span must be nested under the failover span, not
	// a sibling: the failed-over delivery is what invoked the engine.
	if apply.Parent != fo.SpanID {
		t.Errorf("apply span parent = %s, want the failover span %s", apply.Parent, fo.SpanID)
	}
	if spans := tracer.ActiveSpans(); spans != 0 {
		t.Errorf("active spans after traces ended = %d, want 0", spans)
	}
}
