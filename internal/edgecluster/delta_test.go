package edgecluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/wal"
)

// TestDeltaReplicationScalesWithChange is the regression for the
// snapshot-replication cost bug: replicated bytes per merge round must
// scale with the entries the round ADDED, not with the user's total
// table size. Each phase grows every user's table by about one top; the
// delta frames must stay flat while the would-be snapshot cost keeps
// growing with the accumulated table.
func TestDeltaReplicationScalesWithChange(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	const users = 6
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)

	// Jitter is drawn from a per-phase stream so a phase can be replayed
	// point-for-point: identical visits yield identical η-tops, which is
	// what makes the zero-change round below truly zero-change.
	visit := func(rnd *randx.Rand, user int, pos geo.Point, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			at = at.Add(time.Hour)
			if _, err := c.Report(fmt.Sprintf("u%02d", user), pos.Add(rnd.GaussianPolar(10)), at); err != nil {
				t.Fatal(err)
			}
		}
	}
	phaseRnd := func(phase int) *randx.Rand { return randx.New(11, 0xDE17A+uint64(phase)) }
	mergeAll := func() (delta, snapshot, entries int) {
		t.Helper()
		for u := 0; u < users; u++ {
			_, stats, err := c.MergeProfilesStats(fmt.Sprintf("u%02d", u), at)
			if err != nil {
				t.Fatalf("merge u%02d: %v", u, err)
			}
			delta += stats.DeltaBytes
			snapshot += stats.SnapshotBytes
			entries += stats.DeltaEntries
		}
		return delta, snapshot, entries
	}
	spot := func(u, phase int) geo.Point {
		return geo.Point{X: float64(u)*700 + float64(phase)*4000, Y: float64(u) * 350}
	}

	// Phase 0: tables are born. The replicas hold nothing, so delta and
	// snapshot coincide (the delta IS the full table).
	rnd := phaseRnd(0)
	for u := 0; u < users; u++ {
		visit(rnd, u, spot(u, 0), 20)
	}
	d0, s0, e0 := mergeAll()
	if e0 == 0 {
		t.Fatal("phase 0 shipped no entries — merges installed nothing")
	}
	if d0 != s0 {
		t.Errorf("phase 0: fresh replicas should cost snapshot == delta, got delta=%d snapshot=%d", d0, s0)
	}

	// Phases 1..3: each user's profile gains one new top per phase. The
	// snapshot cost grows with the whole accumulated table; the delta
	// cost must keep paying only for the new entries.
	var dPrev int
	for phase := 1; phase <= 3; phase++ {
		rnd = phaseRnd(phase)
		for u := 0; u < users; u++ {
			visit(rnd, u, spot(u, phase), 20)
		}
		d, s, e := mergeAll()
		if e == 0 {
			t.Fatalf("phase %d shipped no entries", phase)
		}
		if e > e0 {
			t.Errorf("phase %d shipped %d entries > the %d a whole newborn table cost", phase, e, e0)
		}
		if s <= d {
			t.Errorf("phase %d: snapshot bytes %d not above delta bytes %d despite accumulated tables", phase, s, d)
		}
		if phase == 3 {
			if float64(s) < 2*float64(d) {
				t.Errorf("phase 3: snapshot/delta ratio %.2f < 2 — deltas not proportional to change (delta=%d snapshot=%d)",
					float64(s)/float64(d), d, s)
			}
		}
		dPrev = d
	}

	// A round that adds NOTHING — phase 3 replayed point-for-point, so
	// the η-tops land exactly where the table already protects them —
	// ships zero entries: the sharpest form of "bytes follow change".
	rnd = phaseRnd(3)
	for u := 0; u < users; u++ {
		visit(rnd, u, spot(u, 3), 20)
	}
	d, s, e := mergeAll()
	if e != 0 {
		t.Errorf("unchanged-tops round shipped %d entries, want 0", e)
	}
	if d >= s {
		t.Errorf("unchanged-tops round: delta %d >= snapshot %d", d, s)
	}
	if d >= dPrev {
		t.Errorf("unchanged-tops round delta bytes %d >= growing-phase delta %d", d, dPrev)
	}

	// The cumulative accounting agrees with telemetry-visible stats.
	repl := c.ReplStats()
	if repl.DeltaBytes >= repl.SnapshotBytes {
		t.Errorf("cumulative: delta %d >= snapshot %d", repl.DeltaBytes, repl.SnapshotBytes)
	}
	if repl.Fallbacks != 0 {
		t.Errorf("healthy cluster took %d snapshot fallbacks", repl.Fallbacks)
	}
}

// TestLagMapCompaction is the regression for the applied-map leak: the
// per-node replication bookkeeping must hold entries only for users a
// node is actually behind on, so long-lived healthy clusters no longer
// grow a map entry per user per node forever.
func TestLagMapCompaction(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	rnd := randx.New(5, 0x1A6)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	const users = 8
	mergeAll := func() {
		t.Helper()
		for u := 0; u < users; u++ {
			if _, err := c.MergeProfiles(fmt.Sprintf("u%02d", u), at); err != nil {
				t.Fatalf("merge u%02d: %v", u, err)
			}
		}
	}
	visitAll := func() {
		t.Helper()
		for u := 0; u < users; u++ {
			for i := 0; i < 15; i++ {
				at = at.Add(time.Hour)
				pos := geo.Point{X: float64(u) * 600, Y: 200}.Add(rnd.GaussianPolar(10))
				if _, err := c.Report(fmt.Sprintf("u%02d", u), pos, at); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Healthy rounds leave every lag map empty: nobody is behind.
	visitAll()
	mergeAll()
	for i := range c.Nodes() {
		if got := c.NodeLag(i); got != 0 {
			t.Errorf("healthy cluster: edge %d lag map holds %d entries, want 0", i, got)
		}
	}

	// A down node accrues exactly one entry per user merged without it…
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	visitAll()
	mergeAll()
	if got := c.NodeLag(2); got != users {
		t.Errorf("down edge lag = %d, want %d", got, users)
	}
	for _, i := range []int{0, 1} {
		if got := c.NodeLag(i); got != 0 {
			t.Errorf("live edge %d lag = %d, want 0", i, got)
		}
	}

	// …and revival compacts them away again.
	if err := c.MarkUp(2); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeLag(2); got != 0 {
		t.Errorf("revived edge lag = %d, want 0", got)
	}
	fp0 := fingerprint(t, c.Nodes()[0], "u00")
	if fp := fingerprint(t, c.Nodes()[2], "u00"); fp != fp0 {
		t.Errorf("revived edge fingerprint %016x != obfuscator %016x", fp, fp0)
	}

	// A replica that crashes mid-apply keeps its entry until a
	// Reconcile retries it.
	boom := fmt.Errorf("injected")
	c.Nodes()[1].SetFailApply(func(string) error { return boom })
	visitAll()
	mergeAll()
	if got := c.NodeLag(1); got != users {
		t.Errorf("failing replica lag = %d, want %d", got, users)
	}
	c.Nodes()[1].SetFailApply(nil)
	if err := c.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeLag(1); got != 0 {
		t.Errorf("reconciled replica lag = %d, want 0", got)
	}
}

// TestRestartNodeSkipsLocallyHeldRounds is the regression for the
// restart-replays-everything bug: a node whose own WAL already holds
// every journal round must ship ZERO replication traffic on restart,
// and a node that missed rounds while down must receive only the
// missing suffix, not the whole journal.
func TestRestartNodeSkipsLocallyHeldRounds(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	n0 := c.Nodes()[0]
	if _, err := n0.Engine.Recover(st); err != nil {
		t.Fatal(err)
	}

	rnd := randx.New(21, 0xFEED)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	users := []string{"alpha", "beta", "gamma"}
	visit := func(user string, pos geo.Point, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			at = at.Add(time.Hour)
			if _, err := c.Report(user, pos.Add(rnd.GaussianPolar(10)), at); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, u := range users {
		visit(u, geo.Point{X: float64(i) * 800, Y: 100}, 20)
		if _, err := c.MergeProfiles(u, at); err != nil {
			t.Fatal(err)
		}
	}

	// Restart with a store holding everything: the audit must prove each
	// user current by fingerprint and ship nothing at all.
	before := c.ReplStats()
	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(0, st2); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	after := c.ReplStats()
	if after.Entries != before.Entries {
		t.Errorf("restart of a fully recovered node shipped %d entries, want 0", after.Entries-before.Entries)
	}
	if after.DeltaBytes != before.DeltaBytes {
		t.Errorf("restart of a fully recovered node shipped %d bytes, want 0", after.DeltaBytes-before.DeltaBytes)
	}

	// Crash again, merge one round it misses, restart: only that round's
	// new entries travel — not the three users' whole tables.
	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	visit("alpha", geo.Point{X: 6_000, Y: 100}, 20)
	_, missedStats, err := c.MergeProfilesStats("alpha", at)
	if err != nil {
		t.Fatal(err)
	}
	if missedStats.SkippedDown == 0 {
		t.Fatal("merge did not run degraded — test setup broken")
	}

	before = c.ReplStats()
	st3, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(0, st3); err != nil {
		t.Fatalf("second RestartNode: %v", err)
	}
	after = c.ReplStats()
	shipped := after.Entries - before.Entries

	// The revived node needed only alpha's new entries. Its own WAL held
	// everything else, including alpha's pre-crash table.
	aliveTable, err := c.Nodes()[1].Engine.Table("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if shipped == 0 {
		t.Error("restart shipped nothing despite a missed round")
	}
	if shipped >= len(aliveTable) {
		t.Errorf("restart shipped %d entries — at least alpha's whole table (%d); wanted only the missed suffix", shipped, len(aliveTable))
	}
	if after.Fallbacks != before.Fallbacks {
		t.Errorf("restart took %d snapshot fallbacks; recovered state should prove its prefix", after.Fallbacks-before.Fallbacks)
	}
	fpAlive := fingerprint(t, c.Nodes()[1], "alpha")
	if fp := fingerprint(t, c.Nodes()[0], "alpha"); fp != fpAlive {
		t.Errorf("restarted node fingerprint %016x != peer %016x", fp, fpAlive)
	}
}

// TestSnapshotFallbackOnDivergence: a replica whose table is NOT a
// prefix of the obfuscator's (foreign entries, e.g. a corrupt or
// misattached store) fails the content proof and falls back to the full
// snapshot instead of shipping a suffix that would silently misapply.
func TestSnapshotFallbackOnDivergence(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	rnd := randx.New(8, 0xFA11)
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		at = at.Add(time.Hour)
		if _, err := c.Report("u", geo.Point{X: 100, Y: 100}.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	// Poison replica 1 with an entry the obfuscator never produced.
	foreign := []core.TableEntry{{
		Top:        geo.Point{X: 40_000, Y: 40_000},
		Candidates: []geo.Point{{X: 40_001, Y: 40_002}},
		CreatedAt:  at,
	}}
	if err := c.Nodes()[1].Engine.ImportTable("u", foreign); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MergeProfiles("u", at); err != nil {
		t.Fatal(err)
	}
	if got := c.ReplStats().Fallbacks; got == 0 {
		t.Error("diverged replica did not trigger a snapshot fallback")
	}
}

// TestChaosDuringConcurrentMerges kills and auto-revives an edge WHILE
// merge rounds, reports, and requests are running concurrently, at shard
// counts {1,8}. All health transitions are driven by the failure
// detector — the test never calls MarkDown/MarkUp. After the dust
// settles, every live edge must hold byte-identical tables.
func TestChaosDuringConcurrentMerges(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := testClusterConfig(t, overlappingEdges())
			cfg.Engine.Shards = shards
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			det := c.NewDetector(DetectorConfig{Probes: 3, SuspectAfter: 1, ConfirmAfter: 1, Seed: 42})
			const users = 5
			userID := func(u int) string { return fmt.Sprintf("u%02d", u) }

			// Seed every user with a merged profile before the churn starts
			// so the final byte-identity sweep always has tables to compare.
			seedRnd := randx.New(42, 0x5EED)
			seedAt := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
			for u := 0; u < users; u++ {
				for i := 0; i < 15; i++ {
					seedAt = seedAt.Add(time.Hour)
					pos := geo.Point{X: float64(u) * 500, Y: 300}.Add(seedRnd.GaussianPolar(10))
					if _, err := c.Report(userID(u), pos, seedAt); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := c.MergeProfiles(userID(u), seedAt); err != nil {
					t.Fatal(err)
				}
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Traffic: three workers report and request under churn. Routing
			// errors are acceptable mid-kill (ErrNoLiveEdge windows); the
			// engine must simply never corrupt state (-race guards the rest).
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rnd := randx.New(77, uint64(w)+1)
					at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						u := userID(i % users)
						pos := geo.Point{X: float64(i%users) * 500, Y: 300}.Add(rnd.GaussianPolar(10))
						at = at.Add(time.Minute)
						_, _ = c.Report(u, pos, at)
						_, _, _ = c.Request(u, pos)
						// Pace the firehose: unthrottled workers grow pending
						// windows faster than merges drain them, and the test
						// is about churn under failure, not about backlog.
						time.Sleep(200 * time.Microsecond)
					}
				}(w)
			}
			// Merges: one goroutine merges users round-robin the whole time.
			wg.Add(1)
			go func() {
				defer wg.Done()
				at := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					at = at.Add(time.Minute)
					_, _, _ = c.MergeProfilesStats(userID(i%users), at)
					time.Sleep(100 * time.Microsecond)
				}
			}()

			// Chaos, detector-driven: kill an edge, let probes confirm it
			// down, revive the endpoint, let probes bring it back.
			var downs, revives int
			for cycle := 0; cycle < 3; cycle++ {
				victim := 1 + cycle%2
				time.Sleep(5 * time.Millisecond) // let traffic and merges interleave
				if err := c.SetReachable(victim, false); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 10 && !c.Nodes()[victim].Down(); i++ {
					time.Sleep(time.Millisecond)
					trs, _ := det.Tick()
					for _, tr := range trs {
						if tr.To == HealthDown {
							downs++
						}
					}
				}
				if !c.Nodes()[victim].Down() {
					t.Fatalf("cycle %d: detector never confirmed edge %d down", cycle, victim)
				}
				time.Sleep(5 * time.Millisecond) // degraded window under load
				if err := c.SetReachable(victim, true); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 10 && c.Nodes()[victim].Down(); i++ {
					time.Sleep(time.Millisecond)
					trs, err := det.Tick()
					if err != nil {
						t.Logf("revival tick: %v (retried by later ticks/reconcile)", err)
					}
					for _, tr := range trs {
						if tr.From == HealthDown && tr.To == HealthAlive {
							revives++
						}
					}
				}
				if c.Nodes()[victim].Down() {
					t.Fatalf("cycle %d: detector never revived edge %d", cycle, victim)
				}
			}
			close(stop)
			wg.Wait()

			if downs == 0 || revives == 0 {
				t.Fatalf("detector transitions: %d downs, %d revives; want both > 0", downs, revives)
			}

			// Quiesce: retry any replica that failed an apply mid-kill, then
			// run one clean merge per user so every edge sits on the head.
			if err := c.Reconcile(); err != nil {
				t.Fatalf("reconcile: %v", err)
			}
			at := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
			for u := 0; u < users; u++ {
				if _, err := c.MergeProfiles(userID(u), at); err != nil {
					t.Fatalf("final merge %s: %v", userID(u), err)
				}
			}
			for u := 0; u < users; u++ {
				fp0 := fingerprint(t, c.Nodes()[0], userID(u))
				for _, n := range c.Nodes()[1:] {
					if fp := fingerprint(t, n, userID(u)); fp != fp0 {
						t.Errorf("%s: %s fingerprint %016x != edge-00 %016x", userID(u), n.ID, fp, fp0)
					}
				}
			}
			for i := range c.Nodes() {
				if got := c.NodeLag(i); got != 0 {
					t.Errorf("edge %d still lagging %d users after reconcile", i, got)
				}
			}
		})
	}
}

// FuzzDeltaCatchUpEquivalence drives random visit/merge/outage
// schedules and pins the delta ≡ snapshot semantics end to end: a
// replica that converged through content-addressed deltas (including
// downtime catch-ups) must be byte-identical to a fresh engine handed
// the obfuscator's full table in one snapshot import.
func FuzzDeltaCatchUpEquivalence(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		cfg := testClusterConfig(t, overlappingEdges())
		cfg.Seed = seed | 1
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rnd := randx.New(seed, 0xE07)
		at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
		const user = "fz"
		for phase := 0; phase < 3; phase++ {
			if rnd.IntN(2) == 0 {
				_ = c.MarkDown(1 + rnd.IntN(2))
			}
			base := geo.Point{X: float64(rnd.IntN(10_000)) - 5_000, Y: float64(rnd.IntN(10_000)) - 5_000}
			for i := 0; i < 12+rnd.IntN(10); i++ {
				at = at.Add(time.Hour)
				if _, err := c.Report(user, base.Add(rnd.GaussianPolar(10)), at); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := c.MergeProfiles(user, at); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < 3; i++ {
				if c.Nodes()[i].Down() {
					if err := c.MarkUp(i); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := c.Reconcile(); err != nil {
			t.Fatal(err)
		}
		fp0 := fingerprint(t, c.Nodes()[0], user)
		for _, n := range c.Nodes()[1:] {
			if fp := fingerprint(t, n, user); fp != fp0 {
				t.Fatalf("delta-converged %s fingerprint %016x != obfuscator %016x", n.ID, fp, fp0)
			}
		}
		// Snapshot equivalence: one full import into a cold engine lands
		// on the same digest the delta path reached.
		entries, err := c.Nodes()[0].Engine.Table(user)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := core.NewEngine(c.Nodes()[0].Engine.Config())
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ImportTable(user, entries); err != nil {
			t.Fatal(err)
		}
		snapFP, err := fresh.TableFingerprint(user)
		if err != nil {
			t.Fatal(err)
		}
		if snapFP != fp0 {
			t.Fatalf("snapshot import fingerprint %016x != delta-replicated %016x", snapFP, fp0)
		}
	})
}
