package edgecluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
)

// TestReportBatchRouting drives one batch spanning several coverage
// areas through the cluster and checks that every item lands on the
// edge Report would have picked, with per-item errors (not a dropped
// batch) for uncovered positions.
func TestReportBatchRouting(t *testing.T) {
	c, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	items := []core.BatchReport{
		{UserID: "u", Pos: geo.Point{X: 100, Y: 100}, At: now},                            // edge-00
		{UserID: "u", Pos: geo.Point{X: 19_000, Y: 500}, At: now.Add(time.Minute)},        // edge-01
		{UserID: "u", Pos: geo.Point{X: 40_000, Y: 40_000}, At: now.Add(2 * time.Minute)}, // uncovered
		{UserID: "v", Pos: geo.Point{X: 500, Y: 19_000}, At: now},                         // edge-02
	}
	errs := c.ReportBatch(items)
	if len(errs) != 1 || errs[0].Index != 2 {
		t.Fatalf("errs = %+v, want one error at index 2", errs)
	}
	if !errors.Is(errs[0].Err, ErrNoCoverage) {
		t.Errorf("uncovered item error = %v, want ErrNoCoverage", errs[0].Err)
	}
	// Each edge recorded exactly the check-ins that route to it.
	wantUsers := []int{1, 1, 1} // u on edge-00, u on edge-01, v on edge-02
	for i, n := range c.Nodes() {
		if got := n.Engine.Stats().Users; got != wantUsers[i] {
			t.Errorf("%s users = %d, want %d", n.ID, got, wantUsers[i])
		}
	}
}

// TestReportBatchFailover marks the nearest edge down and expects the
// batch items to fail over to the next-nearest covering live edge,
// exactly like single Report calls would.
func TestReportBatchFailover(t *testing.T) {
	c, err := New(testClusterConfig(t, overlappingEdges()))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	pos := geo.Point{X: 200, Y: 100} // nearest: edge-00, then edge-01
	if err := c.MarkDown(0); err != nil {
		t.Fatal(err)
	}
	items := []core.BatchReport{
		{UserID: "u", Pos: pos, At: now},
		{UserID: "u", Pos: pos, At: now.Add(time.Minute)},
	}
	if errs := c.ReportBatch(items); len(errs) != 0 {
		t.Fatalf("errs = %+v", errs)
	}
	if got := c.Nodes()[1].Engine.Stats().Users; got != 1 {
		t.Errorf("edge-01 users = %d, want 1 (failover target)", got)
	}
	if got := c.Nodes()[0].Engine.Stats().Users; got != 0 {
		t.Errorf("edge-00 users = %d, want 0 (marked down)", got)
	}

	// All covering edges down: every item errors, none vanish silently.
	if err := c.MarkDown(1); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	errs := c.ReportBatch(items)
	if len(errs) != len(items) {
		t.Fatalf("all-down errs = %d, want %d", len(errs), len(items))
	}
	for _, e := range errs {
		if !errors.Is(e.Err, ErrNoLiveEdge) {
			t.Errorf("error at %d = %v, want ErrNoLiveEdge", e.Index, e.Err)
		}
	}
}

// TestReportBatchMatchesReport checks byte-identity: a batch fed to the
// cluster leaves every engine in exactly the state that the same
// check-ins delivered one Report at a time would.
func TestReportBatchMatchesReport(t *testing.T) {
	single, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := New(testClusterConfig(t, threeEdges()))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	centers := []geo.Point{{X: 0, Y: 0}, {X: 20_000, Y: 0}, {X: 0, Y: 20_000}}
	var items []core.BatchReport
	for i := 0; i < 36; i++ {
		pos := centers[i%3].Add(geo.Point{X: float64(i * 10), Y: float64(i % 7)})
		items = append(items, core.BatchReport{UserID: "roamer", Pos: pos, At: now.Add(time.Duration(i) * time.Minute)})
	}
	for _, it := range items {
		if _, err := single.Report(it.UserID, it.Pos, it.At); err != nil {
			t.Fatal(err)
		}
	}
	if errs := batched.ReportBatch(items); len(errs) != 0 {
		t.Fatalf("batch errs = %+v", errs)
	}
	if _, err := single.MergeProfiles("roamer", now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := batched.MergeProfiles("roamer", now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	for i := range single.Nodes() {
		want := fingerprint(t, single.Nodes()[i], "roamer")
		got := fingerprint(t, batched.Nodes()[i], "roamer")
		if got != want {
			t.Errorf("edge %d fingerprint diverged: %x vs %x", i, got, want)
		}
	}
}
