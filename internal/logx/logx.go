// Package logx builds the structured loggers shared by the serving
// binaries: one -log-format flag value ("json" or "text") maps to a
// log/slog handler with consistent options, so edged, lbasim, and the
// edge handlers emit machine-parseable lines (JSON for log shippers,
// text for terminals) with trace IDs attached where a request is in
// scope.
package logx

import (
	"fmt"
	"io"
	"log/slog"
)

// Formats accepted by New.
const (
	FormatJSON = "json"
	FormatText = "text"
)

// New returns a logger writing format-encoded lines to w. Format is
// "json" or "text"; anything else is an error (surfaced at flag-parse
// time, not buried in a panic mid-serve).
func New(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case FormatText:
		return slog.New(slog.NewTextHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want %q or %q)", format, FormatJSON, FormatText)
	}
}

// Discard returns a logger that drops everything — the test-harness
// stand-in for the old log.New(io.Discard, "", 0).
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
