package logx

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNewJSON(t *testing.T) {
	var b strings.Builder
	l, err := New(FormatJSON, &b)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "user", "u1", "trace_id", "abc")
	var line map[string]any
	if err := json.Unmarshal([]byte(b.String()), &line); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, b.String())
	}
	if line["msg"] != "hello" || line["user"] != "u1" || line["trace_id"] != "abc" {
		t.Errorf("unexpected fields: %v", line)
	}
}

func TestNewText(t *testing.T) {
	var b strings.Builder
	l, err := New(FormatText, &b)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "user", "u1")
	if got := b.String(); !strings.Contains(got, "msg=hello") || !strings.Contains(got, "user=u1") {
		t.Errorf("unexpected text line: %s", got)
	}
}

func TestNewUnknownFormat(t *testing.T) {
	if _, err := New("yaml", nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestDiscard(t *testing.T) {
	// Must be non-nil and usable (handlers treat nil loggers as disabled,
	// but Discard exists for call sites that want a real logger).
	Discard().Info("dropped")
}
