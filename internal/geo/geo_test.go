package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := p.Dist(Point{}); got != 5 {
		t.Errorf("Dist = %g", got)
	}
	if got := p.Dist2(Point{}); got != 25 {
		t.Errorf("Dist2 = %g", got)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		bound := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{bound(ax), bound(ay)}
		b := Point{bound(bx), bound(by)}
		c := Point{bound(cx), bound(cy)}
		if math.IsNaN(a.X + a.Y + b.X + b.Y + c.X + c.Y) {
			return true
		}
		sym := math.Abs(a.Dist(b)-b.Dist(a)) < 1e-9
		tri := a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
		return sym && tri
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("empty centroid should report !ok")
	}
	c, ok := Centroid([]Point{{0, 0}, {2, 0}, {1, 3}})
	if !ok || c != (Point{1, 1}) {
		t.Errorf("Centroid = %v, %v", c, ok)
	}
}

func TestLatLonValidate(t *testing.T) {
	valid := []LatLon{{0, 0}, {31.2, 121.5}, {-90, 180}, {90, -180}}
	for _, ll := range valid {
		if err := ll.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", ll, err)
		}
	}
	invalid := []LatLon{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, ll := range invalid {
		if err := ll.Validate(); err == nil {
			t.Errorf("Validate(%v) expected error", ll)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// One degree of latitude is ~111.19 km on the sphere we use.
	a := LatLon{31, 121}
	b := LatLon{32, 121}
	got := HaversineMeters(a, b)
	want := EarthRadiusMeters * math.Pi / 180
	if math.Abs(got-want) > 1 {
		t.Errorf("1 degree latitude = %g m, want %g m", got, want)
	}
	if d := HaversineMeters(a, a); d != 0 {
		t.Errorf("zero distance = %g", d)
	}
	// Symmetry.
	if d1, d2 := HaversineMeters(a, b), HaversineMeters(b, a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("asymmetric haversine: %g vs %g", d1, d2)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	origin := LatLon{31.05, 121.5} // centre of the paper's Shanghai box
	pr, err := NewProjection(origin)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Origin() != origin {
		t.Errorf("Origin = %v", pr.Origin())
	}
	coords := []LatLon{
		{30.7, 121}, {31.4, 122}, {31.05, 121.5}, {31.2, 121.3},
	}
	for _, ll := range coords {
		back := pr.ToLatLon(pr.ToPlane(ll))
		if math.Abs(back.Lat-ll.Lat) > 1e-9 || math.Abs(back.Lon-ll.Lon) > 1e-9 {
			t.Errorf("round trip %v -> %v", ll, back)
		}
	}
}

// TestProjectionDistanceAccuracy: planar distance must agree with
// haversine within 0.5% across the paper's Shanghai bounding box.
func TestProjectionDistanceAccuracy(t *testing.T) {
	pr, err := NewProjection(LatLon{31.05, 121.5})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]LatLon{
		{{30.7, 121}, {31.4, 122}},
		{{31.0, 121.2}, {31.1, 121.25}},
		{{30.9, 121.9}, {30.95, 121.92}},
	}
	for _, pair := range pairs {
		planar := pr.ToPlane(pair[0]).Dist(pr.ToPlane(pair[1]))
		sphere := HaversineMeters(pair[0], pair[1])
		if rel := math.Abs(planar-sphere) / sphere; rel > 0.005 {
			t.Errorf("pair %v: planar %g vs haversine %g (rel %g)", pair, planar, sphere, rel)
		}
	}
}

func TestNewProjectionErrors(t *testing.T) {
	if _, err := NewProjection(LatLon{100, 0}); err == nil {
		t.Error("invalid origin expected error")
	}
	if _, err := NewProjection(LatLon{89, 0}); err == nil {
		t.Error("near-pole origin expected error")
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Point{0, 0}, 10}
	if !c.Contains(Point{10, 0}) {
		t.Error("boundary point should be contained")
	}
	if c.Contains(Point{10.01, 0}) {
		t.Error("outside point should not be contained")
	}
	if got, want := c.Area(), math.Pi*100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Area = %g, want %g", got, want)
	}
}

func TestIntersectionAreaCases(t *testing.T) {
	r := 10.0
	full := math.Pi * r * r
	tests := []struct {
		name string
		a, b Circle
		want float64
	}{
		{"identical", Circle{Point{0, 0}, r}, Circle{Point{0, 0}, r}, full},
		{"disjoint", Circle{Point{0, 0}, r}, Circle{Point{30, 0}, r}, 0},
		{"tangent", Circle{Point{0, 0}, r}, Circle{Point{20, 0}, r}, 0},
		{"contained", Circle{Point{0, 0}, r}, Circle{Point{1, 0}, 2}, math.Pi * 4},
		{"zero radius", Circle{Point{0, 0}, 0}, Circle{Point{0, 0}, r}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IntersectionArea(tt.a, tt.b); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("IntersectionArea = %g, want %g", got, tt.want)
			}
		})
	}
}

// TestIntersectionAreaHalfOverlap checks the analytic lens against the
// closed form for equal circles at distance d = r: 2r²cos⁻¹(1/2) - ...
func TestIntersectionAreaHalfOverlap(t *testing.T) {
	r := 5000.0
	d := r
	a := Circle{Point{0, 0}, r}
	b := Circle{Point{d, 0}, r}
	want := 2*r*r*math.Acos(d/(2*r)) - (d/2)*math.Sqrt(4*r*r-d*d)
	if got := IntersectionArea(a, b); math.Abs(got-want) > 1e-6*want {
		t.Errorf("lens = %g, want %g", got, want)
	}
}

// TestIntersectionAreaMonotone property: moving circles apart never
// increases the intersection.
func TestIntersectionAreaMonotone(t *testing.T) {
	r := 100.0
	prev := math.Inf(1)
	for d := 0.0; d <= 250; d += 5 {
		got := IntersectionArea(Circle{Point{0, 0}, r}, Circle{Point{d, 0}, r})
		if got > prev+1e-9 {
			t.Fatalf("intersection grew when separating: d=%g %g > %g", d, got, prev)
		}
		prev = got
	}
}

// TestIntersectionAreaMonteCarlo cross-checks the analytic lens with a
// quasi-random point count.
func TestIntersectionAreaMonteCarlo(t *testing.T) {
	a := Circle{Point{0, 0}, 100}
	b := Circle{Point{70, 30}, 80}
	analytic := IntersectionArea(a, b)
	// Deterministic grid estimate over the bounding box of circle a.
	const n = 400
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := Point{
				X: a.Center.X - a.Radius + 2*a.Radius*(float64(i)+0.5)/n,
				Y: a.Center.Y - a.Radius + 2*a.Radius*(float64(j)+0.5)/n,
			}
			if a.Contains(p) && b.Contains(p) {
				count++
			}
		}
	}
	cell := (2 * a.Radius / n) * (2 * a.Radius / n)
	estimate := float64(count) * cell
	if rel := math.Abs(estimate-analytic) / analytic; rel > 0.01 {
		t.Errorf("grid estimate %g vs analytic %g (rel %g)", estimate, analytic, rel)
	}
}

func TestBBox(t *testing.T) {
	if _, ok := NewBBox(nil); ok {
		t.Error("empty bbox should report !ok")
	}
	b, ok := NewBBox([]Point{{1, 2}, {-3, 5}, {0, -1}})
	if !ok {
		t.Fatal("bbox not built")
	}
	if b != (BBox{-3, -1, 1, 5}) {
		t.Errorf("BBox = %+v", b)
	}
	if !b.Contains(Point{0, 0}) || b.Contains(Point{2, 0}) {
		t.Error("Contains misbehaves")
	}
	e := b.Expand(1)
	if e != (BBox{-4, -2, 2, 6}) {
		t.Errorf("Expand = %+v", e)
	}
	if b.Width() != 4 || b.Height() != 6 {
		t.Errorf("Width/Height = %g/%g", b.Width(), b.Height())
	}
}

func BenchmarkIntersectionArea(b *testing.B) {
	c1 := Circle{Point{0, 0}, 5000}
	c2 := Circle{Point{3000, 1000}, 5000}
	for i := 0; i < b.N; i++ {
		_ = IntersectionArea(c1, c2)
	}
}
