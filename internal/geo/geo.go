// Package geo provides the planar-geometry substrate for the
// Edge-PrivLocAd reproduction: points in a local metric plane, WGS-84
// coordinates and their projection to/from that plane, distances, circles,
// and the circle-intersection area needed by the utilization-rate metric.
//
// All mechanisms, attacks, and metrics in this repository operate on
// Point values in a local tangent plane measured in metres; LatLon and
// Projection exist at the system boundary where traces are expressed in
// geographic coordinates (the paper's dataset is a Shanghai bounding box).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the haversine formula
// and the equirectangular projection.
const EarthRadiusMeters = 6_371_000.0

// Point is a location in a local tangent plane, in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by the factor s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance, avoiding the square root
// for comparisons on hot paths (clustering, spatial index).
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Centroid returns the arithmetic mean of the points. The second return
// value reports whether the input was non-empty.
func Centroid(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}, true
}

// LatLon is a WGS-84 geographic coordinate in decimal degrees.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Validate reports whether the coordinate is a plausible WGS-84 position.
func (ll LatLon) Validate() error {
	if math.IsNaN(ll.Lat) || ll.Lat < -90 || ll.Lat > 90 {
		return fmt.Errorf("geo: latitude %g out of [-90, 90]", ll.Lat)
	}
	if math.IsNaN(ll.Lon) || ll.Lon < -180 || ll.Lon > 180 {
		return fmt.Errorf("geo: longitude %g out of [-180, 180]", ll.Lon)
	}
	return nil
}

// HaversineMeters returns the great-circle distance between two WGS-84
// coordinates in metres.
func HaversineMeters(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Projection maps WGS-84 coordinates to a local tangent plane with an
// equirectangular projection centred on a reference coordinate. Within a
// city-scale extent (the paper's Shanghai box is ~80 km across) the
// distance distortion is far below the 50 m clustering threshold.
type Projection struct {
	origin LatLon
	cosLat float64
}

// NewProjection builds a projection centred on origin.
func NewProjection(origin LatLon) (*Projection, error) {
	if err := origin.Validate(); err != nil {
		return nil, fmt.Errorf("projection origin: %w", err)
	}
	if math.Abs(origin.Lat) > 85 {
		return nil, fmt.Errorf("geo: projection origin latitude %g too close to a pole", origin.Lat)
	}
	return &Projection{
		origin: origin,
		cosLat: math.Cos(origin.Lat * math.Pi / 180),
	}, nil
}

// Origin returns the projection's reference coordinate.
func (pr *Projection) Origin() LatLon { return pr.origin }

// ToPlane projects a geographic coordinate to plane metres.
func (pr *Projection) ToPlane(ll LatLon) Point {
	const degToRad = math.Pi / 180
	return Point{
		X: EarthRadiusMeters * (ll.Lon - pr.origin.Lon) * degToRad * pr.cosLat,
		Y: EarthRadiusMeters * (ll.Lat - pr.origin.Lat) * degToRad,
	}
}

// ToLatLon inverts ToPlane.
func (pr *Projection) ToLatLon(p Point) LatLon {
	const radToDeg = 180 / math.Pi
	return LatLon{
		Lat: pr.origin.Lat + (p.Y/EarthRadiusMeters)*radToDeg,
		Lon: pr.origin.Lon + (p.X/(EarthRadiusMeters*pr.cosLat))*radToDeg,
	}
}

// Circle is a disk in the local plane: centre and radius in metres.
type Circle struct {
	Center Point   `json:"center"`
	Radius float64 `json:"radius_m"`
}

// Contains reports whether q lies inside or on the circle.
func (c Circle) Contains(q Point) bool {
	return c.Center.Dist2(q) <= c.Radius*c.Radius
}

// Area returns the disk area in square metres.
func (c Circle) Area() float64 { return math.Pi * c.Radius * c.Radius }

// IntersectionArea returns the area of the lens formed by two disks.
// This is the analytic form of the paper's utilization rate numerator for
// a single obfuscated output (AOI ∩ AOR with equal radii reduces to the
// symmetric lens).
func IntersectionArea(a, b Circle) float64 {
	if a.Radius <= 0 || b.Radius <= 0 {
		return 0
	}
	d := a.Center.Dist(b.Center)
	if d >= a.Radius+b.Radius {
		return 0
	}
	small, large := a.Radius, b.Radius
	if small > large {
		small, large = large, small
	}
	if d <= large-small {
		// The smaller disk is entirely inside the larger one.
		return math.Pi * small * small
	}
	r1, r2 := a.Radius, b.Radius
	// Standard circle-circle lens area.
	d1 := (d*d + r1*r1 - r2*r2) / (2 * d)
	d2 := d - d1
	seg := func(r, x float64) float64 {
		x = math.Max(-r, math.Min(r, x))
		return r*r*math.Acos(x/r) - x*math.Sqrt(math.Max(0, r*r-x*x))
	}
	return seg(r1, d1) + seg(r2, d2)
}

// BBox is an axis-aligned bounding box in the local plane.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewBBox returns the tightest box containing all points. The second
// return value reports whether the input was non-empty.
func NewBBox(pts []Point) (BBox, bool) {
	if len(pts) == 0 {
		return BBox{}, false
	}
	b := BBox{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		b.MinX = math.Min(b.MinX, p.X)
		b.MinY = math.Min(b.MinY, p.Y)
		b.MaxX = math.Max(b.MaxX, p.X)
		b.MaxY = math.Max(b.MaxY, p.Y)
	}
	return b, true
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Expand grows the box by margin metres on every side.
func (b BBox) Expand(margin float64) BBox {
	return BBox{b.MinX - margin, b.MinY - margin, b.MaxX + margin, b.MaxY + margin}
}

// Width returns the horizontal extent of the box.
func (b BBox) Width() float64 { return b.MaxX - b.MinX }

// Height returns the vertical extent of the box.
func (b BBox) Height() float64 { return b.MaxY - b.MinY }
