// Package cluster implements the clustering machinery of the paper's
// longitudinal location exposure attack and location-profiling step:
// connectivity-based clustering (two check-ins belong together when their
// Euclidean distance is within a threshold, transitively) and the
// centroid trimming refinement of Algorithm 1 (lines 10–19).
//
// Clustering is accelerated by the uniform-grid index in internal/spatial,
// giving near-linear behaviour on the dataset scale the paper uses
// (up to ~11k check-ins per user, 37k users).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// Cluster is one connected group of input points.
type Cluster struct {
	// Members holds indexes into the point slice passed to the clustering
	// function, in ascending order.
	Members []int
	// Centroid is the arithmetic mean of the member points.
	Centroid geo.Point
}

// Size returns the number of member points (the "frequency" of the
// location in the paper's profile terminology).
func (c Cluster) Size() int { return len(c.Members) }

// Connectivity groups points transitively: indices i and j end up in the
// same cluster when a chain of points with consecutive distances ≤
// threshold connects them. Clusters are returned sorted by descending
// size, ties broken by the smallest member index, so results are
// deterministic.
func Connectivity(pts []geo.Point, threshold float64) ([]Cluster, error) {
	return ConnectivityWithGrid(nil, pts, threshold)
}

// ConnectivityWithGrid is Connectivity with a caller-provided reusable
// index: grid is Reset and refilled with pts (ids are slice indexes),
// avoiding per-call map growth on hot paths that cluster many point sets
// in sequence (the attack clusters once per rank per user). The grid's
// own cell size is used as-is; build it with cellSize == threshold for
// the intended near-linear behaviour. A nil grid allocates a fresh one.
// On success the grid holds exactly pts, which callers may keep using
// for follow-up queries such as Trim adoption.
func ConnectivityWithGrid(grid *spatial.Grid, pts []geo.Point, threshold float64) ([]Cluster, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("cluster: connectivity threshold %g must be positive", threshold)
	}
	if len(pts) == 0 {
		return nil, nil
	}

	if grid == nil {
		var err error
		grid, err = spatial.NewGrid(threshold)
		if err != nil {
			return nil, fmt.Errorf("cluster: building index: %w", err)
		}
	} else {
		grid.Reset()
	}
	for i, p := range pts {
		grid.Insert(i, p)
	}

	uf := spatial.NewUnionFind(len(pts))
	var buf []int
	for i, p := range pts {
		buf = grid.Within(buf[:0], p, threshold)
		for _, j := range buf {
			if j > i {
				uf.Union(i, j)
			}
		}
	}

	groups := make(map[int][]int)
	for i := range pts {
		r := uf.Find(i)
		groups[r] = append(groups[r], i)
	}

	clusters := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		centroid := centroidOf(pts, members)
		clusters = append(clusters, Cluster{Members: members, Centroid: centroid})
	}
	sort.Slice(clusters, func(a, b int) bool {
		if clusters[a].Size() != clusters[b].Size() {
			return clusters[a].Size() > clusters[b].Size()
		}
		return clusters[a].Members[0] < clusters[b].Members[0]
	})
	return clusters, nil
}

// centroidOf averages the selected points.
func centroidOf(pts []geo.Point, members []int) geo.Point {
	var sx, sy float64
	for _, i := range members {
		sx += pts[i].X
		sy += pts[i].Y
	}
	n := float64(len(members))
	return geo.Point{X: sx / n, Y: sy / n}
}

// TrimOptions configures the trimming refinement.
type TrimOptions struct {
	// Radius is r_α: members farther than Radius from the running centroid
	// are discarded and available points within Radius are adopted.
	Radius float64
	// MaxIterations bounds the refine loop; the paper iterates "until no
	// more points to update", which converges quickly in practice but is
	// not guaranteed to terminate in theory. Zero selects a default of 64.
	MaxIterations int
	// Index optionally provides a prebuilt spatial index over the same pts
	// slice (ids are slice indexes, e.g. the grid ConnectivityWithGrid just
	// filled). When set, the adoption pass queries the index instead of
	// scanning every point; Trim never mutates it. The index's cell size
	// need not match Radius — Grid.Within is exact for any query radius.
	Index *spatial.Grid
}

// Trim implements the TRIMMING procedure of Algorithm 1. Starting from
// the initial member set, it repeatedly (a) recomputes the centroid,
// (b) drops members farther than Radius from it, and (c) adopts available
// points within Radius, until a fixpoint or the iteration bound.
//
// available reports whether a point index outside the cluster may be
// adopted (the attack passes "still unassigned"); a nil available adopts
// from all points. It returns the refined member set (ascending) and its
// centroid; an empty result means the cluster dissolved.
func Trim(pts []geo.Point, initial []int, opts TrimOptions, available func(i int) bool) ([]int, geo.Point, error) {
	if opts.Radius <= 0 {
		return nil, geo.Point{}, fmt.Errorf("cluster: trim radius %g must be positive", opts.Radius)
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	if len(initial) == 0 {
		return nil, geo.Point{}, nil
	}

	// Membership is an indexed bitset plus an ascending member slice;
	// centroid sums are maintained incrementally as members come and go,
	// replacing the old map[int]bool set and its full per-iteration
	// recomputation. Summation order is fixed (ascending indexes at init,
	// then the loop's own deterministic discard/adopt order), so results
	// are reproducible where map iteration order was not.
	in := make([]bool, len(pts))
	members := make([]int, 0, len(initial))
	for _, i := range initial {
		if i < 0 || i >= len(pts) {
			return nil, geo.Point{}, fmt.Errorf("cluster: member index %d out of range [0, %d)", i, len(pts))
		}
		if in[i] {
			continue
		}
		in[i] = true
		members = append(members, i)
	}
	sort.Ints(members)
	var sx, sy float64
	for _, i := range members {
		sx += pts[i].X
		sy += pts[i].Y
	}

	r2 := opts.Radius * opts.Radius
	centroid := geo.Point{X: sx / float64(len(members)), Y: sy / float64(len(members))}
	var buf []int
	for iter := 0; iter < maxIter; iter++ {
		changed := false

		// Discard members outside the radius, compacting the member slice
		// in place (ascending order is preserved).
		kept := members[:0]
		for _, i := range members {
			if pts[i].Dist2(centroid) > r2 {
				in[i] = false
				sx -= pts[i].X
				sy -= pts[i].Y
				changed = true
			} else {
				kept = append(kept, i)
			}
		}
		members = kept
		if len(members) == 0 {
			return nil, geo.Point{}, nil
		}

		// Adopt available points inside the radius, against the same
		// centroid the discard pass used.
		adoptedAt := len(members)
		if opts.Index != nil {
			buf = opts.Index.Within(buf[:0], centroid, opts.Radius)
			for _, i := range buf {
				if in[i] || (available != nil && !available(i)) {
					continue
				}
				in[i] = true
				members = append(members, i)
				sx += pts[i].X
				sy += pts[i].Y
				changed = true
			}
		} else {
			for i, p := range pts {
				if in[i] || (available != nil && !available(i)) {
					continue
				}
				if p.Dist2(centroid) <= r2 {
					in[i] = true
					members = append(members, i)
					sx += pts[i].X
					sy += pts[i].Y
					changed = true
				}
			}
		}
		if adoptedAt < len(members) {
			sort.Ints(members)
		}

		centroid = geo.Point{X: sx / float64(len(members)), Y: sy / float64(len(members))}
		if !changed {
			break
		}
	}
	return members, centroid, nil
}
