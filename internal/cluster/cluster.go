// Package cluster implements the clustering machinery of the paper's
// longitudinal location exposure attack and location-profiling step:
// connectivity-based clustering (two check-ins belong together when their
// Euclidean distance is within a threshold, transitively) and the
// centroid trimming refinement of Algorithm 1 (lines 10–19).
//
// Clustering is accelerated by the uniform-grid index in internal/spatial,
// giving near-linear behaviour on the dataset scale the paper uses
// (up to ~11k check-ins per user, 37k users).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// Cluster is one connected group of input points.
type Cluster struct {
	// Members holds indexes into the point slice passed to the clustering
	// function, in ascending order.
	Members []int
	// Centroid is the arithmetic mean of the member points.
	Centroid geo.Point
}

// Size returns the number of member points (the "frequency" of the
// location in the paper's profile terminology).
func (c Cluster) Size() int { return len(c.Members) }

// Connectivity groups points transitively: indices i and j end up in the
// same cluster when a chain of points with consecutive distances ≤
// threshold connects them. Clusters are returned sorted by descending
// size, ties broken by the smallest member index, so results are
// deterministic.
func Connectivity(pts []geo.Point, threshold float64) ([]Cluster, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("cluster: connectivity threshold %g must be positive", threshold)
	}
	if len(pts) == 0 {
		return nil, nil
	}

	grid, err := spatial.NewGrid(threshold)
	if err != nil {
		return nil, fmt.Errorf("cluster: building index: %w", err)
	}
	for i, p := range pts {
		grid.Insert(i, p)
	}

	uf := spatial.NewUnionFind(len(pts))
	var buf []int
	for i, p := range pts {
		buf = grid.Within(buf[:0], p, threshold)
		for _, j := range buf {
			if j > i {
				uf.Union(i, j)
			}
		}
	}

	groups := make(map[int][]int)
	for i := range pts {
		r := uf.Find(i)
		groups[r] = append(groups[r], i)
	}

	clusters := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		centroid := centroidOf(pts, members)
		clusters = append(clusters, Cluster{Members: members, Centroid: centroid})
	}
	sort.Slice(clusters, func(a, b int) bool {
		if clusters[a].Size() != clusters[b].Size() {
			return clusters[a].Size() > clusters[b].Size()
		}
		return clusters[a].Members[0] < clusters[b].Members[0]
	})
	return clusters, nil
}

// centroidOf averages the selected points.
func centroidOf(pts []geo.Point, members []int) geo.Point {
	var sx, sy float64
	for _, i := range members {
		sx += pts[i].X
		sy += pts[i].Y
	}
	n := float64(len(members))
	return geo.Point{X: sx / n, Y: sy / n}
}

// TrimOptions configures the trimming refinement.
type TrimOptions struct {
	// Radius is r_α: members farther than Radius from the running centroid
	// are discarded and available points within Radius are adopted.
	Radius float64
	// MaxIterations bounds the refine loop; the paper iterates "until no
	// more points to update", which converges quickly in practice but is
	// not guaranteed to terminate in theory. Zero selects a default of 64.
	MaxIterations int
}

// Trim implements the TRIMMING procedure of Algorithm 1. Starting from
// the initial member set, it repeatedly (a) recomputes the centroid,
// (b) drops members farther than Radius from it, and (c) adopts available
// points within Radius, until a fixpoint or the iteration bound.
//
// available reports whether a point index outside the cluster may be
// adopted (the attack passes "still unassigned"); a nil available adopts
// from all points. It returns the refined member set (ascending) and its
// centroid; an empty result means the cluster dissolved.
func Trim(pts []geo.Point, initial []int, opts TrimOptions, available func(i int) bool) ([]int, geo.Point, error) {
	if opts.Radius <= 0 {
		return nil, geo.Point{}, fmt.Errorf("cluster: trim radius %g must be positive", opts.Radius)
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	if len(initial) == 0 {
		return nil, geo.Point{}, nil
	}

	in := make(map[int]bool, len(initial))
	for _, i := range initial {
		if i < 0 || i >= len(pts) {
			return nil, geo.Point{}, fmt.Errorf("cluster: member index %d out of range [0, %d)", i, len(pts))
		}
		in[i] = true
	}

	r2 := opts.Radius * opts.Radius
	centroid := centroidFromSet(pts, in)
	for iter := 0; iter < maxIter; iter++ {
		changed := false

		// Discard members outside the radius.
		for i := range in {
			if pts[i].Dist2(centroid) > r2 {
				delete(in, i)
				changed = true
			}
		}
		if len(in) == 0 {
			return nil, geo.Point{}, nil
		}

		// Adopt available points inside the radius.
		for i := range pts {
			if in[i] {
				continue
			}
			if available != nil && !available(i) {
				continue
			}
			if pts[i].Dist2(centroid) <= r2 {
				in[i] = true
				changed = true
			}
		}

		centroid = centroidFromSet(pts, in)
		if !changed {
			break
		}
	}

	members := make([]int, 0, len(in))
	for i := range in {
		members = append(members, i)
	}
	sort.Ints(members)
	return members, centroid, nil
}

func centroidFromSet(pts []geo.Point, in map[int]bool) geo.Point {
	var sx, sy float64
	for i := range in {
		sx += pts[i].X
		sy += pts[i].Y
	}
	n := float64(len(in))
	return geo.Point{X: sx / n, Y: sy / n}
}
