package cluster

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/spatial"
)

func TestConnectivityBasicGroups(t *testing.T) {
	// Two tight groups 1 km apart plus one outlier.
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, // chain: group A
		{X: 1000, Y: 0}, {X: 1010, Y: 5}, // group B
		{X: 5000, Y: 5000}, // outlier
	}
	clusters, err := Connectivity(pts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	if clusters[0].Size() != 3 || clusters[1].Size() != 2 || clusters[2].Size() != 1 {
		t.Errorf("sizes = %d,%d,%d", clusters[0].Size(), clusters[1].Size(), clusters[2].Size())
	}
	if got := clusters[0].Centroid; math.Abs(got.X-10) > 1e-9 || math.Abs(got.Y) > 1e-9 {
		t.Errorf("largest centroid = %v, want (10,0)", got)
	}
}

// TestConnectivityChaining: points individually farther than the threshold
// still merge through intermediate points (single-linkage semantics).
func TestConnectivityChaining(t *testing.T) {
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 45, Y: 0}, {X: 90, Y: 0}, {X: 135, Y: 0},
	}
	clusters, err := Connectivity(pts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Size() != 4 {
		t.Errorf("chained points did not merge: %+v", clusters)
	}
	// Below threshold they split.
	clusters, err = Connectivity(pts, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 4 {
		t.Errorf("want 4 singletons, got %d clusters", len(clusters))
	}
}

func TestConnectivityEmptyAndErrors(t *testing.T) {
	if cs, err := Connectivity(nil, 50); err != nil || cs != nil {
		t.Errorf("empty input: %v, %v", cs, err)
	}
	if _, err := Connectivity([]geo.Point{{X: 1, Y: 1}}, 0); err == nil {
		t.Error("threshold=0 expected error")
	}
	if _, err := Connectivity([]geo.Point{{X: 1, Y: 1}}, -5); err == nil {
		t.Error("negative threshold expected error")
	}
}

func TestConnectivityDeterministicOrder(t *testing.T) {
	rnd := randx.New(5, 5)
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Point{X: rnd.Float64() * 3000, Y: rnd.Float64() * 3000}
	}
	a, err := Connectivity(pts, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Connectivity(pts, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic cluster count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Size() != b[i].Size() || a[i].Members[0] != b[i].Members[0] {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

// TestConnectivityInvariants: clusters partition the input; within-cluster
// graph is connected at the threshold (checked via pairwise reachability
// proxy: every member has at least one other member within threshold when
// the cluster is larger than one).
func TestConnectivityInvariants(t *testing.T) {
	rnd := randx.New(9, 1)
	pts := make([]geo.Point, 800)
	for i := range pts {
		// Three dense sites plus scatter.
		switch i % 4 {
		case 0:
			pts[i] = geo.Point{X: rnd.Float64() * 40, Y: rnd.Float64() * 40}
		case 1:
			pts[i] = geo.Point{X: 2000 + rnd.Float64()*40, Y: rnd.Float64() * 40}
		case 2:
			pts[i] = geo.Point{X: 0, Y: 2000 + rnd.Float64()*40}
		default:
			pts[i] = geo.Point{X: rnd.Float64() * 4000, Y: rnd.Float64() * 4000}
		}
	}
	const threshold = 50.0
	clusters, err := Connectivity(pts, threshold)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, c := range clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("point %d in two clusters", m)
			}
			seen[m] = true
		}
		if c.Size() > 1 {
			for _, m := range c.Members {
				hasNeighbour := false
				for _, o := range c.Members {
					if o != m && pts[m].Dist(pts[o]) <= threshold {
						hasNeighbour = true
						break
					}
				}
				if !hasNeighbour {
					t.Fatalf("member %d isolated inside its cluster", m)
				}
			}
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("clusters cover %d of %d points", len(seen), len(pts))
	}
}

// TestConnectivityCrossClusterSeparation: points in different clusters are
// farther apart than the threshold.
func TestConnectivityCrossClusterSeparation(t *testing.T) {
	rnd := randx.New(10, 2)
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = geo.Point{X: rnd.Float64() * 2000, Y: rnd.Float64() * 2000}
	}
	const threshold = 75.0
	clusters, err := Connectivity(pts, threshold)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(clusters); a++ {
		for b := a + 1; b < len(clusters); b++ {
			for _, i := range clusters[a].Members {
				for _, j := range clusters[b].Members {
					if pts[i].Dist(pts[j]) <= threshold {
						t.Fatalf("points %d and %d within threshold but in different clusters", i, j)
					}
				}
			}
		}
	}
}

func TestTrimDiscardsOutliers(t *testing.T) {
	// Dense core plus a far outlier initially inside the cluster.
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 5, Y: 5}, {X: -5, Y: 5}, {X: 0, Y: -7},
		{X: 500, Y: 500}, // outlier
	}
	// Radius 150: the contaminated initial centroid sits ~142 m from the
	// core points, so they survive the first pass while the outlier
	// (~565 m away) is discarded; the centroid then snaps back to the core.
	members, centroid, err := Trim(pts, []int{0, 1, 2, 3, 4}, TrimOptions{Radius: 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("members = %v, want outlier dropped", members)
	}
	for _, m := range members {
		if m == 4 {
			t.Error("outlier survived trimming")
		}
	}
	if centroid.Norm() > 10 {
		t.Errorf("centroid %v drifted", centroid)
	}
}

func TestTrimAdoptsNearbyAvailable(t *testing.T) {
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 5, Y: 0}, // initial members
		{X: 10, Y: 0},      // available, nearby: should be adopted
		{X: 2000, Y: 2000}, // available, far: should stay out
		{X: 12, Y: 0},      // NOT available: must stay out even though near
	}
	avail := func(i int) bool { return i != 4 }
	members, _, err := Trim(pts, []int{0, 1}, TrimOptions{Radius: 100}, avail)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(members) != len(want) {
		t.Fatalf("members = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members = %v, want %v", members, want)
		}
	}
}

func TestTrimDissolves(t *testing.T) {
	// Initial members mutually repel: centroid sits between two far points
	// and both get discarded.
	pts := []geo.Point{{X: -1000, Y: 0}, {X: 1000, Y: 0}}
	members, _, err := Trim(pts, []int{0, 1}, TrimOptions{Radius: 100}, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Errorf("members = %v, want dissolved cluster", members)
	}
}

func TestTrimErrors(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}}
	if _, _, err := Trim(pts, []int{0}, TrimOptions{Radius: 0}, nil); err == nil {
		t.Error("radius=0 expected error")
	}
	if _, _, err := Trim(pts, []int{5}, TrimOptions{Radius: 10}, nil); err == nil {
		t.Error("out-of-range index expected error")
	}
	members, _, err := Trim(pts, nil, TrimOptions{Radius: 10}, nil)
	if err != nil || members != nil {
		t.Errorf("empty initial: %v, %v", members, err)
	}
}

// TestTrimConverges: trimming on Gaussian-noised clusters reaches a
// fixpoint well inside the iteration bound and the refined centroid is
// closer to the true centre than the raw largest-cluster centroid.
func TestTrimConverges(t *testing.T) {
	rnd := randx.New(21, 3)
	truth := geo.Point{X: 300, Y: -200}
	var pts []geo.Point
	for i := 0; i < 500; i++ {
		pts = append(pts, truth.Add(rnd.GaussianPolar(120)))
	}
	// Contaminate with a distant secondary site; these are available for
	// adoption but too far to be adopted.
	other := geo.Point{X: 5000, Y: 5000}
	for i := 0; i < 60; i++ {
		pts = append(pts, other.Add(rnd.GaussianPolar(120)))
	}
	// As in Algorithm 1, trimming starts from a connectivity cluster — here
	// the 500 points of the dominant site.
	initial := make([]int, 500)
	for i := range initial {
		initial[i] = i
	}
	members, centroid, err := Trim(pts, initial, TrimOptions{Radius: 360}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) == 0 {
		t.Fatal("cluster dissolved unexpectedly")
	}
	if d := centroid.Dist(truth); d > 60 {
		t.Errorf("trimmed centroid %g m from truth", d)
	}
}

func BenchmarkConnectivity10k(b *testing.B) {
	rnd := randx.New(1, 1)
	pts := make([]geo.Point, 10_000)
	for i := range pts {
		pts[i] = geo.Point{X: rnd.Float64() * 20_000, Y: rnd.Float64() * 20_000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Connectivity(pts, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// gaussianSites builds a mixture of Gaussian-noised sites, the shape the
// attack feeds Trim at scale.
func gaussianSites(rnd *randx.Rand, perSite int) []geo.Point {
	sites := []geo.Point{{X: 0, Y: 0}, {X: 900, Y: 400}, {X: -1200, Y: 2500}}
	var pts []geo.Point
	for _, s := range sites {
		for i := 0; i < perSite; i++ {
			pts = append(pts, s.Add(rnd.GaussianPolar(120)))
		}
	}
	return pts
}

func TestConnectivityWithGridReuseMatchesFresh(t *testing.T) {
	rnd := randx.New(4, 9)
	grid, err := spatial.NewGrid(150)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the same grid across successive point sets of different sizes
	// and verify each result matches a fresh Connectivity call.
	for round := 0; round < 4; round++ {
		pts := gaussianSites(rnd, 50+40*round)
		want, err := Connectivity(pts, 150)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ConnectivityWithGrid(grid, pts, 150)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d clusters vs %d fresh", round, len(got), len(want))
		}
		for c := range got {
			if !reflect.DeepEqual(got[c].Members, want[c].Members) {
				t.Fatalf("round %d cluster %d: members differ", round, c)
			}
			if got[c].Centroid != want[c].Centroid {
				t.Fatalf("round %d cluster %d: centroid differs", round, c)
			}
		}
	}
}

// TestTrimWithIndexMatchesScan: adoption through a prebuilt spatial index
// must select exactly the same members as the full linear scan, for index
// cell sizes both below and above the trim radius.
func TestTrimWithIndexMatchesScan(t *testing.T) {
	rnd := randx.New(11, 2)
	pts := gaussianSites(rnd, 120)
	initial := make([]int, 120)
	for i := range initial {
		initial[i] = i
	}
	avail := func(i int) bool { return i%7 != 0 }
	wantMembers, wantCentroid, err := Trim(pts, initial, TrimOptions{Radius: 360}, avail)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []float64{50, 360, 1000} {
		grid, err := spatial.NewGrid(cell)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			grid.Insert(i, p)
		}
		got, centroid, err := Trim(pts, initial, TrimOptions{Radius: 360, Index: grid}, avail)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantMembers) {
			t.Fatalf("cell=%g: members differ from scan path", cell)
		}
		if centroid.Dist(wantCentroid) > 1e-9 {
			t.Fatalf("cell=%g: centroid %v vs scan %v", cell, centroid, wantCentroid)
		}
	}
}

func TestTrimDeduplicatesInitial(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	members, centroid, err := Trim(pts, []int{1, 0, 1, 0, 0}, TrimOptions{Radius: 100}, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(members, []int{0, 1}) {
		t.Fatalf("members = %v, want [0 1]", members)
	}
	if want := (geo.Point{X: 5, Y: 0}); centroid.Dist(want) > 1e-9 {
		t.Fatalf("centroid = %v, want %v (duplicates must not skew the mean)", centroid, want)
	}
}

// trimMapBaseline reimplements the pre-optimisation Trim (map membership,
// full centroid recomputation, linear adoption scan) as the benchmark
// baseline for the indexed-membership rewrite.
func trimMapBaseline(pts []geo.Point, initial []int, radius float64, maxIter int) ([]int, geo.Point) {
	in := make(map[int]bool, len(initial))
	for _, i := range initial {
		in[i] = true
	}
	centroidFromSet := func() geo.Point {
		var sx, sy float64
		for i := range in {
			sx += pts[i].X
			sy += pts[i].Y
		}
		n := float64(len(in))
		return geo.Point{X: sx / n, Y: sy / n}
	}
	r2 := radius * radius
	centroid := centroidFromSet()
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range in {
			if pts[i].Dist2(centroid) > r2 {
				delete(in, i)
				changed = true
			}
		}
		if len(in) == 0 {
			return nil, geo.Point{}
		}
		for i := range pts {
			if in[i] {
				continue
			}
			if pts[i].Dist2(centroid) <= r2 {
				in[i] = true
				changed = true
			}
		}
		centroid = centroidFromSet()
		if !changed {
			break
		}
	}
	members := make([]int, 0, len(in))
	for i := range in {
		members = append(members, i)
	}
	sort.Ints(members)
	return members, centroid
}

func benchTrimInput(b *testing.B) ([]geo.Point, []int) {
	b.Helper()
	rnd := randx.New(1, 1)
	pts := gaussianSites(rnd, 2000)
	initial := make([]int, 2000)
	for i := range initial {
		initial[i] = i
	}
	return pts, initial
}

func BenchmarkTrim(b *testing.B) {
	b.Run("indexed", func(b *testing.B) {
		pts, initial := benchTrimInput(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := Trim(pts, initial, TrimOptions{Radius: 360}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed-grid", func(b *testing.B) {
		pts, initial := benchTrimInput(b)
		grid, err := spatial.NewGrid(360)
		if err != nil {
			b.Fatal(err)
		}
		for i, p := range pts {
			grid.Insert(i, p)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := Trim(pts, initial, TrimOptions{Radius: 360, Index: grid}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		pts, initial := benchTrimInput(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trimMapBaseline(pts, initial, 360, 64)
		}
	})
}
