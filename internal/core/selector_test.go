package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/randx"
)

func TestSelectPosteriorErrors(t *testing.T) {
	rnd := randx.New(1, 1)
	if _, _, err := SelectPosterior(rnd, nil, 100); err == nil {
		t.Error("empty candidates expected error")
	}
	cands := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	for _, sigma := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, _, err := SelectPosterior(rnd, cands, sigma); err == nil {
			t.Errorf("sigma %g expected error", sigma)
		}
	}
}

func TestSelectPosteriorSingleton(t *testing.T) {
	rnd := randx.New(1, 1)
	only := geo.Point{X: 7, Y: 7}
	got, idx, err := SelectPosterior(rnd, []geo.Point{only}, 100)
	if err != nil || got != only || idx != 0 {
		t.Errorf("singleton selection = %v, %d, %v", got, idx, err)
	}
}

// TestSelectPosteriorFavoursCentroid: candidates near the centroid must
// be selected more often, with empirical frequencies matching Eq. 18.
func TestSelectPosteriorFavoursCentroid(t *testing.T) {
	// Three near-centroid candidates and one outlier; centroid ≈ middle.
	cands := []geo.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 5000, Y: 5000},
	}
	sigma := 1000.0
	probs, err := PosteriorProbabilities(cands, sigma)
	if err != nil {
		t.Fatal(err)
	}
	rnd := randx.New(9, 9)
	const trials = 100_000
	counts := make([]int, len(cands))
	for i := 0; i < trials; i++ {
		_, idx, err := SelectPosterior(rnd, cands, sigma)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i := range cands {
		got := float64(counts[i]) / trials
		if math.Abs(got-probs[i]) > 0.01 {
			t.Errorf("candidate %d: frequency %g vs probability %g", i, got, probs[i])
		}
	}
	// The outlier must be the least likely.
	if !(probs[3] < probs[0] && probs[3] < probs[1] && probs[3] < probs[2]) {
		t.Errorf("outlier not suppressed: %v", probs)
	}
}

// TestPosteriorProbabilitiesUnderflowSafe: candidates very far from the
// centroid relative to sigma must still produce a valid distribution.
func TestPosteriorProbabilitiesUnderflowSafe(t *testing.T) {
	cands := []geo.Point{
		{X: 0, Y: 0}, {X: 1e9, Y: 0}, {X: 0, Y: 1e9},
	}
	probs, err := PosteriorProbabilities(cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range probs {
		if math.IsNaN(p) {
			t.Fatal("NaN probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	// Selection must also work without error.
	if _, _, err := SelectPosterior(randx.New(1, 1), cands, 10); err != nil {
		t.Fatal(err)
	}
}

func TestPosteriorProbabilitiesErrors(t *testing.T) {
	if _, err := PosteriorProbabilities(nil, 10); err == nil {
		t.Error("empty candidates expected error")
	}
	if _, err := PosteriorProbabilities([]geo.Point{{X: 1, Y: 1}}, 0); err == nil {
		t.Error("sigma=0 expected error")
	}
}

// TestPosteriorSymmetricCandidatesUniform: symmetric candidates are
// equidistant from the centroid, so selection must be uniform.
func TestPosteriorSymmetricCandidatesUniform(t *testing.T) {
	cands := []geo.Point{
		{X: 1000, Y: 0}, {X: -1000, Y: 0}, {X: 0, Y: 1000}, {X: 0, Y: -1000},
	}
	probs, err := PosteriorProbabilities(cands, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if math.Abs(p-0.25) > 1e-9 {
			t.Errorf("probs[%d] = %g, want 0.25", i, p)
		}
	}
}

func TestSelectUniform(t *testing.T) {
	if _, _, err := SelectUniform(randx.New(1, 1), nil); err == nil {
		t.Error("empty candidates expected error")
	}
	cands := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	rnd := randx.New(4, 4)
	counts := make([]int, 3)
	const trials = 30_000
	for i := 0; i < trials; i++ {
		_, idx, err := SelectUniform(rnd, cands)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if got := float64(c) / trials; math.Abs(got-1.0/3.0) > 0.01 {
			t.Errorf("uniform candidate %d frequency %g", i, got)
		}
	}
}

func BenchmarkSelectPosterior10(b *testing.B) {
	rnd := randx.New(1, 1)
	cands := make([]geo.Point, 10)
	for i := range cands {
		cands[i] = rnd.GaussianPolar(5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SelectPosterior(rnd, cands, 5000); err != nil {
			b.Fatal(err)
		}
	}
}
