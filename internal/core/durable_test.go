package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/wal"
)

func snapshotBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

func fingerprints(t *testing.T, e *Engine) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, id := range e.Users() {
		fp, err := e.TableFingerprint(id)
		if err != nil {
			t.Fatalf("TableFingerprint(%s): %v", id, err)
		}
		out[id] = fp
	}
	return out
}

// driveWorkload applies a deterministic mix of every logged operation:
// single reports or batches (per the batch knob), forced and batch
// rebuilds, tops sync/install, table import, and ad requests (which
// draw from the per-user PRNG).
func driveWorkload(t *testing.T, e *Engine, batch int) {
	t.Helper()
	users := []string{"alice", "bob", "carol"}
	rnd := randx.New(7, 3)
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	step := 0
	at := func() time.Time { return base.Add(time.Duration(step) * time.Minute) }
	pos := func(cx, cy float64) geo.Point {
		return geo.Point{X: cx + rnd.NormFloat64()*30, Y: cy + rnd.NormFloat64()*30}
	}
	for round := 0; round < 6; round++ {
		for ui, user := range users {
			cx := float64(1000 * (ui + 1))
			if batch == 1 {
				for k := 0; k < 8; k++ {
					if err := e.Report(user, pos(cx, cx), at()); err != nil {
						t.Fatalf("Report: %v", err)
					}
					step++
				}
			} else {
				items := make([]BatchReport, 0, batch)
				for k := 0; k < batch; k++ {
					items = append(items, BatchReport{UserID: user, Pos: pos(cx, cx), At: at()})
					step++
				}
				if errs := e.ReportBatch(items); len(errs) > 0 {
					t.Fatalf("ReportBatch: %v", errs[0].Err)
				}
			}
		}
		if batch > 1 {
			// Mixed-user batch: exercises the grouped (per-run logging)
			// path.
			var items []BatchReport
			for _, user := range users {
				items = append(items, BatchReport{UserID: user, Pos: pos(500, 500), At: at()})
				step++
			}
			if errs := e.ReportBatch(items); len(errs) > 0 {
				t.Fatalf("mixed ReportBatch: %v", errs[0].Err)
			}
		}
		switch round % 3 {
		case 0:
			if err := e.RebuildProfile(users[0], at()); err != nil {
				t.Fatalf("RebuildProfile: %v", err)
			}
		case 1:
			if err := e.RebuildAll(at(), 2); err != nil {
				t.Fatalf("RebuildAll: %v", err)
			}
		case 2:
			tops := profile.Profile{{Loc: geo.Point{X: 4000 + float64(round)*250, Y: 4000}, Freq: 3}}
			if err := e.SyncTops(users[1], tops, at()); err != nil {
				t.Fatalf("SyncTops: %v", err)
			}
			if err := e.InstallTops(users[2], tops, at()); err != nil {
				t.Fatalf("InstallTops: %v", err)
			}
			entries := []TableEntry{{
				Top:        geo.Point{X: 6000 + float64(round), Y: 6000},
				Candidates: []geo.Point{{X: 6100, Y: 6050}, {X: 5950, Y: 6010}},
				CreatedAt:  at(),
			}}
			if err := e.ImportTable(users[0], entries); err != nil {
				t.Fatalf("ImportTable: %v", err)
			}
		}
		step++
		for ui, user := range users {
			cx := float64(1000 * (ui + 1))
			if _, _, err := e.Request(user, pos(cx, cx)); err != nil {
				t.Fatalf("Request: %v", err)
			}
		}
	}
}

// TestRecoverByteIdentical is the acceptance matrix: for shards {1,8} ×
// batch {1,64}, abandon the store mid-flight (the WAL equivalent of
// kill -9) and require the recovered engine to be byte-identical —
// same Snapshot stream, same table fingerprints, same user set.
func TestRecoverByteIdentical(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for _, batch := range []int{1, 64} {
			t.Run(fmt.Sprintf("shards=%d_batch=%d", shards, batch), func(t *testing.T) {
				dir := t.TempDir()
				cfg := testConfig(t)
				cfg.Shards = shards
				e, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
				if err != nil {
					t.Fatal(err)
				}
				if stats, err := e.Recover(st); err != nil || stats.Replayed != 0 {
					t.Fatalf("cold recover: stats=%+v err=%v", stats, err)
				}
				driveWorkload(t, e, batch)
				want := snapshotBytes(t, e)
				wantFPs := fingerprints(t, e)

				// Crash: reopen the directory without closing st.
				st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
				if err != nil {
					t.Fatal(err)
				}
				defer st2.Close()
				e2, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := e2.Recover(st2)
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				if stats.Replayed == 0 || stats.OpErrors != 0 {
					t.Fatalf("stats = %+v, want replayed records and no op errors", stats)
				}
				if got := snapshotBytes(t, e2); !bytes.Equal(got, want) {
					t.Errorf("recovered snapshot differs (%d vs %d bytes)", len(got), len(want))
				}
				gotFPs := fingerprints(t, e2)
				for id, fp := range wantFPs {
					if gotFPs[id] != fp {
						t.Errorf("user %s: fingerprint %016x, want %016x", id, gotFPs[id], fp)
					}
				}
			})
		}
	}
}

// TestRecoverFromCheckpointPlusTail: state checkpointed mid-workload
// must come back from Restore + tail replay, not a full-log replay.
func TestRecoverFromCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.Shards = 4
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(st); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, e, 8)
	lsn, data, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := st.WriteCheckpoint(lsn, data); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// More traffic after the checkpoint: the tail.
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if err := e.Report("alice", geo.Point{X: 1000 + float64(i), Y: 1000}, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RebuildProfile("alice", base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, e)

	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e2.Recover(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointLSN != lsn {
		t.Errorf("CheckpointLSN = %d, want %d", stats.CheckpointLSN, lsn)
	}
	if stats.Replayed != 11 { // 10 reports + 1 rebuild after the checkpoint
		t.Errorf("Replayed = %d, want 11", stats.Replayed)
	}
	if got := snapshotBytes(t, e2); !bytes.Equal(got, want) {
		t.Error("checkpoint+tail recovery diverged from pre-crash state")
	}
}

// TestRecoverTornTailSweep is the crash-injection sweep at the engine
// level: the log is cut at every byte offset inside its final record,
// and recovery must land exactly on the state before that record —
// never a corrupted in-between, never an error.
func TestRecoverTornTailSweep(t *testing.T) {
	build := t.TempDir()
	cfg := testConfig(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(build, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(st); err != nil {
		t.Fatal(err)
	}

	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	// Each op emits exactly one record; sizes[i] is the segment length
	// after record i, so sizes[i-1]..sizes[i] spans record i's bytes.
	seg := filepath.Join(build, "wal-00000000000000000000.seg")
	ops := []func() error{
		func() error { return e.Report("alice", geo.Point{X: 1000, Y: 1000}, base) },
		func() error { return e.Report("alice", geo.Point{X: 1010, Y: 990}, base.Add(time.Minute)) },
		func() error { return e.Report("alice", geo.Point{X: 995, Y: 1005}, base.Add(2*time.Minute)) },
		func() error { return e.RebuildProfile("alice", base.Add(time.Hour)) },
		func() error { _, _, err := e.Request("alice", geo.Point{X: 1000, Y: 1000}); return err },
	}
	snaps := [][]byte{snapshotBytes(t, e)}
	sizes := []int64{0}
	for i, op := range ops {
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		snaps = append(snaps, snapshotBytes(t, e))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != sizes[len(ops)] {
		t.Fatalf("segment size %d, want %d", len(full), sizes[len(ops)])
	}

	last := len(ops)
	for cut := sizes[last-1]; cut <= sizes[last]; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000000.seg"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cst, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		ce, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := ce.Recover(cst)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		wantIdx := last - 1
		if cut == sizes[last] {
			wantIdx = last
		}
		if stats.Replayed != wantIdx {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, stats.Replayed, wantIdx)
		}
		if got := snapshotBytes(t, ce); !bytes.Equal(got, snaps[wantIdx]) {
			t.Fatalf("cut %d: recovered state != state after %d ops", cut, wantIdx)
		}
		cst.Close()
	}
}

// TestConcurrentAppendCheckpoint races writers against checkpoints
// (run under -race) and then proves the surviving log + checkpoint
// still recover to the quiesced state.
func TestConcurrentAppendCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.Shards = 8
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(st); err != nil {
		t.Fatal(err)
	}

	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	const writers, opsEach = 4, 60
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", w)
			cx := float64(1000 * (w + 1))
			for i := 0; i < opsEach; i++ {
				if err := e.Report(user, geo.Point{X: cx + float64(i%17), Y: cx}, base.Add(time.Duration(i)*time.Minute)); err != nil {
					errc <- err
					return
				}
				if i%10 == 9 {
					if _, _, err := e.Request(user, geo.Point{X: cx, Y: cx}); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			lsn, data, err := e.Checkpoint()
			if err != nil {
				errc <- err
				return
			}
			if err := st.WriteCheckpoint(lsn, data); err != nil {
				errc <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := snapshotBytes(t, e)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, e2); !bytes.Equal(got, want) {
		t.Error("recovery after racing checkpoints diverged from quiesced state")
	}
}

// TestZeroTimeRoundTrip: Report treats a zero windowStart as unset, so
// a zero report time must replay as exactly zero, not as an
// equal-instant non-zero Time.
func TestZeroTimeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(st); err != nil {
		t.Fatal(err)
	}
	if err := e.Report("zero", geo.Point{X: 1, Y: 2}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Report("zero", geo.Point{X: 3, Y: 4}, time.Time{}.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, e)
	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, e2); !bytes.Equal(got, want) {
		t.Error("zero-time reports replayed differently")
	}
}

func TestApplyRecordCorruption(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"unknown tag": {99, 0},
		"short":       {recReport, 5, 'a'},
		"trailing":    append(encodeRequest(nil, "u", geo.Point{X: 1, Y: 2}), 0xFF),
	}
	for name, rec := range cases {
		if err := e.ApplyRecord(rec); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("%s: ApplyRecord = %v, want ErrCorruptRecord", name, err)
		}
	}
}

// failingDur simulates a dead log device.
type failingDur struct{}

func (failingDur) Append([]byte) (uint64, error) { return 0, errors.New("disk on fire") }
func (failingDur) NextLSN() uint64               { return 0 }

func TestAppendFailureSurfaces(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	e.SetDurability(failingDur{})
	err = e.Report("alice", geo.Point{X: 1, Y: 2}, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("disk on fire")) {
		t.Fatalf("Report with failing log = %v, want append error", err)
	}
	// Crash-equivalent semantics: the state change IS applied, only
	// unacknowledged.
	if got := e.Users(); len(got) != 1 {
		t.Errorf("user not applied: %v", got)
	}
	e.SetDurability(nil)
	if err := e.Report("alice", geo.Point{X: 2, Y: 3}, time.Date(2021, 1, 1, 0, 1, 0, 0, time.UTC)); err != nil {
		t.Errorf("detached engine still failing: %v", err)
	}
}

func TestRecoverRejectsNonEmptyEngine(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Report("alice", geo.Point{X: 1, Y: 1}, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := e.Recover(st); err == nil {
		t.Error("Recover into a live engine accepted")
	}
}
