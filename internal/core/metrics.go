package core

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// defaultSelectionSampleEvery is the latency-sampling period of the
// output-selection path. A selection takes a few hundred nanoseconds —
// comparable to a single clock read — so timing every request would cost
// more than the work being measured. Counters stay exact; only the
// latency histogram is sampled.
const defaultSelectionSampleEvery = 32

// engineMetrics holds the engine's telemetry handles. All fields are
// resolved once at Instrument time so the hot path never touches the
// registry.
type engineMetrics struct {
	reports          *telemetry.Counter
	tableHits        *telemetry.Counter
	nomadic          *telemetry.Counter
	budgetDenied     *telemetry.Counter
	rebuilds         *telemetry.Counter
	rebuildSeconds   *telemetry.Histogram
	selectionSeconds *telemetry.Histogram

	// sampleEvery selects every Nth table hit for latency timing; it is
	// fixed before traffic starts. tick is the shared sampling cursor.
	sampleEvery uint64
	tick        atomic.Uint64
}

// sampleStart returns a start time for this observation when it is
// selected by the sampling period, the zero time otherwise.
func (m *engineMetrics) sampleStart() time.Time {
	if m.sampleEvery <= 1 || m.tick.Add(1)%m.sampleEvery == 0 {
		return time.Now()
	}
	return time.Time{}
}

// Instrument registers the engine's runtime metrics — the live analogue
// of the paper's Tables II/III per-stage timings — with reg and starts
// recording. Counters: engine_reports_total, engine_table_hits_total,
// engine_nomadic_total, engine_budget_denied_total,
// engine_rebuilds_total. Histograms: engine_rebuild_seconds,
// engine_selection_seconds. Gauges (computed from the engine's O(1)
// stats, see Stats): engine_users, engine_protected_tops,
// engine_candidates. Safe to call while serving; per-observation cost is
// a few atomic adds.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	m := &engineMetrics{
		reports:          reg.Counter("engine_reports_total", "Check-ins ingested by the location management module."),
		tableHits:        reg.Counter("engine_table_hits_total", "Ad requests answered from the permanent obfuscation table."),
		nomadic:          reg.Counter("engine_nomadic_total", "Ad requests answered with fresh nomadic noise."),
		budgetDenied:     reg.Counter("engine_budget_denied_total", "Nomadic requests refused because the privacy budget was exhausted."),
		rebuilds:         reg.Counter("engine_rebuilds_total", "Profile rebuilds (window rollovers and forced)."),
		rebuildSeconds:   reg.Histogram("engine_rebuild_seconds", "Profile rebuild duration (clustering + obfuscation), the live Table II.", nil),
		selectionSeconds: reg.Histogram("engine_selection_seconds", "Posterior output selection duration (sampled), the live Table III.", nil),
		sampleEvery:      defaultSelectionSampleEvery,
	}
	reg.GaugeFunc("engine_users", "Users known to the engine.", func() float64 {
		return float64(e.nUsers.Load())
	})
	reg.GaugeFunc("engine_protected_tops", "Top locations recorded in permanent obfuscation tables.", func() float64 {
		return float64(e.nTops.Load())
	})
	reg.GaugeFunc("engine_candidates", "Obfuscated candidates recorded across all tables.", func() float64 {
		return float64(e.nCandidates.Load())
	})
	reg.GaugeFunc("core_resident_users", "Users whose state is resident in memory (engine_users minus the spilled cold tier).", func() float64 {
		return float64(e.nResident.Load())
	})
	reg.CounterFunc("core_evictions_total", "Users evicted from the resident tier into spill files.", func() uint64 {
		return e.nEvictions.Load()
	})
	reg.CounterFunc("core_faultins_total", "Spilled users faulted back into residency.", func() uint64 {
		return e.nFaultIns.Load()
	})
	reg.CounterFunc("core_spill_errors_total", "Eviction attempts that failed (the user stayed resident).", func() uint64 {
		return e.nSpillErrs.Load()
	})
	e.met.Store(m)
}

// EngineStats is a point-in-time aggregate of the engine's per-user
// state, maintained with atomic counters on report/rebuild so reading it
// is O(1) — no walk over users or tables.
type EngineStats struct {
	// Users is the number of users the engine has seen.
	Users int
	// ProtectedTops is the number of top locations recorded in permanent
	// obfuscation tables across all users.
	ProtectedTops int
	// Candidates is the total number of obfuscated candidates recorded
	// across all tables.
	Candidates int
}

// Stats returns the engine-wide aggregate counts.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Users:         int(e.nUsers.Load()),
		ProtectedTops: int(e.nTops.Load()),
		Candidates:    int(e.nCandidates.Load()),
	}
}

// noteInsert records a table insertion in the engine-wide stats.
func (e *Engine) noteInsert(entry TableEntry, created bool) {
	if !created {
		return
	}
	e.nTops.Add(1)
	e.nCandidates.Add(int64(len(entry.Candidates)))
}

// observeSince records elapsed time into h when the engine is
// instrumented; start is the zero time otherwise.
func observeSince(h *telemetry.Histogram, start time.Time) {
	if h != nil && !start.IsZero() {
		h.ObserveDuration(time.Since(start))
	}
}
