package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

// TestSnapshotRestoreRoundTrip is the critical privacy property: after a
// restart (snapshot → fresh engine → restore) the permanent obfuscation
// table is byte-identical, so the attacker never sees a second release.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	e1, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 0, Y: 0}
	work := geo.Point{X: 8000, Y: 3000}
	feedUser(t, e1, "alice", home, work)

	tableBefore, err := e1.Table("alice")
	if err != nil {
		t.Fatal(err)
	}
	topsBefore, err := e1.TopLocations("alice")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new engine restores the state.
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	tableAfter, err := e2.Table("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(tableAfter) != len(tableBefore) {
		t.Fatalf("table rows %d vs %d", len(tableAfter), len(tableBefore))
	}
	for i := range tableBefore {
		if tableBefore[i].Top != tableAfter[i].Top {
			t.Fatalf("entry %d top changed across restart", i)
		}
		for j := range tableBefore[i].Candidates {
			if tableBefore[i].Candidates[j] != tableAfter[i].Candidates[j] {
				t.Fatalf("entry %d candidate %d changed across restart — privacy broken", i, j)
			}
		}
	}
	topsAfter, err := e2.TopLocations("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(topsAfter) != len(topsBefore) {
		t.Fatalf("tops %d vs %d", len(topsAfter), len(topsBefore))
	}

	// Requests on the restored engine stay inside the original set.
	allowed := make(map[geo.Point]bool)
	for _, entry := range tableBefore {
		for _, c := range entry.Candidates {
			allowed[c] = true
		}
	}
	for i := 0; i < 100; i++ {
		out, fromTable, err := e2.Request("alice", home)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTable || !allowed[out] {
			t.Fatalf("restored engine escaped the permanent set (fromTable=%v)", fromTable)
		}
	}
}

// TestSnapshotPreservesRandStream: the PRNG continues identically, so a
// snapshotted-and-restored run produces the same outputs as an
// uninterrupted one.
func TestSnapshotPreservesRandStream(t *testing.T) {
	cfg := testConfig(t)
	build := func() *Engine {
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feedUser(t, e, "bob", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})
		return e
	}

	// Uninterrupted run.
	e1 := build()
	var want []geo.Point
	for i := 0; i < 10; i++ {
		out, _, err := e1.Request("bob", geo.Point{X: -30000, Y: -30000})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out)
	}

	// Interrupted run: snapshot after feeding, restore, then request.
	e2 := build()
	var buf bytes.Buffer
	if err := e2.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e3, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		out, _, err := e3.Request("bob", geo.Point{X: -30000, Y: -30000})
		if err != nil {
			t.Fatal(err)
		}
		if out != want[i] {
			t.Fatalf("restored stream diverged at request %d: %v vs %v", i, out, want[i])
		}
	}
}

func TestSnapshotRestorePendingWindow(t *testing.T) {
	cfg := testConfig(t)
	e1, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	// Only pending check-ins, no profile yet.
	for i := 0; i < 30; i++ {
		at = at.Add(time.Hour)
		if err := e1.Report("carol", geo.Point{X: 5, Y: 5}, at); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// The pending window survives: a rebuild on the restored engine
	// produces the profile from those check-ins.
	if err := e2.RebuildProfile("carol", at); err != nil {
		t.Fatal(err)
	}
	tops, err := e2.TopLocations("carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 1 || tops[0].Freq != 30 {
		t.Errorf("restored pending produced tops %+v", tops)
	}
}

func TestRestoreErrors(t *testing.T) {
	cfg := testConfig(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "{not json"},
		{"wrong format", `{"format":"other","version":1,"users":0}` + "\n"},
		{"wrong version", `{"format":"edge-privlocad-state","version":99,"users":0}` + "\n"},
		{"count mismatch", `{"format":"edge-privlocad-state","version":1,"users":3}` + "\n"},
		{"empty id", `{"format":"edge-privlocad-state","version":1,"users":1}` + "\n" + `{"user_id":"","rand_state":""}` + "\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := e.Restore(strings.NewReader(tt.body)); err == nil {
				t.Error("expected error")
			}
		})
	}

	// Restoring over an existing user is rejected.
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUser(t, e2, "dup", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})
	var buf bytes.Buffer
	if err := e2.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(&buf); err == nil {
		t.Error("restore over existing user expected error")
	}
}

// TestRestoreAllOrNothing: a snapshot whose LAST user is corrupt must
// not leak the valid users that preceded it into the engine, nor bump
// the aggregate counters.
func TestRestoreAllOrNothing(t *testing.T) {
	cfg := testConfig(t)
	src, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUser(t, src, "alice", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Header claims 2 users; alice (valid, with a real table) is
	// followed by a user whose PRNG state is corrupt.
	lines := strings.SplitN(buf.String(), "\n", 2)
	mangled := `{"format":"edge-privlocad-state","version":1,"users":2}` + "\n" +
		lines[1] +
		`{"user_id":"mallory","rand_state":"bm90IGEgc3RhdGU="}` + "\n"

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(strings.NewReader(mangled)); err == nil {
		t.Fatal("restore with corrupt trailing user succeeded")
	}
	if got := e.Users(); len(got) != 0 {
		t.Errorf("failed restore leaked users %v", got)
	}
	if st := e.Stats(); st != (EngineStats{}) {
		t.Errorf("failed restore bumped counters: %+v", st)
	}
	// The engine is still usable after the rejected restore.
	if err := e.Restore(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("clean restore after failed one: %v", err)
	}
	if got := e.Users(); len(got) != 1 || got[0] != "alice" {
		t.Errorf("users after clean restore = %v", got)
	}
}

func TestSnapshotFileAtomic(t *testing.T) {
	cfg := testConfig(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUser(t, e, "erin", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})

	path := filepath.Join(t.TempDir(), "state.jsonl")
	if err := e.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	if got := e2.Users(); len(got) != 1 || got[0] != "erin" {
		t.Errorf("restored users = %v", got)
	}
	// Unwritable directory fails cleanly.
	if err := e.SnapshotFile("/nonexistent-dir/state.jsonl"); err == nil {
		t.Error("unwritable snapshot path expected error")
	}
	if err := e2.RestoreFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing snapshot file expected error")
	}
}
