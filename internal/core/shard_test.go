package core

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/randx"
)

// shardTrace builds a deterministic multi-user check-in trace: each user
// orbits two dense anchor clusters (their top locations) with occasional
// nomadic excursions, enough mass for a profile rebuild to find tops.
func shardTrace(users, perUser int, seed uint64) []BatchReport {
	rnd := randx.New(seed, 0x5A4D)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	items := make([]BatchReport, 0, users*perUser)
	for u := 0; u < users; u++ {
		id := fmt.Sprintf("user-%03d", u)
		home := geo.Point{X: float64(u) * 10_000, Y: 5_000}
		work := home.Add(geo.Point{X: 3_000, Y: 1_500})
		for i := 0; i < perUser; i++ {
			var pos geo.Point
			switch {
			case i%10 == 9: // nomadic
				pos = home.Add(geo.Point{X: rnd.Float64() * 40_000, Y: rnd.Float64() * 40_000})
			case i%3 == 0:
				pos = work.Add(rnd.GaussianPolar(8))
			default:
				pos = home.Add(rnd.GaussianPolar(8))
			}
			items = append(items, BatchReport{
				UserID: id,
				Pos:    pos,
				At:     start.Add(time.Duration(i) * time.Hour),
			})
		}
	}
	return items
}

// feedTrace ingests the trace into a fresh engine with the given shard
// count, either one Report at a time (batch == 1) or through ReportBatch
// in chunks, then rebuilds every profile and answers one request per
// check-in. It returns the engine.
func feedTrace(t *testing.T, items []BatchReport, shards, batch int) *Engine {
	t.Helper()
	cfg := testConfig(t)
	cfg.Shards = shards
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batch <= 1 {
		for _, it := range items {
			if err := e.Report(it.UserID, it.Pos, it.At); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		for lo := 0; lo < len(items); lo += batch {
			hi := lo + batch
			if hi > len(items) {
				hi = len(items)
			}
			if errs := e.ReportBatch(items[lo:hi]); len(errs) > 0 {
				t.Fatalf("batch [%d:%d]: %v", lo, hi, errs[0].Err)
			}
		}
	}
	now := items[len(items)-1].At.Add(time.Hour)
	if err := e.RebuildAll(now, 4); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFingerprintIdentityAcrossShardsAndBatches is the PR 4 byte-identity
// audit: the same input trace must leave EVERY engine configuration —
// shard counts {1, 8} × ingestion batch sizes {1, 64} — with bit-equal
// obfuscation tables for every user. Sharding and batching are
// performance knobs; if any of them changed a single candidate bit, the
// longitudinal privacy accounting across deployments would silently
// diverge.
func TestFingerprintIdentityAcrossShardsAndBatches(t *testing.T) {
	items := shardTrace(12, 120, 99)
	ref := feedTrace(t, items, 1, 1)
	refUsers := ref.Users()
	if len(refUsers) != 12 {
		t.Fatalf("reference engine knows %d users, want 12", len(refUsers))
	}
	// Capture the reference answer stream once up front: Request advances
	// the per-user RNG, so it must be consumed exactly once per engine.
	type answer struct {
		at  geo.Point
		out geo.Point
		hit bool
	}
	refAnswers := make(map[string]answer, 3)
	for _, id := range refUsers[:3] {
		tops, err := ref.TopLocations(id)
		if err != nil {
			t.Fatal(err)
		}
		out, hit, err := ref.Request(id, tops[0].Loc)
		if err != nil {
			t.Fatal(err)
		}
		refAnswers[id] = answer{at: tops[0].Loc, out: out, hit: hit}
	}

	for _, tc := range []struct{ shards, batch int }{
		{1, 64}, {8, 1}, {8, 64},
	} {
		t.Run(fmt.Sprintf("shards=%d/batch=%d", tc.shards, tc.batch), func(t *testing.T) {
			e := feedTrace(t, items, tc.shards, tc.batch)
			if got := e.Users(); len(got) != len(refUsers) {
				t.Fatalf("engine knows %d users, want %d", len(got), len(refUsers))
			}
			for _, id := range refUsers {
				want, err := ref.TableFingerprint(id)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.TableFingerprint(id)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("table fingerprint for %s diverged: %x, want %x", id, got, want)
				}
			}
			// The answer stream must agree too: identical tables + identical
			// RNG positions mean identical posterior selections.
			for _, id := range refUsers[:3] {
				want := refAnswers[id]
				gotOut, gotHit, err := e.Request(id, want.at)
				if err != nil {
					t.Fatal(err)
				}
				if gotOut != want.out || gotHit != want.hit {
					t.Errorf("Request for %s diverged: (%v, %v) vs (%v, %v)", id, gotOut, gotHit, want.out, want.hit)
				}
			}
		})
	}
}

// TestHashUserMatchesFNV pins the inlined user hash to the stdlib FNV-64a
// it replaced: the value seeds every user's RNG stream, so an accidental
// drift would change all obfuscation outputs.
func TestHashUserMatchesFNV(t *testing.T) {
	for _, id := range []string{"", "u", "user-001", "日本語", "a-very-long-user-identifier-0123456789"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(id))
		if got, want := hashUser(id), h.Sum64(); got != want {
			t.Errorf("hashUser(%q) = %x, want %x", id, got, want)
		}
	}
}

// TestReportBatchMatchesSequential checks byte-identity of ReportBatch
// against the one-at-a-time path when the batch interleaves users and
// crosses a profile-window rollover mid-batch.
func TestReportBatchMatchesSequential(t *testing.T) {
	cfg := testConfig(t)
	cfg.ProfileWindow = 48 * time.Hour // roll over mid-trace
	start := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	rnd := randx.New(3, 3)
	var items []BatchReport
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("u%d", i%3) // interleaved users
		items = append(items, BatchReport{
			UserID: id,
			Pos:    geo.Point{X: float64(i%3) * 1000, Y: 0}.Add(rnd.GaussianPolar(5)),
			At:     start.Add(time.Duration(i) * time.Hour),
		})
	}

	seq, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := seq.Report(it.UserID, it.Pos, it.At); err != nil {
			t.Fatal(err)
		}
	}
	bat, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if errs := bat.ReportBatch(items); len(errs) > 0 {
		t.Fatalf("ReportBatch: %v", errs[0].Err)
	}

	for _, id := range seq.Users() {
		want, err := seq.TableFingerprint(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bat.TableFingerprint(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("fingerprint for %s: %x, want %x", id, got, want)
		}
	}
	if a, b := seq.Stats(), bat.Stats(); a != b {
		t.Errorf("stats diverged: %+v vs %+v", b, a)
	}
}

// TestReportBatchEmptyAndErrors covers the degenerate shapes: an empty
// batch is a no-op, and per-item indexes in returned errors point at the
// failing input positions.
func TestReportBatchEmptyAndErrors(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if errs := e.ReportBatch(nil); errs != nil {
		t.Errorf("empty batch returned %v", errs)
	}
	if got := e.Stats().Users; got != 0 {
		t.Errorf("empty batch created %d users", got)
	}
}

// TestEngineShardConcurrency hammers the sharded serving path from many
// goroutines — Report, ReportBatch, Request, RebuildAll, Users, Stats,
// Snapshot — and is meaningful primarily under -race (verify.sh runs the
// whole suite with the detector on).
func TestEngineShardConcurrency(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 8
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		perG    = 200
	)
	start := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := randx.New(uint64(g), 0xC0)
			id := fmt.Sprintf("user-%02d", g%5) // force shard and user sharing
			for i := 0; i < perG; i++ {
				pos := geo.Point{X: float64(g) * 100, Y: 0}.Add(rnd.GaussianPolar(10))
				at := start.Add(time.Duration(i) * time.Minute)
				switch i % 4 {
				case 0:
					if errs := e.ReportBatch([]BatchReport{
						{UserID: id, Pos: pos, At: at},
						{UserID: fmt.Sprintf("user-%02d", (g+1)%5), Pos: pos, At: at},
					}); len(errs) > 0 {
						t.Error(errs[0].Err)
						return
					}
				default:
					if err := e.Report(id, pos, at); err != nil {
						t.Error(err)
						return
					}
				}
				if i%16 == 7 {
					_, _, _ = e.Request(id, pos)
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Users()
			_ = e.Stats()
			if err := e.RebuildAll(start.Add(time.Hour), 2); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := e.Stats().Users; got != 5 {
		t.Errorf("engine knows %d users, want 5", got)
	}
}
