package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Memory tiering: the paper's obfuscation table is *permanent* (Section
// V-C — replacing entries is exactly the longitudinal degradation the
// defense prevents), so an edge serving a long-tailed population of
// millions of users would otherwise pay RAM forever for every user it
// has ever seen. With Config.SpillDir set, the engine keeps only the
// recently-touched users resident: the least-recently-touched state
// beyond Config.MaxResidentUsers is serialized into a compact binary
// frame — table (already packed, see table.go), top set, pending
// window, window start, and the exact PCG PRNG position via
// randx.Rand.MarshalState — and appended to a per-shard spill file. The
// next Report/Request/merge touch faults the user back in.
//
// Determinism is sacred: a faulted-in user draws the same PRNG stream,
// holds the same table bytes, and snapshots identically — the engine's
// TableFingerprint and Snapshot output are byte-identical across ANY
// evict/fault-in schedule, a property the audit matrix in
// shard_test.go pins at resident caps {unbounded, tiny}.
//
// The spill tier is scratch, not durability: crash recovery replays the
// WAL (whose logical records are orthogonal to residency — replaying an
// operation on a spilled user simply faults it in), and spill files are
// truncated on open and removed on Close.

// spillFrameVersion versions the evicted-user frame layout.
const spillFrameVersion = 1

// encodeUserFrame serializes one user's complete logical state. The
// caller holds u.mu.
func encodeUserFrame(b []byte, u *userState) ([]byte, error) {
	st, err := u.rnd.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("capturing PRNG state: %w", err)
	}
	b = append(b, spillFrameVersion)
	b = binary.AppendUvarint(b, uint64(len(st)))
	b = append(b, st...)
	if u.hasProfile {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendTime(b, u.windowStart)
	b = binary.AppendUvarint(b, uint64(len(u.pending)))
	for _, c := range u.pending {
		b = appendPoint(b, c.Pos)
		b = appendTime(b, c.Time)
	}
	b = appendTops(b, u.tops)
	return u.table.appendSpill(b), nil
}

// decodeUserFrame rebuilds a userState from encodeUserFrame output.
func (e *Engine) decodeUserFrame(payload []byte) (*userState, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty spill frame", ErrCorruptRecord)
	}
	if payload[0] != spillFrameVersion {
		return nil, fmt.Errorf("%w: spill frame version %d", ErrCorruptRecord, payload[0])
	}
	r := &recReader{b: payload[1:]}
	st := r.bytes("spill rnd state")
	hasProfile := r.bytes1("spill has-profile") == 1
	windowStart := r.time("spill window start")
	np := r.count("spill pending", 17) // 16B point + ≥1B time
	pending := make([]trace.CheckIn, 0, np)
	for i := 0; i < np; i++ {
		pos := r.point("spill pending pos")
		at := r.time("spill pending time")
		pending = append(pending, trace.CheckIn{Pos: pos, Time: at})
	}
	nt := r.count("spill tops", 17) // 16B point + ≥1B freq
	var tops profile.Profile
	if nt > 0 {
		tops = make(profile.Profile, 0, nt)
		for i := 0; i < nt; i++ {
			loc := r.point("spill top loc")
			freq := r.varint("spill top freq")
			tops = append(tops, profile.LocationFreq{Loc: loc, Freq: int(freq)})
		}
	}
	table, err := NewObfuscationTable(e.cfg.ConnectivityThreshold)
	if err != nil {
		return nil, fmt.Errorf("core: fault-in table: %w", err)
	}
	table.loadSpill(r)
	if err := r.done("spill frame"); err != nil {
		return nil, err
	}
	rnd, err := randx.NewFromState(st)
	if err != nil {
		return nil, fmt.Errorf("core: fault-in PRNG state: %w", err)
	}
	if np == 0 {
		pending = nil
	}
	return &userState{
		rnd:         rnd,
		pending:     pending,
		windowStart: windowStart,
		tops:        tops,
		hasProfile:  hasProfile,
		table:       table,
	}, nil
}

// bytes reads a uvarint-length-prefixed byte string.
func (r *recReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

// bytes1 reads a single byte.
func (r *recReader) bytes1(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// i64le reads a fixed 8-byte little-endian int64.
func (r *recReader) i64le(what string) int64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// appendSpill serializes the packed table: an entry-header section
// (top, created-nanos, candidate count), then the candidate arena
// verbatim. The layout is a direct dump of the flat representation —
// fault-in is array reconstruction, not per-entry re-insertion.
func (t *ObfuscationTable) appendSpill(b []byte) []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b = binary.AppendUvarint(b, uint64(len(t.tops)))
	for i := range t.tops {
		b = appendPoint(b, t.tops[i])
		b = binary.LittleEndian.AppendUint64(b, uint64(t.createdNs[i]))
		b = binary.AppendUvarint(b, uint64(len(t.candsLocked(i))))
	}
	for _, p := range t.arena {
		b = appendPoint(b, p)
	}
	return b
}

// loadSpill fills an empty table from appendSpill output. The spatial
// index stays unbuilt: a faulted-in table is cold by definition and
// rebuilds its index on demand (see Lookup).
func (t *ObfuscationTable) loadSpill(r *recReader) {
	n := r.count("spill table entries", 25) // 16B top + 8B nanos + ≥1B count
	if n == 0 {
		return
	}
	t.tops = make([]geo.Point, 0, n)
	t.createdNs = make([]int64, 0, n)
	t.offs = make([]uint32, 0, n)
	var total uint64
	for i := 0; i < n; i++ {
		t.tops = append(t.tops, r.point("spill table top"))
		t.createdNs = append(t.createdNs, r.i64le("spill table created"))
		cn := r.uvarint("spill table cand count")
		if total+cn > uint64(math.MaxUint32) {
			r.fail("spill table arena size")
			return
		}
		t.offs = append(t.offs, uint32(total))
		total += cn
	}
	if r.err != nil || total > uint64(len(r.b))/16 {
		r.fail("spill table arena")
		return
	}
	t.arena = make([]geo.Point, 0, total)
	for j := uint64(0); j < total; j++ {
		t.arena = append(t.arena, r.point("spill table candidate"))
	}
}

// ensureSpillLocked opens the shard's spill file on first use. The
// caller holds s.mu.
func (e *Engine) ensureSpillLocked(s *engineShard) error {
	if s.spill != nil {
		return nil
	}
	sf, err := wal.OpenSpill(filepath.Join(e.cfg.SpillDir, fmt.Sprintf("spill-%04x.dat", s.idx)))
	if err != nil {
		return fmt.Errorf("core: opening shard %d spill file: %w", s.idx, err)
	}
	s.spill = sf
	if s.spilled == nil {
		s.spilled = make(map[string]spillMeta)
	}
	return nil
}

// evictLocked serializes u into the shard's spill file and drops it
// from the resident tier. The caller holds s.mu and u.mu; on success u
// is marked gone and any other holder of the pointer re-resolves
// through lockUser.
func (e *Engine) evictLocked(s *engineShard, id string, u *userState) error {
	if err := e.ensureSpillLocked(s); err != nil {
		return err
	}
	bp := recBufPool.Get().(*[]byte)
	payload, err := encodeUserFrame((*bp)[:0], u)
	if err == nil {
		err = s.spill.Put(id, payload)
	}
	*bp = payload[:0]
	recBufPool.Put(bp)
	if err != nil {
		return fmt.Errorf("core: evicting %q: %w", id, err)
	}
	s.spilled[id] = spillMeta{pending: len(u.pending)}
	delete(s.users, id)
	u.gone = true
	e.nResident.Add(-1)
	e.nEvictions.Add(1)
	return nil
}

// faultInLocked loads a spilled user back into residency. The caller
// holds s.mu and has found id in s.spilled.
func (e *Engine) faultInLocked(s *engineShard, id string) (*userState, error) {
	payload, ok, err := s.spill.Get(id, nil)
	if err != nil {
		return nil, fmt.Errorf("core: faulting in %q: %w", id, err)
	}
	if !ok {
		return nil, fmt.Errorf("core: spilled user %q missing from spill file", id)
	}
	u, err := e.decodeUserFrame(payload)
	if err != nil {
		return nil, fmt.Errorf("core: faulting in %q: %w", id, err)
	}
	delete(s.spilled, id)
	s.spill.Delete(id)
	s.users[id] = u
	e.nResident.Add(1)
	e.nFaultIns.Add(1)
	return u, nil
}

// enforceQuotaLocked evicts least-recently-touched residents until the
// shard is back under its quota. keep (the user the caller is about to
// operate on) is never evicted. Best-effort: victims whose locks are
// contended are skipped, and a spill error stops the sweep (the shard
// just stays over quota until the next touch). The caller holds s.mu.
func (e *Engine) enforceQuotaLocked(s *engineShard, keep *userState) {
	if e.residentQuota <= 0 {
		return
	}
	for len(s.users) > e.residentQuota {
		if !e.evictOneLocked(s, keep) {
			return
		}
	}
}

// evictOneLocked evicts the least-recently-touched evictable resident.
// The caller holds s.mu.
func (e *Engine) evictOneLocked(s *engineShard, keep *userState) bool {
	var skipped map[*userState]bool
	for attempt := 0; attempt < 8; attempt++ {
		var victimID string
		var victim *userState
		oldest := int64(math.MaxInt64)
		for id, u := range s.users {
			if u == keep || skipped[u] {
				continue
			}
			if t := u.lastTouch.Load(); t < oldest {
				oldest = t
				victimID, victim = id, u
			}
		}
		if victim == nil {
			return false
		}
		// TryLock, never Lock: the victim's holder may be mid-operation,
		// and blocking here while holding s.mu would stall the whole
		// shard. Eviction choice never affects logical state, so skipping
		// a busy victim is always sound.
		if victim.mu.TryLock() {
			err := e.evictLocked(s, victimID, victim)
			victim.mu.Unlock()
			if err != nil {
				e.nSpillErrs.Add(1)
				return false
			}
			return true
		}
		if skipped == nil {
			skipped = make(map[*userState]bool)
		}
		skipped[victim] = true
	}
	return false
}

// EvictIdle sweeps every shard and evicts residents whose last touch is
// at least minIdle ago (0 evicts everything not actively locked). It
// returns the number of users evicted. Requires Config.SpillDir; the
// sweep is how a deployment without a hard resident cap still sheds its
// cold tail on a timer (edged -evict-idle).
func (e *Engine) EvictIdle(minIdle time.Duration) (int, error) {
	if !e.tiered() {
		return 0, fmt.Errorf("core: EvictIdle requires Config.SpillDir")
	}
	cutoff := time.Now().Add(-minIdle).UnixNano()
	total := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		ids := make([]string, 0, len(s.users))
		for id, u := range s.users {
			if u.lastTouch.Load() <= cutoff {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			u, ok := s.users[id]
			if !ok || !u.mu.TryLock() {
				continue
			}
			err := e.evictLocked(s, id, u)
			u.mu.Unlock()
			if err != nil {
				e.nSpillErrs.Add(1)
				break
			}
			total++
		}
		s.mu.Unlock()
	}
	return total, nil
}

// viewUser returns a read-consistent view of the user's state with its
// lock held (release it via the returned func). Spilled users are
// decoded into a private transient state instead of being promoted —
// read-only paths (fingerprints, snapshots, stats endpoints) must not
// churn the resident set.
func (e *Engine) viewUser(userID string) (*userState, func(), error) {
	s, _ := e.shardFor(userID)
	for {
		s.mu.RLock()
		if u, ok := s.users[userID]; ok {
			s.mu.RUnlock()
			u.mu.Lock()
			if !u.gone {
				return u, u.mu.Unlock, nil
			}
			u.mu.Unlock()
			continue // evicted between resolve and lock; re-resolve
		}
		if _, ok := s.spilled[userID]; ok {
			payload, ok, err := s.spill.Get(userID, nil)
			s.mu.RUnlock()
			if err != nil {
				return nil, nil, fmt.Errorf("core: reading spilled %q: %w", userID, err)
			}
			if !ok {
				continue // raced with a concurrent fault-in; re-resolve
			}
			u, err := e.decodeUserFrame(payload)
			if err != nil {
				return nil, nil, fmt.Errorf("core: reading spilled %q: %w", userID, err)
			}
			return u, func() {}, nil
		}
		s.mu.RUnlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
}

// TierStats is a point-in-time view of the memory tier.
type TierStats struct {
	// Resident is the number of users whose state is in memory.
	Resident int
	// Spilled is the number of users currently in the cold tier.
	Spilled int
	// Evictions and FaultIns count tier transitions since start.
	Evictions uint64
	FaultIns  uint64
	// SpillErrors counts failed eviction attempts (the user simply
	// stayed resident).
	SpillErrors uint64
}

// TierStats returns the memory-tier counters; all O(1) atomics.
func (e *Engine) TierStats() TierStats {
	resident := e.nResident.Load()
	return TierStats{
		Resident:    int(resident),
		Spilled:     int(e.nUsers.Load() - resident),
		Evictions:   e.nEvictions.Load(),
		FaultIns:    e.nFaultIns.Load(),
		SpillErrors: e.nSpillErrs.Load(),
	}
}

// Close releases the cold tier's spill files (deleting them — spilled
// state never outlives the process; durability is the WAL's job). The
// engine must not serve after Close: spilled users would fail to fault
// in.
func (e *Engine) Close() error {
	var first error
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		if s.spill != nil {
			if err := s.spill.Close(); err != nil && first == nil {
				first = err
			}
			s.spill = nil
		}
		s.mu.Unlock()
	}
	return first
}
