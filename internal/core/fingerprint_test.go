package core

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/randx"
)

func TestTableFingerprint(t *testing.T) {
	a, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	// Unknown users hash to the empty-table fingerprint on every engine:
	// a replica that never saw the user agrees with an empty obfuscator.
	fa, err := a.TableFingerprint("ghost")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.TableFingerprint("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("empty fingerprints differ: %x vs %x", fa, fb)
	}

	tops := profile.Profile{
		{Loc: geo.Point{X: 100, Y: 100}, Freq: 50},
		{Loc: geo.Point{X: 9000, Y: 0}, Freq: 20},
	}
	now := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := a.InstallTops("u", tops, now); err != nil {
		t.Fatal(err)
	}
	full, err := a.TableFingerprint("u")
	if err != nil {
		t.Fatal(err)
	}
	if full == fa {
		t.Fatal("populated table hashed like an empty one")
	}

	// Replicating a's table into b converges the fingerprints; the import
	// is idempotent so replaying it changes nothing.
	entries, err := a.Table("u")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.ImportTable("u", entries); err != nil {
			t.Fatal(err)
		}
		got, err := b.TableFingerprint("u")
		if err != nil {
			t.Fatal(err)
		}
		if got != full {
			t.Fatalf("replay %d: replica fingerprint %x != obfuscator %x", i, got, full)
		}
	}

	// The fingerprint is order- and content-sensitive: an engine that
	// obfuscates the same tops itself (different candidates) must differ.
	ccfg := testConfig(t)
	ccfg.Seed = 999
	c, err := NewEngine(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallTops("u", tops, now); err != nil {
		t.Fatal(err)
	}
	indep, err := c.TableFingerprint("u")
	if err != nil {
		t.Fatal(err)
	}
	if indep == full {
		t.Fatal("independently obfuscated table collided with the replica")
	}
}

func TestFingerprintChain(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	tops := profile.Profile{
		{Loc: geo.Point{X: 100, Y: 100}, Freq: 50},
		{Loc: geo.Point{X: 9000, Y: 0}, Freq: 20},
		{Loc: geo.Point{X: 3000, Y: 7000}, Freq: 11},
	}
	now := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := e.InstallTops("u", tops, now); err != nil {
		t.Fatal(err)
	}
	entries, err := e.Table("u")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("want >= 3 entries, got %d", len(entries))
	}

	// The exported chain agrees with the engine's own digest.
	engineFP, err := e.TableFingerprint("u")
	if err != nil {
		t.Fatal(err)
	}
	if got := FingerprintTable(entries); got != engineFP {
		t.Fatalf("FingerprintTable = %x, engine digest %x", got, engineFP)
	}
	if got := FingerprintTable(nil); got != FingerprintSeed {
		t.Fatalf("empty fingerprint = %x, want seed %x", got, FingerprintSeed)
	}

	// Prefix property: extending the fingerprint of any prefix with the
	// remaining suffix reproduces the full digest — the invariant that
	// lets delta replication verify a replica's table by content before
	// shipping only the suffix.
	for k := 0; k <= len(entries); k++ {
		prefix := FingerprintTable(entries[:k])
		if got := ExtendFingerprint(prefix, entries[k:]); got != engineFP {
			t.Errorf("split at %d: extend(%x, suffix) = %x, want %x", k, prefix, got, engineFP)
		}
		if k < len(entries) && prefix == engineFP {
			t.Errorf("split at %d: prefix digest collided with the full table", k)
		}
	}

	// TableLen matches without copying; unknown users have length 0.
	if n, err := e.TableLen("u"); err != nil || n != len(entries) {
		t.Fatalf("TableLen = %d, %v; want %d", n, err, len(entries))
	}
	if n, err := e.TableLen("ghost"); err != nil || n != 0 {
		t.Fatalf("TableLen(ghost) = %d, %v; want 0, nil", n, err)
	}
}

func TestSyncTopsPreservesWindow(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 10, Y: 10}
	rnd := randx.New(4, 1)
	at := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 25; i++ {
		at = at.Add(time.Hour)
		if err := e.Report("u", home.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}

	tops := profile.Profile{{Loc: geo.Point{X: 5000, Y: 5000}, Freq: 9}}

	// SyncTops (journal catch-up path) updates tops and table but keeps
	// the pending check-ins: they were never part of a merge round and
	// must survive to contribute to the next one.
	if err := e.SyncTops("u", tops, at); err != nil {
		t.Fatal(err)
	}
	pending, err := e.PendingProfile("u")
	if err != nil {
		t.Fatal(err)
	}
	if pending.Total() != 25 {
		t.Errorf("SyncTops consumed pending check-ins: total = %d, want 25", pending.Total())
	}
	got, err := e.TopLocations("u")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Loc != tops[0].Loc {
		t.Errorf("tops after SyncTops = %+v", got)
	}

	// InstallTops (live merge path) consumes the window.
	if err := e.InstallTops("u", tops, at); err != nil {
		t.Fatal(err)
	}
	empty, err := e.PendingProfile("u")
	if err != nil {
		t.Fatal(err)
	}
	if empty != nil {
		t.Errorf("InstallTops left pending check-ins: %+v", empty)
	}

	// Both paths obfuscate a given top once: the table is identical.
	f1, err := e.TableFingerprint("u")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SyncTops("u", tops, at.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	f2, err := e.TableFingerprint("u")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Errorf("replaying SyncTops changed the table: %x -> %x", f1, f2)
	}
}
