// Package core implements the Edge-PrivLocAd engine of the paper
// (Section V): the location management module (windowed profile
// construction and η-frequent top-location sets), the location
// obfuscation module (a permanent obfuscation table mapping every top
// location to its n-fold Gaussian candidate set), and the output
// selection module (posterior-based sampling, Algorithm 4), together with
// the AOI-based ad filtering the edge performs on behalf of the user.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// TableEntry is one row of the obfuscation table T: a top location and
// its permanently recorded obfuscated candidates.
type TableEntry struct {
	// Top is the true top location this entry protects.
	Top geo.Point `json:"top"`
	// Candidates are the obfuscated locations generated once and reused
	// for every exposure of Top.
	Candidates []geo.Point `json:"candidates"`
	// CreatedAt records when the entry was generated.
	CreatedAt time.Time `json:"created_at"`
}

// ObfuscationTable is the permanent mapping T from top locations to their
// obfuscated candidate sets (Section V-C). Entries are never replaced:
// re-obfuscating a top location on later profile rebuilds would degrade
// privacy exactly the way the longitudinal attack exploits, so lookups
// match any previously recorded top within the match radius.
//
// The table is safe for concurrent use.
type ObfuscationTable struct {
	mu          sync.RWMutex
	matchRadius float64
	entries     []TableEntry
	index       *spatial.Grid
}

// NewObfuscationTable builds an empty table. matchRadius decides when a
// newly computed top location is "the same place" as a recorded one;
// the paper's 50 m connectivity threshold is the natural choice.
func NewObfuscationTable(matchRadius float64) (*ObfuscationTable, error) {
	if !(matchRadius > 0) || math.IsInf(matchRadius, 0) {
		return nil, fmt.Errorf("core: table match radius %g must be positive and finite", matchRadius)
	}
	index, err := spatial.NewGrid(matchRadius)
	if err != nil {
		return nil, fmt.Errorf("core: table index: %w", err)
	}
	return &ObfuscationTable{matchRadius: matchRadius, index: index}, nil
}

// MatchRadius returns the configured identity radius.
func (t *ObfuscationTable) MatchRadius() float64 {
	return t.matchRadius
}

// Len returns the number of recorded top locations.
func (t *ObfuscationTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Lookup returns the entry whose top location is nearest to p within the
// match radius. The boolean reports whether such an entry exists.
func (t *ObfuscationTable) Lookup(p geo.Point) (TableEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.lookupLocked(p)
	if !ok {
		return TableEntry{}, false
	}
	return t.entries[id], true
}

// lookupLocked returns the index of the nearest entry within matchRadius.
func (t *ObfuscationTable) lookupLocked(p geo.Point) (int, bool) {
	best := -1
	bestD2 := t.matchRadius * t.matchRadius
	t.index.ForEachWithin(p, t.matchRadius, func(id int, top geo.Point) {
		if d2 := top.Dist2(p); d2 <= bestD2 {
			bestD2 = d2
			best = id
		}
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Insert records candidates for a top location unless an entry for that
// location already exists; it returns the authoritative entry and whether
// a new entry was created. This "check-then-record-permanently" semantic
// is Algorithm 3's contract in the system (Section V-C).
func (t *ObfuscationTable) Insert(top geo.Point, candidates []geo.Point, at time.Time) (TableEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.lookupLocked(top); ok {
		return t.entries[id], false
	}
	cs := make([]geo.Point, len(candidates))
	copy(cs, candidates)
	entry := TableEntry{Top: top, Candidates: cs, CreatedAt: at}
	id := len(t.entries)
	t.entries = append(t.entries, entry)
	t.index.Insert(id, top)
	return entry, true
}

// Entries returns a copy of all rows, in insertion order.
// State returns the table's length and fingerprint-chain digest in one
// read-locked pass, without copying entries — the cheap content proof
// replication uses to decide how much of the table a replica already
// holds.
func (t *ObfuscationTable) State() (int, uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries), FingerprintTable(t.entries)
}

func (t *ObfuscationTable) Entries() []TableEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TableEntry, len(t.entries))
	copy(out, t.entries)
	return out
}
