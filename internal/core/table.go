// Package core implements the Edge-PrivLocAd engine of the paper
// (Section V): the location management module (windowed profile
// construction and η-frequent top-location sets), the location
// obfuscation module (a permanent obfuscation table mapping every top
// location to its n-fold Gaussian candidate set), and the output
// selection module (posterior-based sampling, Algorithm 4), together with
// the AOI-based ad filtering the edge performs on behalf of the user.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// TableEntry is one row of the obfuscation table T: a top location and
// its permanently recorded obfuscated candidates.
type TableEntry struct {
	// Top is the true top location this entry protects.
	Top geo.Point `json:"top"`
	// Candidates are the obfuscated locations generated once and reused
	// for every exposure of Top. Entries returned by table accessors
	// share the table's backing storage: treat Candidates as read-only.
	Candidates []geo.Point `json:"candidates"`
	// CreatedAt records when the entry was generated.
	CreatedAt time.Time `json:"created_at"`
}

// ObfuscationTable is the permanent mapping T from top locations to their
// obfuscated candidate sets (Section V-C). Entries are never replaced:
// re-obfuscating a top location on later profile rebuilds would degrade
// privacy exactly the way the longitudinal attack exploits, so lookups
// match any previously recorded top within the match radius.
//
// The table is stored packed, not boxed: all candidate points live in one
// contiguous arena with per-entry offsets, tops and creation instants in
// parallel flat slices. At a million resident users this is the
// difference between three slice headers plus a map-backed spatial index
// per user and a handful of cache-friendly arrays — and it makes the
// evict/fault-in codec a straight array copy. Creation instants are held
// as int64 unix-nanos and materialized as UTC time.Time values on read;
// the zero time is kept distinct with a sentinel so "no timestamp"
// round-trips exactly.
//
// The spatial index over tops is built lazily, only once a table has
// enough entries that linear nearest-neighbour scans stop being cheaper
// than the index's maps — so the long tail of cold users with a few
// entries (and every freshly faulted-in table) never pays for a resident
// spatial.Grid at all.
//
// The table is safe for concurrent use.
type ObfuscationTable struct {
	mu          sync.RWMutex
	matchRadius float64
	tops        []geo.Point
	createdNs   []int64
	offs        []uint32 // entry i's candidates are arena[offs[i]:offs[i+1]] (end = len(arena) for the last entry)
	arena       []geo.Point
	index       *spatial.Grid // nil until the table outgrows linear scans
}

// tableIndexThreshold is the entry count at which a table builds its
// spatial index. Below it a linear scan over the flat tops slice is
// both faster and far smaller than the grid's maps.
const tableIndexThreshold = 32

// zeroCreatedNs is the in-table sentinel for the zero time.Time.
// time.Time{}.UnixNano() overflows (its instant predates the int64
// nanosecond range), so the zero value needs an explicit marker to
// survive the packed encoding; MinInt64 is unreachable by any
// representable instant.
const zeroCreatedNs = math.MinInt64

// zeroTimeUnixNano is the (overflowed, but deterministic) value
// time.Time{}.UnixNano() yields — the value fingerprints have always
// folded for a zero CreatedAt, preserved for chain compatibility.
var zeroTimeUnixNano = time.Time{}.UnixNano()

// timeToNanos packs a creation instant for the flat layout.
func timeToNanos(t time.Time) int64 {
	if t.IsZero() {
		return zeroCreatedNs
	}
	return t.UnixNano()
}

// nanosToTime is the inverse of timeToNanos. Instants come back in UTC:
// all serving inputs are UTC already (the wire codec normalizes on
// decode), and a fixed zone keeps snapshot bytes host-independent.
func nanosToTime(ns int64) time.Time {
	if ns == zeroCreatedNs {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// fingerprintNanos maps a packed creation instant to the value the
// fingerprint chain folds (see ExtendFingerprint).
func fingerprintNanos(ns int64) int64 {
	if ns == zeroCreatedNs {
		return zeroTimeUnixNano
	}
	return ns
}

// NewObfuscationTable builds an empty table. matchRadius decides when a
// newly computed top location is "the same place" as a recorded one;
// the paper's 50 m connectivity threshold is the natural choice.
func NewObfuscationTable(matchRadius float64) (*ObfuscationTable, error) {
	if !(matchRadius > 0) || math.IsInf(matchRadius, 0) {
		return nil, fmt.Errorf("core: table match radius %g must be positive and finite", matchRadius)
	}
	return &ObfuscationTable{matchRadius: matchRadius}, nil
}

// MatchRadius returns the configured identity radius.
func (t *ObfuscationTable) MatchRadius() float64 {
	return t.matchRadius
}

// Len returns the number of recorded top locations.
func (t *ObfuscationTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tops)
}

// candsLocked returns entry i's candidate window of the arena. The
// caller holds t.mu (either side).
func (t *ObfuscationTable) candsLocked(i int) []geo.Point {
	end := len(t.arena)
	if i+1 < len(t.offs) {
		end = int(t.offs[i+1])
	}
	return t.arena[t.offs[i]:end:end]
}

// entryLocked materializes entry i. Candidates alias the arena (the
// same sharing the boxed layout's Entries had): read-only by contract.
func (t *ObfuscationTable) entryLocked(i int) TableEntry {
	return TableEntry{
		Top:        t.tops[i],
		Candidates: t.candsLocked(i),
		CreatedAt:  nanosToTime(t.createdNs[i]),
	}
}

// Lookup returns the entry whose top location is nearest to p within the
// match radius. The boolean reports whether such an entry exists.
func (t *ObfuscationTable) Lookup(p geo.Point) (TableEntry, bool) {
	t.mu.RLock()
	if t.index == nil && len(t.tops) >= tableIndexThreshold {
		// The table has outgrown linear scans but holds no index (cold:
		// freshly faulted in, or just past the threshold). Upgrade to the
		// write lock and build it on demand.
		t.mu.RUnlock()
		t.mu.Lock()
		t.ensureIndexLocked()
		id, ok := t.lookupLocked(p)
		var entry TableEntry
		if ok {
			entry = t.entryLocked(id)
		}
		t.mu.Unlock()
		return entry, ok
	}
	defer t.mu.RUnlock()
	id, ok := t.lookupLocked(p)
	if !ok {
		return TableEntry{}, false
	}
	return t.entryLocked(id), true
}

// lookupLocked returns the index of the nearest entry within matchRadius,
// via the spatial index when present and a flat scan otherwise.
func (t *ObfuscationTable) lookupLocked(p geo.Point) (int, bool) {
	best := -1
	bestD2 := t.matchRadius * t.matchRadius
	if t.index != nil {
		t.index.ForEachWithin(p, t.matchRadius, func(id int, top geo.Point) {
			if d2 := top.Dist2(p); d2 <= bestD2 {
				bestD2 = d2
				best = id
			}
		})
	} else {
		for id := range t.tops {
			if d2 := t.tops[id].Dist2(p); d2 <= bestD2 {
				bestD2 = d2
				best = id
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// ensureIndexLocked builds the spatial index over the recorded tops if
// the table is large enough to want one. The caller holds the write
// lock.
func (t *ObfuscationTable) ensureIndexLocked() {
	if t.index != nil || len(t.tops) < tableIndexThreshold {
		return
	}
	index, err := spatial.NewGrid(t.matchRadius)
	if err != nil {
		return // validated radius; unreachable, but a nil index only costs linear scans
	}
	for id, top := range t.tops {
		index.Insert(id, top)
	}
	t.index = index
}

// Insert records candidates for a top location unless an entry for that
// location already exists; it returns the authoritative entry and whether
// a new entry was created. This "check-then-record-permanently" semantic
// is Algorithm 3's contract in the system (Section V-C).
func (t *ObfuscationTable) Insert(top geo.Point, candidates []geo.Point, at time.Time) (TableEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureIndexLocked()
	if id, ok := t.lookupLocked(top); ok {
		return t.entryLocked(id), false
	}
	id := t.appendLocked(top, timeToNanos(at), candidates)
	return t.entryLocked(id), true
}

// appendLocked appends one entry to the packed layout (no duplicate
// check) and returns its index. The caller holds the write lock.
func (t *ObfuscationTable) appendLocked(top geo.Point, createdNs int64, candidates []geo.Point) int {
	id := len(t.tops)
	t.tops = append(t.tops, top)
	t.createdNs = append(t.createdNs, createdNs)
	t.offs = append(t.offs, uint32(len(t.arena)))
	t.arena = append(t.arena, candidates...)
	if t.index != nil {
		t.index.Insert(id, top)
	}
	return id
}

// State returns the table's length and fingerprint-chain digest in one
// read-locked pass, without materializing entries — the cheap content
// proof replication uses to decide how much of the table a replica
// already holds.
func (t *ObfuscationTable) State() (int, uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tops), t.extendFingerprintLocked(FingerprintSeed, 0)
}

// extendFingerprintLocked folds entries[from:] onto fp straight from the
// packed layout, bit-equal to ExtendFingerprint over the materialized
// entries. The caller holds t.mu (either side).
func (t *ObfuscationTable) extendFingerprintLocked(fp uint64, from int) uint64 {
	for i := from; i < len(t.tops); i++ {
		fp = fnvWord(fp, math.Float64bits(t.tops[i].X))
		fp = fnvWord(fp, math.Float64bits(t.tops[i].Y))
		fp = fnvWord(fp, uint64(fingerprintNanos(t.createdNs[i])))
		cands := t.candsLocked(i)
		fp = fnvWord(fp, uint64(len(cands)))
		for _, c := range cands {
			fp = fnvWord(fp, math.Float64bits(c.X))
			fp = fnvWord(fp, math.Float64bits(c.Y))
		}
	}
	return fp
}

// Entries returns all rows in insertion order. Candidate slices alias
// the table's arena (read-only by contract), so the cost is one slice
// of entry headers, not a deep copy.
func (t *ObfuscationTable) Entries() []TableEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TableEntry, len(t.tops))
	for i := range t.tops {
		out[i] = t.entryLocked(i)
	}
	return out
}
