package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/wal"
)

// Engine errors.
var (
	// ErrUnknownUser reports an operation on a user the engine has never
	// seen a report from.
	ErrUnknownUser = errors.New("core: unknown user")
	// ErrNoProfile reports that a user has no computed top-location
	// profile yet (no window has closed).
	ErrNoProfile = errors.New("core: no location profile computed yet")
	// ErrBudgetExhausted reports that a user's cumulative nomadic privacy
	// budget is spent; the edge refuses further fresh-noise exposures.
	ErrBudgetExhausted = errors.New("core: nomadic privacy budget exhausted")
)

// Config parameterises the engine.
type Config struct {
	// Mechanism protects top locations; the paper uses the n-fold
	// Gaussian mechanism. Required.
	Mechanism geoind.Mechanism
	// NomadicMechanism protects rarely-visited locations with per-report
	// noise; the paper motivates one-time geo-IND (planar Laplace) for
	// these. Required.
	NomadicMechanism geoind.Mechanism
	// ConnectivityThreshold clusters check-ins into locations; ≤ 0 selects
	// the paper's 50 m.
	ConnectivityThreshold float64
	// EtaFraction selects the η of the frequent location set as a fraction
	// of the window's check-ins; ≤ 0 selects 0.9.
	EtaFraction float64
	// ProfileWindow is the recompute period of the location management
	// module; ≤ 0 selects the paper's three months.
	ProfileWindow time.Duration
	// TargetRadius is the advertising radius R defining the AOI; ≤ 0
	// selects the paper's 5 km.
	TargetRadius float64
	// PosteriorSigma overrides the σ of the output selection posterior;
	// ≤ 0 derives it from the mechanism (its Sigma method when available,
	// otherwise the empirical candidate spread).
	PosteriorSigma float64
	// NomadicBudget, when non-nil, bounds each user's cumulative privacy
	// loss from nomadic (fresh-noise) exposures — the edge's
	// risk-assessment function from the paper's system description. Each
	// nomadic report is accounted as one (NomadicReportEpsilon,
	// NomadicReportDelta) release; once the best composition bound
	// exceeds the budget, nomadic Requests fail with ErrBudgetExhausted.
	// Top-location requests are unaffected: they are post-processing of
	// the one permanent release.
	NomadicBudget *geoind.Loss
	// NomadicReportEpsilon is the per-report ε charged against the
	// budget; ≤ 0 selects 1 (one unit of geo-IND loss at the protection
	// radius).
	NomadicReportEpsilon float64
	// NomadicReportDelta is the per-report δ charged against the budget.
	NomadicReportDelta float64
	// Shards is the number of lock-striped user-map shards; ≤ 0 selects
	// DefaultShards and any other value rounds up to the next power of
	// two (at most MaxShards). Sharding is purely a concurrency knob:
	// per-user randomness is derived from the user-ID hash, so engine
	// state is byte-identical at any shard count.
	Shards int
	// Seed drives all engine randomness deterministically.
	Seed uint64
	// SpillDir, when set, enables the cold tier: idle users can be
	// evicted from memory into per-shard spill files under this
	// directory and are faulted back in transparently on their next
	// touch. The spill tier is process-local scratch (crash recovery
	// comes from the WAL, never from spill files); the directory must
	// not be shared between live engines.
	SpillDir string
	// MaxResidentUsers bounds how many users' state stays resident in
	// memory; the least-recently-touched users beyond the bound are
	// evicted to SpillDir (which must be set). The bound is enforced
	// per shard (cap/Shards each, minimum one resident per shard), so
	// the effective engine-wide bound is max(MaxResidentUsers, Shards).
	// 0 means unbounded residency; eviction is then only ever triggered
	// explicitly via EvictIdle. Eviction never changes logical state:
	// TableFingerprint and Snapshot bytes are byte-identical across any
	// evict/fault-in schedule.
	MaxResidentUsers int
}

// DefaultShards is the default user-map shard count. 64 stripes keep
// lock contention negligible up to many dozens of serving goroutines
// while costing only a few kilobytes of empty maps.
const DefaultShards = 64

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.ConnectivityThreshold <= 0 {
		c.ConnectivityThreshold = profile.DefaultConnectivityThreshold
	}
	if c.EtaFraction <= 0 {
		c.EtaFraction = 0.9
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = 90 * 24 * time.Hour
	}
	if c.TargetRadius <= 0 {
		c.TargetRadius = 5000
	}
	if c.NomadicReportEpsilon <= 0 {
		c.NomadicReportEpsilon = 1
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	c.Shards = nextPow2(c.Shards)
	return c
}

// MaxShards bounds Config.Shards. Shards exist to stripe locks across
// serving goroutines; 2^16 stripes are already far past any contention
// benefit, and the bound keeps nextPow2 well-defined (doubling toward an
// absurd n would overflow int before reaching it).
const MaxShards = 1 << 16

// nextPow2 rounds n up to the next power of two, clamped to [1, MaxShards].
func nextPow2(n int) int {
	p := 1
	for p < n && p < MaxShards {
		p <<= 1
	}
	return p
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Mechanism == nil {
		return fmt.Errorf("core: config requires a Mechanism")
	}
	if c.NomadicMechanism == nil {
		return fmt.Errorf("core: config requires a NomadicMechanism")
	}
	if c.EtaFraction > 1 {
		return fmt.Errorf("core: eta fraction %g must be at most 1", c.EtaFraction)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("core: shard count %d exceeds MaxShards (%d)", c.Shards, MaxShards)
	}
	if c.MaxResidentUsers > 0 && c.SpillDir == "" {
		return fmt.Errorf("core: MaxResidentUsers requires a SpillDir to evict into")
	}
	if c.MaxResidentUsers < 0 {
		return fmt.Errorf("core: MaxResidentUsers %d must not be negative", c.MaxResidentUsers)
	}
	return nil
}

// userState is the engine's per-user state.
type userState struct {
	mu          sync.Mutex
	rnd         *randx.Rand
	pending     []trace.CheckIn
	windowStart time.Time
	tops        profile.Profile
	table       *ObfuscationTable
	hasProfile  bool
	// gone marks a state that was evicted to the spill tier after this
	// pointer escaped the shard map: a holder that acquires mu and finds
	// gone set must drop the orphan and re-resolve through the shard
	// (which faults the user back in). Guarded by mu.
	gone bool
	// lastTouch is the wall-clock nanosecond of the user's last
	// serving-path touch; the eviction sweep picks its victims by it.
	// Only maintained when the spill tier is enabled.
	lastTouch atomic.Int64
}

// spillMeta is the resident-side record of one spilled user: just
// enough to decide, without reading the spill frame, whether a
// population-wide pass (RebuildAll/RebuildPart) can skip the user.
type spillMeta struct {
	// pending is the user's pending check-in count at eviction time; a
	// rebuild pass over a user with no pending check-ins is a no-op, so
	// spilled users with pending == 0 are rebuilt without fault-in.
	pending int
}

// engineShard is one lock stripe of the engine's user map. Distinct
// users hash to distinct shards (up to collisions), so serving-path
// lookups on different users never contend on a shared mutex. Each
// shard owns its slice of the cold tier: the spilled-user index and the
// spill file evicted state is written to.
type engineShard struct {
	mu      sync.RWMutex
	idx     int // position in Engine.shards; names the shard's spill file
	users   map[string]*userState
	spilled map[string]spillMeta // nil until the first eviction
	spill   *wal.SpillFile       // opened lazily on first eviction
}

// Engine is the Edge-PrivLocAd core: it manages per-user location
// profiles, the permanent obfuscation table, and output selection. It is
// safe for concurrent use; distinct users proceed in parallel. The user
// map is split into Config.Shards lock stripes keyed by the FNV-64a user
// hash — the same hash that derives each user's RNG stream — so sharding
// changes contention, never state.
type Engine struct {
	cfg        Config
	accountant *geoind.Accountant // nil when no nomadic budget is set

	// met holds the optional telemetry handles (see Instrument); nil
	// until instrumented, so the uninstrumented hot path pays one atomic
	// load. The nUsers/nTops/nCandidates aggregates are always
	// maintained: they make Stats (and the edge's /v1/stats) O(1)
	// instead of a walk over every user's table.
	met         atomic.Pointer[engineMetrics]
	nUsers      atomic.Int64
	nTops       atomic.Int64
	nCandidates atomic.Int64

	// Memory-tier accounting (see spill.go). nResident counts users
	// whose state is in the shard maps (nUsers counts resident +
	// spilled); the counters feed core_resident_users /
	// core_evictions_total / core_faultins_total.
	nResident  atomic.Int64
	nEvictions atomic.Uint64
	nFaultIns  atomic.Uint64
	nSpillErrs atomic.Uint64

	// residentQuota is the per-shard resident bound derived from
	// Config.MaxResidentUsers (0 = unbounded).
	residentQuota int

	// dur is the optional durability sink (see SetDurability); nil
	// keeps every logged path at one extra atomic load. ckptMu
	// serialises Checkpoint against loggable operations: writers hold
	// the read side from before their state apply until after their
	// log append, so a checkpoint never splits an apply from its
	// record. Lock order: ckptMu, then shard.mu, then userState.mu.
	dur    atomic.Pointer[durHolder]
	ckptMu sync.RWMutex

	shards    []engineShard
	shardMask uint64
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg.withDefaults()}
	e.shards = make([]engineShard, e.cfg.Shards)
	e.shardMask = uint64(e.cfg.Shards - 1)
	for i := range e.shards {
		e.shards[i].idx = i
		e.shards[i].users = make(map[string]*userState)
	}
	if e.cfg.SpillDir != "" {
		if err := os.MkdirAll(e.cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("core: creating spill dir: %w", err)
		}
		if e.cfg.MaxResidentUsers > 0 {
			// Ceiling division so Shards quotas always cover the cap;
			// at least one resident per shard keeps a touched user
			// resident for the duration of its own operation.
			e.residentQuota = max(1, (e.cfg.MaxResidentUsers+e.cfg.Shards-1)/e.cfg.Shards)
		}
	}
	if e.cfg.NomadicBudget != nil {
		acct, err := geoind.NewAccountant(e.cfg.NomadicReportEpsilon, e.cfg.NomadicReportDelta)
		if err != nil {
			return nil, fmt.Errorf("core: nomadic accountant: %w", err)
		}
		e.accountant = acct
	}
	return e, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// hashUser is FNV-64a over the user ID, allocation-free. It must stay
// bit-equal to fnv.New64a().Write([]byte(id)).Sum64(): the value both
// picks the shard AND seeds the user's RNG stream, so changing it would
// change every obfuscation output.
func hashUser(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// shardFor returns the lock stripe owning userID and the user's hash.
func (e *Engine) shardFor(userID string) (*engineShard, uint64) {
	h := hashUser(userID)
	return &e.shards[h&e.shardMask], h
}

// tiered reports whether the cold tier is enabled.
func (e *Engine) tiered() bool { return e.cfg.SpillDir != "" }

// touch stamps the user's LRU clock. Only paid when the cold tier is on.
func (e *Engine) touch(u *userState) {
	if e.tiered() {
		u.lastTouch.Store(time.Now().UnixNano())
	}
}

// userFor returns (creating or faulting in if needed) the state for
// userID. The returned pointer may be concurrently evicted; mutators
// must go through lockUser, which re-resolves on eviction.
func (e *Engine) userFor(userID string) (*userState, error) {
	s, h := e.shardFor(userID)
	s.mu.RLock()
	u, ok := s.users[userID]
	s.mu.RUnlock()
	if ok {
		e.touch(u)
		return u, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if u, ok = s.users[userID]; ok {
		e.touch(u)
		return u, nil
	}
	if _, ok := s.spilled[userID]; ok {
		u, err := e.faultInLocked(s, userID)
		if err != nil {
			return nil, err
		}
		e.touch(u)
		e.enforceQuotaLocked(s, u)
		return u, nil
	}
	table, err := NewObfuscationTable(e.cfg.ConnectivityThreshold)
	if err != nil {
		return nil, fmt.Errorf("core: user %q table: %w", userID, err)
	}
	u = &userState{
		rnd:   randx.New(e.cfg.Seed, h),
		table: table,
	}
	s.users[userID] = u
	e.nUsers.Add(1)
	e.nResident.Add(1)
	e.touch(u)
	e.enforceQuotaLocked(s, u)
	return u, nil
}

// lookup returns the state for an existing user, faulting a spilled
// user back into residency. Read-only paths that must not promote cold
// users use viewUser (spill.go) instead.
func (e *Engine) lookup(userID string) (*userState, error) {
	s, _ := e.shardFor(userID)
	s.mu.RLock()
	u, ok := s.users[userID]
	s.mu.RUnlock()
	if ok {
		e.touch(u)
		return u, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if u, ok := s.users[userID]; ok {
		e.touch(u)
		return u, nil
	}
	if _, ok := s.spilled[userID]; ok {
		u, err := e.faultInLocked(s, userID)
		if err != nil {
			return nil, err
		}
		e.touch(u)
		e.enforceQuotaLocked(s, u)
		return u, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
}

// lockUser resolves userID and returns its state with u.mu held. When
// create is set, unknown users are created (userFor semantics);
// otherwise they fail with ErrUnknownUser. The loop absorbs the
// eviction race: a state evicted between resolution and lock acquisition
// is marked gone, and the retry faults the user back in.
func (e *Engine) lockUser(userID string, create bool) (*userState, error) {
	for {
		var u *userState
		var err error
		if create {
			u, err = e.userFor(userID)
		} else {
			u, err = e.lookup(userID)
		}
		if err != nil {
			return nil, err
		}
		u.mu.Lock()
		if !u.gone {
			return u, nil
		}
		u.mu.Unlock()
	}
}

// Report ingests one check-in for userID (the location management
// module's passive collection). When the report closes the user's
// profile window, the profile is recomputed and new top locations are
// obfuscated into the permanent table.
func (e *Engine) Report(userID string, pos geo.Point, at time.Time) error {
	return e.ReportCtx(context.Background(), userID, pos, at)
}

// ReportCtx is Report with trace context: when ctx carries a trace, the
// shard-locked state apply and the WAL append are timed as separate
// spans. An untraced ctx costs one context lookup.
func (e *Engine) ReportCtx(ctx context.Context, userID string, pos geo.Point, at time.Time) error {
	h := e.durBegin()
	defer e.durEnd(h)
	if m := e.met.Load(); m != nil {
		m.reports.Inc()
	}
	// The apply span ends before the WAL emit so the breakdown separates
	// lock + state work (fault-in included) from durability wait.
	_, sp := tracing.StartSpan(ctx, tracing.StageApply)
	u, err := e.lockUser(userID, true)
	if err != nil {
		sp.End()
		return err
	}
	defer u.mu.Unlock()
	if u.windowStart.IsZero() {
		u.windowStart = at
	}
	u.pending = append(u.pending, trace.CheckIn{Pos: pos, Time: at})
	var opErr error
	if at.Sub(u.windowStart) >= e.cfg.ProfileWindow {
		// A window-rollover rebuild needs no record of its own:
		// replaying the report reproduces it deterministically.
		if err := e.rebuildLocked(u, at); err != nil {
			opErr = fmt.Errorf("core: rebuilding profile for %q: %w", userID, err)
		}
	}
	sp.End()
	if h != nil {
		if lerr := h.emit(ctx, func(b []byte) []byte { return encodeReport(b, userID, pos, at) }); opErr == nil {
			opErr = lerr
		}
	}
	return opErr
}

// BatchReport is one check-in of a ReportBatch call.
type BatchReport struct {
	UserID string
	Pos    geo.Point
	At     time.Time
}

// BatchError reports the failure of one item of a batch; Index is the
// item's position in the input slice.
type BatchError struct {
	Index int
	Err   error
}

// ReportBatch ingests many check-ins in one call — the bulk analogue of
// Report for SDKs that piggyback several location fixes per session.
// Items are grouped by user, each user's state is locked once, and the
// per-user arrival order of the input is preserved, so the resulting
// engine state is byte-identical to the same items fed through Report
// one at a time. Failing items are reported individually (by input
// index) without aborting the rest of the batch.
func (e *Engine) ReportBatch(items []BatchReport) []BatchError {
	return e.ReportBatchCtx(context.Background(), items)
}

// ReportBatchCtx is ReportBatch with trace context: each per-user run
// records one apply span and one WAL span.
func (e *Engine) ReportBatchCtx(ctx context.Context, items []BatchReport) []BatchError {
	if len(items) == 0 {
		return nil
	}
	h := e.durBegin()
	defer e.durEnd(h)
	if m := e.met.Load(); m != nil {
		m.reports.Add(uint64(len(items)))
	}

	// Fast path: the dominant shape is one device flushing its own fix
	// buffer, i.e. every item belongs to the same user — no grouping
	// allocations needed.
	single := true
	for i := 1; i < len(items); i++ {
		if items[i].UserID != items[0].UserID {
			single = false
			break
		}
	}
	if single {
		return e.reportUserRun(ctx, h, items[0].UserID, items, nil, nil)
	}

	groups := make(map[string][]int, 8)
	order := make([]string, 0, 8)
	for i, it := range items {
		if _, ok := groups[it.UserID]; !ok {
			order = append(order, it.UserID)
		}
		groups[it.UserID] = append(groups[it.UserID], i)
	}
	var errs []BatchError
	for _, id := range order {
		errs = e.reportUserRun(ctx, h, id, items, groups[id], errs)
	}
	return errs
}

// reportUserRun ingests the items selected by idx (nil selects all) for
// one user under a single user-lock acquisition, applying exactly the
// per-item append + window-rollover logic of Report.
// One recBatch record covers the whole run: logging per-user runs
// (rather than whole batches) under the user lock keeps the log's
// per-user order identical to apply order even when batches touching
// the same user race on different goroutines.
func (e *Engine) reportUserRun(ctx context.Context, h *durHolder, userID string, items []BatchReport, idx []int, errs []BatchError) []BatchError {
	n := len(idx)
	if idx == nil {
		n = len(items)
	}
	_, sp := tracing.StartSpan(ctx, tracing.StageApply)
	u, err := e.lockUser(userID, true)
	if err != nil {
		sp.End()
		for i := 0; i < n; i++ {
			j := i
			if idx != nil {
				j = idx[i]
			}
			errs = append(errs, BatchError{Index: j, Err: err})
		}
		return errs
	}
	defer u.mu.Unlock()
	// Grow pending once for the whole run, with amortized doubling —
	// growing to the exact need would re-copy the full history on every
	// batch. rebuildLocked may still reset the slice mid-run on a window
	// rollover, which just means later appends start from an empty
	// (already-sized) slice.
	if need := len(u.pending) + n; cap(u.pending) < need {
		newCap := max(need, 2*cap(u.pending))
		grown := make([]trace.CheckIn, len(u.pending), newCap)
		copy(grown, u.pending)
		u.pending = grown
	}
	for i := 0; i < n; i++ {
		j := i
		if idx != nil {
			j = idx[i]
		}
		it := items[j]
		if u.windowStart.IsZero() {
			u.windowStart = it.At
		}
		u.pending = append(u.pending, trace.CheckIn{Pos: it.Pos, Time: it.At})
		if it.At.Sub(u.windowStart) >= e.cfg.ProfileWindow {
			if err := e.rebuildLocked(u, it.At); err != nil {
				errs = append(errs, BatchError{Index: j, Err: fmt.Errorf("core: rebuilding profile for %q: %w", userID, err)})
			}
		}
	}
	sp.End()
	if h != nil {
		if lerr := h.emit(ctx, func(b []byte) []byte { return encodeBatchRun(b, userID, items, idx) }); lerr != nil {
			// The whole run is applied but unacknowledged: fail every
			// item so the client treats them like any other error.
			for i := 0; i < n; i++ {
				j := i
				if idx != nil {
					j = idx[i]
				}
				errs = append(errs, BatchError{Index: j, Err: lerr})
			}
		}
	}
	return errs
}

// RebuildProfile forces an immediate profile recomputation for userID
// from the check-ins collected so far (the periodic task of Section V-B,
// exposed for tests, benchmarks, and administrative control).
func (e *Engine) RebuildProfile(userID string, now time.Time) error {
	return e.RebuildProfileCtx(context.Background(), userID, now)
}

// RebuildProfileCtx is RebuildProfile with trace context: the rebuild
// itself is the apply span, the log record the WAL span.
func (e *Engine) RebuildProfileCtx(ctx context.Context, userID string, now time.Time) error {
	h := e.durBegin()
	defer e.durEnd(h)
	_, sp := tracing.StartSpan(ctx, tracing.StageApply)
	u, err := e.lockUser(userID, false)
	if err != nil {
		sp.End()
		return err
	}
	defer u.mu.Unlock()
	var opErr error
	if err := e.rebuildLocked(u, now); err != nil {
		opErr = fmt.Errorf("core: rebuilding profile for %q: %w", userID, err)
	}
	sp.End()
	// Logged even when the rebuild failed: a mid-rebuild error can
	// leave table entries inserted and the PRNG advanced, and replay
	// reproduces exactly that (including the error).
	if h != nil {
		if lerr := h.emit(ctx, func(b []byte) []byte { return encodeRebuild(b, userID, now) }); opErr == nil {
			opErr = lerr
		}
	}
	return opErr
}

// RebuildAll recomputes every known user's profile (the periodic task of
// Section V-B run over the whole population, and the batch path the
// Table II scaling experiment drives). Users rebuild concurrently under
// at most parallelism workers (≤ 0 selects runtime.NumCPU()); each
// user's randomness comes from its own ID-hash-derived stream, so the
// resulting tables are identical at any parallelism level. Every user is
// attempted even after failures; the returned error is the one for the
// first failing user in sorted ID order.
func (e *Engine) RebuildAll(now time.Time, parallelism int) error {
	return e.RebuildPart(now, parallelism, 0, 1)
}

// RebuildPart is the incremental form of RebuildAll: it rebuilds only
// the users owned by shards whose index is congruent to part modulo
// parts. Running parts sub-rounds (part = 0..parts-1) with the same now
// covers every user exactly once and — because each user's rebuild
// depends only on that user's own state and PRNG stream — leaves the
// engine byte-identical to one RebuildAll(now) call, while bounding
// each pause to 1/parts of the population. A million-user engine
// amortizes its periodic rebuild by calling RebuildPart(now, p, tick%K,
// K) on a timer instead of stopping the world once per window.
//
// Spilled users with no pending check-ins are skipped without fault-in:
// their rebuild is a no-op by construction (see rebuildLocked), so the
// cold tail costs a map lookup, not disk traffic.
func (e *Engine) RebuildPart(now time.Time, parallelism, part, parts int) error {
	if parts <= 0 {
		parts = 1
	}
	part = ((part % parts) + parts) % parts
	// One checkpoint read-hold covers every worker: per-user streams
	// are independent, so the cross-user record order the workers race
	// into the log is irrelevant — only per-user order matters, and
	// each worker logs under its user's lock.
	h := e.durBegin()
	defer e.durEnd(h)
	ids := e.rebuildTargets(part, parts)
	return par.ForEachErr(parallelism, len(ids), func(i int) error {
		u, err := e.lockUser(ids[i], false)
		if err != nil {
			return err
		}
		defer u.mu.Unlock()
		var opErr error
		if err := e.rebuildLocked(u, now); err != nil {
			opErr = fmt.Errorf("core: rebuilding profile for %q: %w", ids[i], err)
		}
		if h != nil {
			if lerr := h.emit(context.Background(), func(b []byte) []byte { return encodeRebuild(b, ids[i], now) }); opErr == nil {
				opErr = lerr
			}
		}
		return opErr
	})
}

// rebuildTargets lists (sorted) the users a RebuildPart sub-round must
// touch: every resident user of the selected shards, plus the spilled
// users whose eviction-time state still had pending check-ins.
func (e *Engine) rebuildTargets(part, parts int) []string {
	var ids []string
	for i := range e.shards {
		if i%parts != part {
			continue
		}
		s := &e.shards[i]
		s.mu.RLock()
		for id := range s.users {
			ids = append(ids, id)
		}
		for id, meta := range s.spilled {
			if meta.pending > 0 {
				ids = append(ids, id)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// ptsPool recycles the per-rebuild point scratch. A rebuild (and
// PendingProfile) needs one []geo.Point the size of the user's pending
// window; at a million users × periodic rebuild rounds, allocating it
// fresh each time is pure garbage-collector load — profile.Build does
// not retain the slice, so it is safe to pool.
var ptsPool = sync.Pool{
	New: func() any {
		b := make([]geo.Point, 0, 64)
		return &b
	},
}

// rebuildLocked recomputes the η-frequent top set from pending check-ins
// and obfuscates any new top location into the permanent table. The
// caller holds u.mu.
func (e *Engine) rebuildLocked(u *userState, now time.Time) error {
	if len(u.pending) == 0 {
		return nil
	}
	m := e.met.Load()
	var start time.Time
	if m != nil {
		m.rebuilds.Inc()
		start = time.Now()
		defer func() { observeSince(m.rebuildSeconds, start) }()
	}
	bp := ptsPool.Get().(*[]geo.Point)
	pts := (*bp)[:0]
	for _, c := range u.pending {
		pts = append(pts, c.Pos)
	}
	prof, err := profile.Build(pts, e.cfg.ConnectivityThreshold)
	*bp = pts[:0]
	ptsPool.Put(bp)
	if err != nil {
		return fmt.Errorf("building profile: %w", err)
	}
	tops := prof.EtaFractionSet(e.cfg.EtaFraction)

	for _, lf := range tops {
		if _, ok := u.table.Lookup(lf.Loc); ok {
			continue // already permanently obfuscated
		}
		candidates, err := e.cfg.Mechanism.Obfuscate(u.rnd, lf.Loc)
		if err != nil {
			return fmt.Errorf("obfuscating top location: %w", err)
		}
		e.noteInsert(u.table.Insert(lf.Loc, candidates, now))
	}

	u.tops = tops
	u.hasProfile = true
	u.pending = u.pending[:0]
	u.windowStart = now
	return nil
}

// Request answers an LBA trigger: given the user's current true location
// it returns the obfuscated location to expose to the ad network. Top
// locations are answered from the permanent table via posterior output
// selection (Algorithm 4); anywhere else is nomadic and gets fresh
// one-time noise. The boolean reports whether the answer came from the
// permanent table.
func (e *Engine) Request(userID string, truePos geo.Point) (geo.Point, bool, error) {
	return e.RequestCtx(context.Background(), userID, truePos)
}

// RequestCtx is Request with trace context: output selection under the
// user lock is the apply span, the log record the WAL span.
func (e *Engine) RequestCtx(ctx context.Context, userID string, truePos geo.Point) (geo.Point, bool, error) {
	// Request mutates no table state, but posterior selection and
	// nomadic noise DRAW from the user's PRNG stream. Skipping it in
	// the log would leave a recovered engine's stream behind the
	// original's, and the next rebuild would mint different candidates
	// — a second (r, ε, δ, n) release for the same top locations,
	// exactly the longitudinal leak the permanent table prevents. So
	// requests are logged too.
	h := e.durBegin()
	defer e.durEnd(h)
	m := e.met.Load()
	_, sp := tracing.StartSpan(ctx, tracing.StageApply)
	u, err := e.lockUser(userID, false)
	if err != nil {
		sp.End()
		return geo.Point{}, false, err
	}
	defer u.mu.Unlock()
	out, fromTable, opErr := e.requestLocked(u, userID, truePos, m)
	sp.End()
	if h != nil {
		if lerr := h.emit(ctx, func(b []byte) []byte { return encodeRequest(b, userID, truePos) }); opErr == nil {
			opErr = lerr
		}
	}
	return out, fromTable, opErr
}

// requestLocked is the serving path of Request; the caller holds u.mu.
func (e *Engine) requestLocked(u *userState, userID string, truePos geo.Point, m *engineMetrics) (geo.Point, bool, error) {
	if entry, ok := u.table.Lookup(truePos); ok {
		var start time.Time
		if m != nil {
			start = m.sampleStart()
		}
		sigma := e.posteriorSigma(entry.Candidates)
		selected, _, err := SelectPosterior(u.rnd, entry.Candidates, sigma)
		if err != nil {
			return geo.Point{}, false, fmt.Errorf("core: output selection for %q: %w", userID, err)
		}
		if m != nil {
			m.tableHits.Inc()
			observeSince(m.selectionSeconds, start)
		}
		return selected, true, nil
	}

	if e.accountant != nil {
		over, err := e.accountant.WouldExceed(userID, *e.cfg.NomadicBudget, _accountantSlack)
		if err != nil {
			return geo.Point{}, false, fmt.Errorf("core: budget check for %q: %w", userID, err)
		}
		if over {
			if m != nil {
				m.budgetDenied.Inc()
			}
			return geo.Point{}, false, fmt.Errorf("%w for %q", ErrBudgetExhausted, userID)
		}
		e.accountant.Record(userID)
	}

	out, err := e.cfg.NomadicMechanism.Obfuscate(u.rnd, truePos)
	if err != nil {
		return geo.Point{}, false, fmt.Errorf("core: nomadic obfuscation for %q: %w", userID, err)
	}
	if len(out) == 0 {
		return geo.Point{}, false, fmt.Errorf("core: nomadic mechanism returned no output for %q", userID)
	}
	if m != nil {
		m.nomadic.Inc()
	}
	return out[0], false, nil
}

// _accountantSlack is the δ' used when evaluating the advanced
// composition bound for budget checks.
const _accountantSlack = 1e-6

// NomadicLoss returns the user's cumulative nomadic privacy loss under
// the best available composition bound. It returns the zero Loss when no
// nomadic budget is configured.
func (e *Engine) NomadicLoss(userID string) (geoind.Loss, error) {
	if e.accountant == nil {
		return geoind.Loss{}, nil
	}
	loss, err := e.accountant.BestLoss(userID, _accountantSlack)
	if err != nil {
		return geoind.Loss{}, fmt.Errorf("core: nomadic loss for %q: %w", userID, err)
	}
	return loss, nil
}

// posteriorSigma resolves the σ of the output-selection posterior
// (Eq. 17): explicit config, then the mechanism's own Sigma scaled to the
// posterior deviation σ/√n (the sufficient statistic's deviation), then
// the empirical candidate spread.
func (e *Engine) posteriorSigma(candidates []geo.Point) float64 {
	if e.cfg.PosteriorSigma > 0 {
		return e.cfg.PosteriorSigma
	}
	if s, ok := e.cfg.Mechanism.(interface{ Sigma() float64 }); ok {
		n := e.cfg.Mechanism.Fold()
		if n < 1 {
			n = 1
		}
		return s.Sigma() / math.Sqrt(float64(n))
	}
	centroid, ok := geo.Centroid(candidates)
	if !ok || len(candidates) < 2 {
		return 1
	}
	var sum float64
	for _, c := range candidates {
		sum += c.Dist2(centroid)
	}
	sigma := math.Sqrt(sum / float64(2*len(candidates))) // per-axis spread
	if sigma <= 0 {
		return 1
	}
	return sigma
}

// PendingProfile clusters the user's check-ins collected since the last
// window rollover into a location profile WITHOUT closing the window.
// Multi-edge deployments use it to extract each edge's partial profile
// for the secure merge (Section V-B).
func (e *Engine) PendingProfile(userID string) (profile.Profile, error) {
	u, release, err := e.viewUser(userID)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(u.pending) == 0 {
		return nil, nil
	}
	bp := ptsPool.Get().(*[]geo.Point)
	pts := (*bp)[:0]
	for _, c := range u.pending {
		pts = append(pts, c.Pos)
	}
	prof, err := profile.Build(pts, e.cfg.ConnectivityThreshold)
	*bp = pts[:0]
	ptsPool.Put(bp)
	if err != nil {
		return nil, fmt.Errorf("core: pending profile for %q: %w", userID, err)
	}
	return prof, nil
}

// InstallTops installs an externally computed η-frequent top set for the
// user (e.g. the result of a secure multi-edge merge): new top locations
// are obfuscated into the permanent table, the profile becomes current,
// and the collection window restarts. Existing table entries are never
// re-obfuscated.
func (e *Engine) InstallTops(userID string, tops profile.Profile, now time.Time) error {
	return e.installTops(userID, tops, now, true)
}

// SyncTops is InstallTops without consuming the user's collection
// window: the top set and table update exactly as InstallTops, but
// pending check-ins and the window start are preserved. Multi-edge
// deployments use it to replay merge rounds onto a replica that was down
// during the round — the replica's own pending check-ins were NOT part
// of that merge and must survive to contribute to the next one.
func (e *Engine) SyncTops(userID string, tops profile.Profile, now time.Time) error {
	return e.installTops(userID, tops, now, false)
}

func (e *Engine) installTops(userID string, tops profile.Profile, now time.Time, consumeWindow bool) error {
	h := e.durBegin()
	defer e.durEnd(h)
	u, err := e.lockUser(userID, true)
	if err != nil {
		return err
	}
	defer u.mu.Unlock()
	var opErr error
	for _, lf := range tops {
		if _, ok := u.table.Lookup(lf.Loc); ok {
			continue
		}
		candidates, err := e.cfg.Mechanism.Obfuscate(u.rnd, lf.Loc)
		if err != nil {
			opErr = fmt.Errorf("core: obfuscating installed top for %q: %w", userID, err)
			break
		}
		e.noteInsert(u.table.Insert(lf.Loc, candidates, now))
	}
	if opErr == nil {
		u.tops = make(profile.Profile, len(tops))
		copy(u.tops, tops)
		u.hasProfile = true
		if consumeWindow {
			u.pending = u.pending[:0]
			u.windowStart = now
		}
	}
	// Logged even on a mid-install failure: the inserts and PRNG draws
	// that did happen must replay identically.
	if h != nil {
		tag := recSyncTops
		if consumeWindow {
			tag = recInstallTops
		}
		if lerr := h.emit(context.Background(), func(b []byte) []byte { return encodeTops(b, tag, userID, tops, now) }); opErr == nil {
			opErr = lerr
		}
	}
	return opErr
}

// ImportTable replicates externally generated obfuscation-table entries
// for the user. Multi-edge deployments use it so every edge answers a
// given top location from the SAME permanent candidate set — if each
// edge obfuscated independently, the union of their outputs would leak
// beyond the (r, ε, δ, n) guarantee. Entries for already-known top
// locations are ignored (first writer wins, matching table semantics).
func (e *Engine) ImportTable(userID string, entries []TableEntry) error {
	h := e.durBegin()
	defer e.durEnd(h)
	u, err := e.lockUser(userID, true)
	if err != nil {
		return err
	}
	defer u.mu.Unlock()
	for _, entry := range entries {
		e.noteInsert(u.table.Insert(entry.Top, entry.Candidates, entry.CreatedAt))
	}
	if h != nil {
		return h.emit(context.Background(), func(b []byte) []byte { return encodeImport(b, userID, entries) })
	}
	return nil
}

// TopLocations returns the user's current η-frequent top set (copy),
// ordered by descending frequency.
func (e *Engine) TopLocations(userID string) (profile.Profile, error) {
	u, release, err := e.viewUser(userID)
	if err != nil {
		return nil, err
	}
	defer release()
	if !u.hasProfile {
		return nil, fmt.Errorf("%w for %q", ErrNoProfile, userID)
	}
	out := make(profile.Profile, len(u.tops))
	copy(out, u.tops)
	return out, nil
}

// Table returns the user's obfuscation table entries (copy).
func (e *Engine) Table(userID string) ([]TableEntry, error) {
	u, release, err := e.viewUser(userID)
	if err != nil {
		return nil, err
	}
	defer release()
	return u.table.Entries(), nil
}

// TableFingerprint hashes the user's obfuscation table — entry order,
// top coordinates, every candidate's exact float bits, and creation
// times — into one 64-bit digest (the FingerprintTable chain). Two
// engines answer identically for the user iff their fingerprints match,
// which is how multi-edge deployments verify that replication (or a
// journal catch-up after downtime) left a replica byte-identical to the
// obfuscator. An unknown user hashes to the empty-table fingerprint: a
// replica that never saw the user agrees with an obfuscator holding no
// entries for them.
func (e *Engine) TableFingerprint(userID string) (uint64, error) {
	_, fp, err := e.TableState(userID)
	return fp, err
}

// TableState returns the user's table length and fingerprint without
// copying entries. An unknown user reads as the empty table (length 0,
// FingerprintSeed), matching TableFingerprint's convention.
func (e *Engine) TableState(userID string) (int, uint64, error) {
	u, release, err := e.viewUser(userID)
	if err != nil {
		if errors.Is(err, ErrUnknownUser) {
			return 0, FingerprintSeed, nil
		}
		return 0, 0, err
	}
	defer release()
	n, fp := u.table.State()
	return n, fp, nil
}

// TableLen returns the number of entries in the user's obfuscation
// table without copying it. An unknown user has zero entries, matching
// TableFingerprint's empty-table convention.
func (e *Engine) TableLen(userID string) (int, error) {
	u, release, err := e.viewUser(userID)
	if err != nil {
		if errors.Is(err, ErrUnknownUser) {
			return 0, nil
		}
		return 0, err
	}
	defer release()
	return u.table.Len(), nil
}

// Users returns the known user IDs — resident and spilled — in sorted
// order.
func (e *Engine) Users() []string {
	ids := make([]string, 0, e.nUsers.Load())
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for id := range s.users {
			ids = append(ids, id)
		}
		for id := range s.spilled {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// FilterAds implements the edge's relevance filter (Section V-A): given
// ad locations returned by the LBA provider for an obfuscated request, it
// returns the indexes of ads whose location falls inside the user's true
// AOI (within TargetRadius of truePos), so the device only receives
// relevant ads.
func (e *Engine) FilterAds(truePos geo.Point, adLocations []geo.Point) []int {
	return e.FilterAdsAppend(nil, truePos, adLocations)
}

// FilterAdsAppend is FilterAds appending into dst, letting hot serving
// paths reuse one index buffer across requests instead of allocating a
// fresh slice per call.
func (e *Engine) FilterAdsAppend(dst []int, truePos geo.Point, adLocations []geo.Point) []int {
	r2 := e.cfg.TargetRadius * e.cfg.TargetRadius
	for i, ad := range adLocations {
		if ad.Dist2(truePos) <= r2 {
			dst = append(dst, i)
		}
	}
	return dst
}
