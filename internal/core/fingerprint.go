package core

import "math"

// Table fingerprints are FNV-64a digests folded entry by entry, so the
// digest of a table is a *chain*: hashing entries[:k] and then extending
// with entries[k:] yields the same value as hashing the full slice in
// one pass. Obfuscation tables are append-only (first writer wins), so
// two replicas of the same table can only ever differ by a suffix — the
// chain property is what lets the cluster's replication layer address
// table state by content: a replica proves "I hold exactly the first k
// entries" with one 64-bit value, and the obfuscator ships entries[k:]
// instead of the whole table.

const (
	// FingerprintSeed is the fingerprint of an empty table: the FNV-64a
	// offset basis, before any entry has been folded in.
	FingerprintSeed uint64 = 0xcbf29ce484222325
	fnvPrime        uint64 = 0x100000001b3
)

// fnvWord folds one 64-bit little-endian word into the digest.
func fnvWord(fp, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		fp ^= x & 0xff
		fp *= fnvPrime
		x >>= 8
	}
	return fp
}

// ExtendFingerprint folds entries onto a running table fingerprint.
// Each entry contributes its top's exact float bits, its creation time,
// and every candidate's float bits — the full byte identity the
// replication audit compares. ExtendFingerprint(FingerprintSeed, t) is
// the fingerprint of table t, and for any split point k,
//
//	ExtendFingerprint(FingerprintTable(t[:k]), t[k:]) == FingerprintTable(t)
//
// which is the prefix property delta replication relies on.
func ExtendFingerprint(fp uint64, entries []TableEntry) uint64 {
	for _, entry := range entries {
		fp = fnvWord(fp, math.Float64bits(entry.Top.X))
		fp = fnvWord(fp, math.Float64bits(entry.Top.Y))
		fp = fnvWord(fp, uint64(entry.CreatedAt.UnixNano()))
		fp = fnvWord(fp, uint64(len(entry.Candidates)))
		for _, cand := range entry.Candidates {
			fp = fnvWord(fp, math.Float64bits(cand.X))
			fp = fnvWord(fp, math.Float64bits(cand.Y))
		}
	}
	return fp
}

// FingerprintTable hashes an entry slice from scratch. An empty (or
// nil) table hashes to FingerprintSeed.
func FingerprintTable(entries []TableEntry) uint64 {
	return ExtendFingerprint(FingerprintSeed, entries)
}
