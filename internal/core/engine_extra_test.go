package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/profile"
	"repro/internal/randx"
)

// uniformDiskMechanism is a Mechanism without a Sigma method, used to
// exercise the posterior-sigma fallback paths.
type uniformDiskMechanism struct {
	radius float64
	n      int
}

var _ geoind.Mechanism = (*uniformDiskMechanism)(nil)

func (m *uniformDiskMechanism) Name() string { return "uniform-disk" }
func (m *uniformDiskMechanism) Fold() int    { return m.n }

func (m *uniformDiskMechanism) Obfuscate(rnd *randx.Rand, p geo.Point) ([]geo.Point, error) {
	out := make([]geo.Point, m.n)
	for i := range out {
		out[i] = p.Add(rnd.UniformDisk(m.radius))
	}
	return out, nil
}

func (m *uniformDiskMechanism) ConfidenceRadius(alpha float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, errors.New("uniform-disk: bad alpha")
	}
	return m.radius, nil
}

func TestPendingProfileDirect(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PendingProfile("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user: %v", err)
	}
	home := geo.Point{X: 10, Y: 10}
	rnd := randx.New(4, 1)
	at := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		at = at.Add(time.Hour)
		if err := e.Report("pender", home.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	prof, err := e.PendingProfile("pender")
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 || prof[0].Freq != 40 {
		t.Fatalf("pending profile = %+v", prof)
	}
	// PendingProfile must NOT reset the window: a second call sees the
	// same data.
	again, err := e.PendingProfile("pender")
	if err != nil {
		t.Fatal(err)
	}
	if again.Total() != prof.Total() {
		t.Errorf("pending profile consumed the window: %d vs %d", again.Total(), prof.Total())
	}
	// After a rebuild the pending set is empty.
	if err := e.RebuildProfile("pender", at); err != nil {
		t.Fatal(err)
	}
	empty, err := e.PendingProfile("pender")
	if err != nil {
		t.Fatal(err)
	}
	if empty != nil {
		t.Errorf("pending after rebuild = %+v", empty)
	}
}

func TestInstallTopsDirect(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	tops := profile.Profile{
		{Loc: geo.Point{X: 100, Y: 100}, Freq: 50},
		{Loc: geo.Point{X: 9000, Y: 0}, Freq: 20},
	}
	now := time.Now()
	if err := e.InstallTops("installed", tops, now); err != nil {
		t.Fatal(err)
	}
	got, err := e.TopLocations("installed")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Freq != 50 {
		t.Fatalf("installed tops = %+v", got)
	}
	entries, err := e.Table("installed")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("table rows = %d", len(entries))
	}
	// Re-installing the same tops must not re-obfuscate.
	if err := e.InstallTops("installed", tops, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	after, err := e.Table("installed")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 || after[0].Candidates[0] != entries[0].Candidates[0] {
		t.Error("re-install regenerated candidates")
	}
}

func TestImportTableDirect(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	entries := []TableEntry{
		{Top: geo.Point{X: 1, Y: 1}, Candidates: []geo.Point{{X: 500, Y: 500}}, CreatedAt: time.Now()},
	}
	if err := e.ImportTable("imported", entries); err != nil {
		t.Fatal(err)
	}
	got, err := e.Table("imported")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Candidates[0] != (geo.Point{X: 500, Y: 500}) {
		t.Fatalf("imported table = %+v", got)
	}
	// Requests near the imported top come from the imported candidates.
	out, fromTable, err := e.Request("imported", geo.Point{X: 1, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fromTable || out != (geo.Point{X: 500, Y: 500}) {
		t.Errorf("request = %v, fromTable=%v", out, fromTable)
	}
	// Importing an overlapping entry keeps the original (first wins).
	dup := []TableEntry{
		{Top: geo.Point{X: 2, Y: 2}, Candidates: []geo.Point{{X: 999, Y: 999}}, CreatedAt: time.Now()},
	}
	if err := e.ImportTable("imported", dup); err != nil {
		t.Fatal(err)
	}
	got, err = e.Table("imported")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("overlapping import created a second entry: %+v", got)
	}
}

// TestPosteriorSigmaFallbacks covers the resolution order: explicit
// config, mechanism Sigma, then empirical candidate spread.
func TestPosteriorSigmaFallbacks(t *testing.T) {
	// Explicit override.
	cfg := testConfig(t)
	cfg.PosteriorSigma = 1234
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.posteriorSigma(nil); got != 1234 {
		t.Errorf("explicit sigma = %g", got)
	}

	// Mechanism without Sigma: empirical spread of the candidates.
	cfg2 := testConfig(t)
	cfg2.Mechanism = &uniformDiskMechanism{radius: 1000, n: 4}
	e2, err := NewEngine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	cands := []geo.Point{{X: -100, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: -100}, {X: 0, Y: 100}}
	got := e2.posteriorSigma(cands)
	if got <= 0 || got > 200 {
		t.Errorf("empirical sigma = %g", got)
	}
	// Degenerate candidate sets fall back to a positive default.
	if got := e2.posteriorSigma(nil); got <= 0 {
		t.Errorf("nil candidates sigma = %g", got)
	}
	if got := e2.posteriorSigma([]geo.Point{{X: 5, Y: 5}}); got <= 0 {
		t.Errorf("singleton sigma = %g", got)
	}
	if got := e2.posteriorSigma([]geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}); got <= 0 {
		t.Errorf("identical candidates sigma = %g", got)
	}

	// End to end with the Sigma-less mechanism: requests still work.
	rnd := randx.New(1, 2)
	at := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		at = at.Add(time.Hour)
		if err := e2.Report("disky", geo.Point{X: 0, Y: 0}.Add(rnd.GaussianPolar(10)), at); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.RebuildProfile("disky", at); err != nil {
		t.Fatal(err)
	}
	if _, fromTable, err := e2.Request("disky", geo.Point{X: 0, Y: 0}); err != nil || !fromTable {
		t.Errorf("request with sigma-less mechanism: fromTable=%v err=%v", fromTable, err)
	}
}
