package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/tracing"
)

// Durability: the engine is a deterministic state machine — given the
// same per-user input order (and the snapshot-restored PRNG position),
// replaying the same operations reproduces byte-identical state. The
// hooks below exploit that: every mutating operation (and Request,
// which advances the per-user PRNG even though it returns data) emits
// one compact logical record to an attached log AFTER the shard-local
// apply, while still holding the user's lock so per-user order in the
// log matches apply order. Recovery is Restore(latest checkpoint) +
// replay of the log tail through ApplyRecord.
//
// This is what makes the paper's privacy invariant survive kill -9:
// losing the permanent obfuscation table — or even just the per-user
// PRNG position consumed by posterior selection — would force a second
// independent (r, ε, δ, n) release for the same top locations, exactly
// the longitudinal degradation of Section III.

// Durability is the minimal sink the engine logs to; *wal.Store
// implements it. Append must be safe for concurrent use.
type Durability interface {
	// Append durably orders one record and returns its LSN.
	Append(rec []byte) (uint64, error)
	// NextLSN returns the LSN the next record will receive.
	NextLSN() uint64
}

// DurableStore is the full recovery surface; *wal.Store implements it.
type DurableStore interface {
	Durability
	// LatestCheckpoint opens the newest checkpoint; ok is false on a
	// cold store.
	LatestCheckpoint() (lsn uint64, r io.ReadCloser, ok bool, err error)
	// Replay streams records with LSN >= from in order.
	Replay(from uint64, fn func(lsn uint64, rec []byte) error) error
}

// ErrCorruptRecord reports a durability record that cannot be decoded;
// unlike an operation-level replay error (a deterministic reproduction
// of a failure the live engine already returned once) it aborts
// recovery.
var ErrCorruptRecord = errors.New("core: corrupt durability record")

// durHolder wraps the attached sink behind one atomic pointer so the
// non-durable hot path pays a single nil-check.
type durHolder struct {
	d Durability
}

// SetDurability attaches (or with nil, detaches) the durability sink.
// Attach before serving: operations already in flight may miss the log.
// An Append failure surfaces as the operation's error with the state
// change already applied — crash-equivalent semantics, matching what a
// client must assume after any error.
func (e *Engine) SetDurability(d Durability) {
	if d == nil {
		e.dur.Store(nil)
		return
	}
	e.dur.Store(&durHolder{d: d})
}

// durBegin enters a logged operation: it returns the attached sink (nil
// when durability is off) and, when attached, takes the checkpoint read
// lock so no checkpoint can interleave between the state apply and its
// log record. Pair with durEnd.
func (e *Engine) durBegin() *durHolder {
	h := e.dur.Load()
	if h == nil {
		return nil
	}
	e.ckptMu.RLock()
	return h
}

func (e *Engine) durEnd(h *durHolder) {
	if h != nil {
		e.ckptMu.RUnlock()
	}
}

var recBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// emit encodes one record into a pooled buffer and appends it to the
// log. Callers hold the user's lock so the log preserves per-user apply
// order. The append (group commit + fsync wait included) is timed as
// the request's WAL span when ctx carries a trace.
func (h *durHolder) emit(ctx context.Context, enc func(b []byte) []byte) error {
	_, sp := tracing.StartSpan(ctx, tracing.StageWAL)
	defer sp.End()
	bp := recBufPool.Get().(*[]byte)
	buf := enc((*bp)[:0])
	_, err := h.d.Append(buf)
	*bp = buf[:0]
	recBufPool.Put(bp)
	if err != nil {
		return fmt.Errorf("core: appending durability record: %w", err)
	}
	return nil
}

// Record type tags. The payload after the tag is compact binary:
// uvarint lengths/counts, little-endian float64 bits, varint
// seconds+nanos timestamps.
const (
	recReport      byte = 1 // user, pos, at
	recBatch       byte = 2 // user, n, n×(pos, at) — one per-user run
	recRebuild     byte = 3 // user, now
	recInstallTops byte = 4 // user, now, tops
	recSyncTops    byte = 5 // user, now, tops
	recImport      byte = 6 // user, entries
	recRequest     byte = 7 // user, truePos (advances the user PRNG)
)

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendPoint(b []byte, p geo.Point) []byte {
	b = appendF64(b, p.X)
	return appendF64(b, p.Y)
}

// appendTime preserves the instant exactly (and the zero value exactly:
// Report treats a zero windowStart as "unset", so a replayed zero time
// must stay zero, not become an equal-instant non-zero Time).
func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendVarint(b, t.Unix())
	return binary.AppendVarint(b, int64(t.Nanosecond()))
}

func appendTops(b []byte, tops profile.Profile) []byte {
	b = binary.AppendUvarint(b, uint64(len(tops)))
	for _, lf := range tops {
		b = appendPoint(b, lf.Loc)
		b = binary.AppendVarint(b, int64(lf.Freq))
	}
	return b
}

func encodeReport(b []byte, userID string, pos geo.Point, at time.Time) []byte {
	b = append(b, recReport)
	b = appendStr(b, userID)
	b = appendPoint(b, pos)
	return appendTime(b, at)
}

func encodeBatchRun(b []byte, userID string, items []BatchReport, idx []int) []byte {
	b = append(b, recBatch)
	b = appendStr(b, userID)
	n := len(idx)
	if idx == nil {
		n = len(items)
	}
	b = binary.AppendUvarint(b, uint64(n))
	for i := 0; i < n; i++ {
		j := i
		if idx != nil {
			j = idx[i]
		}
		b = appendPoint(b, items[j].Pos)
		b = appendTime(b, items[j].At)
	}
	return b
}

func encodeRebuild(b []byte, userID string, now time.Time) []byte {
	b = append(b, recRebuild)
	b = appendStr(b, userID)
	return appendTime(b, now)
}

func encodeTops(b []byte, tag byte, userID string, tops profile.Profile, now time.Time) []byte {
	b = append(b, tag)
	b = appendStr(b, userID)
	b = appendTime(b, now)
	return appendTops(b, tops)
}

func encodeImport(b []byte, userID string, entries []TableEntry) []byte {
	b = append(b, recImport)
	b = appendStr(b, userID)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, entry := range entries {
		b = appendPoint(b, entry.Top)
		b = appendTime(b, entry.CreatedAt)
		b = binary.AppendUvarint(b, uint64(len(entry.Candidates)))
		for _, c := range entry.Candidates {
			b = appendPoint(b, c)
		}
	}
	return b
}

func encodeRequest(b []byte, userID string, truePos geo.Point) []byte {
	b = append(b, recRequest)
	b = appendStr(b, userID)
	return appendPoint(b, truePos)
}

// recReader decodes a record payload with a sticky error.
type recReader struct {
	b   []byte
	err error
}

func (r *recReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorruptRecord, what)
	}
}

func (r *recReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *recReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *recReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *recReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *recReader) point(what string) geo.Point {
	return geo.Point{X: r.f64(what), Y: r.f64(what)}
}

func (r *recReader) time(what string) time.Time {
	if r.err != nil {
		return time.Time{}
	}
	if len(r.b) < 1 {
		r.fail(what)
		return time.Time{}
	}
	flag := r.b[0]
	r.b = r.b[1:]
	if flag == 0 {
		return time.Time{}
	}
	sec := r.varint(what)
	nsec := r.varint(what)
	// UTC for the same reason the wire codec normalizes on decode: a
	// replayed or faulted-in instant must serialize (snapshot JSON)
	// byte-identically to the live one regardless of host zone.
	return time.Unix(sec, nsec).UTC()
}

func (r *recReader) count(what string, itemFloor int) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	// A corrupt count must not trigger a huge allocation: every item
	// occupies at least itemFloor bytes of the remaining payload.
	if itemFloor > 0 && n > uint64(len(r.b)/itemFloor) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

func (r *recReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %s", ErrCorruptRecord, len(r.b), what)
	}
	return nil
}

// ApplyRecord replays one logical record through the normal engine
// entry points. Decode failures wrap ErrCorruptRecord; any other error
// is an operation-level error the live engine already returned once —
// a deterministic reproduction, safe to count and skip. Call it only
// before SetDurability, or the replayed operations would be re-logged.
func (e *Engine) ApplyRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("%w: empty", ErrCorruptRecord)
	}
	r := &recReader{b: rec[1:]}
	switch tag := rec[0]; tag {
	case recReport:
		user := r.str("report user")
		pos := r.point("report pos")
		at := r.time("report time")
		if err := r.done("report"); err != nil {
			return err
		}
		return e.Report(user, pos, at)
	case recBatch:
		user := r.str("batch user")
		n := r.count("batch", 17) // point is 16 bytes, time ≥ 1
		items := make([]BatchReport, 0, n)
		for i := 0; i < n; i++ {
			pos := r.point("batch pos")
			at := r.time("batch time")
			items = append(items, BatchReport{UserID: user, Pos: pos, At: at})
		}
		if err := r.done("batch"); err != nil {
			return err
		}
		if errs := e.ReportBatch(items); len(errs) > 0 {
			return errs[0].Err
		}
		return nil
	case recRebuild:
		user := r.str("rebuild user")
		now := r.time("rebuild time")
		if err := r.done("rebuild"); err != nil {
			return err
		}
		return e.RebuildProfile(user, now)
	case recInstallTops, recSyncTops:
		user := r.str("tops user")
		now := r.time("tops time")
		n := r.count("tops", 17)
		tops := make(profile.Profile, 0, n)
		for i := 0; i < n; i++ {
			loc := r.point("top loc")
			freq := r.varint("top freq")
			tops = append(tops, profile.LocationFreq{Loc: loc, Freq: int(freq)})
		}
		if err := r.done("tops"); err != nil {
			return err
		}
		if tag == recInstallTops {
			return e.InstallTops(user, tops, now)
		}
		return e.SyncTops(user, tops, now)
	case recImport:
		user := r.str("import user")
		n := r.count("import entries", 18) // top 16, time ≥ 1, count ≥ 1
		entries := make([]TableEntry, 0, n)
		for i := 0; i < n; i++ {
			var entry TableEntry
			entry.Top = r.point("import top")
			entry.CreatedAt = r.time("import time")
			m := r.count("import candidates", 16)
			entry.Candidates = make([]geo.Point, 0, m)
			for j := 0; j < m; j++ {
				entry.Candidates = append(entry.Candidates, r.point("import candidate"))
			}
			entries = append(entries, entry)
		}
		if err := r.done("import"); err != nil {
			return err
		}
		return e.ImportTable(user, entries)
	case recRequest:
		user := r.str("request user")
		pos := r.point("request pos")
		if err := r.done("request"); err != nil {
			return err
		}
		_, _, err := e.Request(user, pos)
		return err
	default:
		return fmt.Errorf("%w: unknown tag %d", ErrCorruptRecord, tag)
	}
}

// Checkpoint captures a consistent snapshot and the LSN it covers:
// every record with a smaller LSN is inside the snapshot, every later
// record must be replayed on top of it. The checkpoint write lock
// briefly stops the world — loggable operations block between their
// apply and the snapshot, never straddling it — and the snapshot is
// serialised to memory under the lock so the pause excludes disk I/O.
// Hand the result to wal.Store.WriteCheckpoint.
func (e *Engine) Checkpoint() (lsn uint64, data []byte, err error) {
	h := e.dur.Load()
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if h != nil {
		lsn = h.d.NextLSN()
	}
	var buf writeBuffer
	if err := e.Snapshot(&buf); err != nil {
		return 0, nil, err
	}
	return lsn, buf.b, nil
}

// writeBuffer is a minimal io.Writer over a byte slice (bytes.Buffer
// without the unused machinery).
type writeBuffer struct{ b []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// RecoveryStats summarises a Recover call.
type RecoveryStats struct {
	// CheckpointLSN is the log position the restored checkpoint
	// covered; zero on a cold store.
	CheckpointLSN uint64
	// Replayed counts log records applied on top of the checkpoint.
	Replayed int
	// OpErrors counts replayed records whose operation returned an
	// error — deterministic reproductions of failures the live engine
	// already reported (e.g. a rebuild over malformed input), not
	// corruption.
	OpErrors int
}

// Recover rebuilds engine state from st — Restore of the latest
// checkpoint, then replay of the log tail — and on success attaches st
// as the engine's durability sink. The engine must be fresh: recovery
// into live state would interleave two histories. After Recover the
// engine is byte-identical (TableFingerprint, Snapshot) to the one
// that wrote the log, minus only a torn final record.
func (e *Engine) Recover(st DurableStore) (RecoveryStats, error) {
	var stats RecoveryStats
	if e.nUsers.Load() != 0 {
		return stats, errors.New("core: refusing to recover into a non-empty engine")
	}
	from, r, ok, err := st.LatestCheckpoint()
	if err != nil {
		return stats, fmt.Errorf("core: locating checkpoint: %w", err)
	}
	if ok {
		restoreErr := e.Restore(r)
		if cerr := r.Close(); restoreErr == nil && cerr != nil {
			restoreErr = cerr
		}
		if restoreErr != nil {
			return stats, fmt.Errorf("core: restoring checkpoint at lsn %d: %w", from, restoreErr)
		}
		stats.CheckpointLSN = from
	}
	err = st.Replay(from, func(_ uint64, rec []byte) error {
		stats.Replayed++
		switch err := e.ApplyRecord(rec); {
		case err == nil:
		case errors.Is(err, ErrCorruptRecord):
			return err
		default:
			stats.OpErrors++
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("core: replaying log tail: %w", err)
	}
	e.SetDurability(st)
	return stats, nil
}
