package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestNewObfuscationTableValidation(t *testing.T) {
	for _, r := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewObfuscationTable(r); err == nil {
			t.Errorf("radius %g expected error", r)
		}
	}
	tbl, err := NewObfuscationTable(50)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MatchRadius() != 50 || tbl.Len() != 0 {
		t.Errorf("fresh table: radius=%g len=%d", tbl.MatchRadius(), tbl.Len())
	}
}

func TestTableInsertLookup(t *testing.T) {
	tbl, err := NewObfuscationTable(50)
	if err != nil {
		t.Fatal(err)
	}
	top := geo.Point{X: 100, Y: 100}
	cands := []geo.Point{{X: 500, Y: 500}, {X: -300, Y: 200}}
	now := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

	entry, created := tbl.Insert(top, cands, now)
	if !created {
		t.Fatal("first insert should create")
	}
	if len(entry.Candidates) != 2 || !entry.CreatedAt.Equal(now) {
		t.Errorf("entry = %+v", entry)
	}

	// Lookup within the match radius finds the entry.
	got, ok := tbl.Lookup(geo.Point{X: 120, Y: 110})
	if !ok || got.Top != top {
		t.Errorf("Lookup near = %+v, %v", got, ok)
	}
	// Outside the radius misses.
	if _, ok := tbl.Lookup(geo.Point{X: 200, Y: 200}); ok {
		t.Error("Lookup far should miss")
	}
}

// TestTablePermanence is the defining property against the longitudinal
// attack: re-inserting the same (or a nearby) top location must NOT
// generate a new entry — the original candidates are authoritative.
func TestTablePermanence(t *testing.T) {
	tbl, err := NewObfuscationTable(50)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	orig := []geo.Point{{X: 1, Y: 1}}
	entry1, created := tbl.Insert(geo.Point{X: 0, Y: 0}, orig, now)
	if !created {
		t.Fatal("first insert should create")
	}
	// A slightly drifted recomputed top (next window's centroid).
	entry2, created := tbl.Insert(geo.Point{X: 10, Y: -5}, []geo.Point{{X: 999, Y: 999}}, now.Add(time.Hour))
	if created {
		t.Fatal("nearby top must reuse the permanent entry")
	}
	if entry2.Top != entry1.Top || entry2.Candidates[0] != orig[0] {
		t.Errorf("permanent entry mutated: %+v", entry2)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestTableInsertCopiesCandidates(t *testing.T) {
	tbl, err := NewObfuscationTable(50)
	if err != nil {
		t.Fatal(err)
	}
	cands := []geo.Point{{X: 1, Y: 1}}
	tbl.Insert(geo.Point{}, cands, time.Now())
	cands[0] = geo.Point{X: 777, Y: 777}
	got, ok := tbl.Lookup(geo.Point{})
	if !ok || got.Candidates[0] != (geo.Point{X: 1, Y: 1}) {
		t.Error("table aliases caller's candidate slice")
	}
}

func TestTableLookupNearest(t *testing.T) {
	tbl, err := NewObfuscationTable(100)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	a := geo.Point{X: 0, Y: 0}
	b := geo.Point{X: 150, Y: 0}
	tbl.Insert(a, []geo.Point{{X: 1, Y: 0}}, now)
	tbl.Insert(b, []geo.Point{{X: 2, Y: 0}}, now)
	got, ok := tbl.Lookup(geo.Point{X: 100, Y: 0})
	if !ok || got.Top != b {
		t.Errorf("Lookup should pick the nearest entry, got %+v", got.Top)
	}
}

func TestTableEntriesCopy(t *testing.T) {
	tbl, err := NewObfuscationTable(50)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(geo.Point{}, []geo.Point{{X: 5, Y: 5}}, time.Now())
	entries := tbl.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	entries[0].Top = geo.Point{X: 888, Y: 888}
	if got, _ := tbl.Lookup(geo.Point{}); got.Top != (geo.Point{}) {
		t.Error("Entries leaked internal state")
	}
}

func TestTableConcurrentInsertSameTop(t *testing.T) {
	tbl, err := NewObfuscationTable(50)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	var wg sync.WaitGroup
	createdCount := make(chan bool, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, created := tbl.Insert(geo.Point{X: float64(i % 3), Y: 0}, []geo.Point{{X: float64(i), Y: 0}}, now)
			createdCount <- created
		}(i)
	}
	wg.Wait()
	close(createdCount)
	creations := 0
	for c := range createdCount {
		if c {
			creations++
		}
	}
	if creations != 1 {
		t.Errorf("%d creations for one location, want 1", creations)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}
