package core

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/telemetry"
)

// BenchmarkTelemetryOverhead measures Engine.Request with and without
// telemetry attached. The instrumented path adds one atomic pointer
// load and two to three atomic adds per request; selection latency is
// clock-sampled (1 in 32), so the steady-state cost stays a few atomic
// adds. The acceptance bar is < 5% overhead on the table-hit path.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, instrument bool, pos func(geo.Point) geo.Point) {
		e, home := newTelemetryEngine(b)
		if instrument {
			e.Instrument(telemetry.NewRegistry())
		}
		target := pos(home)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.Request("u1", target); err != nil {
				b.Fatal(err)
			}
		}
	}
	tableHit := func(home geo.Point) geo.Point { return home }
	nomadic := func(geo.Point) geo.Point { return geo.Point{X: 90000, Y: 90000} }

	b.Run("table-hit/uninstrumented", func(b *testing.B) { run(b, false, tableHit) })
	b.Run("table-hit/instrumented", func(b *testing.B) { run(b, true, tableHit) })
	b.Run("nomadic/uninstrumented", func(b *testing.B) { run(b, false, nomadic) })
	b.Run("nomadic/instrumented", func(b *testing.B) { run(b, true, nomadic) })
}
