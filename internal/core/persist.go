package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/trace"
)

// The permanence of the obfuscation table is load-bearing for privacy:
// if an edge device restarted and re-obfuscated the same top locations,
// the attacker would observe a second independent (r, ε, δ, n) release
// and the longitudinal guarantee would degrade exactly as Section III
// describes. Snapshot/Restore make the table (and the rest of the
// per-user state) durable across restarts.

// userSnapshot is the serialised form of one user's engine state.
type userSnapshot struct {
	UserID      string          `json:"user_id"`
	Pending     []trace.CheckIn `json:"pending,omitempty"`
	WindowStart time.Time       `json:"window_start,omitempty"`
	Tops        profile.Profile `json:"tops,omitempty"`
	HasProfile  bool            `json:"has_profile"`
	Table       []TableEntry    `json:"table,omitempty"`
	// RandState carries the user's PRNG stream position so restored
	// engines continue the exact sequence (keeping runs reproducible).
	RandState []byte `json:"rand_state"`
}

// snapshotHeader versions the stream format.
type snapshotHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Users   int    `json:"users"`
}

const (
	_snapshotFormat  = "edge-privlocad-state"
	_snapshotVersion = 1
)

// Snapshot serialises all per-user state as JSON lines: one header line,
// then one line per user (sorted by ID for deterministic output).
// Spilled users are read through viewUser without promoting them, so a
// snapshot of a memory-tiered engine is byte-identical to one of an
// untired engine with the same history — eviction is invisible here.
func (e *Engine) Snapshot(w io.Writer) error {
	ids := e.Users()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{
		Format:  _snapshotFormat,
		Version: _snapshotVersion,
		Users:   len(ids),
	}); err != nil {
		return fmt.Errorf("core: encoding snapshot header: %w", err)
	}
	for _, id := range ids {
		snap, err := e.snapshotUser(id)
		if err != nil {
			return err
		}
		if err := enc.Encode(snap); err != nil {
			return fmt.Errorf("core: encoding snapshot for %q: %w", id, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flushing snapshot: %w", err)
	}
	return nil
}

// snapshotUser captures one user's state. viewUser re-resolves through
// the shard, so a user evicted (or faulted in) between the ID walk and
// this read is still captured exactly once, consistently.
func (e *Engine) snapshotUser(id string) (userSnapshot, error) {
	u, release, err := e.viewUser(id)
	if err != nil {
		return userSnapshot{}, fmt.Errorf("core: snapshotting %q: %w", id, err)
	}
	defer release()
	randState, err := u.rnd.MarshalState()
	if err != nil {
		return userSnapshot{}, fmt.Errorf("core: capturing PRNG state for %q: %w", id, err)
	}
	return userSnapshot{
		UserID:      id,
		Pending:     append([]trace.CheckIn(nil), u.pending...),
		WindowStart: u.windowStart,
		Tops:        append(profile.Profile(nil), u.tops...),
		HasProfile:  u.hasProfile,
		Table:       u.table.Entries(),
		RandState:   randState,
	}, nil
}

// Restore loads a snapshot produced by Snapshot into a fresh engine.
// Restored users keep their permanent obfuscation tables verbatim —
// the property that preserves the longitudinal guarantee across
// restarts. Restoring over existing users is rejected.
//
// Restore is all-or-nothing: every user is staged (and validated) off
// to the side first, then committed in one step under all shard locks.
// A failure anywhere — a corrupt user mid-stream, a short stream, a
// duplicate — leaves the engine exactly as it was, instead of leaking
// the users before the failure point into the engine with the
// aggregate counters already bumped.
func (e *Engine) Restore(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header snapshotHeader
	if err := dec.Decode(&header); err != nil {
		return fmt.Errorf("core: decoding snapshot header: %w", err)
	}
	if header.Format != _snapshotFormat {
		return fmt.Errorf("core: snapshot format %q, want %q", header.Format, _snapshotFormat)
	}
	if header.Version != _snapshotVersion {
		return fmt.Errorf("core: snapshot version %d not supported", header.Version)
	}

	type stagedUser struct {
		id string
		u  *userState
	}
	staged := make([]stagedUser, 0, header.Users)
	seen := make(map[string]struct{}, header.Users)
	var stagedTops, stagedCandidates int64
	for {
		var snap userSnapshot
		if err := dec.Decode(&snap); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("core: decoding snapshot user %d: %w", len(staged), err)
		}
		if snap.UserID == "" {
			return fmt.Errorf("core: snapshot user %d has empty id", len(staged))
		}
		if _, dup := seen[snap.UserID]; dup {
			return fmt.Errorf("core: snapshot user %q appears twice", snap.UserID)
		}
		seen[snap.UserID] = struct{}{}
		table, err := NewObfuscationTable(e.cfg.ConnectivityThreshold)
		if err != nil {
			return fmt.Errorf("core: restoring table for %q: %w", snap.UserID, err)
		}
		for _, entry := range snap.Table {
			// Aggregate counts are tallied locally and only applied
			// at commit: bumping e.nTops here would corrupt the
			// counters when a later user fails the restore.
			if _, created := table.Insert(entry.Top, entry.Candidates, entry.CreatedAt); created {
				stagedTops++
				stagedCandidates += int64(len(entry.Candidates))
			}
		}
		rnd, err := randx.NewFromState(snap.RandState)
		if err != nil {
			return fmt.Errorf("core: restoring PRNG state for %q: %w", snap.UserID, err)
		}
		staged = append(staged, stagedUser{id: snap.UserID, u: &userState{
			rnd:         rnd,
			pending:     snap.Pending,
			windowStart: snap.WindowStart,
			tops:        snap.Tops,
			hasProfile:  snap.HasProfile,
			table:       table,
		}})
	}
	if len(staged) != header.Users {
		return fmt.Errorf("core: snapshot header says %d users, stream had %d", header.Users, len(staged))
	}

	// Commit. All shard locks are taken in index order (no other path
	// holds two shards at once, so this cannot deadlock) and the
	// conflict check — against both tiers — runs before the first
	// install.
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
	var conflict error
	for _, su := range staged {
		s, _ := e.shardFor(su.id)
		_, resident := s.users[su.id]
		_, spilled := s.spilled[su.id]
		if resident || spilled {
			conflict = fmt.Errorf("core: snapshot user %q already present in engine", su.id)
			break
		}
	}
	if conflict == nil {
		for _, su := range staged {
			s, _ := e.shardFor(su.id)
			s.users[su.id] = su.u
		}
		e.nUsers.Add(int64(len(staged)))
		e.nResident.Add(int64(len(staged)))
		e.nTops.Add(stagedTops)
		e.nCandidates.Add(stagedCandidates)
	}
	for i := range e.shards {
		e.shards[i].mu.Unlock()
	}
	if conflict != nil {
		return conflict
	}
	// A restore can overshoot a resident cap by the whole snapshot; trim
	// back down before serving resumes (shard by shard, after the global
	// commit released the other locks).
	if e.residentQuota > 0 {
		for i := range e.shards {
			s := &e.shards[i]
			s.mu.Lock()
			e.enforceQuotaLocked(s, nil)
			s.mu.Unlock()
		}
	}
	return nil
}

// SnapshotFile writes the snapshot to path atomically AND durably:
// temp file, fsync, rename, fsync of the parent directory. Without the
// two fsyncs the rename is only atomic against a process crash — after
// a power failure many filesystems may expose the new name with stale
// or missing content, which is exactly the table loss the snapshot
// exists to prevent.
func (e *Engine) SnapshotFile(path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: creating %q: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			_ = os.Remove(tmp)
		}
	}()
	if err = e.Snapshot(f); err != nil {
		_ = f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("core: fsyncing %q: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("core: closing %q: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: renaming snapshot into place: %w", err)
	}
	dir := filepath.Dir(path)
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: opening %q to fsync rename: %w", dir, err)
	}
	if err = d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("core: fsyncing %q: %w", dir, err)
	}
	if err = d.Close(); err != nil {
		return fmt.Errorf("core: closing %q: %w", dir, err)
	}
	return nil
}

// RestoreFile loads a snapshot from path.
func (e *Engine) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: opening %q: %w", path, err)
	}
	defer f.Close()
	return e.Restore(f)
}
