package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/profile"
	"repro/internal/randx"
	"repro/internal/trace"
)

// The permanence of the obfuscation table is load-bearing for privacy:
// if an edge device restarted and re-obfuscated the same top locations,
// the attacker would observe a second independent (r, ε, δ, n) release
// and the longitudinal guarantee would degrade exactly as Section III
// describes. Snapshot/Restore make the table (and the rest of the
// per-user state) durable across restarts.

// userSnapshot is the serialised form of one user's engine state.
type userSnapshot struct {
	UserID      string          `json:"user_id"`
	Pending     []trace.CheckIn `json:"pending,omitempty"`
	WindowStart time.Time       `json:"window_start,omitempty"`
	Tops        profile.Profile `json:"tops,omitempty"`
	HasProfile  bool            `json:"has_profile"`
	Table       []TableEntry    `json:"table,omitempty"`
	// RandState carries the user's PRNG stream position so restored
	// engines continue the exact sequence (keeping runs reproducible).
	RandState []byte `json:"rand_state"`
}

// snapshotHeader versions the stream format.
type snapshotHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Users   int    `json:"users"`
}

const (
	_snapshotFormat  = "edge-privlocad-state"
	_snapshotVersion = 1
)

// Snapshot serialises all per-user state as JSON lines: one header line,
// then one line per user (sorted by ID for deterministic output).
func (e *Engine) Snapshot(w io.Writer) error {
	var ids []string
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for id := range s.users {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	users := make([]*userState, len(ids))
	for i, id := range ids {
		s, _ := e.shardFor(id)
		s.mu.RLock()
		users[i] = s.users[id]
		s.mu.RUnlock()
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{
		Format:  _snapshotFormat,
		Version: _snapshotVersion,
		Users:   len(ids),
	}); err != nil {
		return fmt.Errorf("core: encoding snapshot header: %w", err)
	}
	for i, u := range users {
		u.mu.Lock()
		randState, rerr := u.rnd.MarshalState()
		snap := userSnapshot{
			UserID:      ids[i],
			Pending:     append([]trace.CheckIn(nil), u.pending...),
			WindowStart: u.windowStart,
			Tops:        append(profile.Profile(nil), u.tops...),
			HasProfile:  u.hasProfile,
			Table:       u.table.Entries(),
			RandState:   randState,
		}
		u.mu.Unlock()
		if rerr != nil {
			return fmt.Errorf("core: capturing PRNG state for %q: %w", ids[i], rerr)
		}
		if err := enc.Encode(snap); err != nil {
			return fmt.Errorf("core: encoding snapshot for %q: %w", ids[i], err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flushing snapshot: %w", err)
	}
	return nil
}

// Restore loads a snapshot produced by Snapshot into a fresh engine.
// Restored users keep their permanent obfuscation tables verbatim —
// the property that preserves the longitudinal guarantee across
// restarts. Restoring over existing users is rejected.
func (e *Engine) Restore(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header snapshotHeader
	if err := dec.Decode(&header); err != nil {
		return fmt.Errorf("core: decoding snapshot header: %w", err)
	}
	if header.Format != _snapshotFormat {
		return fmt.Errorf("core: snapshot format %q, want %q", header.Format, _snapshotFormat)
	}
	if header.Version != _snapshotVersion {
		return fmt.Errorf("core: snapshot version %d not supported", header.Version)
	}

	restored := 0
	for {
		var snap userSnapshot
		if err := dec.Decode(&snap); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("core: decoding snapshot user %d: %w", restored, err)
		}
		if snap.UserID == "" {
			return fmt.Errorf("core: snapshot user %d has empty id", restored)
		}
		table, err := NewObfuscationTable(e.cfg.ConnectivityThreshold)
		if err != nil {
			return fmt.Errorf("core: restoring table for %q: %w", snap.UserID, err)
		}
		rnd, err := randx.NewFromState(snap.RandState)
		if err != nil {
			return fmt.Errorf("core: restoring PRNG state for %q: %w", snap.UserID, err)
		}
		s, _ := e.shardFor(snap.UserID)
		s.mu.Lock()
		if _, exists := s.users[snap.UserID]; exists {
			s.mu.Unlock()
			return fmt.Errorf("core: snapshot user %q already present in engine", snap.UserID)
		}
		for _, entry := range snap.Table {
			e.noteInsert(table.Insert(entry.Top, entry.Candidates, entry.CreatedAt))
		}
		s.users[snap.UserID] = &userState{
			rnd:         rnd,
			pending:     snap.Pending,
			windowStart: snap.WindowStart,
			tops:        snap.Tops,
			hasProfile:  snap.HasProfile,
			table:       table,
		}
		s.mu.Unlock()
		e.nUsers.Add(1)
		restored++
	}
	if restored != header.Users {
		return fmt.Errorf("core: snapshot header says %d users, stream had %d", header.Users, restored)
	}
	return nil
}

// SnapshotFile writes the snapshot to path atomically (via a temp file
// rename), so a crash mid-write never corrupts the previous state.
func (e *Engine) SnapshotFile(path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: creating %q: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			_ = os.Remove(tmp)
		}
	}()
	if err = e.Snapshot(f); err != nil {
		_ = f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("core: closing %q: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: renaming snapshot into place: %w", err)
	}
	return nil
}

// RestoreFile loads a snapshot from path.
func (e *Engine) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: opening %q: %w", path, err)
	}
	defer f.Close()
	return e.Restore(f)
}
