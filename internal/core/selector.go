package core

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/randx"
)

// SelectPosterior implements the output selection module (Algorithm 4):
// it draws one candidate from the set with probability proportional to
// the posterior density of the real location at that candidate,
//
//	f(x, y) = (1/2πσ²)·exp(−((x−x̄)² + (y−ȳ)²)/2σ²)
//
// where (x̄, ȳ) is the candidate centroid (Eq. 17) and σ the mechanism's
// noise deviation. Candidates near the centroid — the likeliest position
// of the real location given the published set — are favoured, which is
// what keeps advertising efficacy flat as n grows (Observation-4).
//
// It returns the selected candidate and its index.
func SelectPosterior(rnd *randx.Rand, candidates []geo.Point, sigma float64) (geo.Point, int, error) {
	if len(candidates) == 0 {
		return geo.Point{}, 0, fmt.Errorf("core: posterior selection over empty candidate set")
	}
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return geo.Point{}, 0, fmt.Errorf("core: posterior sigma %g must be positive and finite", sigma)
	}
	if len(candidates) == 1 {
		return candidates[0], 0, nil
	}

	centroid, _ := geo.Centroid(candidates)

	// Weights ∝ exp(−d²/2σ²); shift by the minimum squared distance so the
	// largest weight is exactly 1, avoiding underflow when candidates sit
	// many σ from the centroid.
	d2 := make([]float64, len(candidates))
	minD2 := math.Inf(1)
	for i, c := range candidates {
		d2[i] = c.Dist2(centroid)
		if d2[i] < minD2 {
			minD2 = d2[i]
		}
	}
	twoSigma2 := 2 * sigma * sigma
	weights := make([]float64, len(candidates))
	var total float64
	for i := range weights {
		weights[i] = math.Exp(-(d2[i] - minD2) / twoSigma2)
		total += weights[i]
	}

	u := rnd.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return candidates[i], i, nil
		}
	}
	// Floating-point slack: fall back to the last candidate.
	last := len(candidates) - 1
	return candidates[last], last, nil
}

// SelectUniform draws a candidate uniformly at random. It exists for the
// ablation benchmarks isolating the posterior module's contribution.
func SelectUniform(rnd *randx.Rand, candidates []geo.Point) (geo.Point, int, error) {
	if len(candidates) == 0 {
		return geo.Point{}, 0, fmt.Errorf("core: uniform selection over empty candidate set")
	}
	i := rnd.IntN(len(candidates))
	return candidates[i], i, nil
}

// PosteriorProbabilities returns the selection distribution of
// SelectPosterior without sampling (Eq. 18), normalised to sum to one.
// Useful for analysis and tests.
func PosteriorProbabilities(candidates []geo.Point, sigma float64) ([]float64, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: posterior probabilities of empty candidate set")
	}
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("core: posterior sigma %g must be positive and finite", sigma)
	}
	centroid, _ := geo.Centroid(candidates)
	twoSigma2 := 2 * sigma * sigma
	minD2 := math.Inf(1)
	d2 := make([]float64, len(candidates))
	for i, c := range candidates {
		d2[i] = c.Dist2(centroid)
		if d2[i] < minD2 {
			minD2 = d2[i]
		}
	}
	probs := make([]float64, len(candidates))
	var total float64
	for i := range probs {
		probs[i] = math.Exp(-(d2[i] - minD2) / twoSigma2)
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	return probs, nil
}
