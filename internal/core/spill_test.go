package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/wal"
)

// tieredConfig returns testConfig with the cold tier enabled at the
// given resident cap (0 = unbounded, eviction only via EvictIdle).
func tieredConfig(t *testing.T, cap int) Config {
	t.Helper()
	cfg := testConfig(t)
	cfg.SpillDir = t.TempDir()
	cfg.MaxResidentUsers = cap
	return cfg
}

// feedTraceTiered is feedTrace with a resident cap: same trace, same
// rebuild, but users churn through the spill tier the whole way.
func feedTraceTiered(t *testing.T, items []BatchReport, shards, batch, cap int) *Engine {
	t.Helper()
	cfg := tieredConfig(t, cap)
	cfg.Shards = shards
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	if batch <= 1 {
		for _, it := range items {
			if err := e.Report(it.UserID, it.Pos, it.At); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		for lo := 0; lo < len(items); lo += batch {
			hi := min(lo+batch, len(items))
			if errs := e.ReportBatch(items[lo:hi]); len(errs) > 0 {
				t.Fatalf("batch [%d:%d]: %v", lo, hi, errs[0].Err)
			}
		}
	}
	now := items[len(items)-1].At.Add(time.Hour)
	if err := e.RebuildAll(now, 4); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFingerprintIdentityAcrossResidentCaps extends the PR 4 audit
// matrix with the memory-tier dimension: shards {1,8} × batch {1,64} ×
// resident cap {uncapped+untiered, tiny}. A tiny cap forces constant
// evict/fault-in churn during ingestion, and the resulting engine must
// be byte-identical — same table fingerprints, same Snapshot stream —
// to the all-resident reference. If eviction moved a single candidate
// bit or PRNG position, the longitudinal privacy accounting would
// silently diverge between capped and uncapped deployments.
func TestFingerprintIdentityAcrossResidentCaps(t *testing.T) {
	items := shardTrace(12, 120, 99)
	ref := feedTrace(t, items, 1, 1) // untiered reference
	refUsers := ref.Users()
	want := snapshotBytes(t, ref)
	wantFPs := fingerprints(t, ref)

	for _, tc := range []struct{ shards, batch, cap int }{
		{1, 1, 4}, {1, 64, 4}, {8, 1, 4}, {8, 64, 4},
	} {
		t.Run(fmt.Sprintf("shards=%d/batch=%d/cap=%d", tc.shards, tc.batch, tc.cap), func(t *testing.T) {
			e := feedTraceTiered(t, items, tc.shards, tc.batch, tc.cap)
			ts := e.TierStats()
			if ts.Evictions == 0 || ts.FaultIns == 0 {
				t.Fatalf("cap=%d saw no tier churn: %+v", tc.cap, ts)
			}
			if ts.SpillErrors != 0 {
				t.Errorf("spill errors: %+v", ts)
			}
			if got := e.Users(); len(got) != len(refUsers) {
				t.Fatalf("engine knows %d users, want %d", len(got), len(refUsers))
			}
			if got := fingerprints(t, e); len(got) != len(wantFPs) {
				t.Fatalf("fingerprints for %d users, want %d", len(got), len(wantFPs))
			} else {
				for id, fp := range wantFPs {
					if got[id] != fp {
						t.Errorf("fingerprint for %s diverged: %016x, want %016x", id, got[id], fp)
					}
				}
			}
			if got := snapshotBytes(t, e); !bytes.Equal(got, want) {
				t.Errorf("snapshot differs under cap (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestEvictFaultInCycleByteIdentity drives the full workload mix on a
// tiered engine and an untiered reference, then cycles the tiered one
// through evict-everything → mutating touches (which fault users back
// in, advancing their PRNGs) → evict again, applying the same touches
// to the reference. The two must stay byte-identical at every step:
// eviction must preserve the exact PRNG position, table bytes, and
// pending window, or the answer streams would fork.
func TestEvictFaultInCycleByteIdentity(t *testing.T) {
	cfg := tieredConfig(t, 0)
	cfg.Shards = 4
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	refCfg := testConfig(t)
	refCfg.Shards = 4
	ref, err := NewEngine(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, e, 8)
	driveWorkload(t, ref, 8)
	if got, want := snapshotBytes(t, e), snapshotBytes(t, ref); !bytes.Equal(got, want) {
		t.Fatal("tiered and reference engines diverged before any eviction")
	}

	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for cycle := 0; cycle < 3; cycle++ {
		n, err := e.EvictIdle(0)
		if err != nil {
			t.Fatalf("EvictIdle: %v", err)
		}
		if n == 0 {
			t.Fatalf("cycle %d evicted nothing", cycle)
		}
		if ts := e.TierStats(); ts.Resident != 0 {
			t.Fatalf("cycle %d: %d users still resident", cycle, ts.Resident)
		}
		// Snapshot and fingerprints must read through the cold tier
		// without promoting anyone.
		if got, want := snapshotBytes(t, e), snapshotBytes(t, ref); !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: snapshot differs while spilled", cycle)
		}
		if ts := e.TierStats(); ts.Resident != 0 {
			t.Fatalf("snapshot faulted users in: %+v", ts)
		}
		for _, id := range ref.Users() {
			want, err := ref.TableFingerprint(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.TableFingerprint(id)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cycle %d: fingerprint for %s diverged", cycle, id)
			}
		}
		// Mutating touches fault every user back in; the reference takes
		// the identical operations, so any PRNG or state drift introduced
		// by the evict/fault-in round trip shows up in the next compare.
		at := base.Add(time.Duration(cycle) * time.Hour)
		for _, id := range ref.Users() {
			for _, eng := range []*Engine{e, ref} {
				if err := eng.Report(id, geo.Point{X: 100, Y: 200}, at); err != nil {
					t.Fatal(err)
				}
				if _, _, err := eng.Request(id, geo.Point{X: 90_000, Y: 90_000}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if ts := e.TierStats(); ts.Resident == 0 || ts.Spilled != 0 {
			t.Fatalf("fault-in did not promote: %+v", ts)
		}
		if got, want := snapshotBytes(t, e), snapshotBytes(t, ref); !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: post-fault-in snapshot diverged", cycle)
		}
	}
}

// TestRebuildPartSequentialEquivalence pins RebuildPart's contract: K
// sub-rounds with the same timestamp leave the engine byte-identical to
// one RebuildAll call.
func TestRebuildPartSequentialEquivalence(t *testing.T) {
	items := shardTrace(10, 120, 42)
	now := items[len(items)-1].At.Add(time.Hour)

	build := func(t *testing.T, rebuild func(e *Engine)) *Engine {
		cfg := testConfig(t)
		cfg.Shards = 8
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if errs := e.ReportBatch(items); len(errs) > 0 {
			t.Fatalf("ReportBatch: %v", errs[0].Err)
		}
		rebuild(e)
		return e
	}

	ref := build(t, func(e *Engine) {
		if err := e.RebuildAll(now, 4); err != nil {
			t.Fatal(err)
		}
	})
	want := snapshotBytes(t, ref)

	for _, parts := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			e := build(t, func(e *Engine) {
				for k := 0; k < parts; k++ {
					if err := e.RebuildPart(now, 2, k, parts); err != nil {
						t.Fatal(err)
					}
				}
			})
			if got := snapshotBytes(t, e); !bytes.Equal(got, want) {
				t.Errorf("parts=%d: state diverged from RebuildAll", parts)
			}
		})
	}

	// Part index normalization: negative and ≥parts indexes alias into
	// range instead of silently skipping shards.
	e := build(t, func(e *Engine) {
		for k := 0; k < 3; k++ {
			if err := e.RebuildPart(now, 2, k-3, 3); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got := snapshotBytes(t, e); !bytes.Equal(got, want) {
		t.Error("negative part indexes diverged from RebuildAll")
	}
}

// TestRebuildPartSkipsSpilledIdle: spilled users with no pending
// check-ins are not faulted in by a rebuild pass — the cold tail must
// cost a map lookup, not disk traffic.
func TestRebuildPartSkipsSpilledIdle(t *testing.T) {
	cfg := tieredConfig(t, 0)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("u%d", i)
		for k := 0; k < 6; k++ {
			if err := e.Report(id, geo.Point{X: float64(i) * 1000, Y: 0}, base.Add(time.Duration(k)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Close every window: all users end up with zero pending check-ins.
	if err := e.RebuildAll(base.Add(time.Hour), 2); err != nil {
		t.Fatal(err)
	}
	// u0 gets fresh pending traffic; then evict everyone.
	if err := e.Report("u0", geo.Point{X: 10, Y: 10}, base.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvictIdle(0); err != nil {
		t.Fatal(err)
	}
	before := e.TierStats()
	if err := e.RebuildAll(base.Add(3*time.Hour), 2); err != nil {
		t.Fatal(err)
	}
	after := e.TierStats()
	if got := after.FaultIns - before.FaultIns; got != 1 {
		t.Errorf("rebuild faulted in %d users, want 1 (only the one with pending check-ins)", got)
	}
}

// TestSpillTierConcurrencyStress hammers a tiny-cap tiered engine from
// many goroutines — Report, ReportBatch, Request, RebuildAll, EvictIdle,
// Snapshot, fingerprints — at shards {1,8}. Meaningful primarily under
// -race; the final state must still be byte-identical to an untiered
// engine fed the same per-user operation sequence... which concurrency
// makes nondeterministic across users, so the assert here is the tier
// accounting invariant (resident + spilled == users) plus zero spill
// errors, with byte-identity covered by the deterministic tests above.
func TestSpillTierConcurrencyStress(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := tieredConfig(t, 3)
			cfg.Shards = shards
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			const (
				writers = 6
				perG    = 150
				nUsers  = 12
			)
			start := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rnd := randx.New(uint64(g), 0xE1)
					for i := 0; i < perG; i++ {
						id := fmt.Sprintf("user-%02d", (g*perG+i)%nUsers)
						pos := geo.Point{X: float64(g) * 100, Y: 0}.Add(rnd.GaussianPolar(10))
						at := start.Add(time.Duration(i) * time.Minute)
						switch i % 5 {
						case 0:
							if errs := e.ReportBatch([]BatchReport{
								{UserID: id, Pos: pos, At: at},
								{UserID: fmt.Sprintf("user-%02d", (g+i)%nUsers), Pos: pos, At: at},
							}); len(errs) > 0 {
								t.Error(errs[0].Err)
								return
							}
						case 3:
							_, _, _ = e.Request(id, pos)
						default:
							if err := e.Report(id, pos, at); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(g)
			}
			stop := make(chan struct{})
			var aux sync.WaitGroup
			aux.Add(1)
			go func() {
				defer aux.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					switch i % 3 {
					case 0:
						if _, err := e.EvictIdle(0); err != nil {
							t.Error(err)
							return
						}
					case 1:
						if err := e.RebuildPart(start.Add(time.Hour), 2, i, 4); err != nil {
							t.Error(err)
							return
						}
					default:
						var buf bytes.Buffer
						if err := e.Snapshot(&buf); err != nil {
							t.Error(err)
							return
						}
						for _, id := range e.Users() {
							if _, err := e.TableFingerprint(id); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}
			}()
			wg.Wait()
			close(stop)
			aux.Wait()
			ts := e.TierStats()
			if ts.SpillErrors != 0 {
				t.Errorf("spill errors under stress: %+v", ts)
			}
			if got := ts.Resident + ts.Spilled; got != nUsers {
				t.Errorf("resident %d + spilled %d = %d, want %d users", ts.Resident, ts.Spilled, got, nUsers)
			}
			if got := e.Stats().Users; got != nUsers {
				t.Errorf("engine counts %d users, want %d", got, nUsers)
			}
		})
	}
}

// TestRecoverWithSpilledUsers is the WAL × spill interaction: a capped
// engine checkpoints while most of its population is spilled, takes more
// traffic (for users both resident and spilled at checkpoint time), then
// crashes. Recovery into a fresh capped engine — whose replay itself
// churns the tier — must land byte-identical to the survivor.
func TestRecoverWithSpilledUsers(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredConfig(t, 2)
	cfg.Shards = 4
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(st); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, e, 8)
	// Spill everything, then checkpoint: the snapshot is taken with the
	// entire population cold.
	if _, err := e.EvictIdle(0); err != nil {
		t.Fatal(err)
	}
	if ts := e.TierStats(); ts.Resident != 0 || ts.Spilled == 0 {
		t.Fatalf("pre-checkpoint tier state: %+v", ts)
	}
	lsn, data, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(lsn, data); err != nil {
		t.Fatal(err)
	}
	// Tail traffic for a user that was spilled at checkpoint time: the
	// replay must fault it in from the restored state, not resurrect an
	// empty user.
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if err := e.Report("alice", geo.Point{X: 1000 + float64(i), Y: 1000}, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RebuildProfile("alice", base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Request("alice", geo.Point{X: 1000, Y: 1000}); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, e)
	wantFPs := fingerprints(t, e)

	st2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg2 := tieredConfig(t, 2)
	cfg2.Shards = 4
	e2, err := NewEngine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	stats, err := e2.Recover(st2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.CheckpointLSN != lsn || stats.Replayed != 12 {
		t.Errorf("stats = %+v, want checkpoint %d + 12 replayed", stats, lsn)
	}
	if got := snapshotBytes(t, e2); !bytes.Equal(got, want) {
		t.Error("recovered snapshot diverged from pre-crash state")
	}
	gotFPs := fingerprints(t, e2)
	for id, fp := range wantFPs {
		if gotFPs[id] != fp {
			t.Errorf("user %s: fingerprint %016x, want %016x", id, gotFPs[id], fp)
		}
	}
}

// TestSpillConfigValidation covers the tiering knobs' validation and
// the nextPow2 clamp.
func TestSpillConfigValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxResidentUsers = 10 // no SpillDir
	if _, err := NewEngine(cfg); err == nil {
		t.Error("MaxResidentUsers without SpillDir expected error")
	}
	cfg = testConfig(t)
	cfg.SpillDir = t.TempDir()
	cfg.MaxResidentUsers = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Error("negative MaxResidentUsers expected error")
	}
	cfg = testConfig(t)
	cfg.Shards = MaxShards + 1
	if _, err := NewEngine(cfg); err == nil {
		t.Error("Shards > MaxShards expected error")
	}

	// nextPow2 terminates and clamps for absurd inputs instead of
	// spinning toward overflow.
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
		{MaxShards, MaxShards}, {MaxShards + 1, MaxShards},
		{int(^uint(0) >> 1), MaxShards}, // max int
	} {
		if got := nextPow2(tc.in); got != tc.want {
			t.Errorf("nextPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}

	// EvictIdle without the tier is a config error, not a silent no-op.
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvictIdle(0); err == nil {
		t.Error("EvictIdle on an untiered engine expected error")
	}
}
