package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

// newTelemetryEngine builds an engine with one user whose home location
// is in the permanent table.
func newTelemetryEngine(t testing.TB) (*Engine, geo.Point) {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 1000, Y: 1000}
	rnd := randx.New(7, 99)
	at := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		if err := e.Report("u1", home.Add(rnd.GaussianPolar(10)), at.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RebuildProfile("u1", at.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	return e, home
}

// TestEngineStats checks that the O(1) aggregate matches a full walk
// over users and tables, and survives snapshot/restore.
func TestEngineStats(t *testing.T) {
	e, _ := newTelemetryEngine(t)

	walk := func(e *Engine) EngineStats {
		var s EngineStats
		for _, id := range e.Users() {
			s.Users++
			entries, err := e.Table(id)
			if err != nil {
				t.Fatal(err)
			}
			s.ProtectedTops += len(entries)
			for _, entry := range entries {
				s.Candidates += len(entry.Candidates)
			}
		}
		return s
	}

	got, want := e.Stats(), walk(e)
	if got != want {
		t.Errorf("Stats() = %+v, full walk = %+v", got, want)
	}
	if got.Users != 1 || got.ProtectedTops == 0 || got.Candidates != got.ProtectedTops*10 {
		t.Errorf("implausible stats %+v", got)
	}

	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	mech := e.Config().Mechanism
	restored, err := NewEngine(Config{Mechanism: mech, NomadicMechanism: e.Config().NomadicMechanism, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if rs := restored.Stats(); rs != want {
		t.Errorf("restored Stats() = %+v, want %+v", rs, want)
	}
}

// TestEngineInstrument checks the counters and histograms recorded on
// the report/request/rebuild paths.
func TestEngineInstrument(t *testing.T) {
	e, home := newTelemetryEngine(t)
	reg := telemetry.NewRegistry()
	e.Instrument(reg)
	e.met.Load().sampleEvery = 1 // time every selection for determinism

	at := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := e.Report("u1", home, at); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, fromTable, err := e.Request("u1", home); err != nil {
			t.Fatal(err)
		} else if !fromTable {
			t.Fatal("home request not served from table")
		}
	}
	if _, fromTable, err := e.Request("u1", geo.Point{X: 90000, Y: 90000}); err != nil {
		t.Fatal(err)
	} else if fromTable {
		t.Fatal("nomadic request served from table")
	}
	if err := e.RebuildProfile("u1", at.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("engine_reports_total", "").Value(); got != 1 {
		t.Errorf("reports = %d, want 1 (pre-instrument reports must not count)", got)
	}
	if got := reg.Counter("engine_table_hits_total", "").Value(); got != 5 {
		t.Errorf("table hits = %d, want 5", got)
	}
	if got := reg.Counter("engine_nomadic_total", "").Value(); got != 1 {
		t.Errorf("nomadic = %d, want 1", got)
	}
	if got := reg.Counter("engine_rebuilds_total", "").Value(); got != 1 {
		t.Errorf("rebuilds = %d, want 1", got)
	}
	if got := reg.Histogram("engine_selection_seconds", "", nil).Count(); got != 5 {
		t.Errorf("selection observations = %d, want 5", got)
	}
	if got := reg.Histogram("engine_rebuild_seconds", "", nil).Count(); got != 1 {
		t.Errorf("rebuild observations = %d, want 1", got)
	}

	// The gauge funcs report the live aggregates.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("engine_users 1\n")) {
		t.Errorf("exposition missing engine_users:\n%s", buf.String())
	}
}

// TestEngineBudgetDeniedMetric checks the budget-exhaustion counter.
func TestEngineBudgetDeniedMetric(t *testing.T) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	budget := geoind.Loss{Epsilon: 1.5, Delta: 0.1}
	e, err := NewEngine(Config{
		Mechanism:        mech,
		NomadicMechanism: nomadic,
		NomadicBudget:    &budget,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e.Instrument(reg)

	at := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := e.Report("u", geo.Point{}, at); err != nil {
		t.Fatal(err)
	}
	denied := false
	for i := 0; i < 50 && !denied; i++ {
		_, _, err := e.Request("u", geo.Point{X: 5000, Y: 5000})
		if err != nil {
			denied = true
		}
	}
	if !denied {
		t.Fatal("budget never exhausted")
	}
	if got := reg.Counter("engine_budget_denied_total", "").Value(); got == 0 {
		t.Error("budget denial not counted")
	}
}
