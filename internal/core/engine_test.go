package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/geoind"
	"repro/internal/randx"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 1}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("missing mechanisms expected error")
	}
	cfg := testConfig(t)
	cfg.NomadicMechanism = nil
	if _, err := NewEngine(cfg); err == nil {
		t.Error("missing nomadic mechanism expected error")
	}
	cfg = testConfig(t)
	cfg.EtaFraction = 1.5
	if _, err := NewEngine(cfg); err == nil {
		t.Error("eta > 1 expected error")
	}
}

func TestEngineDefaults(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	if cfg.ConnectivityThreshold != 50 {
		t.Errorf("threshold = %g", cfg.ConnectivityThreshold)
	}
	if cfg.EtaFraction != 0.9 {
		t.Errorf("eta = %g", cfg.EtaFraction)
	}
	if cfg.ProfileWindow != 90*24*time.Hour {
		t.Errorf("window = %v", cfg.ProfileWindow)
	}
	if cfg.TargetRadius != 5000 {
		t.Errorf("radius = %g", cfg.TargetRadius)
	}
}

func TestEngineUnknownUser(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Request("ghost", geo.Point{}); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("Request unknown user: %v", err)
	}
	if _, err := e.TopLocations("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("TopLocations unknown user: %v", err)
	}
	if _, err := e.Table("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("Table unknown user: %v", err)
	}
	if err := e.RebuildProfile("ghost", time.Now()); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("RebuildProfile unknown user: %v", err)
	}
}

// feedUser reports `visits` check-ins at home and work plus a few nomadic
// ones, then forces a profile rebuild.
func feedUser(t *testing.T, e *Engine, userID string, home, work geo.Point) time.Time {
	t.Helper()
	rnd := randx.New(500, 500)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	at := base
	for i := 0; i < 300; i++ {
		at = at.Add(4 * time.Hour)
		var pos geo.Point
		switch {
		case i%3 == 0:
			pos = work.Add(rnd.GaussianPolar(12))
		case i%17 == 0:
			pos = geo.Point{X: rnd.Float64() * 50000, Y: rnd.Float64() * 50000}
		default:
			pos = home.Add(rnd.GaussianPolar(12))
		}
		if err := e.Report(userID, pos, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RebuildProfile(userID, at); err != nil {
		t.Fatal(err)
	}
	return at
}

func TestEngineProfileAndTable(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 0, Y: 0}
	work := geo.Point{X: 8000, Y: 3000}
	feedUser(t, e, "alice", home, work)

	tops, err := e.TopLocations("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) < 2 {
		t.Fatalf("tops = %d, want >= 2", len(tops))
	}
	if d := tops[0].Loc.Dist(home); d > 10 {
		t.Errorf("top-1 %g m from home", d)
	}
	if d := tops[1].Loc.Dist(work); d > 10 {
		t.Errorf("top-2 %g m from work", d)
	}

	entries, err := e.Table("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("table entries = %d, want >= 2", len(entries))
	}
	for _, entry := range entries {
		if len(entry.Candidates) != 10 {
			t.Errorf("entry has %d candidates, want 10", len(entry.Candidates))
		}
	}
}

// TestEnginePermanentAnswers is the system-level defense property: every
// Request at a top location must be answered from the same permanent
// candidate set, so a longitudinal observer only ever sees n points.
func TestEnginePermanentAnswers(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 0, Y: 0}
	work := geo.Point{X: 8000, Y: 3000}
	at := feedUser(t, e, "bob", home, work)

	entries, err := e.Table("bob")
	if err != nil {
		t.Fatal(err)
	}
	allowed := make(map[geo.Point]bool)
	for _, entry := range entries {
		for _, c := range entry.Candidates {
			allowed[c] = true
		}
	}

	distinct := make(map[geo.Point]bool)
	for i := 0; i < 500; i++ {
		out, fromTable, err := e.Request("bob", home)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTable {
			t.Fatal("home request not served from the permanent table")
		}
		if !allowed[out] {
			t.Fatalf("request returned %v outside the permanent candidate set", out)
		}
		distinct[out] = true
	}
	if len(distinct) > 10 {
		t.Errorf("observed %d distinct outputs for one top location, want <= 10", len(distinct))
	}

	// Even after further windows the answers stay inside the original set.
	rnd := randx.New(1, 99)
	for i := 0; i < 200; i++ {
		at = at.Add(time.Hour)
		if err := e.Report("bob", home.Add(rnd.GaussianPolar(12)), at); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RebuildProfile("bob", at); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		out, fromTable, err := e.Request("bob", home)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTable || !allowed[out] {
			t.Fatalf("post-rebuild request escaped the permanent set (fromTable=%v)", fromTable)
		}
	}
}

func TestEngineNomadicRequests(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	feedUser(t, e, "carol", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 3000})

	// A location far from every top is nomadic: fresh noise every time.
	nowhere := geo.Point{X: -40000, Y: -40000}
	a, fromTable, err := e.Request("carol", nowhere)
	if err != nil {
		t.Fatal(err)
	}
	if fromTable {
		t.Error("nomadic request claimed to come from the table")
	}
	b, _, err := e.Request("carol", nowhere)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two nomadic obfuscations were identical (no fresh noise)")
	}
	// Noise magnitude sanity: planar Laplace with eps=ln4/200 stays within
	// a couple of kilometres practically always.
	if a.Dist(nowhere) > 5000 {
		t.Errorf("nomadic noise %g m implausibly large", a.Dist(nowhere))
	}
}

func TestEngineWindowRollover(t *testing.T) {
	cfg := testConfig(t)
	cfg.ProfileWindow = 24 * time.Hour
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{X: 100, Y: 100}
	rnd := randx.New(2, 3)
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	// 30 reports spread over 2 days: the window must roll automatically.
	for i := 0; i < 30; i++ {
		at := base.Add(time.Duration(i) * 2 * time.Hour)
		if err := e.Report("dave", home.Add(rnd.GaussianPolar(12)), at); err != nil {
			t.Fatal(err)
		}
	}
	tops, err := e.TopLocations("dave")
	if err != nil {
		t.Fatalf("window did not roll: %v", err)
	}
	if len(tops) == 0 || tops[0].Loc.Dist(home) > 20 {
		t.Errorf("rolled profile wrong: %+v", tops)
	}
}

func TestEngineNoProfileYet(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Report("erin", geo.Point{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopLocations("erin"); !errors.Is(err, ErrNoProfile) {
		t.Errorf("TopLocations before rebuild: %v", err)
	}
	// Requests still work: everything is nomadic.
	_, fromTable, err := e.Request("erin", geo.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if fromTable {
		t.Error("request served from empty table")
	}
}

func TestEngineRebuildEmptyPendingIsNoop(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	feedUser(t, e, "frank", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})
	topsBefore, err := e.TopLocations("frank")
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with nothing pending: profile unchanged.
	if err := e.RebuildProfile("frank", time.Now()); err != nil {
		t.Fatal(err)
	}
	topsAfter, err := e.TopLocations("frank")
	if err != nil {
		t.Fatal(err)
	}
	if len(topsBefore) != len(topsAfter) {
		t.Errorf("empty rebuild changed profile: %d vs %d", len(topsBefore), len(topsAfter))
	}
}

func TestEngineFilterAds(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	truth := geo.Point{X: 0, Y: 0}
	ads := []geo.Point{
		{X: 100, Y: 0},      // in AOI
		{X: 4999, Y: 0},     // in AOI (default R = 5000)
		{X: 5100, Y: 0},     // out
		{X: 0, Y: -3000},    // in
		{X: 20000, Y: 2000}, // out
	}
	keep := e.FilterAds(truth, ads)
	want := []int{0, 1, 3}
	if len(keep) != len(want) {
		t.Fatalf("FilterAds = %v, want %v", keep, want)
	}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("FilterAds = %v, want %v", keep, want)
		}
	}
	if got := e.FilterAds(truth, nil); got != nil {
		t.Errorf("FilterAds(nil) = %v", got)
	}
}

func TestEngineUsersListing(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for _, id := range []string{"zoe", "adam", "mia"} {
		if err := e.Report(id, geo.Point{}, now); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Users()
	want := []string{"adam", "mia", "zoe"}
	if len(got) != 3 {
		t.Fatalf("Users = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Users = %v, want %v", got, want)
		}
	}
}

// TestEngineDeterministicPerSeed: two engines with identical config and
// inputs answer identically.
func TestEngineDeterministicPerSeed(t *testing.T) {
	run := func() []geo.Point {
		e, err := NewEngine(testConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		feedUser(t, e, "grace", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})
		var outs []geo.Point
		for i := 0; i < 20; i++ {
			out, _, err := e.Request("grace", geo.Point{X: 0, Y: 0})
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic engine output at %d", i)
		}
	}
}

// TestEngineConcurrentUsers: concurrent reports and requests across many
// users must be race-free (run with -race) and keep per-user integrity.
func TestEngineConcurrentUsers(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	const users = 16
	var wg sync.WaitGroup
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			id := string(rune('a'+u)) + "-user"
			home := geo.Point{X: float64(u) * 10000, Y: 0}
			rnd := randx.New(uint64(u), 7)
			at := base
			for i := 0; i < 100; i++ {
				at = at.Add(time.Hour)
				if err := e.Report(id, home.Add(rnd.GaussianPolar(12)), at); err != nil {
					t.Error(err)
					return
				}
			}
			if err := e.RebuildProfile(id, at); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				if _, _, err := e.Request(id, home); err != nil {
					t.Error(err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	if got := len(e.Users()); got != users {
		t.Errorf("users = %d, want %d", got, users)
	}
}

func TestEngineNomadicBudget(t *testing.T) {
	cfg := testConfig(t)
	cfg.NomadicBudget = &geoind.Loss{Epsilon: 3, Delta: 0.5}
	cfg.NomadicReportEpsilon = 1
	cfg.NomadicReportDelta = 0.001
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Report("nomad", geo.Point{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	nowhere := geo.Point{X: 99999, Y: 99999}
	// Budget eps=3 at per-report eps=1 admits exactly 3 nomadic requests.
	for i := 0; i < 3; i++ {
		if _, _, err := e.Request("nomad", nowhere); err != nil {
			t.Fatalf("request %d rejected early: %v", i+1, err)
		}
	}
	if _, _, err := e.Request("nomad", nowhere); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("4th request: %v, want ErrBudgetExhausted", err)
	}
	loss, err := e.NomadicLoss("nomad")
	if err != nil {
		t.Fatal(err)
	}
	if loss.Epsilon != 3 {
		t.Errorf("cumulative loss = %+v, want eps 3", loss)
	}

	// Top-location requests remain unlimited: they are post-processing.
	feedUser(t, e, "homebody", geo.Point{X: 0, Y: 0}, geo.Point{X: 8000, Y: 0})
	for i := 0; i < 10; i++ {
		if _, fromTable, err := e.Request("homebody", geo.Point{X: 0, Y: 0}); err != nil || !fromTable {
			t.Fatalf("table request %d: fromTable=%v err=%v", i, fromTable, err)
		}
	}
}

func TestEngineNoBudgetNoLimit(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Report("free", geo.Point{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := e.Request("free", geo.Point{X: 5, Y: 5}); err != nil {
			t.Fatalf("unlimited request %d failed: %v", i, err)
		}
	}
	loss, err := e.NomadicLoss("free")
	if err != nil || loss.Epsilon != 0 {
		t.Errorf("no-budget loss = %+v, %v", loss, err)
	}
}

func BenchmarkEngineRequestTopLocation(b *testing.B) {
	mech, err := geoind.NewNFoldGaussian(geoind.Params{Radius: 500, Epsilon: 1, Delta: 0.01, N: 10})
	if err != nil {
		b.Fatal(err)
	}
	nomadic, err := geoind.NewPlanarLaplace(math.Log(4), 200)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(Config{Mechanism: mech, NomadicMechanism: nomadic, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	home := geo.Point{X: 0, Y: 0}
	rnd := randx.New(1, 1)
	at := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		at = at.Add(time.Hour)
		if err := e.Report("bench", home.Add(rnd.GaussianPolar(12)), at); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.RebuildProfile("bench", at); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Request("bench", home); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineRebuildAllMatchesSequential: the batch rebuild must leave
// every user with exactly the table a per-user sequential rebuild
// produces, at any parallelism level, because per-user randomness is
// derived from the user ID rather than shared.
func TestEngineRebuildAllMatchesSequential(t *testing.T) {
	build := func(parallelism int) *Engine {
		e, err := NewEngine(testConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		rnd := randx.New(77, 1)
		base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
		for u := 0; u < 12; u++ {
			id := fmt.Sprintf("user-%03d", u)
			home := geo.Point{X: rnd.Float64() * 40000, Y: rnd.Float64() * 40000}
			at := base
			for i := 0; i < 120; i++ {
				at = at.Add(6 * time.Hour)
				if err := e.Report(id, home.Add(rnd.GaussianPolar(12)), at); err != nil {
					t.Fatal(err)
				}
			}
		}
		now := base.AddDate(0, 2, 0)
		if parallelism == 0 {
			for _, id := range e.Users() {
				if err := e.RebuildProfile(id, now); err != nil {
					t.Fatal(err)
				}
			}
		} else if err := e.RebuildAll(now, parallelism); err != nil {
			t.Fatal(err)
		}
		return e
	}

	want := build(0)
	for _, parallelism := range []int{1, 8} {
		got := build(parallelism)
		for _, id := range want.Users() {
			wantTable, err := want.Table(id)
			if err != nil {
				t.Fatal(err)
			}
			gotTable, err := got.Table(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotTable, wantTable) {
				t.Fatalf("parallelism=%d: user %s table differs from sequential rebuild", parallelism, id)
			}
			wantTops, err := want.TopLocations(id)
			if err != nil {
				t.Fatal(err)
			}
			gotTops, err := got.TopLocations(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotTops, wantTops) {
				t.Fatalf("parallelism=%d: user %s tops differ from sequential rebuild", parallelism, id)
			}
		}
	}
}

func TestEngineRebuildAllEmptyEngine(t *testing.T) {
	e, err := NewEngine(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RebuildAll(time.Now(), 4); err != nil {
		t.Fatal(err)
	}
}
