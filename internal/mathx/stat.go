package mathx

import (
	"fmt"
	"math"
	"sort"
)

// KahanSum accumulates floating-point values with Neumaier's improved
// Kahan compensation, keeping the error independent of the summand count.
// The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v into the sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Sum computes the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Mean computes the arithmetic mean of xs; it returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance computes the unbiased sample variance of xs; it returns NaN for
// fewer than two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var k KahanSum
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return k.Sum() / float64(len(xs)-1)
}

// StdDev computes the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile computes the p-quantile of xs (0 ≤ p ≤ 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It sorts a copy and leaves xs untouched.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), fmt.Errorf("quantile of empty sample: %w", ErrOutOfDomain)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN(), fmt.Errorf("quantile p=%g: %w", p, ErrOutOfDomain)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted computes the p-quantile of an already ascending-sorted
// sample without copying.
func QuantileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return math.NaN(), fmt.Errorf("quantile of empty sample: %w", ErrOutOfDomain)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN(), fmt.Errorf("quantile p=%g: %w", p, ErrOutOfDomain)
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// OnlineMoments accumulates count, mean, and variance in one pass with
// Welford's algorithm. The zero value is ready to use.
type OnlineMoments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds an observation into the accumulator.
func (o *OnlineMoments) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		o.min = math.Min(o.min, x)
		o.max = math.Max(o.max, x)
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Count returns the number of accumulated observations.
func (o *OnlineMoments) Count() int64 { return o.n }

// Mean returns the running mean; NaN when empty.
func (o *OnlineMoments) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running unbiased variance; NaN below two samples.
func (o *OnlineMoments) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running unbiased standard deviation.
func (o *OnlineMoments) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest accumulated observation; NaN when empty.
func (o *OnlineMoments) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest accumulated observation; NaN when empty.
func (o *OnlineMoments) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Histogram counts observations into equal-width bins over [lo, hi).
// Observations outside the range are tallied in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
	total  int64
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi). It returns an error when the range or bin count is degenerate.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram with %d bins: %w", bins, ErrOutOfDomain)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("histogram range [%g, %g): %w", lo, hi, ErrOutOfDomain)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations tallied, including out-of-range.
func (h *Histogram) Total() int64 { return h.total }

// CDFAt returns the empirical probability of an observation being ≤ x,
// approximated at bin resolution (whole bins at or below x are counted).
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	n := h.Under
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		upper := h.Lo + float64(i+1)*width
		if upper > x {
			break
		}
		n += c
	}
	if x >= h.Hi {
		n += h.Over
	}
	return float64(n) / float64(h.total)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
