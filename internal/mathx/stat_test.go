package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumCancellations(t *testing.T) {
	// 1 + 1e-16 added 1e6 times then -1: naive float64 loses the tail.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	k.Add(-1)
	want := 1e-10
	if got := k.Sum(); math.Abs(got-want) > 1e-14 {
		t.Errorf("compensated sum = %.18g, want %.18g", got, want)
	}
}

func TestSumMatchesNaiveOnBenignInput(t *testing.T) {
	f := func(xs []float64) bool {
		var naive float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
			naive += x
		}
		got := Sum(xs)
		return math.Abs(got-naive) <= 1e-6*(math.Abs(naive)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
}

func TestMeanVarianceEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.p)
		if err != nil {
			t.Fatalf("Quantile(p=%g): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(p=%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample expected error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("p<0 expected error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("p>1 expected error")
	}
	if _, err := QuantileSorted([]float64{1, 2}, math.NaN()); err == nil {
		t.Error("NaN p expected error")
	}
}

// TestQuantileSortedOrderProperty: quantiles are monotone in p.
func TestQuantileSortedOrderProperty(t *testing.T) {
	sorted := make([]float64, 100)
	for i := range sorted {
		sorted[i] = float64(i * i)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q, err := QuantileSorted(sorted, p)
		if err != nil {
			t.Fatal(err)
		}
		if q < prev {
			t.Fatalf("quantile not monotone at p=%g: %g < %g", p, q, prev)
		}
		prev = q
	}
}

func TestOnlineMomentsMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 7, 0.25, 9.75, -3.5, 2, 2, 2, 11}
	var o OnlineMoments
	for _, x := range xs {
		o.Add(x)
	}
	if o.Count() != int64(len(xs)) {
		t.Errorf("Count = %d", o.Count())
	}
	if math.Abs(o.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("online mean %g vs batch %g", o.Mean(), Mean(xs))
	}
	if math.Abs(o.Variance()-Variance(xs)) > 1e-12 {
		t.Errorf("online var %g vs batch %g", o.Variance(), Variance(xs))
	}
	if o.Min() != -3.5 || o.Max() != 11 {
		t.Errorf("min/max = %g/%g", o.Min(), o.Max())
	}
}

func TestOnlineMomentsEmpty(t *testing.T) {
	var o OnlineMoments
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Variance()) || !math.IsNaN(o.Min()) || !math.IsNaN(o.Max()) {
		t.Error("empty OnlineMoments should report NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d, want 1, 2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 = %d, want 2 (0 and 0.5)", h.Counts[0])
	}
	if h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("bins 5/9 = %d/%d", h.Counts[5], h.Counts[9])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.CDFAt(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("CDFAt(10) = %g, want 1", got)
	}
	if got := h.CDFAt(1); math.Abs(got-3.0/7.0) > 1e-12 {
		t.Errorf("CDFAt(1) = %g, want 3/7", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins expected error")
	}
	if _, err := NewHistogram(10, 0, 5); err == nil {
		t.Error("inverted range expected error")
	}
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("empty range expected error")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp above = %g", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp below = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp inside = %g", got)
	}
}

func BenchmarkOnlineMoments(b *testing.B) {
	var o OnlineMoments
	for i := 0; i < b.N; i++ {
		o.Add(float64(i % 1000))
	}
}
