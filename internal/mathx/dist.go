package mathx

import (
	"fmt"
	"math"
)

// NormalCDF evaluates the cumulative distribution function of the normal
// distribution with the given mean and standard deviation at x.
func NormalCDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mean)/(sigma*math.Sqrt2))
}

// StdNormalCDF evaluates the standard normal CDF Φ(z).
func StdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// StdNormalPDF evaluates the standard normal density φ(z).
func StdNormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// StdNormalQuantile computes Φ⁻¹(p) for p ∈ (0, 1) using Acklam's rational
// approximation followed by one Halley refinement step, giving close to
// machine precision across the whole domain.
func StdNormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN(), fmt.Errorf("normal quantile of p=%g: %w", p, ErrOutOfDomain)
	}

	// Coefficients of Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const pLow = 0.02425

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step against the exact CDF.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// RayleighCDF evaluates the Rayleigh CDF F(r) = 1 - exp(-r²/2σ²), the
// distribution of the radial distance of a 2-D isotropic Gaussian with
// per-axis standard deviation sigma. This is the distribution the paper's
// Algorithm 3 inverts to sample Gaussian noise in polar coordinates.
func RayleighCDF(r, sigma float64) float64 {
	if r <= 0 {
		return 0
	}
	if sigma <= 0 {
		return 1
	}
	return -math.Expm1(-r * r / (2 * sigma * sigma))
}

// RayleighQuantile computes the inverse Rayleigh CDF, r = σ√(-2 ln(1-p)).
func RayleighQuantile(p, sigma float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p >= 1 {
		return math.NaN(), fmt.Errorf("rayleigh quantile of p=%g: %w", p, ErrOutOfDomain)
	}
	if sigma <= 0 {
		return math.NaN(), fmt.Errorf("rayleigh quantile with sigma=%g: %w", sigma, ErrOutOfDomain)
	}
	return sigma * math.Sqrt(-2*math.Log1p(-p)), nil
}

// PlanarLaplaceCDF evaluates the radial CDF of the planar (polar) Laplace
// distribution used by geo-indistinguishability:
//
//	C_ε(r) = 1 - (1 + εr)·e^(-εr)
//
// This is the probability that a planar-Laplace perturbation of privacy
// parameter epsilon lands within distance r of the true location.
func PlanarLaplaceCDF(r, epsilon float64) float64 {
	if r <= 0 {
		return 0
	}
	if epsilon <= 0 {
		return 0
	}
	x := epsilon * r
	return 1 - (1+x)*math.Exp(-x)
}

// PlanarLaplaceQuantile inverts the planar-Laplace radial CDF using the
// W₋₁ branch of the Lambert W function:
//
//	r = -(1/ε)·(W₋₁((p-1)/e) + 1)
func PlanarLaplaceQuantile(p, epsilon float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p >= 1 {
		return math.NaN(), fmt.Errorf("planar laplace quantile of p=%g: %w", p, ErrOutOfDomain)
	}
	if epsilon <= 0 {
		return math.NaN(), fmt.Errorf("planar laplace quantile with epsilon=%g: %w", epsilon, ErrOutOfDomain)
	}
	if p == 0 {
		return 0, nil
	}
	w, err := LambertWm1((p - 1) / math.E)
	if err != nil {
		return math.NaN(), fmt.Errorf("inverting planar laplace CDF: %w", err)
	}
	return -(w + 1) / epsilon, nil
}

// GaussianNFoldConfidenceRadius returns the radius r_α such that a single
// sample of an isotropic 2-D Gaussian with per-axis deviation sigma falls
// within r_α of its centre with probability 1-alpha:
//
//	Pr[dist > r_α] ≤ α
//
// It is the (1-α) Rayleigh quantile and is used both by the attack's
// trimming stage and by the utilization-rate analysis.
func GaussianNFoldConfidenceRadius(alpha, sigma float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return math.NaN(), fmt.Errorf("confidence level alpha=%g: %w", alpha, ErrOutOfDomain)
	}
	return RayleighQuantile(1-alpha, sigma)
}

// PlanarLaplaceConfidenceRadius returns the radius r_α such that a
// planar-Laplace perturbation with parameter epsilon falls within r_α with
// probability 1-alpha. The paper uses r_{0.05} as the cluster radius of the
// de-obfuscation attack.
func PlanarLaplaceConfidenceRadius(alpha, epsilon float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return math.NaN(), fmt.Errorf("confidence level alpha=%g: %w", alpha, ErrOutOfDomain)
	}
	return PlanarLaplaceQuantile(1-alpha, epsilon)
}
