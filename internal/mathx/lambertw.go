// Package mathx provides the numeric and statistical substrate for the
// Edge-PrivLocAd reproduction: special functions (Lambert W), probability
// distributions used by the location-privacy mechanisms (normal, Rayleigh,
// planar Laplace), and summary statistics (compensated sums, quantiles,
// online moments, histograms).
//
// Everything here is implemented from scratch on top of the standard math
// package, because the mechanisms of the paper need functions (the W₋₁
// branch of Lambert W, the planar-Laplace radial CDF and its inverse) that
// the Go standard library does not provide.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrOutOfDomain is returned when a special function is evaluated outside
// its mathematical domain.
var ErrOutOfDomain = errors.New("mathx: argument out of domain")

const (
	// invE is 1/e, the left endpoint -1/e of the Lambert W domain is -invE.
	invE = 1.0 / math.E

	// _wTolerance is the convergence tolerance for the Halley iterations in
	// the Lambert W evaluations, relative to the magnitude of w.
	_wTolerance = 1e-14

	// _wMaxIter bounds the Halley iterations; convergence is cubic so a
	// handful of iterations suffices from our initial guesses.
	_wMaxIter = 64
)

// LambertW0 evaluates the principal branch W₀ of the Lambert W function,
// i.e. the solution w ≥ -1 of w·e^w = x, for x ≥ -1/e.
func LambertW0(x float64) (float64, error) {
	switch {
	case math.IsNaN(x):
		return math.NaN(), fmt.Errorf("lambert W0 of NaN: %w", ErrOutOfDomain)
	case x < -invE:
		// Allow tiny negative excursions below -1/e caused by rounding.
		if x > -invE-1e-12 {
			return -1, nil
		}
		return math.NaN(), fmt.Errorf("lambert W0 of %g < -1/e: %w", x, ErrOutOfDomain)
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return math.Inf(1), nil
	}

	w := lambertW0Guess(x)
	return halleyW(w, x)
}

// LambertWm1 evaluates the lower branch W₋₁ of the Lambert W function,
// i.e. the solution w ≤ -1 of w·e^w = x, for x in [-1/e, 0).
//
// W₋₁ is the branch needed to invert the planar-Laplace radial CDF
// C_ε(r) = 1 - (1+εr)e^(-εr) used by geo-indistinguishability mechanisms.
func LambertWm1(x float64) (float64, error) {
	switch {
	case math.IsNaN(x):
		return math.NaN(), fmt.Errorf("lambert W-1 of NaN: %w", ErrOutOfDomain)
	case x >= 0:
		return math.NaN(), fmt.Errorf("lambert W-1 of %g >= 0: %w", x, ErrOutOfDomain)
	case x < -invE:
		if x > -invE-1e-12 {
			return -1, nil
		}
		return math.NaN(), fmt.Errorf("lambert W-1 of %g < -1/e: %w", x, ErrOutOfDomain)
	}

	w := lambertWm1Guess(x)
	return halleyW(w, x)
}

// lambertW0Guess produces an initial estimate of W₀(x) good enough for
// Halley iteration to converge in a few steps.
func lambertW0Guess(x float64) float64 {
	if x < -0.25 {
		// Series expansion around the branch point x = -1/e:
		// W = -1 + p - p²/3 + 11p³/72 with p = +sqrt(2(1+ex)).
		p := math.Sqrt(2 * (1 + math.E*x))
		return -1 + p - p*p/3 + 11*p*p*p/72
	}
	if x < 3 {
		// log1p is within the Halley basin of attraction on [-0.25, 3).
		return math.Log1p(x)
	}
	// Asymptotic guess for large x: W ≈ ln x - ln ln x.
	l1 := math.Log(x)
	l2 := math.Log(l1)
	return l1 - l2 + l2/l1
}

// lambertWm1Guess produces an initial estimate of W₋₁(x) for x ∈ (-1/e, 0).
func lambertWm1Guess(x float64) float64 {
	if x < -0.25 {
		// Series around the branch point with the negative root:
		// W = -1 - p - p²/3 - 11p³/72 with p = sqrt(2(1+ex)).
		p := math.Sqrt(2 * (1 + math.E*x))
		return -1 - p - p*p/3 - 11*p*p*p/72
	}
	// Asymptotic guess near zero from below: W₋₁(x) ≈ ln(-x) - ln(-ln(-x)).
	l1 := math.Log(-x)
	l2 := math.Log(-l1)
	return l1 - l2 + l2/l1
}

// halleyW refines an estimate w of W(x) (either branch) with Halley's
// method applied to f(w) = w·e^w - x, which converges cubically.
func halleyW(w, x float64) (float64, error) {
	for i := 0; i < _wMaxIter; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			return w, nil
		}
		// Halley step: w' = w - f / (e^w(w+1) - (w+2)f / (2w+2)).
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		if denom == 0 || math.IsNaN(denom) {
			break
		}
		next := w - f/denom
		if math.Abs(next-w) <= _wTolerance*(math.Abs(next)+_wTolerance) {
			return next, nil
		}
		w = next
	}
	// The iteration is extremely robust from our guesses; if it somehow did
	// not converge, verify the residual before giving up.
	if math.Abs(w*math.Exp(w)-x) < 1e-9*(math.Abs(x)+1e-9) {
		return w, nil
	}
	return math.NaN(), fmt.Errorf("lambert W did not converge for x=%g: %w", x, ErrOutOfDomain)
}
