package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{"zero", 0, 0},
		{"one", 1, 0.5671432904097838},              // Omega constant
		{"e", math.E, 1},                            // W(e) = 1
		{"branch point", -1 / math.E, -1},           // W(-1/e) = -1
		{"two e^2", 2 * math.Exp(2), 2},             // W(2e²) = 2
		{"ten", 10, 1.7455280027406994},             // reference value
		{"large", 1e6, 11.383358086140052},          // reference value
		{"small negative", -0.1, -0.11183255915896}, // reference value
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := LambertW0(tt.x)
			if err != nil {
				t.Fatalf("LambertW0(%g) error: %v", tt.x, err)
			}
			if math.Abs(got-tt.want) > 1e-10*(math.Abs(tt.want)+1) {
				t.Errorf("LambertW0(%g) = %.15g, want %.15g", tt.x, got, tt.want)
			}
		})
	}
}

func TestLambertWm1KnownValues(t *testing.T) {
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{"branch point", -1 / math.E, -1},
		{"minus point one", -0.1, -3.577152063957297},
		{"minus point two", -0.2, -2.542641357773526},
		{"two e^-2", -2 * math.Exp(-2), -2}, // W₋₁(-2e⁻²) = -2
		{"five e^-5", -5 * math.Exp(-5), -5},
		{"near zero", -1e-10, -26.29523881924692},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := LambertWm1(tt.x)
			if err != nil {
				t.Fatalf("LambertWm1(%g) error: %v", tt.x, err)
			}
			if math.Abs(got-tt.want) > 1e-9*(math.Abs(tt.want)+1) {
				t.Errorf("LambertWm1(%g) = %.15g, want %.15g", tt.x, got, tt.want)
			}
		})
	}
}

func TestLambertW0Domain(t *testing.T) {
	for _, x := range []float64{-1, -0.5, math.NaN()} {
		if _, err := LambertW0(x); err == nil {
			t.Errorf("LambertW0(%g) expected domain error", x)
		}
	}
}

func TestLambertWm1Domain(t *testing.T) {
	for _, x := range []float64{0, 0.5, -1, math.NaN()} {
		if _, err := LambertWm1(x); err == nil {
			t.Errorf("LambertWm1(%g) expected domain error", x)
		}
	}
}

// TestLambertW0Identity property: W₀(x)·e^{W₀(x)} = x across the domain.
func TestLambertW0Identity(t *testing.T) {
	f := func(raw float64) bool {
		// Map raw into (-1/e, 1e8].
		x := -1/math.E + math.Abs(math.Mod(raw, 1e8)) + 1e-9
		w, err := LambertW0(x)
		if err != nil {
			return false
		}
		back := w * math.Exp(w)
		return math.Abs(back-x) <= 1e-9*(math.Abs(x)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLambertWm1Identity property: W₋₁(x)·e^{W₋₁(x)} = x on (-1/e, 0).
func TestLambertWm1Identity(t *testing.T) {
	f := func(raw float64) bool {
		// Map raw into (-1/e, 0).
		frac := math.Abs(math.Mod(raw, 1.0))
		if frac == 0 {
			frac = 0.5
		}
		x := (-1 / math.E) * frac
		if x == 0 {
			return true
		}
		w, err := LambertWm1(x)
		if err != nil {
			return false
		}
		back := w * math.Exp(w)
		return math.Abs(back-x) <= 1e-9*(math.Abs(x)+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLambertBranchOrder property: on the shared domain the lower branch
// lies below the principal branch.
func TestLambertBranchOrder(t *testing.T) {
	for _, frac := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		x := (-1 / math.E) * frac
		w0, err0 := LambertW0(x)
		wm1, err1 := LambertWm1(x)
		if err0 != nil || err1 != nil {
			t.Fatalf("x=%g: errors %v %v", x, err0, err1)
		}
		if !(wm1 <= -1 && -1 <= w0) {
			t.Errorf("x=%g: branch order violated: W-1=%g W0=%g", x, wm1, w0)
		}
	}
}

func BenchmarkLambertWm1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := -0.3 * (float64(i%97)/97.0 + 1e-3)
		if _, err := LambertWm1(x); err != nil {
			b.Fatal(err)
		}
	}
}
