package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		z    float64
		want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-2.5758293035489004, 0.005},
		{3, 0.9986501019683699},
	}
	for _, tt := range tests {
		if got := StdNormalCDF(tt.z); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("StdNormalCDF(%g) = %.15g, want %.15g", tt.z, got, tt.want)
		}
	}
}

func TestNormalCDFLocationScale(t *testing.T) {
	// CDF with mean/sigma must equal the standardised CDF.
	for _, tt := range []struct{ x, mean, sigma float64 }{
		{3, 1, 2}, {-5, -2, 0.5}, {0, 0, 1}, {100, 90, 7},
	} {
		got := NormalCDF(tt.x, tt.mean, tt.sigma)
		want := StdNormalCDF((tt.x - tt.mean) / tt.sigma)
		if math.Abs(got-want) > 1e-14 {
			t.Errorf("NormalCDF(%g,%g,%g) = %g, want %g", tt.x, tt.mean, tt.sigma, got, want)
		}
	}
}

func TestStdNormalPDF(t *testing.T) {
	// φ(0) = 1/√(2π); symmetry; derivative-of-CDF check by finite diff.
	if got := StdNormalPDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Errorf("phi(0) = %.15g", got)
	}
	for _, z := range []float64{0.5, 1, 2.5} {
		if math.Abs(StdNormalPDF(z)-StdNormalPDF(-z)) > 1e-15 {
			t.Errorf("phi not symmetric at %g", z)
		}
		const h = 1e-6
		fd := (StdNormalCDF(z+h) - StdNormalCDF(z-h)) / (2 * h)
		if math.Abs(fd-StdNormalPDF(z)) > 1e-6 {
			t.Errorf("phi(%g) = %g, CDF slope %g", z, StdNormalPDF(z), fd)
		}
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Errorf("NormalCDF below degenerate mean = %g, want 0", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Errorf("NormalCDF above degenerate mean = %g, want 1", got)
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 1e-12 || p >= 1-1e-12 {
			return true
		}
		z, err := StdNormalQuantile(p)
		if err != nil {
			return false
		}
		return math.Abs(StdNormalCDF(z)-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStdNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.9986501019683699, 3},
		{0.05, -1.6448536269514722},
	}
	for _, tt := range tests {
		got, err := StdNormalQuantile(tt.p)
		if err != nil {
			t.Fatalf("quantile(%g): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("StdNormalQuantile(%g) = %.12g, want %.12g", tt.p, got, tt.want)
		}
	}
}

func TestStdNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := StdNormalQuantile(p); err == nil {
			t.Errorf("StdNormalQuantile(%g) expected error", p)
		}
	}
}

func TestRayleighRoundTrip(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 100, 3000} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.999} {
			r, err := RayleighQuantile(p, sigma)
			if err != nil {
				t.Fatalf("RayleighQuantile(%g, %g): %v", p, sigma, err)
			}
			if got := RayleighCDF(r, sigma); math.Abs(got-p) > 1e-12 {
				t.Errorf("sigma=%g p=%g: CDF(quantile) = %g", sigma, p, got)
			}
		}
	}
}

func TestRayleighCDFEdges(t *testing.T) {
	if got := RayleighCDF(-1, 1); got != 0 {
		t.Errorf("CDF(-1) = %g, want 0", got)
	}
	if got := RayleighCDF(0, 1); got != 0 {
		t.Errorf("CDF(0) = %g, want 0", got)
	}
	if got := RayleighCDF(5, 0); got != 1 {
		t.Errorf("CDF with sigma 0 = %g, want 1", got)
	}
}

func TestRayleighQuantileDomain(t *testing.T) {
	if _, err := RayleighQuantile(1, 1); err == nil {
		t.Error("p=1 expected error")
	}
	if _, err := RayleighQuantile(0.5, -1); err == nil {
		t.Error("sigma<0 expected error")
	}
	if r, err := RayleighQuantile(0, 1); err != nil || r != 0 {
		t.Errorf("p=0 => (0, nil), got (%g, %v)", r, err)
	}
}

func TestPlanarLaplaceRoundTrip(t *testing.T) {
	for _, eps := range []float64{math.Ln2 / 200, 0.005, 0.05, 1} {
		for _, p := range []float64{0.05, 0.5, 0.9, 0.95, 0.999} {
			r, err := PlanarLaplaceQuantile(p, eps)
			if err != nil {
				t.Fatalf("PlanarLaplaceQuantile(%g, %g): %v", p, eps, err)
			}
			if got := PlanarLaplaceCDF(r, eps); math.Abs(got-p) > 1e-9 {
				t.Errorf("eps=%g p=%g: CDF(quantile) = %g", eps, p, got)
			}
		}
	}
}

func TestPlanarLaplaceCDFMonotone(t *testing.T) {
	eps := math.Log(4) / 200
	prev := -1.0
	for r := 0.0; r <= 2000; r += 10 {
		cur := PlanarLaplaceCDF(r, eps)
		if cur < prev {
			t.Fatalf("CDF not monotone at r=%g: %g < %g", r, cur, prev)
		}
		prev = cur
	}
	if prev < 0.99 {
		t.Errorf("CDF at 2000 m with eps=ln4/200 = %g, want near 1", prev)
	}
}

// TestPlanarLaplaceGeoINDPaperParams pins the r_0.05 cluster radius the
// attack uses for the paper's privacy levels (l/r with r = 200 m).
func TestPlanarLaplaceGeoINDPaperParams(t *testing.T) {
	tests := []struct {
		name string
		l    float64
	}{
		{"ln2", math.Ln2},
		{"ln4", math.Log(4)},
		{"ln6", math.Log(6)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			eps := tt.l / 200
			r, err := PlanarLaplaceConfidenceRadius(0.05, eps)
			if err != nil {
				t.Fatal(err)
			}
			// r_0.05 solves (1+εr)e^{-εr} = 0.05 => εr ≈ 4.7439.
			if math.Abs(eps*r-4.743864518907) > 1e-6 {
				t.Errorf("eps*r_alpha = %.9g, want 4.743864519", eps*r)
			}
			if got := PlanarLaplaceCDF(r, eps); math.Abs(got-0.95) > 1e-9 {
				t.Errorf("CDF at r_alpha = %g, want 0.95", got)
			}
			if r <= 200/tt.l {
				t.Errorf("confidence radius %g m implausibly small", r)
			}
		})
	}
}

func TestGaussianConfidenceRadius(t *testing.T) {
	sigma := 1000.0
	r, err := GaussianNFoldConfidenceRadius(0.1, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if got := RayleighCDF(r, sigma); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Rayleigh CDF at r_0.1 = %g, want 0.9", got)
	}
	if _, err := GaussianNFoldConfidenceRadius(0, sigma); err == nil {
		t.Error("alpha=0 expected error")
	}
	if _, err := GaussianNFoldConfidenceRadius(1, sigma); err == nil {
		t.Error("alpha=1 expected error")
	}
}

func TestPlanarLaplaceQuantileDomain(t *testing.T) {
	if _, err := PlanarLaplaceQuantile(0.5, 0); err == nil {
		t.Error("epsilon=0 expected error")
	}
	if _, err := PlanarLaplaceQuantile(1, 0.01); err == nil {
		t.Error("p=1 expected error")
	}
	if r, err := PlanarLaplaceQuantile(0, 0.01); err != nil || r != 0 {
		t.Errorf("p=0 => (0, nil), got (%g, %v)", r, err)
	}
}
