package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCacheTTL bounds how often the runtime gauges call
// runtime.ReadMemStats, which stops the world briefly. One read serves
// all three gauges of a scrape, and a scrape storm cannot turn the
// metrics endpoint into a GC pressure source.
const memStatsCacheTTL = time.Second

// memStatsCache is the shared, TTL-cached ReadMemStats snapshot.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) >= memStatsCacheTTL {
		runtime.ReadMemStats(&c.stat)
		c.at = now
	}
	return c.stat
}

// RegisterRuntimeMem registers the process's memory-footprint gauges:
// mem_heap_alloc_bytes (live heap), mem_sys_bytes (total memory obtained
// from the OS), and mem_gc_total (completed GC cycles). These are the
// observables the memory-tiering work is judged by — the resident-user
// cap exists precisely to bound mem_heap_alloc_bytes under a
// million-user population.
func RegisterRuntimeMem(reg *Registry) {
	cache := &memStatsCache{}
	reg.GaugeFunc("mem_heap_alloc_bytes", "Bytes of live heap (runtime.MemStats.HeapAlloc).", func() float64 {
		s := cache.read()
		return float64(s.HeapAlloc)
	})
	reg.GaugeFunc("mem_sys_bytes", "Bytes of memory obtained from the OS (runtime.MemStats.Sys).", func() float64 {
		s := cache.read()
		return float64(s.Sys)
	})
	reg.CounterFunc("mem_gc_total", "Completed garbage-collection cycles (runtime.MemStats.NumGC).", func() uint64 {
		s := cache.read()
		return uint64(s.NumGC)
	})
}
