package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 5000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	const goroutines, perG = 8, 2000
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Inc()
				g.Dec()
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), int64(2*goroutines*perG); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 16, 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%10) + 0.5)
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	// Each goroutine observes 0.5..9.5 round-robin: sum per cycle of 10 is 50.
	wantSum := float64(goroutines) * float64(perG/10) * 50
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1 gets {0.5, 1}; le=2 gets {1.5}; le=4 gets {3}; +Inf gets {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Errorf("sum = %g, want 106", s.Sum)
	}
	if s.Overflow != 1 {
		t.Errorf("snapshot overflow = %d, want 1 (the 100 observation)", s.Overflow)
	}
	if got := h.Overflow(); got != 1 {
		t.Errorf("Overflow() = %d, want 1", got)
	}
}

func TestHistogramOverflowSaturatesQuantile(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every observation lands above the top bound: the quantile estimate
	// saturates at 4, and only Overflow reveals that p99 is a lie.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Errorf("saturated p99 = %g, want top bound 4", q)
	}
	if got := h.Overflow(); got != 100 {
		t.Errorf("Overflow() = %d, want 100", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := NewHistogram(bounds); err == nil {
			t.Errorf("NewHistogram(%v) accepted", bounds)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 3 {
		t.Errorf("merged count = %d, want 3", got)
	}
	if got := a.Sum(); math.Abs(got-11) > 1e-9 {
		t.Errorf("merged sum = %g, want 11", got)
	}

	c, err := NewHistogram([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("merge with different bounds accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("merge with nil accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(ExponentialBuckets(1, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram not NaN")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 10) // uniform on (0, 100]
	}
	if q := h.Quantile(0.5); q < 25 || q > 75 {
		t.Errorf("p50 = %g, want near 50", q)
	}
	if q := h.Quantile(0.99); q < 64 || q > 128 {
		t.Errorf("p99 = %g, want in last populated bucket", q)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range q not NaN")
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid args did not panic")
		}
	}()
	ExponentialBuckets(0, 2, 3)
}

func TestObserveDuration(t *testing.T) {
	h, err := NewHistogram([]float64{0.001, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.ObserveDuration(500 * time.Millisecond)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Errorf("500ms not in le=1 bucket: %v", s.Counts)
	}
}
