package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension (e.g. route="/v1/ads").
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one label combination of a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	cfn    func() uint64
	h      *Histogram
}

// family is all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds named metrics and renders them in Prometheus text
// format. All accessors are get-or-create and safe for concurrent use;
// callers should resolve metrics once at wiring time and keep the
// returned handles — the hot path then never touches the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry. Long-lived commands (edged,
// lbasim) may share it; libraries and tests should prefer a fresh
// NewRegistry to keep output deterministic.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter with the given name and labels, creating
// it if needed. It panics when the name is invalid or already registered
// as a different metric type (programmer error).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, kindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge with the given name and labels, creating it if
// needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, nil, labels)
	return s.g
}

// CounterFunc registers a counter whose value is read by fn at
// exposition time — for subsystems (like the WAL) that maintain their
// own always-on atomic counters and only want to surface them once a
// registry exists. fn must be monotonically non-decreasing.
// Re-registering the same series replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic("telemetry: nil CounterFunc for " + name)
	}
	s := r.getOrCreate(name, help, kindCounterFunc, nil, labels)
	r.mu.Lock()
	s.cfn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — e.g. a live engine statistic that is already
// maintained elsewhere. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic("telemetry: nil GaugeFunc for " + name)
	}
	s := r.getOrCreate(name, help, kindGaugeFunc, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram with the given name and labels,
// creating it if needed. nil bounds select DefaultLatencyBuckets; an
// existing family keeps its original bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, bounds, labels)
	return s.h
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l.Name) || l.Name == "le" {
			panic("telemetry: invalid label name " + strconv.Quote(l.Name) + " on " + name)
		}
	}
	key := labelKey(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		if kind == kindHistogram {
			if bounds == nil {
				bounds = DefaultLatencyBuckets()
			}
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	s, ok := f.series[key]
	if ok {
		return s
	}
	s = &series{labels: sortedLabels(labels)}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindCounterFunc, kindGaugeFunc:
		// fn is filled in by CounterFunc/GaugeFunc under the same
		// lock scope.
	case kindHistogram:
		h, err := NewHistogram(f.bounds)
		if err != nil {
			panic("telemetry: " + err.Error())
		}
		s.h = h
	}
	f.series[key] = s
	return s
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelKey renders labels in sorted order; it doubles as the series map
// key and the exposition label block (without extra labels).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), families and series in
// deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type serieRow struct {
		key string
		s   *series
	}
	type famRow struct {
		f    *family
		rows []serieRow
	}
	fams := make([]famRow, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rows := make([]serieRow, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, serieRow{key: k, s: f.series[k]})
		}
		fams = append(fams, famRow{f: f, rows: rows})
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, fr := range fams {
		f := fr.f
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, row := range fr.rows {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, row.key), row.s.c.Value())
			case kindCounterFunc:
				if row.s.cfn != nil {
					fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, row.key), row.s.cfn())
				}
			case kindGauge:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, row.key), row.s.g.Value())
			case kindGaugeFunc:
				if row.s.fn != nil {
					fmt.Fprintf(bw, "%s %s\n", seriesName(f.name, row.key), formatFloat(row.s.fn()))
				}
			case kindHistogram:
				writeHistogram(bw, f.name, row.key, row.s.h.Snapshot())
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("telemetry: writing exposition: %w", err)
	}
	return nil
}

func seriesName(name, key string) string {
	if key == "" {
		return name
	}
	return name + "{" + key + "}"
}

// bucketName renders a _bucket series, appending le to any series labels.
func bucketName(name, key, le string) string {
	if key == "" {
		return name + `_bucket{le="` + le + `"}`
	}
	return name + `_bucket{` + key + `,le="` + le + `"}`
}

func writeHistogram(w io.Writer, name, key string, s HistogramSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s %d\n", bucketName(name, key, formatFloat(bound)), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s %d\n", bucketName(name, key, "+Inf"), cum)
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", key), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", key), cum)
	// Overflow is derivable from the bucket lines but easy to miss;
	// surfacing it as its own series makes saturated quantiles greppable.
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_overflow", key), s.Overflow)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition — the body of
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The only write error possible here is a dropped client.
		_ = r.WritePrometheus(w)
	})
}
