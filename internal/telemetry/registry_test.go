package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Total requests.", L("route", "/v1/ads"), L("code", "2xx")).Add(3)
	reg.Counter("requests_total", "Total requests.", L("route", "/v1/ads"), L("code", "5xx")).Inc()
	reg.Gauge("in_flight", "In-flight requests.").Set(2)
	reg.GaugeFunc("users", "Known users.", func() float64 { return 7 })
	h := reg.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP in_flight In-flight requests.
# TYPE in_flight gauge
in_flight 2
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 30.55
latency_seconds_count 3
latency_seconds_overflow 1
# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total{code="2xx",route="/v1/ads"} 3
requests_total{code="5xx",route="/v1/ads"} 1
# HELP users Known users.
# TYPE users gauge
users 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterFunc(t *testing.T) {
	reg := NewRegistry()
	var n uint64 = 41
	reg.CounterFunc("appends_total", "Records appended.", func() uint64 { return n })
	n++
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP appends_total Records appended.
# TYPE appends_total counter
appends_total 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Re-registering replaces fn; conflicting kinds panic.
	reg.CounterFunc("appends_total", "", func() uint64 { return 7 })
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "appends_total 7") {
		t.Errorf("fn not replaced:\n%s", b.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	reg.Counter("appends_total", "")
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "help")
	b := reg.Counter("c_total", "")
	if a != b {
		t.Error("same counter name returned distinct counters")
	}
	h1 := reg.Histogram("h_seconds", "", []float64{1, 2})
	h2 := reg.Histogram("h_seconds", "", nil) // existing family keeps bounds
	if h1 != h2 {
		t.Error("same histogram series returned distinct histograms")
	}
	if got := len(h1.Bounds()); got != 2 {
		t.Errorf("bounds = %d, want original 2", got)
	}
	if reg.Histogram("lat_seconds", "", nil) == nil {
		t.Error("nil bounds did not select defaults")
	}

	defer func() {
		if recover() == nil {
			t.Error("type conflict did not panic")
		}
	}()
	reg.Gauge("c_total", "")
}

func TestRegistryInvalidNames(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
	// "le" is reserved for histogram buckets.
	defer func() {
		if recover() == nil {
			t.Error(`label "le" accepted`)
		}
	}()
	reg.Histogram("h_seconds", "", nil, L("le", "1"))
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "", L("path", "a\\b\"c\nd")).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\\b\"c\nd"`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("c_total", "", L("g", string(rune('a'+g%4)))).Inc()
				reg.Histogram("h_seconds", "", nil).Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += reg.Counter("c_total", "", L("g", l)).Value()
	}
	if total != 8*500 {
		t.Errorf("total = %d, want 4000", total)
	}
	if got := reg.Histogram("h_seconds", "", nil).Count(); got != 8*500 {
		t.Errorf("histogram count = %d, want 4000", got)
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "help").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}
