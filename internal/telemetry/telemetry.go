// Package telemetry is the repo's runtime observability substrate: atomic
// lock-free counters and gauges, fixed-bucket latency histograms with
// exponential bucket bounds, a process-wide registry, and a Prometheus
// text-format exposition writer — all stdlib-only.
//
// The paper's own evaluation (Tables II/III) is about *measured*
// per-stage latency of obfuscation and output selection; this package is
// the live analogue: the edge service, the core engine, and the RTB
// exchange record their hot-path metrics here, and GET /metrics exposes
// them. Hot-path cost is a few atomic adds per observation (see
// BenchmarkTelemetryOverhead in internal/core).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a lock-free integer gauge (a value that can go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat64 accumulates a float64 with a CAS loop.
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefaultLatencyBuckets spans 1 µs to ~4.2 s in powers of four — wide
// enough for both the engine's microsecond-scale output selection and the
// RTB layer's 100 ms auction deadline.
func DefaultLatencyBuckets() []float64 { return ExponentialBuckets(1e-6, 4, 12) }

// ExponentialBuckets returns count upper bounds start, start·factor,
// start·factor², … It panics on invalid arguments (programmer error, like
// a malformed metric name).
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if !(start > 0) || !(factor > 1) || count < 1 {
		panic(fmt.Sprintf("telemetry: invalid exponential buckets (start=%g factor=%g count=%d)", start, factor, count))
	}
	bounds := make([]float64, count)
	for i := range bounds {
		bounds[i] = start
		start *= factor
	}
	return bounds
}

// Histogram is a fixed-bucket lock-free histogram. Bounds are upper
// bucket edges (ascending); observations above the last bound land in an
// implicit +Inf bucket. Observe is a binary search plus three atomic
// adds; histograms with equal bounds are mergeable.
type Histogram struct {
	bounds []float64
	bins   []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat64
}

// NewHistogram builds a histogram over the given bucket bounds, which
// must be finite and strictly ascending.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("telemetry: bucket bound %d is %g", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: bucket bounds not strictly ascending at %d (%g after %g)", i, b, bounds[i-1])
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.bins = make([]atomic.Uint64, len(bounds)+1)
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the Prometheus "le" bucket for v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.bins[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.bins {
		total += h.bins[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Overflow returns the number of observations above the last bucket
// bound (the +Inf bucket). A non-zero overflow means quantile estimates
// saturate at the top bound and understate the true tail — callers
// sizing bounds should treat it as a misconfiguration signal.
func (h *Histogram) Overflow() uint64 { return h.bins[len(h.bins)-1].Load() }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper edges; Counts[i] is the number of
	// observations ≤ Bounds[i] exclusive of earlier buckets, and
	// Counts[len(Bounds)] is the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	// Overflow is Counts[len(Bounds)]: observations above the top bound,
	// where quantile interpolation saturates.
	Overflow uint64
}

// Snapshot copies the current bins. Under concurrent writers the copy is
// per-bin atomic but not globally consistent — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: make([]uint64, len(h.bins)),
	}
	for i := range h.bins {
		c := h.bins[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Overflow = s.Counts[len(s.Bounds)]
	return s
}

// Merge adds other's bins into h. The histograms must share bounds.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return fmt.Errorf("telemetry: merge nil histogram")
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("telemetry: merging histograms with different bound %d (%g vs %g)", i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range other.bins {
		if n := other.bins[i].Load(); n > 0 {
			h.bins[i].Add(n)
		}
	}
	h.sum.Add(other.sum.Load())
	return nil
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket containing it. Observations in the +Inf bucket are
// reported as the last finite bound — i.e. the estimate SATURATES when
// the quantile falls into overflow, understating the true tail. Check
// Overflow (exposed as the _overflow series in /metrics) before trusting
// a p99 that sits at the top bound. It returns NaN on an empty histogram
// or q outside (0, 1).
func (h *Histogram) Quantile(q float64) float64 {
	if !(q > 0 && q < 1) {
		return math.NaN()
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return math.NaN()
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
