package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// topGridCell is the side of the square grid used to derive empirical
// ground-truth top locations from an external trace. 50 m matches the
// synthetic generator's notion of "the same place" (top locations are
// point sites; the attack's success thresholds start at 200 m).
const topGridCell = 50.0

// ExternalStats counts what the adapter did with the input rows.
// Malformed rows are never fatal: real RTB exports carry truncated
// lines, unparsable fields and bogus coordinates, and the adapter's
// contract is skip-and-count.
type ExternalStats struct {
	// Rows is every non-empty data line seen (header excluded).
	Rows int
	// Kept is the rows converted into check-ins.
	Kept int
	// SkippedFields counts rows with too few columns or unparsable
	// lat/lon/timestamp fields (including truncated final lines).
	SkippedFields int
	// SkippedCoords counts rows whose coordinates parse but fall outside
	// the WGS-84 domain.
	SkippedCoords int
	// OutOfOrder counts kept rows whose timestamp regressed within their
	// user's stream; the adapter re-sorts per user, so these are accepted,
	// just counted.
	OutOfOrder int
}

// ExternalSource streams an external bidding-trace export — CSV or TSV
// rows of `user_id, lat, lon, timestamp_ms` (the same interchange layout
// trace.WriteCSV emits; extra trailing columns are ignored) — onto the
// workload event schema. The delimiter is sniffed per file, a header
// line is optional, and malformed rows are skipped and counted, never
// fatal. Ground-truth top locations are derived empirically from a
// 50 m-grid frequency count, because a log never carries them.
type ExternalSource struct {
	// R is the row stream.
	R io.Reader
	// Origin is the projection origin mapping rows into the local plane;
	// the zero value means trace.Shanghai().Origin.
	Origin geo.LatLon
	// Stats is populated by Dataset.
	Stats ExternalStats
}

// Dataset streams the rows into a per-user dataset: check-ins time-sorted
// per user, users ordered by ID, empirical top locations attached.
func (s *ExternalSource) Dataset() (*trace.Dataset, error) {
	origin := s.Origin
	if origin == (geo.LatLon{}) {
		origin = trace.Shanghai().Origin
	}
	proj, err := geo.NewProjection(origin)
	if err != nil {
		return nil, fmt.Errorf("workload: external source projection: %w", err)
	}

	s.Stats = ExternalStats{}
	users := make(map[string][]trace.CheckIn)
	lastTime := make(map[string]time.Time)

	br := bufio.NewReader(s.R)
	sep := byte(0) // sniffed from the first non-empty line
	sawHeader := false
	for {
		line, readErr := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		if line != "" {
			if sep == 0 {
				sep = ','
				if strings.IndexByte(line, '\t') >= 0 {
					sep = '\t'
				}
			}
			fields := strings.Split(line, string(sep))
			for i := range fields {
				fields[i] = strings.TrimSpace(fields[i])
			}
			if !sawHeader && isHeader(fields) {
				sawHeader = true
			} else {
				s.consumeRow(fields, proj, users, lastTime)
			}
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return nil, fmt.Errorf("workload: external source read: %w", readErr)
		}
	}

	if len(users) == 0 {
		return nil, fmt.Errorf("workload: external source yielded no usable rows (%d seen, %d skipped)",
			s.Stats.Rows, s.Stats.SkippedFields+s.Stats.SkippedCoords)
	}

	ids := make([]string, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ds := &trace.Dataset{Origin: origin, Users: make([]*trace.User, len(ids))}
	for i, id := range ids {
		cs := users[id]
		sort.Slice(cs, func(a, b int) bool { return cs[a].Time.Before(cs[b].Time) })
		ds.Users[i] = &trace.User{ID: id, CheckIns: cs, TrueTops: empiricalTops(cs)}
	}
	return ds, nil
}

// consumeRow converts one data line, updating stats; it never fails.
func (s *ExternalSource) consumeRow(fields []string, proj *geo.Projection, users map[string][]trace.CheckIn, lastTime map[string]time.Time) {
	s.Stats.Rows++
	if len(fields) < 4 || fields[0] == "" {
		s.Stats.SkippedFields++
		return
	}
	lat, errLat := strconv.ParseFloat(fields[1], 64)
	lon, errLon := strconv.ParseFloat(fields[2], 64)
	ms, errTS := strconv.ParseInt(fields[3], 10, 64)
	if errLat != nil || errLon != nil || errTS != nil {
		s.Stats.SkippedFields++
		return
	}
	ll := geo.LatLon{Lat: lat, Lon: lon}
	if ll.Validate() != nil {
		s.Stats.SkippedCoords++
		return
	}
	id := fields[0]
	at := time.UnixMilli(ms).UTC()
	if last, ok := lastTime[id]; ok && at.Before(last) {
		s.Stats.OutOfOrder++
	} else {
		lastTime[id] = at
	}
	users[id] = append(users[id], trace.CheckIn{Pos: proj.ToPlane(ll), Time: at})
	s.Stats.Kept++
}

// isHeader reports whether the first line is a column header rather than
// data: any of the numeric columns failing to parse marks it as one.
func isHeader(fields []string) bool {
	if len(fields) < 4 {
		return true
	}
	_, errLat := strconv.ParseFloat(fields[1], 64)
	_, errLon := strconv.ParseFloat(fields[2], 64)
	_, errTS := strconv.ParseInt(fields[3], 10, 64)
	return errLat != nil || errLon != nil || errTS != nil
}

// empiricalTops derives ground-truth top locations from a frequency
// count over a 50 m grid: the cell centroid stands in for the site.
// Ties break on cell coordinates so the result is deterministic.
func empiricalTops(cs []trace.CheckIn) []trace.TopLocation {
	type cell struct{ x, y int }
	counts := make(map[cell]int)
	sums := make(map[cell]geo.Point)
	for _, c := range cs {
		k := cell{int(math.Floor(c.Pos.X / topGridCell)), int(math.Floor(c.Pos.Y / topGridCell))}
		counts[k]++
		s := sums[k]
		sums[k] = geo.Point{X: s.X + c.Pos.X, Y: s.Y + c.Pos.Y}
	}
	keys := make([]cell, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].y < keys[j].y
	})
	tops := make([]trace.TopLocation, len(keys))
	for i, k := range keys {
		n := counts[k]
		tops[i] = trace.TopLocation{
			Pos:   geo.Point{X: sums[k].X / float64(n), Y: sums[k].Y / float64(n)},
			Count: n,
		}
	}
	return tops
}
