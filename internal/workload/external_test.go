package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestExternalSourceRoundTrip(t *testing.T) {
	// A dataset exported through trace.WriteCSV must come back through
	// the adapter with the same users and check-in counts.
	cfg := trace.DefaultConfig()
	cfg.NumUsers = 10
	cfg.MaxCheckIns = 60
	cfg.Seed = 5
	ds, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}

	src := &ExternalSource{R: &buf, Origin: ds.Origin}
	got, err := src.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != len(ds.Users) {
		t.Fatalf("users %d != %d", len(got.Users), len(ds.Users))
	}
	if src.Stats.SkippedFields+src.Stats.SkippedCoords != 0 {
		t.Fatalf("clean export skipped rows: %+v", src.Stats)
	}
	for i, u := range got.Users {
		want := ds.Users[i]
		if u.ID != want.ID || len(u.CheckIns) != len(want.CheckIns) {
			t.Fatalf("user %d: got %s/%d check-ins, want %s/%d",
				i, u.ID, len(u.CheckIns), want.ID, len(want.CheckIns))
		}
		if len(u.TrueTops) == 0 {
			t.Fatalf("user %s has no empirical tops", u.ID)
		}
		for j := 1; j < len(u.TrueTops); j++ {
			if u.TrueTops[j].Count > u.TrueTops[j-1].Count {
				t.Fatalf("user %s tops not sorted by count", u.ID)
			}
		}
		// Round-tripping through 7-decimal WGS-84 keeps positions within a
		// couple of centimetres.
		for j := range u.CheckIns {
			if d := u.CheckIns[j].Pos.Dist(want.CheckIns[j].Pos); d > 0.1 {
				t.Fatalf("user %s check-in %d drifted %.3fm", u.ID, j, d)
			}
			// The interchange format carries millisecond timestamps.
			if !u.CheckIns[j].Time.Equal(want.CheckIns[j].Time.Truncate(time.Millisecond)) {
				t.Fatalf("user %s check-in %d time mismatch", u.ID, j)
			}
		}
	}
}

func TestExternalSourceSkipsAndCounts(t *testing.T) {
	in := strings.Join([]string{
		"user_id,lat,lon,timestamp_ms",
		"u1,31.10,121.50,2000",      // ok
		"u1,31.11,121.51,1000",      // ok but out of order
		"u1,31.12",                  // truncated
		"u1,91.00,121.50,3000",      // lat out of range
		"u1,notanum,121.50,4000",    // unparsable lat
		"u1,31.13,121.52,notanum",   // unparsable timestamp
		"",                          // blank line ignored
		"u2,31.20,121.60,5000,spam", // extra column ignored
		",31.20,121.60,6000",        // empty user
	}, "\n")
	src := &ExternalSource{R: strings.NewReader(in)}
	ds, err := src.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	// Skipped fields: the truncated row, the two unparsable ones, and the
	// empty-user row.
	want := ExternalStats{Rows: 8, Kept: 3, SkippedFields: 4, SkippedCoords: 1, OutOfOrder: 1}
	if src.Stats != want {
		t.Fatalf("stats %+v, want %+v", src.Stats, want)
	}
	if len(ds.Users) != 2 || ds.Users[0].ID != "u1" || ds.Users[1].ID != "u2" {
		t.Fatalf("unexpected users: %+v", ds.Users)
	}
	// The out-of-order row is re-sorted, not dropped.
	cs := ds.Users[0].CheckIns
	if len(cs) != 2 || !cs[0].Time.Before(cs[1].Time) {
		t.Fatalf("u1 check-ins not re-sorted: %+v", cs)
	}
}

func TestExternalSourceTSVNoHeader(t *testing.T) {
	in := "u1\t31.10\t121.50\t2000\nu1\t31.11\t121.51\t3000\n"
	src := &ExternalSource{R: strings.NewReader(in)}
	ds, err := src.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 1 || len(ds.Users[0].CheckIns) != 2 {
		t.Fatalf("TSV without header misparsed: %+v", src.Stats)
	}
}

func TestExternalSourceEmpty(t *testing.T) {
	if _, err := (&ExternalSource{R: strings.NewReader("")}).Dataset(); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := (&ExternalSource{R: strings.NewReader("garbage\nmore,garbage\n")}).Dataset(); err == nil {
		t.Fatal("all-malformed input must error")
	}
}

// TestExternalSourceFeedsBuild pins the adapter into the scenario
// composer: an external trace must drive any mode end to end.
func TestExternalSourceFeedsBuild(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.NumUsers = 6
	cfg.MaxCheckIns = 80
	cfg.Seed = 9
	ds, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	w, err := Build(&ExternalSource{R: &buf, Origin: ds.Origin}, Config{Mode: ModeCollude, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Events == 0 || w.Stats.Users != 6 {
		t.Fatalf("external-fed collude workload empty: %+v", w.Stats)
	}
}

// FuzzExternalSource pins the adapter's never-panic contract: arbitrary
// byte soup — truncated lines, bad coordinates, out-of-order timestamps,
// binary junk — either yields a dataset or a clean error, and the stats
// always balance.
func FuzzExternalSource(f *testing.F) {
	f.Add([]byte("user_id,lat,lon,timestamp_ms\nu1,31.1,121.5,1000\n"))
	f.Add([]byte("u1,31.1,121.5,1000\nu1,31.2"))
	f.Add([]byte("u1\t31.1\t121.5\t9e99\n"))
	f.Add([]byte("u1,91,181,1000\nu1,31.1,121.5,-5\nu1,31.1,121.5,3\nu1,31.1,121.5,2\n"))
	f.Add([]byte(",,,\n\x00\xff\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &ExternalSource{R: bytes.NewReader(data)}
		ds, err := src.Dataset()
		if kept := src.Stats.Kept + src.Stats.SkippedFields + src.Stats.SkippedCoords; kept != src.Stats.Rows {
			t.Fatalf("stats do not balance: %+v", src.Stats)
		}
		if err != nil {
			return
		}
		if len(ds.Users) == 0 {
			t.Fatal("nil error but empty dataset")
		}
		for _, u := range ds.Users {
			if u.ID == "" {
				t.Fatal("kept an empty user ID")
			}
			for i := 1; i < len(u.CheckIns); i++ {
				if u.CheckIns[i].Time.Before(u.CheckIns[i-1].Time) {
					t.Fatalf("user %q check-ins unsorted", u.ID)
				}
			}
		}
	})
}
