package workload

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/randx"
	"repro/internal/trace"
)

// composeChurn resets the device's advertising identifier mid-trace:
// each reset starts a fresh generation, so both the edge profile and the
// attacker's longitudinal stream are keyed on a new ad-ID from that
// point on. Mutations counts resets.
func composeChurn(cfg Config, u *trace.User, window timeWindow, rnd *randx.Rand) ([]Event, Stats) {
	var resets []time.Time
	if rnd.Float64() < cfg.ChurnProb {
		n := 1 + rnd.IntN(cfg.ChurnMax)
		span := window.to.Sub(window.from)
		for i := 0; i < n; i++ {
			resets = append(resets, window.from.Add(time.Duration(rnd.Float64()*float64(span))))
		}
		sort.Slice(resets, func(i, j int) bool { return resets[i].Before(resets[j]) })
	}
	ev := make([]Event, len(u.CheckIns))
	for i, c := range u.CheckIns {
		gen := 0
		for _, r := range resets {
			if !c.Time.Before(r) {
				gen++
			}
		}
		ev[i] = Event{
			User:    u.ID,
			AdID:    fmt.Sprintf("%s/g%d", u.ID, gen),
			Session: i,
			Pos:     c.Pos,
			Time:    c.Time,
		}
	}
	return ev, Stats{Events: len(ev), Mutations: len(resets)}
}

// composeOutage drops check-ins that fall inside a correlated space-time
// outage window (every affected device in the area goes dark together).
// Mutations counts dropped check-ins.
func composeOutage(outages []outage, u *trace.User) ([]Event, Stats) {
	var ev []Event
	dropped := 0
	for i, c := range u.CheckIns {
		out := false
		for _, o := range outages {
			if !c.Time.Before(o.From) && c.Time.Before(o.To) && o.Area.Contains(c.Pos) {
				out = true
				break
			}
		}
		if out {
			dropped++
			continue
		}
		ev = append(ev, Event{User: u.ID, AdID: u.ID, Session: i, Pos: c.Pos, Time: c.Time})
	}
	return ev, Stats{Events: len(ev), Mutations: dropped}
}

// trip is one relocation window: check-ins during [From, To) are moved
// near Base inside an away city.
type trip struct {
	From, To time.Time
	Base     geo.Point
}

// composeTraveler relocates trip windows into away cities: a traveler's
// check-ins during a trip cluster around a "hotel" point drawn in the
// destination extent, which lies outside the home region. Mutations
// counts relocated check-ins.
func composeTraveler(cfg Config, cities []geo.BBox, u *trace.User, window timeWindow, rnd *randx.Rand) ([]Event, Stats) {
	var trips []trip
	if rnd.Float64() < cfg.TravelerProb {
		n := 1 + rnd.IntN(cfg.TripsMax)
		span := window.to.Sub(window.from)
		for i := 0; i < n; i++ {
			city := cities[rnd.IntN(len(cities))]
			base := geo.Point{
				X: city.MinX + rnd.Float64()*city.Width(),
				Y: city.MinY + rnd.Float64()*city.Height(),
			}
			start := window.from.Add(time.Duration(rnd.Float64() * float64(span)))
			days := 2 + rnd.Float64()*float64(cfg.TripMaxDays-2)
			trips = append(trips, trip{
				From: start,
				To:   start.Add(time.Duration(days * 24 * float64(time.Hour))),
				Base: base,
			})
		}
		sort.Slice(trips, func(i, j int) bool { return trips[i].From.Before(trips[j].From) })
	}
	ev := make([]Event, len(u.CheckIns))
	relocated := 0
	for i, c := range u.CheckIns {
		pos := c.Pos
		for _, t := range trips {
			if !c.Time.Before(t.From) && c.Time.Before(t.To) {
				jitter := rnd.GaussianPolar(150)
				pos = geo.Point{X: t.Base.X + jitter.X, Y: t.Base.Y + jitter.Y}
				relocated++
				break
			}
		}
		ev[i] = Event{User: u.ID, AdID: u.ID, Session: i, Pos: pos, Time: c.Time}
	}
	return ev, Stats{Events: len(ev), Mutations: relocated}
}

// Pseudonym derives the stable per-(user, network) advertising
// identifier collude mode attaches to bid requests. Exported so the
// colluding-adversary evaluation can recover ground truth without the
// streams carrying it.
func Pseudonym(seed uint64, userIndex, net int) string {
	h := randx.Mix64(randx.Mix64(seed+uint64(userIndex+1)*randx.GoldenGamma) + uint64(net+1)*randx.GoldenGamma)
	return fmt.Sprintf("p%016x@n%d", h, net)
}

// composeCollude sessionizes check-ins into short request bursts and
// splits them across the device's installed ad networks: each network
// sees only its own pseudonymous slice, and dual-SDK sessions — the same
// app session served through two SDKs — report the same true location to
// two networks minutes apart, which is exactly the timestamp+radius
// correlation the colluding adversary joins on. Mutations counts
// dual-SDK sessions.
func composeCollude(cfg Config, u *trace.User, idx int, rnd *randx.Rand) ([]Event, Stats) {
	// The device installs AppsPerUser of the Networks ad SDKs.
	perm := rnd.Perm(cfg.Networks)
	apps := append([]int(nil), perm[:cfg.AppsPerUser]...)
	sort.Ints(apps)

	var ev []Event
	dual := 0
	for ci, c := range u.CheckIns {
		burst := 1 + rnd.IntN(cfg.SessionMax)
		isDual := len(apps) > 1 && rnd.Float64() < cfg.DualSDKProb
		if isDual {
			dual++
			if burst < 2 {
				burst = 2
			}
		}
		primary := apps[rnd.IntN(len(apps))]
		secondary := primary
		if isDual {
			for secondary == primary {
				secondary = apps[rnd.IntN(len(apps))]
			}
		}
		at := c.Time
		for j := 0; j < burst; j++ {
			if j > 0 {
				at = at.Add(time.Duration((30 + rnd.Float64()*180) * float64(time.Second)))
			}
			net := primary
			if isDual && j%2 == 1 {
				net = secondary
			}
			jitter := rnd.GaussianPolar(25)
			ev = append(ev, Event{
				User:    u.ID,
				AdID:    Pseudonym(cfg.Seed, idx, net),
				Net:     net,
				Session: ci,
				Pos:     geo.Point{X: c.Pos.X + jitter.X, Y: c.Pos.Y + jitter.Y},
				Time:    at,
			})
		}
	}
	return ev, Stats{Events: len(ev), Mutations: dual}
}
