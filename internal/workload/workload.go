// Package workload composes hostile and realistic per-user event streams
// for the attack harness and the load generators. A Source supplies the
// ground-truth mobility dataset (the calibrated synthetic generator by
// default, or an external bidding-trace adapter); a scenario Mode then
// elaborates it into the ad-ecosystem's view: device resets that rotate
// ad identifiers mid-trace (churn), correlated per-region check-in gaps
// (gps-outage), multi-city travelers leaving the home region (traveler),
// and multi-SDK request sessions split across colluding ad networks
// under per-network pseudonyms (collude).
//
// Composition is deterministic and bit-identical at any worker count:
// per-user elaboration draws from index-derived randx streams through
// par.MapSeeded, and mode-level fixtures (outage windows, city extents)
// are derived from dedicated streams before the parallel loop.
package workload

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/par"
	"repro/internal/randx"
	"repro/internal/trace"
)

// Mode names a scenario the composer can elaborate.
type Mode string

// The built-in scenario modes.
const (
	// ModeBaseline passes the source dataset through unchanged: one event
	// per check-in, the device's own ID, a single ad network.
	ModeBaseline Mode = "baseline"
	// ModeChurn resets devices mid-trace: each reset rotates the user's
	// advertising identifier, splitting the longitudinal stream the
	// attacker (and the edge) can key on.
	ModeChurn Mode = "churn"
	// ModeGPSOutage drops check-ins inside correlated space-time windows,
	// the "no GPS outages" gap called out in EXPERIMENTS.md.
	ModeGPSOutage Mode = "gps-outage"
	// ModeTraveler relocates trip windows to other cities from the
	// trace.Cities catalog, producing out-of-region check-ins that
	// exercise cluster failover and out-of-region merge paths.
	ModeTraveler Mode = "traveler"
	// ModeCollude splits each user's requests into multi-SDK sessions
	// across several ad networks under per-network pseudonyms — the
	// cross-network adversary joins them back (internal/attack.Collude).
	ModeCollude Mode = "collude"
)

// Modes lists the built-in scenario modes in a stable order.
func Modes() []Mode {
	return []Mode{ModeBaseline, ModeChurn, ModeGPSOutage, ModeTraveler, ModeCollude}
}

// ParseMode validates a scenario mode name.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes() {
		if s == string(m) {
			return m, nil
		}
	}
	return "", fmt.Errorf("workload: unknown scenario mode %q (have %v)", s, Modes())
}

// Event is one ad-request opportunity as the ad ecosystem observes it:
// the advertising identifier and network are the attacker-visible keys,
// User is the ground-truth device identity the simulation evaluates
// against.
type Event struct {
	// User is the ground-truth device (trace user ID).
	User string
	// AdID is the advertising identifier attached to the bid request —
	// the device ID in baseline mode, a generation-suffixed ID under
	// churn, a per-network pseudonym under collude.
	AdID string
	// Net is the ad network receiving the bid (always 0 outside collude).
	Net int
	// Session numbers the source check-in within the user's trace: the
	// requests of one collude session burst share it. An edge serves one
	// obfuscated output per session, so a burst never hands the adversary
	// independent noise samples of the same position.
	Session int
	// Pos is the device's true position at the event.
	Pos geo.Point
	// Time is the event timestamp.
	Time time.Time
}

// Stream is one ground-truth user's composed event stream, ordered by
// ascending time.
type Stream struct {
	User   string
	Events []Event
}

// Source supplies the ground-truth dataset a scenario elaborates.
// Synthetic wraps the calibrated generator in internal/trace (the
// default); ExternalSource adapts external bidding-trace exports.
type Source interface {
	Dataset() (*trace.Dataset, error)
}

// Synthetic is the default Source: the calibrated synthetic generator.
type Synthetic struct {
	Config trace.Config
}

// Dataset generates the synthetic population.
func (s Synthetic) Dataset() (*trace.Dataset, error) { return trace.Generate(s.Config) }

// Config parameterises scenario composition. Zero fields take the
// defaults documented per field.
type Config struct {
	// Mode selects the scenario; empty means ModeBaseline.
	Mode Mode
	// Seed drives all scenario randomness.
	Seed uint64
	// Parallelism bounds the composer's worker count (≤ 0 selects
	// runtime.NumCPU()); the composed workload is bit-identical at any
	// level.
	Parallelism int
	// Region is the home extent (used by gps-outage windows and traveler
	// re-projection); the zero value means trace.Shanghai().
	Region trace.Region

	// Networks is the number of ad networks in collude mode (default 3).
	Networks int
	// AppsPerUser is how many of those networks each device carries an
	// SDK for (default min(3, Networks), at least 2).
	AppsPerUser int
	// DualSDKProb is the probability a session's requests are served
	// through two of the device's networks — the same true location
	// reported to both, which is the adversary's join signal
	// (default 0.45).
	DualSDKProb float64
	// SessionMax bounds the requests one check-in session emits
	// (default 3).
	SessionMax int

	// ChurnProb is the probability a device resets at least once
	// (default 0.75); ChurnMax bounds resets per device (default 2).
	ChurnProb float64
	ChurnMax  int

	// Outages is the number of correlated space-time outage windows
	// (default 6); OutageMaxDays bounds each window's length (default 10).
	Outages       int
	OutageMaxDays int

	// TravelerProb is the probability a user travels at all
	// (default 0.35); TripsMax bounds trips per traveler (default 3);
	// TripMaxDays bounds one trip's length (default 10).
	TravelerProb float64
	TripsMax     int
	TripMaxDays  int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeBaseline
	}
	if c.Region.Width() <= 0 || c.Region.Height() <= 0 {
		c.Region = trace.Shanghai()
	}
	if c.Networks <= 0 {
		c.Networks = 3
	}
	if c.AppsPerUser <= 0 {
		c.AppsPerUser = min(3, c.Networks)
	}
	c.AppsPerUser = min(c.AppsPerUser, c.Networks)
	if c.DualSDKProb <= 0 {
		c.DualSDKProb = 0.45
	}
	if c.SessionMax <= 0 {
		c.SessionMax = 3
	}
	if c.ChurnProb <= 0 {
		c.ChurnProb = 0.75
	}
	if c.ChurnMax <= 0 {
		c.ChurnMax = 2
	}
	if c.Outages <= 0 {
		c.Outages = 6
	}
	if c.OutageMaxDays <= 0 {
		c.OutageMaxDays = 10
	}
	if c.TravelerProb <= 0 {
		c.TravelerProb = 0.35
	}
	if c.TripsMax <= 0 {
		c.TripsMax = 3
	}
	if c.TripMaxDays <= 0 {
		c.TripMaxDays = 10
	}
	return c
}

// Validate checks the configuration domain.
func (c Config) Validate() error {
	if _, err := ParseMode(string(c.Mode)); err != nil {
		return err
	}
	if c.Mode == ModeCollude && c.Networks < 2 {
		return fmt.Errorf("workload: collude needs at least 2 networks, have %d", c.Networks)
	}
	if c.DualSDKProb > 1 || c.ChurnProb > 1 || c.TravelerProb > 1 {
		return fmt.Errorf("workload: probabilities must be ≤ 1")
	}
	return nil
}

// Stats summarises a composed workload. Mutations counts the
// scenario-specific elaborations: device resets (churn), dropped
// check-ins (gps-outage), relocated check-ins (traveler), dual-SDK
// sessions (collude); baseline has none.
type Stats struct {
	Users     int
	Events    int
	Mutations int
}

// Workload is a composed scenario: the ground-truth dataset plus the
// per-user event streams the ad ecosystem observes.
type Workload struct {
	Mode    Mode
	Config  Config
	Dataset *trace.Dataset
	// Streams is parallel to Dataset.Users.
	Streams []Stream
	Stats   Stats
	// Extent bounds every event position plus the home region — the
	// coverage a simulated deployment must provide (traveler events leave
	// the home box).
	Extent geo.BBox
}

// Stream selector bases for the composer's independent PRNG families
// (avalanche-then-increment idiom; see internal/randx.Mix64).
const (
	streamUsers    = 0x3C0DE
	streamFixtures = 0xF17E5
)

// Build composes the scenario: it pulls the ground-truth dataset from
// src and elaborates every user's stream under cfg.Mode. The same
// (Source output, Config) always yields the same workload, bit for bit,
// at any Parallelism.
func Build(src Source, cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds, err := src.Dataset()
	if err != nil {
		return nil, fmt.Errorf("workload: source: %w", err)
	}
	if len(ds.Users) == 0 {
		return nil, fmt.Errorf("workload: source dataset has no users")
	}

	// Mode-level fixtures come from their own stream, before (and
	// independent of) the parallel per-user loop.
	fixRnd := randx.New(cfg.Seed, streamFixtures)
	window, err := datasetWindow(ds)
	if err != nil {
		return nil, err
	}
	var fx fixtures
	switch cfg.Mode {
	case ModeGPSOutage:
		fx.outages = makeOutages(cfg, fixRnd, window)
	case ModeTraveler:
		fx.cities, err = awayCities(cfg.Region)
		if err != nil {
			return nil, err
		}
	}

	w := &Workload{
		Mode:    cfg.Mode,
		Config:  cfg,
		Dataset: ds,
		Streams: make([]Stream, len(ds.Users)),
	}
	perUser := make([]Stats, len(ds.Users))
	rng := randx.New(cfg.Seed, streamUsers)
	err = par.MapSeeded(cfg.Parallelism, len(ds.Users), rng, func(i int, rnd *randx.Rand) error {
		st, stats := composeUser(cfg, fx, ds.Users[i], i, window, rnd)
		w.Streams[i] = st
		perUser[i] = stats
		return nil
	})
	if err != nil {
		return nil, err
	}

	w.Extent = cfg.Region.BBox
	w.Stats.Users = len(ds.Users)
	for i := range w.Streams {
		w.Stats.Events += perUser[i].Events
		w.Stats.Mutations += perUser[i].Mutations
		for _, e := range w.Streams[i].Events {
			w.Extent = growBBox(w.Extent, e.Pos)
		}
	}
	return w, nil
}

// Flatten returns every event across all streams ordered by time (ties
// broken by user then ad-ID), for replay harnesses that want one global
// sequence.
func (w *Workload) Flatten() []Event {
	var out []Event
	for i := range w.Streams {
		out = append(out, w.Streams[i].Events...)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].AdID < out[j].AdID
	})
	return out
}

// fixtures carries mode-level state shared by every user.
type fixtures struct {
	outages []outage
	cities  []geo.BBox
}

// outage is one correlated space-time gap: devices inside Area during
// [From, To) produce no check-ins.
type outage struct {
	Area     geo.Circle
	From, To time.Time
}

// datasetWindow bounds the dataset's check-in timestamps; scenario
// windows (resets, outages, trips) are drawn inside it.
func datasetWindow(ds *trace.Dataset) (timeWindow, error) {
	var w timeWindow
	first := true
	for _, u := range ds.Users {
		for _, c := range u.CheckIns {
			if first || c.Time.Before(w.from) {
				w.from = c.Time
			}
			if first || c.Time.After(w.to) {
				w.to = c.Time
			}
			first = false
		}
	}
	if first {
		return timeWindow{}, fmt.Errorf("workload: dataset has no check-ins")
	}
	w.to = w.to.Add(time.Second)
	return w, nil
}

type timeWindow struct{ from, to time.Time }

func (w timeWindow) contains(t time.Time) bool {
	return !t.Before(w.from) && t.Before(w.to)
}

// makeOutages draws the correlated outage windows: a sub-area of the
// region paired with a multi-day time slice.
func makeOutages(cfg Config, rnd *randx.Rand, window timeWindow) []outage {
	span := window.to.Sub(window.from)
	minSide := min(cfg.Region.Width(), cfg.Region.Height())
	out := make([]outage, cfg.Outages)
	for i := range out {
		center := geo.Point{
			X: cfg.Region.MinX + rnd.Float64()*cfg.Region.Width(),
			Y: cfg.Region.MinY + rnd.Float64()*cfg.Region.Height(),
		}
		radius := (0.15 + 0.25*rnd.Float64()) * minSide
		start := window.from.Add(time.Duration(rnd.Float64() * float64(span)))
		days := 1 + rnd.Float64()*float64(cfg.OutageMaxDays-1)
		out[i] = outage{
			Area: geo.Circle{Center: center, Radius: radius},
			From: start,
			To:   start.Add(time.Duration(days * 24 * float64(time.Hour))),
		}
	}
	return out
}

// awayCities projects every catalog city except the home region into the
// home plane.
func awayCities(home trace.Region) ([]geo.BBox, error) {
	var out []geo.BBox
	for _, c := range trace.Cities() {
		if c.Name == home.Name {
			continue
		}
		box, err := c.InPlane(home.Origin)
		if err != nil {
			return nil, fmt.Errorf("workload: projecting %s: %w", c.Name, err)
		}
		out = append(out, box)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no away cities for region %s", home.Name)
	}
	return out, nil
}

// composeUser elaborates one user's stream under the scenario mode,
// drawing only from the caller's index-derived rnd.
func composeUser(cfg Config, fx fixtures, u *trace.User, idx int, window timeWindow, rnd *randx.Rand) (Stream, Stats) {
	var ev []Event
	var stats Stats
	switch cfg.Mode {
	case ModeChurn:
		ev, stats = composeChurn(cfg, u, window, rnd)
	case ModeGPSOutage:
		ev, stats = composeOutage(fx.outages, u)
	case ModeTraveler:
		ev, stats = composeTraveler(cfg, fx.cities, u, window, rnd)
	case ModeCollude:
		ev, stats = composeCollude(cfg, u, idx, rnd)
	default:
		ev = make([]Event, len(u.CheckIns))
		for i, c := range u.CheckIns {
			ev[i] = Event{User: u.ID, AdID: u.ID, Session: i, Pos: c.Pos, Time: c.Time}
		}
		stats = Stats{Events: len(ev)}
	}
	sortEvents(ev)
	stats.Users = 1
	return Stream{User: u.ID, Events: ev}, stats
}

func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		if !ev[i].Time.Equal(ev[j].Time) {
			return ev[i].Time.Before(ev[j].Time)
		}
		return ev[i].AdID < ev[j].AdID
	})
}

func growBBox(b geo.BBox, p geo.Point) geo.BBox {
	if p.X < b.MinX {
		b.MinX = p.X
	}
	if p.Y < b.MinY {
		b.MinY = p.Y
	}
	if p.X > b.MaxX {
		b.MaxX = p.X
	}
	if p.Y > b.MaxY {
		b.MaxY = p.Y
	}
	return b
}
