package workload

import "repro/internal/telemetry"

// Instrument registers the workload's telemetry with reg: the composed
// event and mutation totals, labelled by scenario mode. The counters are
// read-through (CounterFunc), so a workload composed before the registry
// existed still reports its totals.
func (w *Workload) Instrument(reg *telemetry.Registry) {
	mode := telemetry.L("mode", string(w.Mode))
	reg.CounterFunc("workload_events_total",
		"Scenario events composed by internal/workload.",
		func() uint64 { return uint64(w.Stats.Events) }, mode)
	reg.CounterFunc("workload_mutations_total",
		"Scenario-specific elaborations applied (device resets, outage drops, trip relocations, dual-SDK sessions).",
		func() uint64 { return uint64(w.Stats.Mutations) }, mode)
}
