package workload

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// testSource returns a small synthetic source shared by the tests.
func testSource() Synthetic {
	cfg := trace.DefaultConfig()
	cfg.NumUsers = 40
	cfg.MaxCheckIns = 200
	cfg.Seed = 7
	return Synthetic{Config: cfg}
}

// TestBuildDeterministicAcrossWorkers is the determinism regression
// test: every mode must compose bit-identical streams at any worker
// count.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, mode := range Modes() {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			t.Parallel()
			var ref *Workload
			for _, workers := range []int{1, 3, 8} {
				w, err := Build(testSource(), Config{Mode: mode, Seed: 11, Parallelism: workers})
				if err != nil {
					t.Fatalf("Build(workers=%d): %v", workers, err)
				}
				if ref == nil {
					ref = w
					continue
				}
				if w.Stats != ref.Stats {
					t.Fatalf("workers=%d stats %+v != %+v", workers, w.Stats, ref.Stats)
				}
				if len(w.Streams) != len(ref.Streams) {
					t.Fatalf("workers=%d stream count %d != %d", workers, len(w.Streams), len(ref.Streams))
				}
				for i := range w.Streams {
					if len(w.Streams[i].Events) != len(ref.Streams[i].Events) {
						t.Fatalf("workers=%d user %d event count differs", workers, i)
					}
					for j, e := range w.Streams[i].Events {
						if e != ref.Streams[i].Events[j] {
							t.Fatalf("workers=%d user %d event %d: %+v != %+v",
								workers, i, j, e, ref.Streams[i].Events[j])
						}
					}
				}
			}
		})
	}
}

func TestBaselinePassthrough(t *testing.T) {
	src := testSource()
	ds, err := src.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(src, Config{Mode: ModeBaseline, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, u := range ds.Users {
		total += len(u.CheckIns)
	}
	if w.Stats.Events != total || w.Stats.Mutations != 0 {
		t.Fatalf("baseline stats %+v, want %d events / 0 mutations", w.Stats, total)
	}
	for i, st := range w.Streams {
		if st.User != ds.Users[i].ID {
			t.Fatalf("stream %d user %q != dataset %q", i, st.User, ds.Users[i].ID)
		}
		for _, e := range st.Events {
			if e.AdID != st.User || e.Net != 0 {
				t.Fatalf("baseline event carries AdID=%q Net=%d", e.AdID, e.Net)
			}
		}
	}
}

func TestChurnRotatesAdIDs(t *testing.T) {
	w, err := Build(testSource(), Config{Mode: ModeChurn, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Mutations == 0 {
		t.Fatal("churn composed zero device resets")
	}
	multi := 0
	for _, st := range w.Streams {
		ids := make(map[string]bool)
		lastGen := ""
		for _, e := range st.Events {
			if !strings.HasPrefix(e.AdID, st.User+"/g") {
				t.Fatalf("churn AdID %q not derived from user %q", e.AdID, st.User)
			}
			if e.AdID < lastGen {
				t.Fatalf("user %s generation regressed: %q after %q", st.User, e.AdID, lastGen)
			}
			lastGen = e.AdID
			ids[e.AdID] = true
		}
		if len(ids) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no user ended up with more than one ad-ID generation")
	}
}

func TestGPSOutageDropsCorrelatedCheckIns(t *testing.T) {
	src := testSource()
	ds, err := src.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, u := range ds.Users {
		total += len(u.CheckIns)
	}
	w, err := Build(src, Config{Mode: ModeGPSOutage, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Mutations == 0 {
		t.Fatal("gps-outage dropped zero check-ins")
	}
	if w.Stats.Events+w.Stats.Mutations != total {
		t.Fatalf("events %d + dropped %d != source %d", w.Stats.Events, w.Stats.Mutations, total)
	}
}

func TestTravelerLeavesHomeRegion(t *testing.T) {
	w, err := Build(testSource(), Config{Mode: ModeTraveler, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Mutations == 0 {
		t.Fatal("traveler relocated zero check-ins")
	}
	home := trace.Shanghai().BBox
	outside := 0
	for _, st := range w.Streams {
		for _, e := range st.Events {
			if !home.Contains(e.Pos) {
				outside++
			}
		}
	}
	if outside == 0 {
		t.Fatal("no event left the home region")
	}
	if w.Extent.Width() <= home.Width() && w.Extent.Height() <= home.Height() {
		t.Fatalf("extent %+v did not grow beyond home %+v", w.Extent, home)
	}
}

func TestColludeSplitsAcrossNetworks(t *testing.T) {
	w, err := Build(testSource(), Config{Mode: ModeCollude, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Mutations == 0 {
		t.Fatal("collude composed zero dual-SDK sessions")
	}
	for _, st := range w.Streams {
		nets := make(map[int]string)
		for _, e := range st.Events {
			if strings.Contains(e.AdID, st.User) {
				t.Fatalf("collude pseudonym %q leaks user ID %q", e.AdID, st.User)
			}
			if prev, ok := nets[e.Net]; ok && prev != e.AdID {
				t.Fatalf("user %s network %d has two pseudonyms %q / %q", st.User, e.Net, prev, e.AdID)
			}
			nets[e.Net] = e.AdID
		}
		if len(nets) < 2 {
			t.Fatalf("user %s only reached %d network(s)", st.User, len(nets))
		}
		seen := make(map[string]bool)
		for n, id := range nets {
			if seen[id] {
				t.Fatalf("pseudonym %q reused across networks (net %d)", id, n)
			}
			seen[id] = true
		}
	}
}

func TestFlattenOrdered(t *testing.T) {
	w, err := Build(testSource(), Config{Mode: ModeCollude, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flat := w.Flatten()
	if len(flat) != w.Stats.Events {
		t.Fatalf("flatten length %d != stats %d", len(flat), w.Stats.Events)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i].Time.Before(flat[i-1].Time) {
			t.Fatalf("flatten out of order at %d", i)
		}
	}
}

func TestParseMode(t *testing.T) {
	if _, err := ParseMode("collude"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
}
