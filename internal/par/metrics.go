package par

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// parMetrics holds the package's telemetry handles, resolved once at
// Instrument time. The uninstrumented fast path pays one atomic pointer
// load per pool launch and nothing per task.
type parMetrics struct {
	inflight    *telemetry.Gauge
	tasks       *telemetry.Counter
	taskSeconds *telemetry.Histogram
}

// metrics is nil until Instrument is called.
var metrics atomic.Pointer[parMetrics]

// Instrument registers the fan-out layer's runtime metrics with reg and
// starts recording:
//
//	par_inflight_workers  gauge      workers currently running in any pool
//	par_tasks_total       counter    index tasks completed
//	par_task_seconds      histogram  per-chunk execution time
//
// Chunk (not per-index) timing bounds the observation overhead: a chunk
// is the unit a worker claims from the pool cursor, typically 1–1024
// indexes. Calling Instrument again rebinds the handles to reg.
func Instrument(reg *telemetry.Registry) {
	metrics.Store(&parMetrics{
		inflight:    reg.Gauge("par_inflight_workers", "Workers currently executing in deterministic fan-out pools."),
		tasks:       reg.Counter("par_tasks_total", "Index tasks completed by deterministic fan-out pools."),
		taskSeconds: reg.Histogram("par_task_seconds", "Per-chunk execution time of deterministic fan-out pools.", nil),
	})
}

// now returns the wall clock only when instrumented, avoiding a clock
// read per chunk on the uninstrumented path.
func now() time.Time {
	if metrics.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSince records the elapsed time since start when instrumented.
func observeSince(h *telemetry.Histogram, start time.Time) {
	if !start.IsZero() {
		h.ObserveDuration(time.Since(start))
	}
}
