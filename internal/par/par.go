// Package par is the repo's deterministic fan-out layer: a bounded
// worker pool over index ranges whose results are bit-identical for any
// worker count.
//
// The paper's evaluation runs at 37,262 users × 100,000 Monte-Carlo
// trials; every hot path that iterates users or trials independently —
// trace generation, the longitudinal attack, the experiment runners, the
// engine's bulk profile rebuild — fans out through this package.
// Determinism is preserved by construction rather than by fixing the
// schedule: each index's work is a pure function of the index (plus, for
// randomized work, a randx stream derived from the index via
// randx.Seq), so which worker runs it, and in what order, cannot change
// the result. Outputs are written to index-addressed slots, never
// appended.
package par

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/randx"
)

// Workers resolves a parallelism request: values ≤ 0 select
// runtime.NumCPU(), everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.NumCPU()
	}
	return requested
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// goroutines (≤ 0 selects runtime.NumCPU()). fn must be safe to call
// concurrently for distinct indexes; the iteration order is unspecified.
// ForEach returns when every call has completed.
func ForEach(workers, n int, fn func(i int)) {
	_ = ForEachErr(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for fallible work. All n calls run regardless of
// failures (no early cancellation — index i's side effects never depend
// on index j's success), and the returned error is the one from the
// LOWEST failing index, so error reporting is as deterministic as the
// work itself.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	m := metrics.Load()
	if m != nil {
		m.inflight.Add(int64(workers))
	}

	// Workers claim fixed-size chunks of the index range from an atomic
	// cursor. Chunking amortises the atomic op; because every index is
	// processed exactly once and results are index-addressed, the claim
	// order is irrelevant to the outcome.
	chunk := chunkSize(n, workers)
	var (
		cursor atomic.Int64
		errMu  sync.Mutex
		errIdx = n
		err    error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				start := now()
				for i := lo; i < hi; i++ {
					if e := fn(i); e != nil {
						errMu.Lock()
						if i < errIdx {
							errIdx, err = i, e
						}
						errMu.Unlock()
					}
				}
				if m != nil {
					m.tasks.Add(uint64(hi - lo))
					observeSince(m.taskSeconds, start)
				}
			}
		}()
	}
	wg.Wait()
	if m != nil {
		m.inflight.Add(-int64(workers))
	}
	return err
}

// MapSeeded is ForEachErr for randomized work: it derives base material
// from rng with a single SplitSeq (two draws, independent of n and
// workers) and hands shard i the stream Seq.Stream(i). The same rng
// state therefore produces bit-identical per-index streams at any
// parallelism level — the property the determinism regression tests in
// internal/trace and internal/experiments enforce.
//
// rng is consumed (advanced by two draws) but never shared with the
// workers, so the caller may keep using it after MapSeeded returns.
func MapSeeded(workers, n int, rng *randx.Rand, fn func(i int, rnd *randx.Rand) error) error {
	seq := rng.SplitSeq()
	return ForEachErr(workers, n, func(i int) error {
		return fn(i, seq.Stream(i))
	})
}

// chunkSize balances scheduling overhead against load balance: aim for
// ~8 chunks per worker, clamped to [1, 1024], rounded up to a power of
// two so the cursor arithmetic stays cheap.
func chunkSize(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 1024 {
		c = 1024
	}
	if c&(c-1) != 0 {
		c = 1 << bits.Len(uint(c))
	}
	return c
}
