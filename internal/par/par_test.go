package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/randx"
	"repro/internal/telemetry"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachErr(workers, 100, func(i int) error {
			if i%30 == 13 { // fails at 13, 43, 73
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 13" {
			t.Fatalf("workers=%d: err = %v, want index 13", workers, err)
		}
	}
}

func TestForEachErrRunsAllDespiteFailures(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := ForEachErr(4, 50, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d of 50 tasks", got)
	}
}

// TestMapSeededDeterministicAcrossWorkerCounts is the package's core
// contract: same seed ⇒ bit-identical per-index results at any
// parallelism level.
func TestMapSeededDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 500
	run := func(workers int) []float64 {
		rng := randx.New(99, 3)
		out := make([]float64, n)
		if err := MapSeeded(workers, n, rng, func(i int, rnd *randx.Rand) error {
			// A few draws plus index mixing, mimicking real shard work.
			v := rnd.Float64()
			for k := 0; k < i%5; k++ {
				v += rnd.NormFloat64()
			}
			out[i] = v
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 32} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d differs: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapSeededAdvancesParentDeterministically: the parent stream must
// advance by exactly two draws regardless of n and workers, so code
// after the fan-out stays reproducible too.
func TestMapSeededAdvancesParentDeterministically(t *testing.T) {
	next := func(workers, n int) uint64 {
		rng := randx.New(5, 5)
		if err := MapSeeded(workers, n, rng, func(int, *randx.Rand) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return rng.Uint64()
	}
	want := next(1, 10)
	for _, tc := range []struct{ workers, n int }{{8, 10}, {1, 10000}, {16, 0}} {
		if got := next(tc.workers, tc.n); got != want {
			t.Fatalf("workers=%d n=%d: parent advanced differently", tc.workers, tc.n)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not honoured")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count must be positive")
	}
}

func TestInstrumentExposesMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	Instrument(reg)
	defer metrics.Store(nil) // do not leak handles into other tests

	ForEach(4, 2000, func(int) {})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "par_tasks_total 2000") {
		t.Errorf("exposition missing task count:\n%s", text)
	}
	if !strings.Contains(text, "par_inflight_workers 0") {
		t.Errorf("exposition missing settled in-flight gauge:\n%s", text)
	}
	if !strings.Contains(text, "par_task_seconds_count") {
		t.Errorf("exposition missing task histogram:\n%s", text)
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(4, 1024, func(int) {})
	}
}
