package adnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
)

// TestBidLogRotation pins the ring semantics of WithBidLogCap: below the
// cap the log behaves exactly like the unbounded one; past the cap each
// new record evicts the oldest, BidLog stays oldest-first across the
// wrap point, and TotalLogged keeps the lifetime count.
func TestBidLogRotation(t *testing.T) {
	n, err := NewNetwork(nil, WithBidLogCap(4))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	req := func(i int) {
		n.RequestAds(fmt.Sprintf("u%02d", i), geo.Point{X: float64(i)}, at.Add(time.Duration(i)*time.Minute), 0)
	}

	// Below the cap: nothing rotates.
	for i := 0; i < 3; i++ {
		req(i)
	}
	if n.LogSize() != 3 || n.TotalLogged() != 3 {
		t.Fatalf("below cap: size=%d total=%d", n.LogSize(), n.TotalLogged())
	}
	if log := n.BidLog(); log[0].UserID != "u00" || log[2].UserID != "u02" {
		t.Fatalf("below cap log = %+v", log)
	}

	// Cross the cap: 7 total, ring of 4 retains u03..u06 oldest-first.
	for i := 3; i < 7; i++ {
		req(i)
	}
	if n.LogSize() != 4 {
		t.Errorf("LogSize = %d, want cap 4", n.LogSize())
	}
	if n.TotalLogged() != 7 {
		t.Errorf("TotalLogged = %d, want 7", n.TotalLogged())
	}
	log := n.BidLog()
	if len(log) != 4 {
		t.Fatalf("BidLog len = %d", len(log))
	}
	for i, rec := range log {
		want := fmt.Sprintf("u%02d", 3+i)
		if rec.UserID != want {
			t.Errorf("log[%d] = %s, want %s (oldest-first across wrap)", i, rec.UserID, want)
		}
		if i > 0 && rec.Time.Before(log[i-1].Time) {
			t.Errorf("log out of time order at %d", i)
		}
	}

	// ObservedLocations only sees retained records: u00 rotated out.
	if got := n.ObservedLocations("u00"); got != nil {
		t.Errorf("rotated-out user observed %v", got)
	}
	if got := n.ObservedLocations("u05"); len(got) != 1 || got[0].X != 5 {
		t.Errorf("ObservedLocations(u05) = %v", got)
	}
}

func TestBidLogCapIgnoresNonPositive(t *testing.T) {
	n, err := NewNetwork(nil, WithBidLogCap(0), WithBidLogCap(-3))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	for i := 0; i < 50; i++ {
		n.RequestAds("u", geo.Point{X: float64(i)}, at, 0)
	}
	if n.LogSize() != 50 {
		t.Errorf("non-positive cap should leave the log unbounded; size = %d", n.LogSize())
	}
}

// TestBidLogRotationConcurrent hammers a tiny ring from many goroutines:
// memory stays at the cap and the retained count plus lifetime count stay
// coherent (race detector covers the rest).
func TestBidLogRotationConcurrent(t *testing.T) {
	n, err := NewNetwork(nil, WithBidLogCap(16))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, each = 8, 100
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				n.RequestAds(fmt.Sprintf("u%d", i), geo.Point{X: float64(j)}, time.Now(), 0)
			}
		}(i)
	}
	wg.Wait()
	if n.LogSize() != 16 {
		t.Errorf("LogSize = %d, want cap 16", n.LogSize())
	}
	if n.TotalLogged() != workers*each {
		t.Errorf("TotalLogged = %d, want %d", n.TotalLogged(), workers*each)
	}
	if got := len(n.BidLog()); got != 16 {
		t.Errorf("BidLog len = %d", got)
	}
}
