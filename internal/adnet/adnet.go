// Package adnet implements the location-based advertising substrate of
// the paper (Section II-A): advertisers registering radius-targeted
// campaigns, an ad network matching ad requests to campaigns whose
// targeting circle covers the reported location, and the bid-request log
// that a longitudinal attacker (an honest-but-curious provider or any
// third-party observer of the bidding stream) mines for user locations.
package adnet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// Errors returned by the network.
var (
	// ErrDuplicateCampaign reports a campaign ID registered twice.
	ErrDuplicateCampaign = errors.New("adnet: duplicate campaign id")
	// ErrInvalidCampaign reports a campaign outside the platform limits.
	ErrInvalidCampaign = errors.New("adnet: invalid campaign")
)

// PlatformLimit is one row of the paper's Table I: the radius-targeting
// range offered by a major LBA platform.
type PlatformLimit struct {
	Company   string
	MinRadius float64 // metres
	MaxRadius float64 // metres
}

// PlatformLimits returns the paper's Table I survey data.
func PlatformLimits() []PlatformLimit {
	return []PlatformLimit{
		{Company: "Google", MinRadius: 5_000, MaxRadius: 65_000},
		{Company: "Microsoft", MinRadius: 1_000, MaxRadius: 800_000},
		{Company: "Facebook", MinRadius: 1_609, MaxRadius: 80_467}, // 1–50 miles
		{Company: "Tencent", MinRadius: 500, MaxRadius: 25_000},
	}
}

// CommonRadiusInterval returns the radius interval supported by all four
// surveyed platforms: [5 km, 25 km]. The paper evaluates at its minimum,
// R = 5 km, the hardest setting for utility.
func CommonRadiusInterval() (min, max float64) {
	limits := PlatformLimits()
	min, max = limits[0].MinRadius, limits[0].MaxRadius
	for _, l := range limits[1:] {
		min = math.Max(min, l.MinRadius)
		max = math.Min(max, l.MaxRadius)
	}
	return min, max
}

// Ad is the creative delivered to users; its location is the advertised
// business location.
type Ad struct {
	ID       string    `json:"id"`
	Title    string    `json:"title"`
	Location geo.Point `json:"location"`
}

// Campaign is a radius-targeted advertising campaign: deliver Ad to every
// user reporting a location within Radius of the business Location.
type Campaign struct {
	ID       string    `json:"id"`
	Location geo.Point `json:"location"`
	Radius   float64   `json:"radius_m"`
	Ad       Ad        `json:"ad"`
}

// Validate checks the campaign against the given platform limits (nil
// limits only require a positive radius).
func (c Campaign) Validate(limit *PlatformLimit) error {
	if c.ID == "" {
		return fmt.Errorf("%w: empty id", ErrInvalidCampaign)
	}
	if !(c.Radius > 0) || math.IsInf(c.Radius, 0) {
		return fmt.Errorf("%w: radius %g must be positive and finite", ErrInvalidCampaign, c.Radius)
	}
	if limit != nil && (c.Radius < limit.MinRadius || c.Radius > limit.MaxRadius) {
		return fmt.Errorf("%w: radius %g outside platform range [%g, %g]",
			ErrInvalidCampaign, c.Radius, limit.MinRadius, limit.MaxRadius)
	}
	return nil
}

// BidRecord is one entry of the bid-request log: what a longitudinal
// attacker observing the ad exchange sees for every request — a stable
// user identifier (e.g. Android ID / IDFA) and the reported location.
type BidRecord struct {
	UserID string    `json:"user_id"`
	Loc    geo.Point `json:"loc"`
	Time   time.Time `json:"time"`
}

// tierBase is the radius bound (metres) of the smallest campaign tier;
// tier t holds campaigns with Radius in (tierBase·2^(t-1), tierBase·2^t].
const tierBase = 2_000

// radiusTier indexes the campaigns of one radius bucket. Bucketing by
// radius keeps Match's probe radius per tier at that tier's own maximum:
// without it, one registered huge-radius campaign (platforms allow up to
// 800 km) would force every query to scan enormous grid neighbourhoods
// for every small campaign too.
type radiusTier struct {
	index *spatial.Grid
	max   float64 // largest registered radius in this tier
}

// tierFor returns the tier index of a campaign radius.
func tierFor(radius float64) int {
	t := 0
	for bound := float64(tierBase); radius > bound; bound *= 2 {
		t++
	}
	return t
}

// tierCell is the grid cell size of tier t: half the tier's radius
// bound, so a query probes a bounded ~5×5 cell neighbourhood per tier
// regardless of how large the tier's radii are.
func tierCell(t int) float64 {
	return float64(tierBase) * math.Pow(2, float64(t)) / 2
}

// Network is an in-memory ad network with radius-targeted matching. It is
// safe for concurrent use.
type Network struct {
	limit *PlatformLimit

	mu        sync.RWMutex
	campaigns map[string]Campaign
	tiers     []*radiusTier // radius-bucketed campaign indexes, nil until first use
	order     []string      // campaign ids in registration order, for the indexes
	// log holds the bid-request records. Unbounded by default; with
	// WithBidLogCap it is a ring of logCap records where logStart indexes
	// the oldest retained record. logged counts every record ever logged
	// (monotonic, unaffected by rotation).
	log      []BidRecord
	logCap   int
	logStart int
	logged   uint64
}

// Option customises a Network.
type Option func(*Network)

// WithBidLogCap bounds the bid-request log to the most recent n records,
// turning it into a ring buffer: once full, each new record overwrites
// the oldest. Long load-generation and replay runs would otherwise grow
// the log (one record per ad request) without bound; a bounded log keeps
// memory flat while TotalLogged still reports the lifetime count.
// n <= 0 leaves the log unbounded.
func WithBidLogCap(n int) Option {
	return func(nw *Network) {
		if n > 0 {
			nw.logCap = n
		}
	}
}

// NewNetwork creates a network enforcing the given platform limits on
// campaign radii; a nil limit accepts any positive radius. Campaign
// indexes are built lazily per radius tier on first registration.
func NewNetwork(limit *PlatformLimit, opts ...Option) (*Network, error) {
	var lim *PlatformLimit
	if limit != nil {
		l := *limit
		lim = &l
	}
	n := &Network{
		limit:     lim,
		campaigns: make(map[string]Campaign),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n, nil
}

// Register adds a campaign.
func (n *Network) Register(c Campaign) error {
	if err := c.Validate(n.limit); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.campaigns[c.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateCampaign, c.ID)
	}
	t := tierFor(c.Radius)
	for len(n.tiers) <= t {
		n.tiers = append(n.tiers, nil)
	}
	if n.tiers[t] == nil {
		g, err := spatial.NewGrid(tierCell(t))
		if err != nil {
			return fmt.Errorf("adnet: building tier %d campaign index: %w", t, err)
		}
		n.tiers[t] = &radiusTier{index: g}
	}
	n.campaigns[c.ID] = c
	n.tiers[t].index.Insert(len(n.order), c.Location)
	n.order = append(n.order, c.ID)
	if c.Radius > n.tiers[t].max {
		n.tiers[t].max = c.Radius
	}
	return nil
}

// Campaigns returns the number of registered campaigns.
func (n *Network) Campaigns() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.campaigns)
}

// Match returns the campaigns whose targeting circle contains loc, in
// ascending distance order (nearest business first). Each radius tier is
// probed only out to its own maximum radius, and candidates are rejected
// on squared distance — the sqrt is paid only for actual matches when
// sorting. Containment is defined as Dist2(loc) ≤ Radius², which the
// equivalence fuzz test pins against a naive scan over all campaigns.
func (n *Network) Match(loc geo.Point) []Campaign {
	n.mu.RLock()
	defer n.mu.RUnlock()
	type hit struct {
		c  Campaign
		d2 float64
	}
	var hits []hit
	for _, tier := range n.tiers {
		if tier == nil {
			continue
		}
		tier.index.ForEachWithin(loc, tier.max, func(id int, center geo.Point) {
			c := n.campaigns[n.order[id]]
			if d2 := center.Dist2(loc); d2 <= c.Radius*c.Radius {
				hits = append(hits, hit{c: c, d2: d2})
			}
		})
	}
	// Ordering by squared distance is ordering by distance (sqrt is
	// monotone), with ties broken by campaign ID as before.
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].d2 != hits[b].d2 {
			return hits[a].d2 < hits[b].d2
		}
		return hits[a].c.ID < hits[b].c.ID
	})
	out := make([]Campaign, len(hits))
	for i, h := range hits {
		out[i] = h.c
	}
	return out
}

// RequestAds serves an ad request: it logs the bid record (what the
// attacker observes) and returns up to limit matched ads, nearest first.
// limit <= 0 returns all matches.
func (n *Network) RequestAds(userID string, loc geo.Point, at time.Time, limit int) []Ad {
	rec := BidRecord{UserID: userID, Loc: loc, Time: at}
	n.mu.Lock()
	if n.logCap > 0 && len(n.log) == n.logCap {
		// Ring is full: overwrite the oldest record.
		n.log[n.logStart] = rec
		n.logStart = (n.logStart + 1) % n.logCap
	} else {
		n.log = append(n.log, rec)
	}
	n.logged++
	n.mu.Unlock()

	matches := n.Match(loc)
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	ads := make([]Ad, len(matches))
	for i, c := range matches {
		ads[i] = c.Ad
	}
	return ads
}

// forEachRecordLocked visits every retained record oldest-first,
// unwinding the ring rotation. The caller holds n.mu (read or write).
func (n *Network) forEachRecordLocked(fn func(BidRecord)) {
	if len(n.log) == 0 {
		return
	}
	for i := 0; i < len(n.log); i++ {
		fn(n.log[(n.logStart+i)%len(n.log)])
	}
}

// BidLog returns a copy of the retained bid-request log, oldest first.
// With an unbounded log that is every record ever; under WithBidLogCap
// it is the most recent cap records.
func (n *Network) BidLog() []BidRecord {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]BidRecord, 0, len(n.log))
	n.forEachRecordLocked(func(rec BidRecord) { out = append(out, rec) })
	return out
}

// ObservedLocations returns the locations a longitudinal attacker has
// collected for one user, in request order (oldest retained first). This
// is the attack's input.
func (n *Network) ObservedLocations(userID string) []geo.Point {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []geo.Point
	n.forEachRecordLocked(func(rec BidRecord) {
		if rec.UserID == userID {
			out = append(out, rec.Loc)
		}
	})
	return out
}

// LogSize returns the number of retained bid records (equal to the
// lifetime count unless WithBidLogCap rotated older records out).
func (n *Network) LogSize() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.log)
}

// TotalLogged returns the lifetime number of logged bid requests,
// counting records a bounded log has already rotated out.
func (n *Network) TotalLogged() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.logged
}
