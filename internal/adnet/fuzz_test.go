package adnet

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/randx"
)

// matchNaive is the reference implementation of Match: a linear scan
// over every registered campaign with the same containment predicate
// (squared distance against squared radius) and the same (distance,
// ID) ordering, but no spatial index and no radius tiering.
func (n *Network) matchNaive(loc geo.Point) []Campaign {
	n.mu.RLock()
	defer n.mu.RUnlock()
	type hit struct {
		c  Campaign
		d2 float64
	}
	var hits []hit
	for _, id := range n.order {
		c := n.campaigns[id]
		if d2 := c.Location.Dist2(loc); d2 <= c.Radius*c.Radius {
			hits = append(hits, hit{c: c, d2: d2})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].d2 != hits[b].d2 {
			return hits[a].d2 < hits[b].d2
		}
		return hits[a].c.ID < hits[b].c.ID
	})
	out := make([]Campaign, len(hits))
	for i, h := range hits {
		out[i] = h.c
	}
	return out
}

// buildFuzzNetwork registers a deterministic campaign population from
// seed: locations across a ~200 km region, radii spanning every tier
// from sub-kilometre to the 800 km platform extreme (the huge-radius
// campaigns are exactly the case that made the pre-tiering index scan
// the whole world per query).
func buildFuzzNetwork(tb testing.TB, seed uint64, campaigns int) *Network {
	tb.Helper()
	n, err := NewNetwork(nil)
	if err != nil {
		tb.Fatal(err)
	}
	rnd := randx.New(seed, 0xAD1)
	for i := 0; i < campaigns; i++ {
		loc := geo.Point{X: rnd.Float64()*200_000 - 100_000, Y: rnd.Float64()*200_000 - 100_000}
		var radius float64
		switch rnd.IntN(4) {
		case 0: // sub-tierBase
			radius = 100 + rnd.Float64()*1_900
		case 1: // the paper's common interval, 5–25 km
			radius = 5_000 + rnd.Float64()*20_000
		case 2: // mid tiers
			radius = 25_000 + rnd.Float64()*75_000
		default: // huge: up to the Microsoft 800 km platform limit
			radius = 100_000 + rnd.Float64()*700_000
		}
		c := Campaign{
			ID:       fmt.Sprintf("c%03d", i),
			Location: loc,
			Radius:   radius,
			Ad:       Ad{ID: fmt.Sprintf("ad%03d", i), Title: "t", Location: loc},
		}
		if err := n.Register(c); err != nil {
			tb.Fatal(err)
		}
	}
	return n
}

// FuzzMatchEquivalence asserts the tiered, grid-indexed Match returns
// exactly what a naive linear scan over all campaigns returns — same
// campaigns, same order — for fuzzer-chosen query points and campaign
// populations.
func FuzzMatchEquivalence(f *testing.F) {
	f.Add(uint64(1), float64(0), float64(0))
	f.Add(uint64(2), float64(99_000), float64(-99_000))
	f.Add(uint64(3), float64(-250_000), float64(250_000)) // outside every small tier
	f.Add(uint64(42), float64(2_000), float64(2_000))     // on a cell boundary
	f.Add(uint64(7), float64(0.5), float64(-0.5))
	f.Fuzz(func(t *testing.T, seed uint64, qx, qy float64) {
		if math.IsNaN(qx) || math.IsNaN(qy) || math.Abs(qx) > 1e7 || math.Abs(qy) > 1e7 {
			t.Skip("query outside the plausible coordinate range")
		}
		n := buildFuzzNetwork(t, seed, 40+int(seed%60))
		loc := geo.Point{X: qx, Y: qy}
		got := n.Match(loc)
		want := n.matchNaive(loc)
		if len(got) != len(want) {
			t.Fatalf("Match returned %d campaigns, naive scan %d\n got: %v\nwant: %v",
				len(got), len(want), ids(got), ids(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("match order diverges at %d: got %v, want %v", i, ids(got), ids(want))
			}
		}
	})
}

func ids(cs []Campaign) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}

// TestMatchEquivalenceSweep runs the equivalence check over a grid of
// deterministic query points (including points far outside every
// campaign) so plain `go test` covers the geometry without the fuzzer.
func TestMatchEquivalenceSweep(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		n := buildFuzzNetwork(t, seed, 80)
		rnd := randx.New(seed, 0xF00D)
		for i := 0; i < 200; i++ {
			loc := geo.Point{X: rnd.Float64()*2_400_000 - 1_200_000, Y: rnd.Float64()*2_400_000 - 1_200_000}
			got, want := n.Match(loc), n.matchNaive(loc)
			if len(got) != len(want) {
				t.Fatalf("seed %d query %v: %d vs naive %d", seed, loc, len(got), len(want))
			}
			for j := range got {
				if got[j].ID != want[j].ID {
					t.Fatalf("seed %d query %v: order diverges at %d: %v vs %v",
						seed, loc, j, ids(got), ids(want))
				}
			}
		}
	}
}
