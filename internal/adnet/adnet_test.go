package adnet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/randx"
)

func TestPlatformLimitsTable1(t *testing.T) {
	limits := PlatformLimits()
	if len(limits) != 4 {
		t.Fatalf("got %d platforms, want 4", len(limits))
	}
	byCompany := make(map[string]PlatformLimit)
	for _, l := range limits {
		if l.MinRadius <= 0 || l.MaxRadius < l.MinRadius {
			t.Errorf("%s: degenerate range [%g, %g]", l.Company, l.MinRadius, l.MaxRadius)
		}
		byCompany[l.Company] = l
	}
	if g := byCompany["Google"]; g.MinRadius != 5000 || g.MaxRadius != 65000 {
		t.Errorf("Google limits = %+v", g)
	}
	if tc := byCompany["Tencent"]; tc.MinRadius != 500 || tc.MaxRadius != 25000 {
		t.Errorf("Tencent limits = %+v", tc)
	}
}

func TestCommonRadiusInterval(t *testing.T) {
	min, max := CommonRadiusInterval()
	// The paper: "the minimal value of the common interval from 5 km to
	// 25 km".
	if min != 5000 {
		t.Errorf("common min = %g, want 5000", min)
	}
	if max != 25000 {
		t.Errorf("common max = %g, want 25000", max)
	}
}

func TestCampaignValidate(t *testing.T) {
	limit := &PlatformLimit{Company: "Test", MinRadius: 1000, MaxRadius: 10000}
	tests := []struct {
		name    string
		c       Campaign
		limit   *PlatformLimit
		wantErr bool
	}{
		{"ok", Campaign{ID: "a", Radius: 5000}, limit, false},
		{"ok no limit", Campaign{ID: "a", Radius: 1}, nil, false},
		{"empty id", Campaign{Radius: 5000}, limit, true},
		{"zero radius", Campaign{ID: "a"}, limit, true},
		{"below min", Campaign{ID: "a", Radius: 500}, limit, true},
		{"above max", Campaign{ID: "a", Radius: 50000}, limit, true},
		{"inf radius", Campaign{ID: "a", Radius: math.Inf(1)}, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate(tt.limit)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidCampaign) {
				t.Errorf("error %v should wrap ErrInvalidCampaign", err)
			}
		})
	}
}

func newTestNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRegisterDuplicate(t *testing.T) {
	n := newTestNetwork(t)
	c := Campaign{ID: "c1", Location: geo.Point{}, Radius: 5000, Ad: Ad{ID: "ad1"}}
	if err := n.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(c); !errors.Is(err, ErrDuplicateCampaign) {
		t.Errorf("duplicate register: %v", err)
	}
	if n.Campaigns() != 1 {
		t.Errorf("Campaigns = %d", n.Campaigns())
	}
}

func TestRegisterEnforcesPlatformLimit(t *testing.T) {
	limit := PlatformLimits()[3] // Tencent: 500 m – 25 km
	n, err := NewNetwork(&limit)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register(Campaign{ID: "ok", Radius: 5000}); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
	if err := n.Register(Campaign{ID: "small", Radius: 100}); err == nil {
		t.Error("sub-minimum radius accepted")
	}
	if err := n.Register(Campaign{ID: "big", Radius: 30000}); err == nil {
		t.Error("super-maximum radius accepted")
	}
}

func TestMatchRadiusSemantics(t *testing.T) {
	n := newTestNetwork(t)
	mustRegister := func(id string, at geo.Point, radius float64) {
		t.Helper()
		if err := n.Register(Campaign{ID: id, Location: at, Radius: radius, Ad: Ad{ID: "ad-" + id, Location: at}}); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister("near", geo.Point{X: 1000, Y: 0}, 5000)
	mustRegister("far", geo.Point{X: 20000, Y: 0}, 5000)
	mustRegister("wide", geo.Point{X: 30000, Y: 0}, 50000)

	got := n.Match(geo.Point{X: 0, Y: 0})
	if len(got) != 2 {
		t.Fatalf("matched %d campaigns, want 2 (near, wide)", len(got))
	}
	// Nearest-first ordering.
	if got[0].ID != "near" || got[1].ID != "wide" {
		t.Errorf("order = %s, %s", got[0].ID, got[1].ID)
	}
}

// TestMatchMatchesBruteForce property over random campaign sets.
func TestMatchMatchesBruteForce(t *testing.T) {
	rnd := randx.New(11, 11)
	n := newTestNetwork(t)
	type camp struct {
		at     geo.Point
		radius float64
	}
	var camps []camp
	for i := 0; i < 200; i++ {
		c := camp{
			at:     geo.Point{X: rnd.Float64()*60000 - 30000, Y: rnd.Float64()*60000 - 30000},
			radius: 500 + rnd.Float64()*20000,
		}
		camps = append(camps, c)
		if err := n.Register(Campaign{ID: fmt.Sprintf("c%03d", i), Location: c.at, Radius: c.radius}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := geo.Point{X: rnd.Float64()*60000 - 30000, Y: rnd.Float64()*60000 - 30000}
		got := n.Match(q)
		want := 0
		for _, c := range camps {
			if c.at.Dist(q) <= c.radius {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: matched %d, brute force %d", trial, len(got), want)
		}
	}
}

func TestRequestAdsLogsAndLimits(t *testing.T) {
	n := newTestNetwork(t)
	for i := 0; i < 5; i++ {
		if err := n.Register(Campaign{
			ID:       fmt.Sprintf("c%d", i),
			Location: geo.Point{X: float64(i) * 100, Y: 0},
			Radius:   10000,
			Ad:       Ad{ID: fmt.Sprintf("ad%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	at := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	ads := n.RequestAds("u1", geo.Point{}, at, 3)
	if len(ads) != 3 {
		t.Errorf("limit not applied: %d ads", len(ads))
	}
	all := n.RequestAds("u1", geo.Point{}, at.Add(time.Minute), 0)
	if len(all) != 5 {
		t.Errorf("limit 0 should return all: %d", len(all))
	}
	if n.LogSize() != 2 {
		t.Errorf("LogSize = %d", n.LogSize())
	}
	log := n.BidLog()
	if log[0].UserID != "u1" || !log[0].Time.Equal(at) {
		t.Errorf("log[0] = %+v", log[0])
	}
}

func TestObservedLocationsPerUser(t *testing.T) {
	n := newTestNetwork(t)
	at := time.Now()
	n.RequestAds("alice", geo.Point{X: 1, Y: 1}, at, 0)
	n.RequestAds("bob", geo.Point{X: 2, Y: 2}, at, 0)
	n.RequestAds("alice", geo.Point{X: 3, Y: 3}, at, 0)
	got := n.ObservedLocations("alice")
	if len(got) != 2 || got[0] != (geo.Point{X: 1, Y: 1}) || got[1] != (geo.Point{X: 3, Y: 3}) {
		t.Errorf("ObservedLocations = %v", got)
	}
	if got := n.ObservedLocations("nobody"); got != nil {
		t.Errorf("unknown user observed %v", got)
	}
}

func TestNetworkConcurrency(t *testing.T) {
	n := newTestNetwork(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := fmt.Sprintf("c-%d-%d", i, j)
				if err := n.Register(Campaign{ID: id, Location: geo.Point{X: float64(j), Y: float64(i)}, Radius: 1000}); err != nil {
					t.Error(err)
					return
				}
				n.RequestAds(fmt.Sprintf("u%d", i), geo.Point{X: float64(j), Y: float64(i)}, time.Now(), 5)
			}
		}(i)
	}
	wg.Wait()
	if n.Campaigns() != 400 {
		t.Errorf("campaigns = %d", n.Campaigns())
	}
	if n.LogSize() != 400 {
		t.Errorf("log = %d", n.LogSize())
	}
}

func BenchmarkMatch(b *testing.B) {
	n, err := NewNetwork(nil)
	if err != nil {
		b.Fatal(err)
	}
	rnd := randx.New(1, 1)
	for i := 0; i < 5000; i++ {
		if err := n.Register(Campaign{
			ID:       fmt.Sprintf("c%05d", i),
			Location: geo.Point{X: rnd.Float64() * 90000, Y: rnd.Float64() * 75000},
			Radius:   5000 + rnd.Float64()*20000,
		}); err != nil {
			b.Fatal(err)
		}
	}
	q := geo.Point{X: 45000, Y: 37000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Match(q)
	}
}
