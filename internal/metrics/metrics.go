// Package metrics implements the utility metrics of the paper's
// evaluation (Section IV-B and VII-A): the utilization rate (Definition
// 4) of an obfuscated candidate set, its minimal value at a confidence
// level (Eq. 24), and the advertising efficacy (Definition 5) of a
// selected output. The utilization rate for a single candidate has an
// analytic closed form (circle lens); the multi-candidate union is
// estimated by Monte Carlo, as in the paper's 100,000-trial methodology.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/mathx"
	"repro/internal/randx"
)

// DefaultMonteCarloSamples is the per-trial sample count used to estimate
// the AOI coverage of a candidate set.
const DefaultMonteCarloSamples = 2048

// UtilizationRateAnalytic computes UR = area(AOI ∩ AOR)/area(AOI) for a
// single candidate location, where AOI is the disk of radius R around the
// true location and AOR the equal disk around the candidate.
func UtilizationRateAnalytic(truth, candidate geo.Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	aoi := geo.Circle{Center: truth, Radius: radius}
	aor := geo.Circle{Center: candidate, Radius: radius}
	return geo.IntersectionArea(aoi, aor) / aoi.Area()
}

// UtilizationRate estimates UR for a candidate set: the fraction of the
// AOI covered by the union of the candidates' AORs, by Monte Carlo with
// the given sample count (≤ 0 selects DefaultMonteCarloSamples).
func UtilizationRate(rnd *randx.Rand, truth geo.Point, candidates []geo.Point, radius float64, samples int) float64 {
	if radius <= 0 || len(candidates) == 0 {
		return 0
	}
	if samples <= 0 {
		samples = DefaultMonteCarloSamples
	}
	r2 := radius * radius
	aoi := geo.Circle{Center: truth, Radius: radius}
	covered := 0
	for i := 0; i < samples; i++ {
		p := rnd.UniformInCircle(aoi)
		for _, c := range candidates {
			if c.Dist2(p) <= r2 {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(samples)
}

// MinimalUR computes the paper's minimal utilization rate υ at confidence
// α over a sample of per-trial utilization rates: the largest υ with
// Pr(UR ≥ υ) = α, i.e. the (1−α)-quantile of the empirical distribution.
func MinimalUR(urs []float64, alpha float64) (float64, error) {
	if len(urs) == 0 {
		return math.NaN(), fmt.Errorf("metrics: minimal UR of empty sample")
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return math.NaN(), fmt.Errorf("metrics: confidence level %g outside (0, 1)", alpha)
	}
	q, err := mathx.Quantile(urs, 1-alpha)
	if err != nil {
		return math.NaN(), fmt.Errorf("metrics: minimal UR quantile: %w", err)
	}
	return q, nil
}

// EfficacyAnalytic computes AE = Pr[ad ∈ AOI | ad ∈ AOR] for ads drawn
// uniformly from the selected candidate's AOR: the lens area over the AOR
// area. With equal radii this equals the single-candidate UR.
func EfficacyAnalytic(truth, selected geo.Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	aoi := geo.Circle{Center: truth, Radius: radius}
	aor := geo.Circle{Center: selected, Radius: radius}
	return geo.IntersectionArea(aoi, aor) / aor.Area()
}

// Efficacy estimates AE by Monte Carlo, mirroring the paper's methodology
// of generating random ad locations inside the AOR (≤ 0 samples selects
// DefaultMonteCarloSamples).
func Efficacy(rnd *randx.Rand, truth, selected geo.Point, radius float64, samples int) float64 {
	if radius <= 0 {
		return 0
	}
	if samples <= 0 {
		samples = DefaultMonteCarloSamples
	}
	aoi := geo.Circle{Center: truth, Radius: radius}
	aor := geo.Circle{Center: selected, Radius: radius}
	in := 0
	for i := 0; i < samples; i++ {
		if aoi.Contains(rnd.UniformInCircle(aor)) {
			in++
		}
	}
	return float64(in) / float64(samples)
}

// ExpectedDistance estimates the distribution of the distance between
// the true location and the locations produced by sample — the classic
// quality-of-service loss of an LPPM. sample is called trials times
// (≤ 0 selects DefaultMonteCarloSamples); its error aborts the estimate.
func ExpectedDistance(truth geo.Point, trials int, sample func() (geo.Point, error)) (Summary, error) {
	if sample == nil {
		return Summary{}, fmt.Errorf("metrics: nil sampler")
	}
	if trials <= 0 {
		trials = DefaultMonteCarloSamples
	}
	distances := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		p, err := sample()
		if err != nil {
			return Summary{}, fmt.Errorf("metrics: sampling distance trial %d: %w", i, err)
		}
		distances = append(distances, truth.Dist(p))
	}
	s, err := Summarize(distances)
	if err != nil {
		return Summary{}, fmt.Errorf("metrics: summarizing distances: %w", err)
	}
	return s, nil
}

// Summary aggregates a metric sample for experiment reporting.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P10    float64
	Median float64
	P90    float64
}

// Summarize computes the summary of xs; it returns an error on empty
// input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("metrics: summarize empty sample")
	}
	var o mathx.OnlineMoments
	for _, x := range xs {
		o.Add(x)
	}
	p10, err := mathx.Quantile(xs, 0.10)
	if err != nil {
		return Summary{}, fmt.Errorf("metrics: p10: %w", err)
	}
	med, err := mathx.Quantile(xs, 0.50)
	if err != nil {
		return Summary{}, fmt.Errorf("metrics: median: %w", err)
	}
	p90, err := mathx.Quantile(xs, 0.90)
	if err != nil {
		return Summary{}, fmt.Errorf("metrics: p90: %w", err)
	}
	s := Summary{
		Count:  len(xs),
		Mean:   o.Mean(),
		Min:    o.Min(),
		Max:    o.Max(),
		P10:    p10,
		Median: med,
		P90:    p90,
	}
	if len(xs) > 1 {
		s.StdDev = o.StdDev()
	}
	return s, nil
}
