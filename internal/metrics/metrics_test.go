package metrics

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/randx"
)

func TestUtilizationRateAnalyticCases(t *testing.T) {
	truth := geo.Point{X: 0, Y: 0}
	tests := []struct {
		name      string
		candidate geo.Point
		radius    float64
		want      float64
	}{
		{"identical", truth, 5000, 1},
		{"disjoint", geo.Point{X: 20000, Y: 0}, 5000, 0},
		{"zero radius", geo.Point{X: 0, Y: 0}, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := UtilizationRateAnalytic(truth, tt.candidate, tt.radius)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("UR = %g, want %g", got, tt.want)
			}
		})
	}
	// Half-separation sanity: 0 < UR < 1 and decreasing in distance.
	prev := 1.1
	for d := 0.0; d <= 12000; d += 1000 {
		ur := UtilizationRateAnalytic(truth, geo.Point{X: d, Y: 0}, 5000)
		if ur > prev+1e-12 {
			t.Fatalf("UR grew with distance at %g", d)
		}
		prev = ur
	}
}

// TestUtilizationRateMonteCarloMatchesAnalytic: with one candidate the MC
// estimate must agree with the closed form.
func TestUtilizationRateMonteCarloMatchesAnalytic(t *testing.T) {
	rnd := randx.New(1, 1)
	truth := geo.Point{X: 0, Y: 0}
	for _, d := range []float64{0, 2000, 5000, 8000} {
		cand := geo.Point{X: d, Y: 0}
		mc := UtilizationRate(rnd, truth, []geo.Point{cand}, 5000, 20000)
		an := UtilizationRateAnalytic(truth, cand, 5000)
		if math.Abs(mc-an) > 0.02 {
			t.Errorf("d=%g: MC %g vs analytic %g", d, mc, an)
		}
	}
}

// TestUtilizationRateUnionMonotone: adding candidates never decreases UR.
func TestUtilizationRateUnionMonotone(t *testing.T) {
	rnd := randx.New(2, 2)
	truth := geo.Point{X: 0, Y: 0}
	cands := []geo.Point{
		{X: 6000, Y: 0}, {X: -6000, Y: 0}, {X: 0, Y: 6000}, {X: 0, Y: -6000},
	}
	prev := -1.0
	for k := 1; k <= len(cands); k++ {
		// Use a fixed evaluation stream per k for comparability.
		ur := UtilizationRate(randx.New(3, 3), truth, cands[:k], 5000, 50000)
		if ur < prev-0.01 {
			t.Fatalf("UR fell when adding candidate %d: %g < %g", k, ur, prev)
		}
		prev = ur
	}
	_ = rnd
}

func TestUtilizationRateDegenerate(t *testing.T) {
	rnd := randx.New(1, 1)
	if got := UtilizationRate(rnd, geo.Point{}, nil, 5000, 100); got != 0 {
		t.Errorf("no candidates: UR = %g", got)
	}
	if got := UtilizationRate(rnd, geo.Point{}, []geo.Point{{X: 1, Y: 1}}, 0, 100); got != 0 {
		t.Errorf("zero radius: UR = %g", got)
	}
	// Default sample count kicks in for samples <= 0.
	got := UtilizationRate(rnd, geo.Point{}, []geo.Point{{X: 0, Y: 0}}, 100, 0)
	if got != 1 {
		t.Errorf("coincident candidate: UR = %g, want 1", got)
	}
}

func TestMinimalUR(t *testing.T) {
	urs := make([]float64, 100)
	for i := range urs {
		urs[i] = float64(i) / 99 // uniform grid on [0, 1]
	}
	got, err := MinimalUR(urs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// (1-0.9)-quantile = 10th percentile ≈ 0.1.
	if math.Abs(got-0.1) > 0.011 {
		t.Errorf("minimal UR = %g, want ~0.1", got)
	}
	if _, err := MinimalUR(nil, 0.9); err == nil {
		t.Error("empty sample expected error")
	}
	for _, alpha := range []float64{0, 1, -1, math.NaN()} {
		if _, err := MinimalUR(urs, alpha); err == nil {
			t.Errorf("alpha=%g expected error", alpha)
		}
	}
}

func TestEfficacyAnalytic(t *testing.T) {
	truth := geo.Point{X: 0, Y: 0}
	if got := EfficacyAnalytic(truth, truth, 5000); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical: AE = %g", got)
	}
	if got := EfficacyAnalytic(truth, geo.Point{X: 20000, Y: 0}, 5000); got != 0 {
		t.Errorf("disjoint: AE = %g", got)
	}
	if got := EfficacyAnalytic(truth, truth, 0); got != 0 {
		t.Errorf("zero radius: AE = %g", got)
	}
	// Equal radii: AE equals single-candidate UR.
	cand := geo.Point{X: 3000, Y: 1000}
	ae := EfficacyAnalytic(truth, cand, 5000)
	ur := UtilizationRateAnalytic(truth, cand, 5000)
	if math.Abs(ae-ur) > 1e-12 {
		t.Errorf("AE %g != UR %g for equal radii", ae, ur)
	}
}

func TestEfficacyMonteCarloMatchesAnalytic(t *testing.T) {
	truth := geo.Point{X: 0, Y: 0}
	for _, d := range []float64{0, 2500, 5000, 9000} {
		sel := geo.Point{X: 0, Y: d}
		mc := Efficacy(randx.New(5, uint64(d)), truth, sel, 5000, 20000)
		an := EfficacyAnalytic(truth, sel, 5000)
		if math.Abs(mc-an) > 0.02 {
			t.Errorf("d=%g: MC %g vs analytic %g", d, mc, an)
		}
	}
	if got := Efficacy(randx.New(1, 1), truth, truth, 0, 10); got != 0 {
		t.Errorf("zero radius MC: %g", got)
	}
}

func TestExpectedDistanceGaussian(t *testing.T) {
	rnd := randx.New(7, 7)
	truth := geo.Point{X: 100, Y: 100}
	sigma := 800.0
	s, err := ExpectedDistance(truth, 50_000, func() (geo.Point, error) {
		return truth.Add(rnd.GaussianPolar(sigma)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Isotropic Gaussian noise has mean radial distance σ√(π/2).
	want := sigma * math.Sqrt(math.Pi/2)
	if rel := math.Abs(s.Mean-want) / want; rel > 0.02 {
		t.Errorf("mean distance %g, want %g", s.Mean, want)
	}
	if s.Min < 0 || s.P10 > s.Median || s.Median > s.P90 {
		t.Errorf("summary out of order: %+v", s)
	}
}

func TestExpectedDistanceErrors(t *testing.T) {
	if _, err := ExpectedDistance(geo.Point{}, 10, nil); err == nil {
		t.Error("nil sampler expected error")
	}
	boom := func() (geo.Point, error) { return geo.Point{}, errSampler }
	if _, err := ExpectedDistance(geo.Point{}, 10, boom); err == nil {
		t.Error("sampler error expected to propagate")
	}
	// trials <= 0 selects the default and still works.
	ok := func() (geo.Point, error) { return geo.Point{X: 1, Y: 0}, nil }
	s, err := ExpectedDistance(geo.Point{}, 0, ok)
	if err != nil || s.Mean != 1 {
		t.Errorf("default-trials estimate = %+v, %v", s, err)
	}
}

var errSampler = fmt.Errorf("sampler exploded")

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Median-5.5) > 1e-12 {
		t.Errorf("median = %g", s.Median)
	}
	if s.P10 >= s.Median || s.Median >= s.P90 {
		t.Errorf("quantiles out of order: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample expected error")
	}
	one, err := Summarize([]float64{3})
	if err != nil || one.StdDev != 0 {
		t.Errorf("singleton summary: %+v, %v", one, err)
	}
}

func BenchmarkUtilizationRate10Candidates(b *testing.B) {
	rnd := randx.New(1, 1)
	truth := geo.Point{X: 0, Y: 0}
	cands := make([]geo.Point, 10)
	for i := range cands {
		cands[i] = rnd.GaussianPolar(5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = UtilizationRate(rnd, truth, cands, 5000, 2048)
	}
}
