package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func collect(t *testing.T, s *Store, from uint64) (lsns []uint64, recs [][]byte) {
	t.Helper()
	err := s.Replay(from, func(lsn uint64, rec []byte) error {
		lsns = append(lsns, lsn)
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return lsns, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Policy: SyncNever})
	var want [][]byte
	for i := 0; i < 25; i++ {
		rec := bytes.Repeat([]byte{byte(i + 1)}, 1+i*13)
		lsn, err := s.Append(rec)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append %d: lsn = %d", i, lsn)
		}
		want = append(want, rec)
	}
	if got := s.NextLSN(); got != 25 {
		t.Fatalf("NextLSN = %d, want 25", got)
	}
	lsns, recs := collect(t, s, 0)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
	for i, rec := range recs {
		if lsns[i] != uint64(i) || !bytes.Equal(rec, want[i]) {
			t.Fatalf("record %d: lsn %d, payload mismatch %v", i, lsns[i], !bytes.Equal(rec, want[i]))
		}
	}
	if lsns, _ := collect(t, s, 20); len(lsns) != 5 || lsns[0] != 20 {
		t.Fatalf("Replay(20) = lsns %v, want [20..24]", lsns)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	// Reopen: same records, same next LSN.
	s2 := mustOpen(t, dir, Options{Policy: SyncNever})
	defer s2.Close()
	if got := s2.NextLSN(); got != 25 {
		t.Fatalf("reopened NextLSN = %d, want 25", got)
	}
	if _, recs := collect(t, s2, 0); len(recs) != 25 || !bytes.Equal(recs[24], want[24]) {
		t.Fatal("reopened replay mismatch")
	}
}

func TestAppendValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Policy: SyncNever})
	defer s.Close()
	if _, err := s.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := s.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestRotationCompactionCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Policy: SyncNever, SegmentBytes: 256})
	rec := bytes.Repeat([]byte{7}, 56) // 64 bytes framed: 4 per segment
	for i := 0; i < 20; i++ {
		if _, err := s.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if got := s.Segments(); got != 5 {
		t.Fatalf("Segments = %d, want 5", got)
	}
	if lsns, _ := collect(t, s, 0); len(lsns) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(lsns))
	}

	// Checkpoint at LSN 10: segments holding only records < 10 die.
	if err := s.WriteCheckpoint(10, []byte("state@10")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if got := s.Segments(); got != 3 { // [8,12) [12,16) [16,...)
		t.Fatalf("Segments after compaction = %d, want 3", got)
	}
	if lsns, _ := collect(t, s, 10); len(lsns) != 10 || lsns[0] != 10 {
		t.Fatalf("post-compaction Replay(10): %v", lsns)
	}

	// A newer checkpoint prunes the older one.
	if err := s.WriteCheckpoint(20, []byte("state@20")); err != nil {
		t.Fatalf("WriteCheckpoint(20): %v", err)
	}
	lsn, r, ok, err := s.LatestCheckpoint()
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(data) != "state@20" || lsn != 20 {
		t.Fatalf("LatestCheckpoint = lsn %d %q, want 20 state@20", lsn, data)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName(10))); !os.IsNotExist(err) {
		t.Errorf("old checkpoint not pruned: %v", err)
	}
	if got := s.Segments(); got != 1 {
		t.Fatalf("Segments after full compaction = %d, want 1", got)
	}
	s.Close()

	// Recovery across reopen: checkpoint + tail replay still line up.
	s2 := mustOpen(t, dir, Options{Policy: SyncNever, SegmentBytes: 256})
	defer s2.Close()
	if got := s2.NextLSN(); got != 20 {
		t.Fatalf("reopened NextLSN = %d, want 20", got)
	}
	if lsns, _ := collect(t, s2, 20); len(lsns) != 0 {
		t.Fatalf("Replay(20) after reopen: %v", lsns)
	}
}

// TestTornTailSweep cuts the log at every byte offset inside the final
// record and asserts recovery keeps exactly the records before it —
// the crash-injection half of the durability contract.
func TestTornTailSweep(t *testing.T) {
	build := t.TempDir()
	s := mustOpen(t, build, Options{Policy: SyncNever})
	recs := [][]byte{
		bytes.Repeat([]byte{1}, 10),
		bytes.Repeat([]byte{2}, 33),
		bytes.Repeat([]byte{3}, 21),
	}
	for _, r := range recs {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Abandoned without Close: the per-append flush alone must make the
	// records visible to recovery, like a kill -9 would rely on.
	seg := filepath.Join(build, segmentName(0))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(full) - headerSize - len(recs[2])
	for cut := lastStart; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cs := mustOpen(t, dir, Options{Policy: SyncNever})
		wantRecs := 2
		if cut == len(full) {
			wantRecs = 3
		}
		if got := cs.NextLSN(); got != uint64(wantRecs) {
			t.Fatalf("cut %d: NextLSN = %d, want %d", cut, got, wantRecs)
		}
		if cut < len(full) && cs.TornBytes() != int64(cut-lastStart) {
			t.Fatalf("cut %d: TornBytes = %d, want %d", cut, cs.TornBytes(), cut-lastStart)
		}
		_, got := collect(t, cs, 0)
		if len(got) != wantRecs {
			t.Fatalf("cut %d: %d records survive, want %d", cut, len(got), wantRecs)
		}
		for i, r := range got {
			if !bytes.Equal(r, recs[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		// The torn slot's LSN is reused by the next append.
		lsn, err := cs.Append([]byte("after-crash"))
		if err != nil || lsn != uint64(wantRecs) {
			t.Fatalf("cut %d: post-recovery append lsn %d err %v", cut, lsn, err)
		}
		cs.Close()
	}
}

// TestMidLogCorruption: a CRC flip in a sealed segment is data loss,
// not a torn tail — replay must refuse rather than silently skip.
func TestMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	for i := 0; i < 12; i++ {
		if _, err := s.Append(bytes.Repeat([]byte{byte(i + 1)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() < 3 {
		t.Fatalf("want >=3 segments, got %d", s.Segments())
	}
	s.Close()

	// Flip one payload byte in the first (sealed) segment.
	seg := filepath.Join(dir, segmentName(0))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+3] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	defer s2.Close()
	err = s2.Replay(0, func(uint64, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("Replay over corrupt sealed segment = %v, want CRC mismatch", err)
	}
}

func TestReplayGapDetection(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	for i := 0; i < 12; i++ {
		if _, err := s.Append(bytes.Repeat([]byte{9}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, segmentName(0))); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	defer s2.Close()
	err := s2.Replay(0, func(uint64, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("Replay over missing segment = %v, want missing-records error", err)
	}
}

// TestCheckpointBeyondTail: a checkpoint can cover records that never
// reached disk (fsync=never + power loss). Their state lives in the
// checkpoint; the store must not hand their LSN slots out again.
func TestCheckpointBeyondTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Policy: SyncNever})
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteCheckpoint(5, []byte("covers 0..4")); err != nil {
		t.Fatal(err)
	}
	// Abandon (no Close) and reopen: next LSN must jump to 5.
	s2 := mustOpen(t, dir, Options{Policy: SyncNever})
	defer s2.Close()
	if got := s2.NextLSN(); got != 5 {
		t.Fatalf("NextLSN = %d, want checkpoint LSN 5", got)
	}
	lsn, err := s2.Append([]byte("post"))
	if err != nil || lsn != 5 {
		t.Fatalf("append = lsn %d err %v, want 5", lsn, err)
	}
	if lsns, _ := collect(t, s2, 5); len(lsns) != 1 || lsns[0] != 5 {
		t.Fatalf("Replay(5) = %v, want [5]", lsns)
	}
}

func TestOpenHousekeeping(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	tmp := filepath.Join(dir, checkpointName(3)+tmpSuffix)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{Policy: SyncNever})
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("leftover temp checkpoint not removed: %v", err)
	}
	if _, _, ok, err := s.LatestCheckpoint(); ok || err != nil {
		t.Errorf("temp file treated as checkpoint: ok=%v err=%v", ok, err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		ival   time.Duration
		ok     bool
	}{
		{"always", SyncAlways, 0, true},
		{"never", SyncNever, 0, true},
		{"interval", SyncInterval, 0, true},
		{"interval=250ms", SyncInterval, 250 * time.Millisecond, true},
		{"interval=-1s", 0, 0, false},
		{"interval=", 0, 0, false},
		{"fsync", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		p, d, err := ParsePolicy(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePolicy(%q): err = %v, ok = %v", c.in, err, c.ok)
			continue
		}
		if c.ok && (p != c.policy || d != c.ival) {
			t.Errorf("ParsePolicy(%q) = %v %v, want %v %v", c.in, p, d, c.policy, c.ival)
		}
	}
}

// TestGroupCommitConcurrent hammers Append under SyncAlways from many
// goroutines (run with -race): every record must come back, each LSN
// exactly once, and group commit should not need one fsync per append.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Policy: SyncAlways, SegmentBytes: 4096})
	const workers, each = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	lsns, _ := collect(t, s, 0)
	for _, l := range lsns {
		if seen[l] {
			t.Fatalf("duplicate lsn %d", l)
		}
		seen[l] = true
	}
	if len(seen) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(seen), workers*each)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalPolicySyncs: the background goroutine advances durability
// without the writer asking.
func TestIntervalPolicySyncs(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Policy: SyncInterval, Interval: time.Millisecond})
	if _, err := s.Append([]byte("tick")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.fsyncs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	rec := bytes.Repeat([]byte{42}, 96)
	for _, policy := range []SyncPolicy{SyncNever, SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.SetBytes(int64(headerSize + len(rec)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
